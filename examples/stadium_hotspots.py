"""Stadium hotspot: when overlapping beams beat interference-free rotation.

A venue Wi-Fi / small-cell scenario: most of the crowd is packed into one
angular hotspot (the stands) whose demand exceeds any single antenna's
capacity.  Operators can either:

* require **non-overlapping** beams (interference-free rotation — the DP
  solves this variant optimally), or
* allow beams to **overlap** and stack two antennas onto the hotspot
  (the general problem — greedy/local-search/exact).

This example measures the price of the non-overlap constraint, the gap
the E5 experiment quantifies systematically.

Run:  python examples/stadium_hotspots.py
"""

import numpy as np

from repro import get_solver
from repro.analysis.tables import format_table
from repro.model.generators import hotspot_angles
from repro.packing.exact import solve_exact_angle
from repro.packing.local_search import improve_solution
from repro.packing.multi import solve_greedy_multi, solve_non_overlapping_dp
from repro.packing.shifting import solve_shifting


def main() -> None:
    stadium = hotspot_angles(
        n=12,                 # small enough for the exact solver
        k=2,                  # two steerable antennas
        rho=np.pi / 2,
        hotspot_fraction=0.75,
        hotspot_width=0.4,
        capacity_fraction=0.3,
        seed=7,
    )
    print(stadium)

    oracle = get_solver("exact")

    overlap_opt = solve_exact_angle(stadium).verify(stadium)
    disjoint_opt = solve_exact_angle(stadium, require_disjoint=True)
    disjoint_opt.verify(stadium, require_disjoint=True)

    greedy = improve_solution(
        stadium, solve_greedy_multi(stadium, oracle, adaptive=True), oracle
    ).verify(stadium)
    dp = solve_non_overlapping_dp(stadium, oracle)
    dp.verify(stadium, require_disjoint=True)
    shift = solve_shifting(stadium, oracle, t=8)
    shift.verify(stadium, require_disjoint=True)

    ref = overlap_opt.value(stadium)
    rows = [
        ["exact (overlap allowed)", ref, 1.0],
        ["greedy + local search (overlap)", greedy.value(stadium), greedy.value(stadium) / ref],
        ["exact (non-overlapping)", disjoint_opt.value(stadium), disjoint_opt.value(stadium) / ref],
        ["circular DP (non-overlapping)", dp.value(stadium), dp.value(stadium) / ref],
        ["shifting t=8 (non-overlapping)", shift.value(stadium), shift.value(stadium) / ref],
    ]
    print()
    print(
        format_table(
            ["planner", "served demand", "vs overlap optimum"],
            rows,
            title="price of interference-free rotation",
        )
    )

    both_on_hotspot = np.isclose(
        overlap_opt.orientations[0], overlap_opt.orientations[1], atol=0.6
    )
    print()
    if both_on_hotspot:
        print("The overlap optimum points BOTH antennas at the hotspot "
              "(orientations {:.2f}, {:.2f} rad) — exactly what the "
              "non-overlap constraint forbids.".format(*overlap_opt.orientations))
    else:
        print("Orientations:", np.round(overlap_opt.orientations, 2),
              "(overlap optimum) vs", np.round(disjoint_opt.orientations, 2),
              "(disjoint optimum)")


if __name__ == "__main__":
    main()
