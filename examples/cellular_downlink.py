"""Cellular downlink planning: a 2x2 grid of 3-sector base stations.

The scenario the paper's model comes from: each base station carries three
directional antennas (classic 120-degree trisector sites here narrowed to
100 degrees so orientation actually matters), every antenna has a downlink
capacity, and subscribers have bandwidth demands.  We orient every sector
and admit subscribers to maximize total served bandwidth, then compare:

* the global greedy (cross-station arbitration),
* the nearest-station baseline (each site plans alone),
* the splittable (fractional) upper bound at the greedy's orientations.

Run:  python examples/cellular_downlink.py
"""

import math

import numpy as np

from repro import get_solver
from repro.analysis.tables import format_table
from repro.model.generators import grid_city
from repro.packing.sectors import (
    solve_sector_greedy,
    solve_sector_independent,
    solve_sector_splittable,
)


def main() -> None:
    city = grid_city(
        n=180,
        grid=2,              # 4 base stations
        spacing=10.0,
        k_per_station=3,     # trisector sites
        rho=100 * math.pi / 180.0,
        radius=8.0,
        capacity_fraction=0.06,
        seed=2024,
    )
    print(city)
    print(f"total antennas: {city.total_antennas}, "
          f"total demand: {city.total_demand:.1f}")

    oracle = get_solver("fptas", eps=0.1)

    greedy = solve_sector_greedy(city, oracle).verify(city)
    baseline = solve_sector_independent(city, oracle).verify(city)
    _, split_ub = solve_sector_splittable(city, greedy.orientations)

    rows = [
        [
            "global greedy",
            greedy.value(city),
            greedy.served_demand(city) / city.total_demand,
            (greedy.assignment >= 0).sum(),
        ],
        [
            "nearest-station baseline",
            baseline.value(city),
            baseline.served_demand(city) / city.total_demand,
            (baseline.assignment >= 0).sum(),
        ],
        ["splittable bound @ greedy orientations", split_ub, split_ub / city.total_demand, "-"],
    ]
    print()
    print(
        format_table(
            ["planner", "served bandwidth", "fraction of demand", "subscribers"],
            rows,
            title="downlink planning",
        )
    )

    # Per-antenna load report for the greedy plan.
    loads = greedy.loads(city)
    print()
    ant_rows = []
    for g, s_id, spec in city.antenna_table():
        ant_rows.append(
            [
                f"site {s_id} / sector {g % 3}",
                math.degrees(greedy.orientations[g]) % 360.0,
                loads[g],
                spec.capacity,
                loads[g] / spec.capacity,
            ]
        )
    print(
        format_table(
            ["antenna", "azimuth (deg)", "load", "capacity", "utilization"],
            ant_rows,
            float_fmt=".2f",
            title="greedy sector plan",
        )
    )


if __name__ == "__main__":
    main()
