"""Quickstart: build an instance, solve it three ways, verify, compare.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AngleInstance,
    AntennaSpec,
    get_solver,
    improve_solution,
    lp_upper_bound,
    solve_exact_angle,
    solve_greedy_multi,
)
from repro.analysis.tables import format_table


def main() -> None:
    # Ten customers on a circle (angles in radians), each with a demand.
    rng = np.random.default_rng(42)
    instance = AngleInstance(
        thetas=rng.uniform(0, 2 * np.pi, 10),
        demands=rng.uniform(0.5, 2.0, 10),
        # Two identical antennas: 60-degree beams, capacity 3 each.
        antennas=(
            AntennaSpec(rho=np.pi / 3, capacity=3.0),
            AntennaSpec(rho=np.pi / 3, capacity=3.0),
        ),
    )
    print(instance)

    exact_oracle = get_solver("exact")
    greedy_oracle = get_solver("greedy")

    # 1. Fast greedy (1/3-approx with the greedy inner knapsack).
    greedy = solve_greedy_multi(instance, greedy_oracle)
    # 2. Greedy + local search polish (never worse).
    polished = improve_solution(instance, greedy, exact_oracle)
    # 3. Exact optimum (this instance is small enough).
    optimum = solve_exact_angle(instance)

    # Solutions are *verified* against the instance — a solver bug would
    # raise FeasibilityError here rather than report a wrong number.
    for sol in (greedy, polished, optimum):
        sol.verify(instance)

    ub = lp_upper_bound(instance)
    rows = [
        ["greedy", greedy.value(instance), greedy.value(instance) / optimum.value(instance)],
        ["greedy + local search", polished.value(instance), polished.value(instance) / optimum.value(instance)],
        ["exact", optimum.value(instance), 1.0],
        ["LP upper bound", ub, ub / optimum.value(instance)],
    ]
    print()
    print(format_table(["algorithm", "served demand", "vs optimum"], rows,
                       title="quickstart results"))
    print()
    print(f"optimal orientations (radians): {np.round(optimum.orientations, 3)}")
    served = (optimum.assignment >= 0).sum()
    print(f"customers served: {served}/{instance.n}")


if __name__ == "__main__":
    main()
