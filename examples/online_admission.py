"""Online subscriber admission: decisions are final, how much do we lose?

Beams are oriented from a demand forecast (offline greedy planner); then
real subscribers arrive one at a time and each must be accepted onto a
covering beam with capacity left — or rejected forever.  We race the
admission policies against the offline optimum on the *realized* stream
and against the proven work-conserving floor (1-δ)/(2-δ), δ = d_max/c_min.

Run:  python examples/online_admission.py
"""

import numpy as np

from repro import AngleInstance, AntennaSpec, get_solver, solve_greedy_multi
from repro.analysis.tables import format_table
from repro.online import (
    OnlineAdmission,
    POLICIES,
    replay_offline_reference,
    work_conserving_bound,
)
from repro.online.admission import make_threshold_policy


def main() -> None:
    rng = np.random.default_rng(99)
    antennas = tuple(
        AntennaSpec(rho=np.pi / 2, capacity=6.0, name=f"beam{j}") for j in range(3)
    )

    # Phase 1: orient beams on a forecast (historical customers).
    forecast = AngleInstance(
        thetas=rng.uniform(0, 2 * np.pi, 60),
        demands=rng.uniform(0.3, 1.2, 60),
        antennas=antennas,
    )
    plan = solve_greedy_multi(forecast, get_solver("greedy"), adaptive=True)
    print("planned beam azimuths (rad):", np.round(plan.orientations, 2))

    # Phase 2: the real stream (same distribution, new draw).
    n = 70
    thetas = rng.uniform(0, 2 * np.pi, n)
    demands = rng.uniform(0.3, 1.2, n)

    offline = replay_offline_reference(antennas, plan.orientations, thetas, demands)
    floor = work_conserving_bound(antennas, demands)

    rows = []
    policies = dict(POLICIES)
    policies["threshold(0.15)"] = make_threshold_policy(0.15)
    for name, policy in sorted(policies.items()):
        sim = OnlineAdmission(antennas, plan.orientations, policy=policy)
        online = sim.run(thetas, demands)
        rows.append(
            [
                name,
                online,
                online / offline,
                sim.accepted_count,
                sim.rejected_count,
            ]
        )
    print()
    print(
        format_table(
            ["policy", "accepted demand", "vs offline", "accepted", "rejected"],
            rows,
            title=f"online admission (offline optimum {offline:.2f}, "
            f"work-conserving floor {floor:.3f})",
        )
    )
    print()
    print("Every work-conserving policy must land above the floor; the")
    print("threshold policy trades whales for tail traffic and is exempt.")


if __name__ == "__main__":
    main()
