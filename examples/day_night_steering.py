"""Day/night steering: what are steerable antennas actually worth?

Demand in a city rotates: downtown by day, residential districts by
night.  With fixed beams an operator plans once; with steerable beams it
re-orients every period.  This example builds a rotating-hotspot demand
series and measures the revenue difference — the operational argument for
the orientation problem this library solves — plus the robustness curve
of a frozen plan under forecast error.

Run:  python examples/day_night_steering.py
"""

import numpy as np

from repro import get_solver, solve_greedy_multi
from repro.analysis.robustness import replanning_gain, robustness_curve
from repro.analysis.tables import format_table
from repro.analysis.viz import render_instance
from repro.model.generators import hotspot_angles
from repro.model.perturbation import rotating_demand_series

ORACLE = get_solver("greedy")


def planner(inst):
    return solve_greedy_multi(inst, ORACLE).orientations


def main() -> None:
    city = hotspot_angles(
        n=60, k=2, rho=np.pi / 3,
        hotspot_fraction=0.8, hotspot_width=0.35,
        capacity_fraction=0.3, seed=2026,
    )
    print("period-0 demand (hotspot = downtown at noon):")
    print(render_instance(city, width=72))

    # Four periods: the hotspot walks a quarter circle each period.
    series = rotating_demand_series(city, periods=4, demand_sigma=0.05, seed=1)
    out = replanning_gain(series, planner, ORACLE)
    rows = [
        ["frozen beams (plan once)", out["fixed_total"]],
        ["steerable beams (re-plan each period)", out["replanned_total"]],
        ["relative gain of steering", out["relative_gain"]],
    ]
    print()
    print(format_table(["strategy", "total served demand"], rows,
                       title="four-period rotating demand"))

    # Robustness of a frozen plan under pure forecast error (no rotation).
    pts = robustness_curve(
        city, planner, ORACLE,
        noise_levels=(0.0, 0.15, 0.3, 0.6), trials=3, seed=3,
    )
    rows = [[p.noise, p.fixed_plan_value, p.replanned_value, p.retention] for p in pts]
    print()
    print(format_table(
        ["demand noise sigma", "frozen plan", "re-planned", "retention"],
        rows, title="robustness to forecast error (no rotation)",
    ))
    print()
    print("Shape: rotation makes steering pay (gain above), while pure")
    print("demand noise inside unchanged beams is mostly survivable")
    print("(retention near 1) — orientation is the hard part.")


if __name__ == "__main__":
    main()
