"""Coverage planning: how many antennas does full service take?

The dual of the paper's packing problem: instead of maximizing served
demand with a fixed antenna budget, serve *every* customer with as few
antennas (of one spec) as possible.  We sweep beam width and capacity to
draw the planning curves an operator actually reads off, each point
certified against the instance lower bound
``max(ceil(total demand / capacity), arc-stabbing number)``.

Run:  python examples/coverage_planning.py
"""

import numpy as np

from repro import get_solver
from repro.analysis.tables import format_table
from repro.analysis.viz import render_instance
from repro.model.antenna import AntennaSpec
from repro.model.generators import clustered_angles
from repro.packing.covering import greedy_cover, verify_cover


def main() -> None:
    town = clustered_angles(n=60, k=1, clusters=4, spread=0.2, seed=17)
    print(render_instance(town, width=72))
    print(f"\n{town.n} customers, total demand {town.total_demand:.1f}\n")

    oracle = get_solver("greedy")

    # Curve 1: beam width sweep at fixed capacity.
    rows = []
    for deg in (30, 60, 90, 120, 180):
        rho = np.deg2rad(deg)
        spec = AntennaSpec(rho=rho, capacity=8.0)
        res = greedy_cover(town.thetas, town.demands, spec, oracle)
        verify_cover(town.thetas, town.demands, spec, res)
        rows.append([f"{deg} deg", res.antennas_used, res.lower_bound, res.gap()])
    print(format_table(
        ["beam width", "antennas used", "lower bound", "gap"],
        rows, title="capacity 8.0, beam width sweep",
    ))

    # Curve 2: capacity sweep at fixed beam width.
    rows = []
    for cap in (4.0, 8.0, 16.0, 32.0):
        spec = AntennaSpec(rho=np.pi / 2, capacity=cap)
        res = greedy_cover(town.thetas, town.demands, spec, oracle)
        verify_cover(town.thetas, town.demands, spec, res)
        rows.append([cap, res.antennas_used, res.lower_bound, res.gap()])
    print()
    print(format_table(
        ["capacity", "antennas used", "lower bound", "gap"],
        rows, title="90-degree beams, capacity sweep",
    ))
    print()
    print("Left curve is geometry-bound (narrow beams must stab every")
    print("cluster); right curve is capacity-bound (ceil(demand/capacity)).")


if __name__ == "__main__":
    main()
