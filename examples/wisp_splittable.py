"""Rural WISP: splittable vs all-or-nothing subscriber demands.

A wireless ISP serves farms from one mast with three narrow directional
antennas.  Some products let a subscriber's traffic be split across beams
(bonded links); the flagship product is all-or-nothing.  The gap between
the two is the integrality gap experiment E6 studies; here we show it on a
concrete instance, and how it shrinks when demands are small relative to
the antenna capacity (many small subscribers vs few large ones).

Run:  python examples/wisp_splittable.py
"""

import numpy as np

from repro import AngleInstance, AntennaSpec, get_solver
from repro.analysis.tables import format_table
from repro.packing.exact import solve_exact_fixed_orientations
from repro.packing.flow import solve_splittable
from repro.packing.multi import solve_greedy_multi


def build_wisp(n: int, demand_scale: float, seed: int) -> AngleInstance:
    rng = np.random.default_rng(seed)
    return AngleInstance(
        thetas=rng.uniform(0, 2 * np.pi, n),
        demands=rng.uniform(0.5, 1.5, n) * demand_scale,
        antennas=tuple(
            AntennaSpec(rho=np.pi / 4, capacity=4.0, name=f"beam{j}")
            for j in range(3)
        ),
    )


def main() -> None:
    oracle = get_solver("exact")
    rows = []
    for label, n, scale in [
        ("few large subscribers", 12, 2.0),
        ("medium subscribers", 12, 1.0),
        ("many small subscribers", 24, 0.4),
    ]:
        inst = build_wisp(n, scale, seed=11)
        # Orient beams with the greedy planner, then compare assignment modes
        # at those orientations.
        plan = solve_greedy_multi(inst, oracle, adaptive=True)
        integral = solve_exact_fixed_orientations(inst, plan.orientations)
        integral.verify(inst)
        split = solve_splittable(inst, plan.orientations)
        split.verify(inst)
        vi, vs = integral.value(inst), split.value(inst)
        rows.append([label, vi, vs, 0.0 if vs == 0 else (vs - vi) / vs])
    print(
        format_table(
            ["population", "all-or-nothing", "splittable", "relative gap"],
            rows,
            title="integrality gap at fixed beam orientations",
        )
    )
    print()
    print("Shape: the relative gap shrinks as subscriber demands get small")
    print("compared to beam capacity — exactly the E6 series.")

    # Bonus: show a split subscriber.
    inst = build_wisp(12, 2.0, seed=11)
    plan = solve_greedy_multi(inst, oracle, adaptive=True)
    split = solve_splittable(inst, plan.orientations)
    partial = np.flatnonzero(
        (split.fractions.sum(axis=1) > 1e-9)
        & (split.fractions.max(axis=1) < 1 - 1e-9)
    )
    if partial.size:
        i = int(partial[0])
        print()
        print(f"subscriber {i} is split across beams: fractions = "
              f"{np.round(split.fractions[i], 3)}")


if __name__ == "__main__":
    main()
