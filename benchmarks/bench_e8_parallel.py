"""E8 — parallel fan-out speedup.

Benchmarks the process-pool layer against serial execution on an
embarrassingly parallel workload shaped like the experiment harness: many
independent instance solves.  Absolute speedup is machine-dependent; the
reproducible claims are (a) identical results serial vs parallel, and
(b) the pool does not *lose* badly even with pickling overhead.
"""

import pytest

from repro.knapsack import get_solver
from repro.model import generators as gen
from repro.packing.multi import solve_greedy_multi
from repro.parallel import parallel_map, scatter_gather

GREEDY = get_solver("greedy")


def solve_seed(seed: int) -> float:
    inst = gen.clustered_angles(n=80, k=3, seed=seed)
    return solve_greedy_multi(inst, GREEDY).value(inst)


def solve_chunk(seeds) -> float:
    return sum(solve_seed(s) for s in seeds)


SEEDS = list(range(24))


def test_e8_results_identical():
    serial = parallel_map(solve_seed, SEEDS, workers=1)
    par = parallel_map(solve_seed, SEEDS, workers=2)
    assert serial == par


def test_e8_scatter_gather_matches_map():
    chunks = [SEEDS[i : i + 6] for i in range(0, len(SEEDS), 6)]
    gathered = scatter_gather(solve_chunk, chunks, workers=2)
    flat = parallel_map(solve_seed, SEEDS, workers=1)
    assert sum(gathered) == pytest.approx(sum(flat))


def test_e8_serial(benchmark):
    total = benchmark.pedantic(
        lambda: sum(parallel_map(solve_seed, SEEDS, workers=1)),
        rounds=3,
        iterations=1,
    )
    assert total > 0


@pytest.mark.parametrize("workers", [2, 4])
def test_e8_parallel(benchmark, workers):
    total = benchmark.pedantic(
        lambda: sum(parallel_map(solve_seed, SEEDS, workers=workers)),
        rounds=3,
        iterations=1,
    )
    assert total > 0
