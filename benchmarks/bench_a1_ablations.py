"""A1 — ablations of the design choices DESIGN.md calls out.

1. **Profit-sum pruning** in the rotation search (visit windows in
   decreasing covered-profit order, stop when the incumbent dominates):
   measured as pruned-vs-exhaustive sweep time at equal results.
2. **Candidate-grid stacking depth** in the non-overlapping DP: the
   enriched grid ``theta_i + j*rho, |j| <= k-1`` vs the naive
   ``j = 0``-only grid — the naive grid is faster but provably misses
   stacked optima; we measure both the speed gain and the value loss.
3. **Adaptive vs fixed antenna order** in the greedy multi solver:
   adaptive re-evaluates every unused antenna each round (k× work) —
   measured value gain vs cost.

Each ablation asserts the directional claim and benchmarks both arms.
"""

import numpy as np
import pytest

from repro.geometry.sweep import CircularSweep
from repro.knapsack import get_solver
from repro.model import generators as gen
from repro.packing.canonical import canonical_starts
from repro.packing.multi import solve_greedy_multi, solve_non_overlapping_dp
from repro.packing.single import best_rotation

GREEDY = get_solver("greedy")
EXACT = get_solver("exact")


# ----------------------------------------------------------------------
# Ablation 1: profit-sum pruning in the rotation search
# ----------------------------------------------------------------------
def exhaustive_rotation(thetas, demands, profits, spec, oracle):
    """best_rotation without the pruning order/early-exit (reference arm)."""
    sweep = CircularSweep(thetas, spec.rho)
    best_val, best = -1.0, None
    for k in sweep.unique_window_ids():
        w = sweep.window(int(k))
        cov = w.indices
        if cov.size == 0:
            continue
        res = oracle.solve(demands[cov], profits[cov], spec.capacity)
        if res.value > best_val:
            best_val = res.value
    return best_val


def test_a1_pruning_same_answer():
    for seed in range(5):
        inst = gen.clustered_angles(n=60, k=1, seed=seed)
        spec = inst.antennas[0]
        pruned = best_rotation(
            inst.thetas, inst.demands, inst.profits, spec, GREEDY
        ).value
        full = exhaustive_rotation(
            inst.thetas, inst.demands, inst.profits, spec, GREEDY
        )
        assert pruned == pytest.approx(full, abs=1e-9)


def test_a1_pruned_sweep(benchmark):
    inst = gen.clustered_angles(n=300, k=1, seed=1)
    spec = inst.antennas[0]
    v = benchmark(
        lambda: best_rotation(
            inst.thetas, inst.demands, inst.profits, spec, GREEDY
        ).value
    )
    assert v > 0


def test_a1_exhaustive_sweep(benchmark):
    inst = gen.clustered_angles(n=300, k=1, seed=1)
    spec = inst.antennas[0]
    v = benchmark.pedantic(
        lambda: exhaustive_rotation(
            inst.thetas, inst.demands, inst.profits, spec, GREEDY
        ),
        rounds=3,
        iterations=1,
    )
    assert v > 0


# ----------------------------------------------------------------------
# Ablation 2: candidate grid depth for the non-overlapping DP
# ----------------------------------------------------------------------
def test_a2_naive_grid_never_better():
    for seed in range(5):
        inst = gen.clustered_angles(n=30, k=3, seed=seed)
        full = solve_non_overlapping_dp(inst, EXACT).value(inst)
        naive = solve_non_overlapping_dp(
            inst, EXACT, candidates=canonical_starts(inst.thetas)
        ).value(inst)
        assert naive <= full + 1e-9


def test_a2_naive_grid_misses_stacked_optima():
    """A constructed instance where stacking is mandatory for optimality."""
    # two tight clusters exactly rho apart: the optimum stacks two arcs
    # end-to-start; start-aligned-only candidates cannot express the pair
    # of arcs that *both* start at customer angles AND stay disjoint.
    rho = 1.0
    thetas = np.array([0.0, 0.05, 0.95, 1.0])
    demands = np.array([1.0, 1.0, 1.0, 1.0])
    from repro.model.antenna import AntennaSpec
    from repro.model.instance import AngleInstance

    inst = AngleInstance(
        thetas=thetas,
        demands=demands,
        antennas=(
            AntennaSpec(rho=rho, capacity=2.0),
            AntennaSpec(rho=rho, capacity=2.0),
        ),
    )
    full = solve_non_overlapping_dp(inst, EXACT).value(inst)
    naive = solve_non_overlapping_dp(
        inst, EXACT, candidates=canonical_starts(inst.thetas)
    ).value(inst)
    assert full >= naive  # and typically strictly greater on such instances
    assert full == pytest.approx(4.0)


@pytest.mark.parametrize("grid", ["full", "naive"])
def test_a2_grid_runtime(benchmark, grid):
    inst = gen.clustered_angles(n=120, k=3, seed=2)
    cands = None if grid == "full" else canonical_starts(inst.thetas)
    v = benchmark.pedantic(
        lambda: solve_non_overlapping_dp(inst, GREEDY, candidates=cands).value(inst),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["value"] = v
    assert v > 0


# ----------------------------------------------------------------------
# Ablation 3: adaptive vs fixed greedy order
# ----------------------------------------------------------------------
def test_a3_adaptive_value_on_heterogeneous():
    gains = []
    for seed in range(6):
        inst = gen.mixed_antenna_angles(n=50, seed=seed)
        fixed = solve_greedy_multi(inst, GREEDY).value(inst)
        adaptive = solve_greedy_multi(inst, GREEDY, adaptive=True).value(inst)
        gains.append(adaptive - fixed)
    # adaptive wins or ties on average (it can lose on single seeds)
    assert np.mean(gains) >= -1e-9


@pytest.mark.parametrize("mode", ["fixed", "adaptive"])
def test_a3_greedy_mode_runtime(benchmark, mode):
    inst = gen.mixed_antenna_angles(n=150, seed=3)
    v = benchmark(
        lambda: solve_greedy_multi(
            inst, GREEDY, adaptive=(mode == "adaptive")
        ).value(inst)
    )
    assert v > 0


# ----------------------------------------------------------------------
# Ablation 4: disjoint-variant solver ladder (DP vs shifting vs insertion)
# ----------------------------------------------------------------------
def test_a4_ladder_ordering():
    """DP >= shifting, DP >= insertion; all disjoint-feasible."""
    from repro.packing.insertion import solve_insertion
    from repro.packing.shifting import solve_shifting

    for seed in range(5):
        inst = gen.clustered_angles(n=40, k=3, seed=seed)
        dp = solve_non_overlapping_dp(inst, EXACT)
        sh = solve_shifting(inst, EXACT, t=8)
        ins = solve_insertion(inst, EXACT)
        for sol in (dp, sh, ins):
            assert sol.violations(inst, require_disjoint=True) == []
        dp_raw = solve_non_overlapping_dp(inst, EXACT, boundary_fill=False)
        sh_raw = solve_shifting(inst, EXACT, t=8, boundary_fill=False)
        ins_raw = solve_insertion(inst, EXACT, boundary_fill=False)
        assert sh_raw.value(inst) <= dp_raw.value(inst) + 1e-9
        assert ins_raw.value(inst) <= dp_raw.value(inst) + 1e-9


@pytest.mark.parametrize("solver", ["dp", "shifting", "insertion"])
def test_a4_ladder_runtime(benchmark, solver):
    from repro.packing.insertion import solve_insertion
    from repro.packing.shifting import solve_shifting

    inst = gen.clustered_angles(n=200, k=3, seed=4)
    fns = {
        "dp": lambda: solve_non_overlapping_dp(inst, GREEDY).value(inst),
        "shifting": lambda: solve_shifting(inst, GREEDY, t=8).value(inst),
        "insertion": lambda: solve_insertion(inst, GREEDY).value(inst),
    }
    v = benchmark.pedantic(fns[solver], rounds=3, iterations=1)
    benchmark.extra_info["value"] = v
    assert v > 0
