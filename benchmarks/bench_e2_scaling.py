"""E2 — runtime scaling vs instance size.

Benchmarks each solver tier at growing ``n`` so the timing table exposes
the complexity shape: the sweep solvers stay near ``n log n`` per oracle
call, the non-overlapping DP grows ~quadratically in its candidate count,
and the LP grows fastest.  Absolute numbers are machine-specific; the
*ordering* (greedy < DP < LP at equal n) is the reproducible claim.
"""

import pytest

from repro.knapsack import get_solver
from repro.model import generators as gen
from repro.packing.lp import solve_lp_rounding
from repro.packing.multi import solve_greedy_multi, solve_non_overlapping_dp
from repro.packing.shifting import solve_shifting
from repro.packing.single import solve_single_antenna_fractional

SIZES = [50, 100, 200, 400]
GREEDY = get_solver("greedy")


def _instance(n):
    return gen.clustered_angles(n=n, k=3, seed=11)


@pytest.mark.parametrize("n", SIZES)
def test_e2_greedy_multi(benchmark, n):
    inst = _instance(n)
    value = benchmark(lambda: solve_greedy_multi(inst, GREEDY).value(inst))
    assert value > 0


@pytest.mark.parametrize("n", SIZES)
def test_e2_non_overlapping_dp(benchmark, n):
    inst = _instance(n)
    value = benchmark.pedantic(
        lambda: solve_non_overlapping_dp(inst, GREEDY).value(inst),
        rounds=3,
        iterations=1,
    )
    assert value > 0


@pytest.mark.parametrize("n", SIZES)
def test_e2_shifting(benchmark, n):
    inst = _instance(n)
    value = benchmark(lambda: solve_shifting(inst, GREEDY, t=8).value(inst))
    assert value > 0


@pytest.mark.parametrize("n", SIZES[:3])
def test_e2_lp_rounding(benchmark, n):
    inst = _instance(n)
    value = benchmark.pedantic(
        lambda: solve_lp_rounding(inst, GREEDY, rounds=3, max_candidates=40).value(
            inst
        ),
        rounds=3,
        iterations=1,
    )
    assert value > 0


@pytest.mark.parametrize("n", SIZES + [800])
def test_e2_fractional_single(benchmark, n):
    """The splittable single-antenna fast path is near-linear."""
    inst = gen.clustered_angles(n=n, k=1, seed=11)
    value = benchmark(lambda: solve_single_antenna_fractional(inst).value(inst))
    assert value > 0
