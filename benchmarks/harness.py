"""Standalone bench-harness entry point (thin wrapper over ``repro.obs.bench``).

The canonical way to produce a ``BENCH_<tag>.json`` is the CLI::

    PYTHONPATH=src python -m repro bench --families uniform --n 60

This module offers the same harness for scripting contexts where the full
CLI is unwanted (CI steps, notebooks)::

    PYTHONPATH=src python benchmarks/harness.py --families uniform,hotspot \
        --n 80 --seeds 0,1 --output BENCH_local.json

The emitted payload follows the frozen ``repro.bench`` schema documented
field-by-field in docs/OBSERVABILITY.md; ``--check PATH`` validates an
existing file against it and exits non-zero on mismatch.
"""

from __future__ import annotations

import argparse
import sys


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="bench-harness",
        description="Run the repro bench harness, write BENCH_<tag>.json",
    )
    p.add_argument("--families", default="uniform,clustered,hotspot",
                   help="comma-separated instance families (angle or sector)")
    p.add_argument("--n", type=int, default=60, help="customers per instance")
    p.add_argument("--k", type=int, default=3, help="antennas per angle instance")
    p.add_argument("--seeds", default="0", help="comma-separated seeds")
    p.add_argument("--solvers",
                   help="comma-separated solver subset (default: all applicable)")
    p.add_argument("--eps", type=float, default=0.5,
                   help="< 1 uses the FPTAS oracle at this eps; 1 = exact oracle "
                        "(exact can blow up on continuous-weight families)")
    p.add_argument("--tag", default="pr1", help="tag baked into the payload/filename")
    p.add_argument("--output", help="output path (default BENCH_<tag>.json)")
    p.add_argument("--check", metavar="PATH",
                   help="validate an existing bench JSON instead of running")
    return p


def main(argv=None) -> int:
    from repro.obs.bench import load_bench, run_bench, write_bench

    args = build_parser().parse_args(argv)
    if args.check:
        try:
            payload = load_bench(args.check)
        except (OSError, ValueError) as exc:
            print(f"{args.check}: {exc}", file=sys.stderr)
            return 2
        print(f"{args.check}: valid repro.bench v{payload['schema_version']} "
              f"({len(payload['runs'])} runs)")
        return 0
    families = tuple(f.strip() for f in args.families.split(",") if f.strip())
    seeds = tuple(int(s) for s in args.seeds.split(","))
    solvers = None
    if args.solvers:
        solvers = tuple(s.strip() for s in args.solvers.split(",") if s.strip())
    try:
        payload = run_bench(
            families=families, n=args.n, k=args.k, seeds=seeds,
            solvers=solvers, eps=args.eps, tag=args.tag,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    output = args.output or f"BENCH_{args.tag}.json"
    write_bench(payload, output)
    print(f"wrote {output}: {len(payload['runs'])} runs")
    for solver, s in sorted(payload["summary"].items()):
        print(f"  {solver:18s} mean ratio {s['mean_ratio_vs_bound']:.4f}  "
              f"min {s['min_ratio_vs_bound']:.4f}  "
              f"peak oracle calls {s['peak_oracle_calls']}  "
              f"{s['total_wall_time_s']:.3f}s")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
