"""E7 — FPTAS eps sweep: quality/runtime trade-off.

The single-antenna sweep with an FPTAS oracle is a (1-eps)-approximation.
Expected series: measured value is sandwiched in [(1-eps)*OPT, OPT] for
every eps; runtime grows as eps shrinks (the DP table is ~n^2/eps).
"""

import numpy as np
import pytest

from repro.knapsack import get_solver, solve_fptas
from repro.model import generators as gen
from repro.packing.single import solve_single_antenna

EPSES = [0.5, 0.25, 0.1, 0.05]


def _instance(seed=5):
    # subset-sum flavored: integer demands, tight capacity, one antenna
    return gen.subset_sum_angles(n=40, k=1, rho=2.0, seed=seed)


def _exact_value(inst):
    return solve_single_antenna(inst, get_solver("exact")).value(inst)


def test_e7_sandwich():
    inst = _instance()
    opt = _exact_value(inst)
    for eps in EPSES:
        v = solve_single_antenna(inst, get_solver("fptas", eps=eps)).value(inst)
        assert (1 - eps) * opt - 1e-9 <= v <= opt + 1e-9


def test_e7_monotone_in_eps_on_average():
    insts = [_instance(seed=s) for s in range(4)]
    means = []
    for eps in EPSES:
        oracle = get_solver("fptas", eps=eps)
        means.append(
            np.mean([solve_single_antenna(i, oracle).value(i) for i in insts])
        )
    assert means[-1] >= means[0] - 1e-9  # tighter eps at least as good on average


@pytest.mark.parametrize("eps", EPSES)
def test_e7_sweep_runtime(benchmark, eps):
    inst = _instance()
    oracle = get_solver("fptas", eps=eps)
    value = benchmark(lambda: solve_single_antenna(inst, oracle).value(inst))
    assert value > 0


@pytest.mark.parametrize("eps", EPSES)
def test_e7_raw_knapsack_runtime(benchmark, eps):
    """The oracle itself, isolated from the sweep."""
    rng = np.random.default_rng(0)
    # n=100 keeps the eps=0.05 table inside the FPTAS memory cap
    w = rng.integers(1, 100, 100).astype(float)
    cap = 0.4 * w.sum()
    res = benchmark(lambda: solve_fptas(w, w, cap, eps=eps))
    assert res.value >= (1 - eps) * min(cap, w.sum()) - 1e-9 or res.value > 0
