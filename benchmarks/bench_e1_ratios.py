"""E1 — measured approximation ratio vs proven bound.

For every (instance family, solver) pair: solve small instances whose
exact optimum is known, assert the proven guarantee holds, and benchmark
the solver on one representative instance.

Expected shape (recorded in EXPERIMENTS.md): exact == 1.0 everywhere;
FPTAS >= 1 - eps; greedy >= 1/2 with the adversarial family pushing it
toward the bound while uniform/clustered stay >= ~0.9.
"""

import numpy as np
import pytest

from repro.analysis.metrics import geometric_mean
from repro.knapsack import get_solver
from repro.packing.exact import solve_exact_angle
from repro.packing.local_search import improve_solution
from repro.packing.multi import solve_greedy_multi

FAMILIES = ["uniform", "clustered", "hotspot", "adversarial"]


def _ratios(instances, optima, solve):
    out = []
    for inst, opt in zip(instances, optima):
        v = solve(inst)
        out.append(1.0 if opt <= 0 else v / opt)
    return out


@pytest.mark.parametrize("family", FAMILIES)
def test_e1_greedy_oracle_ratio(benchmark, small_instances, exact_optima, family):
    """Greedy-oracle greedy multi: guarantee beta/(1+beta) = 1/3."""
    oracle = get_solver("greedy")
    solve = lambda i: solve_greedy_multi(i, oracle).value(i)
    ratios = _ratios(small_instances[family], exact_optima[family], solve)
    assert min(ratios) >= 1.0 / 3.0 - 1e-9
    assert max(ratios) <= 1.0 + 1e-9
    benchmark.extra_info["min_ratio"] = min(ratios)
    benchmark.extra_info["geo_ratio"] = geometric_mean(ratios)
    benchmark(solve, small_instances[family][0])


@pytest.mark.parametrize("family", FAMILIES)
def test_e1_exact_oracle_ratio(benchmark, small_instances, exact_optima, family):
    """Exact-oracle greedy multi: guarantee 1/2."""
    oracle = get_solver("exact")
    solve = lambda i: solve_greedy_multi(i, oracle).value(i)
    ratios = _ratios(small_instances[family], exact_optima[family], solve)
    assert min(ratios) >= 0.5 - 1e-9
    benchmark.extra_info["min_ratio"] = min(ratios)
    benchmark(solve, small_instances[family][0])


@pytest.mark.parametrize("family", FAMILIES)
def test_e1_fptas_oracle_ratio(benchmark, small_instances, exact_optima, family):
    """FPTAS(0.1)-oracle greedy multi: guarantee (1-eps)/(2-eps) ~ 0.4737."""
    oracle = get_solver("fptas", eps=0.1)
    solve = lambda i: solve_greedy_multi(i, oracle).value(i)
    ratios = _ratios(small_instances[family], exact_optima[family], solve)
    assert min(ratios) >= (1 - 0.1) / (2 - 0.1) - 1e-9
    benchmark.extra_info["min_ratio"] = min(ratios)
    benchmark(solve, small_instances[family][0])


@pytest.mark.parametrize("family", FAMILIES)
def test_e1_greedy_plus_local_search(benchmark, small_instances, exact_optima, family):
    """Local search never lowers the greedy value (same 1/2 floor)."""
    oracle = get_solver("exact")

    def solve(i):
        base = solve_greedy_multi(i, oracle)
        return improve_solution(i, base, oracle).value(i)

    ratios = _ratios(small_instances[family], exact_optima[family], solve)
    assert min(ratios) >= 0.5 - 1e-9
    benchmark.extra_info["min_ratio"] = min(ratios)
    benchmark(solve, small_instances[family][0])


def test_e1_exact_is_one(benchmark, small_instances, exact_optima):
    """The exact solver certifies itself at ratio exactly 1."""
    solve = lambda i: solve_exact_angle(i).value(i)
    for family in FAMILIES:
        ratios = _ratios(small_instances[family], exact_optima[family], solve)
        assert np.allclose(ratios, 1.0)
    benchmark(solve, small_instances["uniform"][0])


def test_e1_adversarial_drives_greedy_down(small_instances, exact_optima, benchmark):
    """Shape check: the adversarial family hurts greedy most."""
    oracle = get_solver("greedy")
    solve = lambda i: solve_greedy_multi(i, oracle).value(i)
    adv = min(_ratios(small_instances["adversarial"], exact_optima["adversarial"], solve))
    uni = min(_ratios(small_instances["uniform"], exact_optima["uniform"], solve))
    assert adv <= uni + 1e-9
    # adversarial construction lands within 10% of the 1/2 bound
    assert adv <= 0.62
    benchmark(solve, small_instances["adversarial"][0])
