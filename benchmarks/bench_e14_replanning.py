"""E14 — the value of steerable antennas: re-planning vs frozen beams.

A rotating hotspot (day/night drift) is served either by a plan frozen on
period 0 or by re-orienting every period.  Expected shape: the gain of
re-planning grows with how concentrated and how mobile the demand is —
near zero for uniform demand, large for a hard rotating hotspot; this is
the operational argument for the paper's problem existing at all.
"""

import numpy as np
import pytest

from repro.analysis.robustness import replanning_gain
from repro.knapsack import get_solver
from repro.model import generators as gen
from repro.model.perturbation import rotating_demand_series
from repro.packing.multi import solve_greedy_multi

GREEDY = get_solver("greedy")


def planner(inst):
    return solve_greedy_multi(inst, GREEDY).orientations


def _gain(base, periods=4, sigma=0.05, seed=14):
    series = rotating_demand_series(base, periods=periods, demand_sigma=sigma, seed=seed)
    return replanning_gain(series, planner, GREEDY)


def test_e14_replanning_never_loses():
    for seed in range(3):
        base = gen.clustered_angles(n=50, k=3, seed=seed)
        out = _gain(base)
        assert out["replanned_total"] >= out["fixed_total"] * 0.98


def test_e14_gain_grows_with_concentration():
    uniform = gen.uniform_angles(n=50, k=2, rho=np.pi / 3,
                                 capacity_fraction=0.3, seed=20)
    hotspot = gen.hotspot_angles(n=50, k=2, rho=np.pi / 3,
                                 hotspot_fraction=0.85, hotspot_width=0.3,
                                 capacity_fraction=0.3, seed=20)
    g_uniform = _gain(uniform)["relative_gain"]
    g_hotspot = _gain(hotspot)["relative_gain"]
    assert g_hotspot >= g_uniform - 0.02
    assert g_hotspot >= 0.05  # a rotating hotspot makes steering valuable


def test_e14_static_series_no_gain():
    """Rotation 0 (static world): freezing is as good as re-planning."""
    base = gen.clustered_angles(n=40, k=2, seed=21)
    series = rotating_demand_series(
        base, periods=3, rotation_per_period=0.0, demand_sigma=0.0, seed=21
    )
    out = replanning_gain(series, planner, GREEDY)
    assert out["relative_gain"] == pytest.approx(0.0, abs=1e-9)


@pytest.mark.parametrize("periods", [2, 4, 8])
def test_e14_gain_runtime(benchmark, periods):
    base = gen.hotspot_angles(n=60, k=2, seed=22)
    out = benchmark.pedantic(
        lambda: _gain(base, periods=periods), rounds=2, iterations=1
    )
    benchmark.extra_info["relative_gain"] = out["relative_gain"]
    assert out["periods"] == periods
