"""Observability overhead — the disabled-tracing tax on hot solves.

The telemetry contract (docs/OBSERVABILITY.md) promises that metrics are
cheap enough to stay always-on and that tracing is a strict no-op when
disabled.  These benchmarks put a number on both claims against the E2
workload: ``solve_greedy_multi`` on clustered instances, where the
per-window loop is the hottest path the registry touches.

Pass/fail is intentionally loose here (benchmarks are for measurement);
the hard assertion is only that enabling tracing does not change solver
results.
"""

import pytest

from repro.knapsack import get_solver
from repro.model import generators as gen
from repro.obs import disable_tracing, drain_events, enable_tracing, trace_enabled
from repro.packing.multi import solve_greedy_multi

SIZES = [100, 400]
GREEDY = get_solver("greedy")


def _instance(n):
    return gen.clustered_angles(n=n, k=3, seed=11)


@pytest.mark.parametrize("n", SIZES)
def test_obs_overhead_tracing_disabled(benchmark, n):
    """Baseline: metrics on (always), tracing off (default)."""
    inst = _instance(n)
    assert not trace_enabled()
    value = benchmark(lambda: solve_greedy_multi(inst, GREEDY).value(inst))
    assert value > 0


@pytest.mark.parametrize("n", SIZES)
def test_obs_overhead_tracing_enabled(benchmark, n):
    """Tracing on, buffered in memory (no sink I/O)."""
    inst = _instance(n)
    enable_tracing()
    try:
        value = benchmark(lambda: solve_greedy_multi(inst, GREEDY).value(inst))
    finally:
        disable_tracing()
        drain_events()
    assert value > 0


@pytest.mark.parametrize("n", SIZES)
def test_obs_tracing_does_not_change_results(n):
    inst = _instance(n)
    base = solve_greedy_multi(inst, GREEDY).value(inst)
    enable_tracing()
    try:
        traced = solve_greedy_multi(inst, GREEDY).value(inst)
        events = drain_events()
    finally:
        disable_tracing()
    assert traced == base
    assert any(e["name"] == "solver.greedy_multi" for e in events)
