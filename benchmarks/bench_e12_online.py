"""E12 — online admission vs offline optimum.

Streams random arrival orders through each admission policy at fixed
(greedy-planned) orientations and compares to the offline reference.
Expected shape: all work-conserving policies clear the
``(1-delta)/(2-delta)`` floor with room to spare; best-fit >= first-fit on
average; the whale-rejecting threshold policy wins only when demand
variance is extreme; smaller demands → ratios → 1.
"""

import numpy as np
import pytest

from repro.geometry.angles import TWO_PI
from repro.knapsack import get_solver
from repro.model.antenna import AntennaSpec
from repro.online import (
    OnlineAdmission,
    POLICIES,
    replay_offline_reference,
    work_conserving_bound,
)
from repro.online.admission import make_threshold_policy

GREEDY = get_solver("greedy")


def make_stream(n, demand_lo, demand_hi, seed):
    rng = np.random.default_rng(seed)
    return rng.uniform(0, TWO_PI, n), rng.uniform(demand_lo, demand_hi, n)


def setup(capacity=4.0):
    ants = [AntennaSpec(rho=2.2, capacity=capacity) for _ in range(3)]
    oris = [0.0, 2.1, 4.2]
    return ants, oris


def ratio(policy, thetas, demands, ants, oris):
    sim = OnlineAdmission(ants, oris, policy=policy)
    online = sim.run(thetas, demands)
    offline = replay_offline_reference(ants, oris, thetas, demands)
    return 1.0 if offline <= 0 else online / offline


def test_e12_floor_holds_for_all_policies():
    ants, oris = setup()
    for seed in range(5):
        thetas, demands = make_stream(40, 0.3, 1.2, seed)
        floor = work_conserving_bound(ants, demands)
        for name in POLICIES:
            r = ratio(name, thetas, demands, ants, oris)
            assert r >= floor - 1e-9, (name, r, floor)
            assert r <= 1.0 + 1e-9


def test_e12_small_demands_near_one():
    ants, oris = setup()
    rs = []
    for seed in range(4):
        thetas, demands = make_stream(80, 0.05, 0.15, seed)
        rs.append(ratio("best_fit", thetas, demands, ants, oris))
    assert min(rs) >= 0.9


def test_e12_granularity_series():
    """Mean competitive ratio improves as demands shrink."""
    ants, oris = setup()
    means = []
    for lo, hi in [(0.8, 2.0), (0.4, 1.0), (0.1, 0.3)]:
        rs = [
            ratio("best_fit", *make_stream(50, lo, hi, s), ants, oris)
            for s in range(4)
        ]
        means.append(np.mean(rs))
    assert means[-1] >= means[0] - 0.02


def test_e12_best_fit_vs_first_fit_on_average():
    ants, oris = setup()
    bf, ff = [], []
    for seed in range(8):
        thetas, demands = make_stream(50, 0.5, 1.8, seed)
        bf.append(ratio("best_fit", thetas, demands, ants, oris))
        ff.append(ratio("first_fit", thetas, demands, ants, oris))
    assert np.mean(bf) >= np.mean(ff) - 0.03


def test_e12_threshold_not_dominant_on_benign_streams():
    ants, oris = setup()
    thetas, demands = make_stream(50, 0.3, 0.8, 0)
    plain = ratio("best_fit", thetas, demands, ants, oris)
    capped = ratio(make_threshold_policy(0.2), thetas, demands, ants, oris)
    assert plain >= capped - 1e-9


@pytest.mark.parametrize("name", sorted(POLICIES))
def test_e12_policy_throughput(benchmark, name):
    ants, oris = setup()
    thetas, demands = make_stream(500, 0.2, 1.0, 3)

    def run():
        sim = OnlineAdmission(ants, oris, policy=name)
        return sim.run(thetas, demands)

    total = benchmark(run)
    assert total > 0


def test_e12_offline_reference_runtime(benchmark):
    ants, oris = setup()
    thetas, demands = make_stream(120, 0.2, 1.0, 3)
    v = benchmark(
        lambda: replay_offline_reference(ants, oris, thetas, demands)
    )
    assert v > 0
