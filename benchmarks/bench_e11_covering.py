"""E11 — the dual covering problem: antennas needed vs lower bound.

Greedy max-remaining-demand placement against the certified lower bound
``max(ceil(D / c), min-arcs-to-touch)``.  Expected shape: on capacity-
bound instances (wide beams, tight capacity) greedy lands within one
antenna of the bound; on geometry-bound instances (narrow beams, loose
capacity) it matches the exact stabbing number; the log-factor of the
set-cover analysis is never observed on these families.
"""

import numpy as np
import pytest

from repro.geometry.angles import TWO_PI
from repro.knapsack import get_solver
from repro.model import generators as gen
from repro.model.antenna import AntennaSpec
from repro.packing.covering import (
    cover_lower_bound,
    greedy_cover,
    verify_cover,
)

EXACT = get_solver("exact")
GREEDY = get_solver("greedy")


def test_e11_capacity_bound_regime():
    """Wide beams: antennas used tracks ceil(total demand / capacity)."""
    rng = np.random.default_rng(0)
    for seed in range(4):
        rng = np.random.default_rng(seed)
        thetas = rng.uniform(0, TWO_PI, 30)
        demands = rng.uniform(0.5, 1.5, 30)
        spec = AntennaSpec(rho=TWO_PI, capacity=5.0)
        res = greedy_cover(thetas, demands, spec, EXACT)
        verify_cover(thetas, demands, spec, res)
        assert res.lower_bound <= res.antennas_used <= res.lower_bound + 2


def test_e11_geometry_bound_regime():
    """Narrow beams, loose capacity: greedy matches the stabbing number."""
    for seed in range(4):
        rng = np.random.default_rng(100 + seed)
        thetas = rng.uniform(0, TWO_PI, 25)
        demands = rng.uniform(0.1, 0.3, 25)
        spec = AntennaSpec(rho=0.8, capacity=100.0)
        res = greedy_cover(thetas, demands, spec, GREEDY)
        verify_cover(thetas, demands, spec, res)
        # loose capacity: lower bound is exactly the arc-stabbing number,
        # and serving max remaining demand == covering max customers here
        assert res.antennas_used <= res.lower_bound + 2


def test_e11_gap_never_large():
    for seed in range(6):
        inst = gen.clustered_angles(n=40, k=1, capacity_fraction=0.15, seed=seed)
        spec = inst.antennas[0]
        res = greedy_cover(inst.thetas, inst.demands, spec, GREEDY)
        verify_cover(inst.thetas, inst.demands, spec, res)
        assert res.gap() <= 3.0


@pytest.mark.parametrize("n", [50, 100, 200])
def test_e11_cover_runtime(benchmark, n):
    inst = gen.clustered_angles(n=n, k=1, capacity_fraction=0.1, seed=5)
    spec = inst.antennas[0]
    res = benchmark(lambda: greedy_cover(inst.thetas, inst.demands, spec, GREEDY))
    benchmark.extra_info["antennas_used"] = res.antennas_used
    benchmark.extra_info["lower_bound"] = res.lower_bound
    assert res.antennas_used >= res.lower_bound


@pytest.mark.parametrize("rho_frac", [0.05, 0.15, 0.4])
def test_e11_beamwidth_tradeoff(benchmark, rho_frac):
    """Narrower beams need more antennas: the planning curve."""
    inst = gen.uniform_angles(
        n=80, k=1, rho=rho_frac * TWO_PI, capacity_fraction=0.2, seed=2
    )
    spec = inst.antennas[0]
    res = benchmark(lambda: greedy_cover(inst.thetas, inst.demands, spec, GREEDY))
    benchmark.extra_info["antennas_used"] = res.antennas_used
    assert res.antennas_used >= 1
