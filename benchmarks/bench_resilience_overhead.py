"""Resilience overhead — the cost of cooperative budget checkpoints.

The resilience contract (docs/RESILIENCE.md) promises that the budget
checkpoints threaded through the solver hot loops are amortized to well
under 5% of solve time, both when no budget is active (the module-level
helpers short-circuit on a thread-local ``None``) and when a generous
budget is ambient (clock reads happen once per ``check_stride`` ticks).

Run both benchmarks and compare means::

    PYTHONPATH=src python -m pytest benchmarks/bench_resilience_overhead.py \
        --benchmark-only --benchmark-group-by=param:n

Pass/fail is intentionally loose (benchmarks are for measurement); the
hard assertion is only that running under a generous budget does not
change solver results.
"""

import pytest

from repro.knapsack import get_solver
from repro.model import generators as gen
from repro.packing.multi import solve_greedy_multi
from repro.resilience import Budget, current_budget

SIZES = [100, 400]
GREEDY = get_solver("greedy")


def _instance(n):
    return gen.clustered_angles(n=n, k=3, seed=11)


@pytest.mark.parametrize("n", SIZES)
def test_resilience_overhead_no_budget(benchmark, n):
    """Baseline: no ambient budget, checkpoints are thread-local reads."""
    inst = _instance(n)
    assert current_budget() is None
    value = benchmark(lambda: solve_greedy_multi(inst, GREEDY).value(inst))
    assert value > 0


@pytest.mark.parametrize("n", SIZES)
def test_resilience_overhead_generous_budget(benchmark, n):
    """Ambient budget far from expiry: the amortized-clock worst case."""
    inst = _instance(n)

    def solve():
        with Budget(wall_s=3600.0).activate():
            return solve_greedy_multi(inst, GREEDY).value(inst)

    value = benchmark(solve)
    assert value > 0


@pytest.mark.parametrize("n", SIZES)
def test_budget_does_not_change_results(n):
    inst = _instance(n)
    base = solve_greedy_multi(inst, GREEDY).value(inst)
    with Budget(wall_s=3600.0, max_nodes=10**12).activate():
        bounded = solve_greedy_multi(inst, GREEDY).value(inst)
    assert bounded == base
