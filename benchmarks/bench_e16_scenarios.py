"""E16 — realistic scenario pack: constrained packing with certificates.

The ``scenario`` family (``docs/SCENARIOS.md``) drops line-of-sight
blockage segments and a per-customer station cap onto the metro layout;
this experiment pins down what the constraint pipeline *guarantees*:

* **monotonicity, certified by exact optima** — constraints only remove
  assignment options, so on instances small enough for the exact sector
  branch & bound, OPT(constrained) <= OPT(unconstrained) is asserted on
  true optima, not heuristics — and the blockage is verified to actually
  bind (masked pairs exist) so the claim is not vacuous;
* **heuristic certification transfers** — greedy and independent stay
  within the exact optimum on constrained instances, and every solution
  passes the constraint-aware feasibility check;
* **partition certificate survives constraints** — the merge bound of
  the partition-solve-merge engine (``docs/SCALE.md``) is computed from
  *effective* eligibility, so ``V_mono <= V_part + merge_bound`` still
  holds on scenario instances and the partitioned value stays under the
  certified ``partition_upper_bound``.
"""

import numpy as np
import pytest

from repro.engine import SolveRequest, clear_caches
from repro.engine import solve as engine_solve
from repro.model import generators as gen
from repro.model.instance import SectorInstance


def _solve(instance, algorithm, partition="never", eps=0.1, backend="python"):
    # eps=0.1 routes the per-antenna oracle to the FPTAS: the scenario
    # family draws continuous demands, on which exact knapsack
    # branch & bound can blow up.
    clear_caches()
    return engine_solve(SolveRequest(
        instance=instance, family="sector", algorithm=algorithm, eps=eps,
        partition=partition, backend=backend, use_cache=False,
    ))


def _unconstrained(instance):
    """The same geometry with the constraint pack stripped."""
    return SectorInstance(
        positions=instance.positions, demands=instance.demands,
        profits=instance.profits, stations=instance.stations,
    )


def _tiny_scenarios():
    """Small enough for the exact sector solver, blockage still binding."""
    out = []
    for seed in range(3):
        inst = gen.scenario_metro_blockage(
            n=28, towns=2, stations_per_town=1, k_per_station=2,
            segments_per_town=3, seed=seed,
        )
        masks = inst.compile().constraint_masks()
        if masks is not None and any(not m.all() for m in masks):
            out.append(inst)
    return out


def test_e16_constraints_bind_on_tiny_instances():
    """The certified claims below must not be vacuously true."""
    assert len(_tiny_scenarios()) >= 2


def test_e16_monotonicity_certified_by_exact_optima():
    """OPT(constrained) <= OPT(unconstrained) on true optima."""
    for inst in _tiny_scenarios():
        constrained = _solve(inst, "exact").value
        unconstrained = _solve(_unconstrained(inst), "exact").value
        assert constrained <= unconstrained + 1e-9


def test_e16_heuristics_certified_under_constraints():
    """Heuristics stay under exact OPT; solutions pass the mask check."""
    for inst in _tiny_scenarios():
        opt = _solve(inst, "exact")
        opt.solution.verify(inst)
        for algorithm in ("greedy", "independent"):
            report = _solve(inst, algorithm)
            report.solution.verify(inst)
            assert report.value <= opt.value + 1e-9


def test_e16_partition_certificate_survives_constraints():
    """V_mono <= V_part + merge_bound on scenario instances."""
    for seed in range(2):
        inst = gen.scenario_metro_blockage(n=400, towns=4, seed=seed)
        mono = _solve(inst, "greedy", partition="never")
        part = _solve(inst, "greedy", partition="force")
        part.solution.verify(inst)
        assert part.extra["partitions"] >= 2
        assert mono.value <= part.value + part.extra["merge_bound"] + 1e-9
        assert part.value <= part.extra["partition_upper_bound"] + 1e-9


def test_e16_backends_agree_on_scenarios():
    """Scalar and vectorized backends return the identical value."""
    inst = gen.scenario_metro_blockage(n=300, towns=3, seed=1)
    for algorithm in ("greedy", "independent"):
        py = _solve(inst, algorithm, backend="python").value
        np_ = _solve(inst, algorithm, backend="numpy").value
        assert py == np_


@pytest.mark.parametrize("n", [400, 1600])
def test_e16_scenario_solve_runtime(benchmark, n):
    inst = gen.scenario_metro_blockage(n=n, towns=4, seed=0)

    def run():
        return _solve(inst, "greedy", backend="numpy").value

    value = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["value"] = float(value)
    assert value > 0.0
    masks = inst.compile().constraint_masks()
    assert masks is not None
    masked = int(sum(int((~np.asarray(m)).sum()) for m in masks))
    benchmark.extra_info["masked_pairs"] = masked
    assert masked > 0
