"""E13 — plan robustness under forecast error.

A plan's orientations are frozen on a forecast; realizations add demand
noise (lognormal sigma) or angular jitter.  Expected series: retention
(frozen plan value / re-planned value) starts at 1.0, degrades slowly
under demand noise (capacity re-shuffles inside unchanged beams) and much
faster under *angular* noise (customers walk out of the beams) — the
reason orientation is the hard part of the problem.
"""

import numpy as np
import pytest

from repro.analysis.robustness import robustness_curve
from repro.knapsack import get_solver
from repro.model import generators as gen
from repro.packing.multi import solve_greedy_multi

GREEDY = get_solver("greedy")

NOISE = [0.0, 0.1, 0.3, 0.6]


def planner(inst):
    return solve_greedy_multi(inst, GREEDY).orientations


def _curve(angle_noise):
    forecast = gen.clustered_angles(n=60, k=3, clusters=3, spread=0.15, seed=13)
    return robustness_curve(
        forecast, planner, GREEDY,
        noise_levels=NOISE, trials=3, angle_noise=angle_noise, seed=13,
    )


def test_e13_zero_noise_is_lossless():
    pts = _curve(angle_noise=False)
    assert pts[0].retention == pytest.approx(1.0, abs=1e-9)


def test_e13_retention_degrades_gently_under_demand_noise():
    pts = _curve(angle_noise=False)
    rets = [p.retention for p in pts]
    assert min(rets) >= 0.8  # demand noise is survivable
    # weakly decreasing trend (tolerate sampling noise)
    assert rets[-1] <= rets[0] + 0.02


def test_e13_angle_noise_hurts_more():
    demand_pts = _curve(angle_noise=False)
    angle_pts = _curve(angle_noise=True)
    # at the largest noise level, angular jitter retains less (or equal)
    assert angle_pts[-1].retention <= demand_pts[-1].retention + 0.05


@pytest.mark.parametrize("mode", ["demand", "angle"])
def test_e13_curve_runtime(benchmark, mode):
    v = benchmark.pedantic(
        lambda: _curve(angle_noise=(mode == "angle"))[-1].retention,
        rounds=2,
        iterations=1,
    )
    assert 0.0 <= v <= 1.1
