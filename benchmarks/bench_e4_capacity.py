"""E4 — solution quality vs capacity tightness.

Sweeps per-antenna capacity as a fraction of total demand.  Expected
shape: served fraction grows ~linearly while capacity binds (every unit of
capacity converts to served demand), then saturates once geometry (beam
width) becomes the binding constraint.  The knapsack oracle quality
matters most in the tight regime — greedy-vs-exact oracle gap shrinks as
capacity loosens.
"""

import numpy as np
import pytest

from repro.knapsack import get_solver
from repro.model import generators as gen
from repro.packing.multi import solve_greedy_multi

FRACTIONS = [0.05, 0.1, 0.2, 0.3, 0.5]
GREEDY = get_solver("greedy")
# Near-exact oracle for medium n (the true exact B&B is exponential
# on float subset-sum plateaus at this scale).
NEAR_EXACT = get_solver("fptas", eps=0.05)


def _instance(cf, seed=33):
    return gen.uniform_angles(n=70, k=3, capacity_fraction=cf, seed=seed)


def test_e4_served_fraction_monotone():
    served = []
    for cf in FRACTIONS:
        inst = _instance(cf)
        v = solve_greedy_multi(inst, NEAR_EXACT, adaptive=True).value(inst)
        served.append(v / inst.total_demand)
    # monotone up to small greedy noise
    for a, b in zip(served, served[1:]):
        assert b >= a - 0.02
    # tight regime nearly saturates its capacity: served ~ k * cf
    assert served[0] >= 0.85 * 3 * FRACTIONS[0]


def test_e4_oracle_gap_shrinks_when_loose():
    def gap(cf):
        inst = _instance(cf)
        ge = solve_greedy_multi(inst, NEAR_EXACT, adaptive=True).value(inst)
        gg = solve_greedy_multi(inst, GREEDY, adaptive=True).value(inst)
        return (ge - gg) / ge if ge > 0 else 0.0

    tight, loose = gap(FRACTIONS[0]), gap(FRACTIONS[-1])
    assert loose <= tight + 0.02


@pytest.mark.parametrize("cf", FRACTIONS)
def test_e4_greedy_at_tightness(benchmark, cf):
    inst = _instance(cf)
    value = benchmark(lambda: solve_greedy_multi(inst, GREEDY).value(inst))
    assert value > 0


@pytest.mark.parametrize("cf", [0.05, 0.5])
def test_e4_near_exact_oracle_at_tightness(benchmark, cf):
    inst = _instance(cf)
    value = benchmark.pedantic(
        lambda: solve_greedy_multi(inst, NEAR_EXACT).value(inst), rounds=3, iterations=1
    )
    assert value > 0
