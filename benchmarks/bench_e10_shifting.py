"""E10 — shifting parameter t vs loss against the exact disjoint DP.

The shifting scheme guarantees ``value >= (1 - rho/(2*pi) - 1/t) * OPT_no``
per cut family.  Expected series: measured loss is far below the bound and
decays as t grows, while runtime grows only linearly in t — the scheme's
selling point over the O(|S|^2 k) DP at large n.
"""

import pytest

from repro.geometry.angles import TWO_PI
from repro.knapsack import get_solver
from repro.model import generators as gen
from repro.packing.multi import solve_non_overlapping_dp
from repro.packing.shifting import solve_shifting

TS = [2, 4, 8, 16, 32]
GREEDY = get_solver("greedy")
EXACT = get_solver("exact")


def _instance(seed=13, n=40):
    return gen.clustered_angles(n=n, k=3, capacity_fraction=0.15, seed=seed)


def test_e10_loss_bound_holds_everywhere():
    for seed in range(3):
        inst = _instance(seed)
        rho = inst.antennas[0].rho
        ref = solve_non_overlapping_dp(inst, EXACT).value(inst)
        for t in TS:
            v = solve_shifting(inst, EXACT, t=t, boundary_fill=False).value(inst)
            ref_raw = solve_non_overlapping_dp(
                inst, EXACT, boundary_fill=False
            ).value(inst)
            assert v >= (1 - rho / TWO_PI - 1 / t) * ref_raw - 1e-9
            assert v <= ref_raw + 1e-9


def test_e10_loss_decays_with_t():
    inst = _instance(0)
    ref = solve_non_overlapping_dp(inst, EXACT).value(inst)
    losses = [
        (ref - solve_shifting(inst, EXACT, t=t).value(inst)) / ref for t in TS
    ]
    # nested cut families (2 | 4 | 8 | 16 | 32): loss is non-increasing
    for a, b in zip(losses, losses[1:]):
        assert b <= a + 1e-9
    assert losses[-1] <= 0.1


@pytest.mark.parametrize("t", TS)
def test_e10_shifting_runtime(benchmark, t):
    inst = _instance(0, n=150)
    value = benchmark(lambda: solve_shifting(inst, GREEDY, t=t).value(inst))
    assert value > 0


def test_e10_dp_reference_runtime(benchmark):
    inst = _instance(0, n=150)
    value = benchmark.pedantic(
        lambda: solve_non_overlapping_dp(inst, GREEDY).value(inst),
        rounds=3,
        iterations=1,
    )
    assert value > 0
