"""E15 — incremental delta-resolve vs offline re-solve (extension).

A seeded stream of add/remove/update events hits a live instance; two
operators answer each event:

* **delta-resolve** — one :class:`repro.online.delta.DeltaCompiledInstance`
  absorbs the event by patching its compiled views in place, then the
  engine solves the current generation;
* **offline re-solve** — the from-scratch baseline: rebuild the instance
  arrays, recompile, solve.

Because the delta contract is bit-identity (``docs/ONLINE.md``), the
interesting claims are about *cost*, not value: the competitive ratio of
delta-resolve is exactly 1.000 at every event (asserted, not approximated
— this is what separates the delta path from the paper's online
*admission* setting, where irrevocable decisions force ratios below 1),
and the delta operator answers events several times faster.  A churn
experiment ties back to E12: admission policies re-run after every event
stay above the proven (1-δ)/(2-δ) floor even as the customer population
drifts under them.
"""

import time

import numpy as np
import pytest

from repro.engine import SolveRequest, clear_caches
from repro.engine import solve as engine_solve
from repro.geometry.angles import TWO_PI
from repro.model import generators as gen
from repro.model.instance import AngleInstance
from repro.online import work_conserving_bound
from repro.online.delta import AddCustomer, DeltaCompiledInstance, RemoveCustomer, UpdateDemand


def _event_stream(rng, n_live, events):
    """The E15 seeded mix: 1/4 adds, 1/4 removes, 1/2 updates."""
    stream = []
    for i in range(events):
        if i % 4 == 0:
            stream.append(AddCustomer(demand=float(rng.uniform(0.5, 2.0)),
                                      theta=float(rng.uniform(0.0, TWO_PI))))
            n_live += 1
        elif i % 4 == 1:
            stream.append(RemoveCustomer(index=int(rng.integers(0, n_live))))
            n_live -= 1
        else:
            value = float(rng.uniform(0.5, 2.0))
            stream.append(UpdateDemand(index=int(rng.integers(0, n_live)),
                                       demand=value, profit=value))
    return stream


def _rebuild(instance, event):
    """Offline baseline step: patch raw arrays, construct from scratch."""
    thetas, demands = instance.thetas, instance.demands
    if isinstance(event, AddCustomer):
        thetas = np.append(thetas, event.theta)
        demands = np.append(demands, event.demand)
    elif isinstance(event, RemoveCustomer):
        thetas = np.delete(thetas, event.index)
        demands = np.delete(demands, event.index)
    else:
        demands = demands.copy()
        demands[event.index] = event.demand
    return AngleInstance(thetas=thetas, demands=demands,
                         antennas=instance.antennas)


def _solve_value(instance, algorithm="greedy"):
    # eps=0.5 routes the knapsack oracle to the FPTAS, as the bench suite
    # does: branch-and-bound can explode on continuous-weight demands.
    report = engine_solve(SolveRequest(instance=instance, family="angle",
                                       algorithm=algorithm, eps=0.5,
                                       use_cache=False))
    return report.value


def test_e15_competitive_ratio_is_exactly_one():
    """Delta-resolve value == offline re-solve value at every event."""
    for seed in range(3):
        rng = np.random.default_rng(seed)
        base = gen.uniform_angles(n=120, k=3, seed=seed)
        delta = DeltaCompiledInstance(base)
        offline = base
        for event in _event_stream(rng, base.n, events=12):
            delta.apply(event)
            delta.publish()
            offline = _rebuild(offline, event)
            delta_value = _solve_value(delta.instance)
            offline_value = _solve_value(offline)
            # Exact equality, not approx: the delta instance is
            # bit-identical to the rebuilt one, so the solver runs the
            # same arithmetic on both.
            assert delta_value == offline_value


def test_e15_delta_answers_events_faster():
    """At n=20k the delta operator beats rebuild+recompile per event."""
    clear_caches()
    base = gen.uniform_angles(n=20_000, k=3, seed=0)
    base.compile()
    rng = np.random.default_rng(15)
    stream = _event_stream(rng, base.n, events=30)

    def delta_pass():
        d = DeltaCompiledInstance(base)
        t0 = time.perf_counter()
        for event in stream:
            d.apply(event)
        return time.perf_counter() - t0

    def offline_pass():
        instance = base
        t0 = time.perf_counter()
        for event in stream:
            instance = _rebuild(instance, event)
            instance.compile()
        return time.perf_counter() - t0

    delta_s = min(delta_pass() for _ in range(3))
    offline_s = min(offline_pass() for _ in range(3))
    # The bench gate (obs/bench.py) demands 5x at n >= 1e4; here we only
    # pin the direction so the experiment stays robust on loaded CI boxes.
    assert delta_s < offline_s


def test_e15_admission_stays_above_floor_under_churn():
    """E12's floor survives population churn: re-run admission per epoch."""
    rng = np.random.default_rng(12)
    base = gen.uniform_angles(n=60, k=3, seed=12)
    delta = DeltaCompiledInstance(base)
    for epoch in range(4):
        for event in _event_stream(rng, delta.n, events=4):
            delta.apply(event)
        instance = delta.instance
        floor = work_conserving_bound(instance.antennas, instance.demands)
        report = engine_solve(SolveRequest(instance=instance, family="online",
                                           algorithm="first_fit", seed=epoch))
        assert report.extra["competitive"] >= floor - 1e-9


@pytest.mark.parametrize("events", [16, 64])
def test_e15_delta_resolve_runtime(benchmark, events):
    # n=600 keeps one FPTAS re-solve around 2s; the oracle's superlinear
    # cost dominates far earlier than the delta apply does.
    clear_caches()
    base = gen.uniform_angles(n=600, k=3, seed=3)
    rng = np.random.default_rng(events)
    stream = _event_stream(rng, base.n, events=events)

    def run():
        d = DeltaCompiledInstance(base)
        for event in stream:
            d.apply(event)
        d.publish()
        return _solve_value(d.instance)

    value = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["final_value"] = float(value)
    assert value > 0.0
