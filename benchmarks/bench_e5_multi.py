"""E5 — multi-antenna algorithm comparison.

Head-to-head of every multi-antenna solver on the two regimes that
separate them:

* **clustered** (separated demand pockets): the non-overlapping DP is
  near-optimal — disjoint arcs can each swallow a pocket;
* **hotspot** (one pocket exceeding a single antenna's capacity):
  overlap helps, so greedy/local-search/LP-rounding beat the DP.

Small instances are certified against the exact optimum; the benchmark
rows carry the measured ratios in ``extra_info``.
"""

import pytest

from repro.knapsack import get_solver
from repro.model import generators as gen
from repro.packing.exact import solve_exact_angle
from repro.packing.local_search import improve_solution
from repro.packing.lp import solve_lp_rounding
from repro.packing.multi import solve_greedy_multi, solve_non_overlapping_dp

EXACT = get_solver("exact")
GREEDY = get_solver("greedy")
# At medium n the exact oracle is a float subset-sum B&B with no pruning
# power (exponential plateau); the honest medium-scale oracle is the FPTAS.
FPTAS = get_solver("fptas", eps=0.05)


def _solvers(oracle):
    return {
        "greedy": lambda i: solve_greedy_multi(i, oracle).value(i),
        "adaptive": lambda i: solve_greedy_multi(i, oracle, adaptive=True).value(i),
        "greedy+ls": lambda i: improve_solution(
            i, solve_greedy_multi(i, oracle), oracle
        ).value(i),
        "dp-disjoint": lambda i: solve_non_overlapping_dp(i, oracle).value(i),
        "lp-round": lambda i: solve_lp_rounding(i, oracle, rounds=10).value(i),
    }


SOLVERS = _solvers(EXACT)
SOLVERS_MEDIUM = _solvers(FPTAS)


def _small_hotspot(seed):
    return gen.hotspot_angles(n=10, k=2, seed=seed)


def _small_clustered(seed):
    return gen.clustered_angles(n=9, k=2, clusters=2, spread=0.1, seed=seed)


def test_e5_overlap_beats_disjoint_on_hotspot():
    wins = 0
    for seed in range(5):
        inst = _small_hotspot(seed)
        free = solve_exact_angle(inst).value(inst)
        disjoint = solve_exact_angle(inst, require_disjoint=True).value(inst)
        assert disjoint <= free + 1e-9
        if disjoint < free - 1e-9:
            wins += 1
    # the hotspot family is designed so overlap strictly helps usually
    assert wins >= 3


def test_e5_all_solvers_within_guarantees():
    for seed in range(3):
        for make in (_small_hotspot, _small_clustered):
            inst = make(seed)
            opt = solve_exact_angle(inst).value(inst)
            for name, solve in SOLVERS.items():
                v = solve(inst)
                assert v <= opt + 1e-9, name
                if name in ("greedy", "adaptive", "greedy+ls"):
                    assert v >= 0.5 * opt - 1e-9, name


def test_e5_dp_near_optimal_on_separated_clusters():
    for seed in range(3):
        inst = _small_clustered(seed)
        opt = solve_exact_angle(inst).value(inst)
        dp = solve_non_overlapping_dp(inst, EXACT).value(inst)
        assert dp >= 0.9 * opt - 1e-9


@pytest.mark.parametrize("name", sorted(SOLVERS_MEDIUM))
def test_e5_solver_on_medium_hotspot(benchmark, name):
    inst = gen.hotspot_angles(n=60, k=3, seed=9)
    value = benchmark.pedantic(
        lambda: SOLVERS_MEDIUM[name](inst), rounds=3, iterations=1
    )
    benchmark.extra_info["value"] = value
    assert value > 0


@pytest.mark.parametrize("name", sorted(SOLVERS_MEDIUM))
def test_e5_solver_on_medium_clustered(benchmark, name):
    inst = gen.clustered_angles(n=60, k=3, seed=9)
    value = benchmark.pedantic(
        lambda: SOLVERS_MEDIUM[name](inst), rounds=3, iterations=1
    )
    benchmark.extra_info["value"] = value
    assert value > 0
