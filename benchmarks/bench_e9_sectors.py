"""E9 — 2-D sector pipeline end-to-end.

Compares the global sector greedy against the nearest-station baseline on
single- and multi-station layouts, certifying both against the splittable
upper bound at the greedy's orientations.  Expected shape: on a single
station the two coincide (nothing to arbitrate); on overlapping grids the
global greedy wins because it lets a second station pick up customers the
first one's capacity rejected.
"""

import numpy as np
import pytest

from repro.knapsack import get_solver
from repro.model import generators as gen
from repro.packing.sectors import (
    solve_sector_greedy,
    solve_sector_independent,
    solve_sector_splittable,
)

EXACT = get_solver("exact")
GREEDY = get_solver("greedy")


def test_e9_greedy_beats_or_ties_baseline_on_grid():
    wins, gs, bs = 0, [], []
    for seed in range(4):
        inst = gen.grid_city(n=100, grid=2, capacity_fraction=0.05, seed=seed)
        g = solve_sector_greedy(inst, EXACT).value(inst)
        b = solve_sector_independent(inst, EXACT).value(inst)
        gs.append(g)
        bs.append(b)
        if g >= b - 1e-9:
            wins += 1
    # Global arbitration wins or ties on most seeds and never loses more
    # than a sliver on aggregate (both are 1/2-approximations; the gap is
    # the cross-station effect, which this family keeps small).
    assert wins >= 2
    assert float(np.mean(gs)) >= float(np.mean(bs)) * 0.99


def test_e9_single_station_parity():
    inst = gen.uniform_disk(n=60, k=3, seed=2)
    g = solve_sector_greedy(inst, EXACT).value(inst)
    b = solve_sector_independent(inst, EXACT).value(inst)
    assert abs(g - b) <= 0.15 * max(g, b)


def test_e9_certified_ratio():
    """Greedy value vs its own splittable bound: certified >= 1/2."""
    for seed in range(3):
        inst = gen.clustered_towns(n=80, seed=seed)
        sol = solve_sector_greedy(inst, EXACT)
        _, ub = solve_sector_splittable(inst, sol.orientations)
        if ub > 0:
            assert sol.value(inst) >= 0.5 * sol.value(inst)  # tautology guard
            assert sol.value(inst) <= ub + 1e-6
            # measured: greedy typically lands way above 1/2 of the bound
            assert sol.value(inst) >= 0.5 * ub - 1e-6


def test_e9_unreachable_customers_never_served():
    inst = gen.uniform_disk(n=120, radius=5.0, occupancy=1.6, seed=4)
    sol = solve_sector_greedy(inst, GREEDY)
    sol.verify(inst)
    reach = inst.reachable_mask(0)
    assert (sol.assignment[~reach] == -1).all()


@pytest.mark.parametrize("family,kwargs", [
    ("disk", {"n": 120}),
    ("towns", {"n": 120}),
    ("grid", {"n": 120, "grid": 2}),
])
def test_e9_greedy_runtime(benchmark, family, kwargs):
    inst = gen.SECTOR_FAMILIES[family](seed=1, **kwargs)
    value = benchmark.pedantic(
        lambda: solve_sector_greedy(inst, GREEDY).value(inst),
        rounds=3,
        iterations=1,
    )
    assert value > 0


@pytest.mark.parametrize("family,kwargs", [
    ("towns", {"n": 120}),
    ("grid", {"n": 120, "grid": 2}),
])
def test_e9_baseline_runtime(benchmark, family, kwargs):
    inst = gen.SECTOR_FAMILIES[family](seed=1, **kwargs)
    value = benchmark(
        lambda: solve_sector_independent(inst, GREEDY).value(inst)
    )
    assert value >= 0


def test_e9_splittable_runtime(benchmark):
    inst = gen.grid_city(n=120, grid=2, seed=1)
    ori = np.zeros(inst.total_antennas)
    _, value = benchmark(lambda: solve_sector_splittable(inst, ori))
    assert value >= 0


def test_e9_greedy_certified_against_true_optimum():
    """Tiny multi-station instances where the true 2-D optimum is computable:
    the greedy clears its 1/2 guarantee against OPT itself, not merely the
    splittable bound."""
    from repro.model.antenna import AntennaSpec
    from repro.model.instance import SectorInstance, Station
    from repro.packing.sectors import solve_exact_sector

    for seed in range(4):
        rng = np.random.default_rng(seed)
        positions = rng.uniform(-6, 6, size=(8, 2))
        demands = rng.uniform(0.3, 1.2, 8)
        st1 = Station((-3.0, 0.0), (AntennaSpec(rho=2.0, capacity=2.0, radius=5.0),))
        st2 = Station((3.0, 0.0), (AntennaSpec(rho=2.0, capacity=2.0, radius=5.0),))
        inst = SectorInstance(positions=positions, demands=demands,
                              stations=(st1, st2))
        opt = solve_exact_sector(inst).value(inst)
        g = solve_sector_greedy(inst, EXACT).value(inst)
        assert 0.5 * opt - 1e-9 <= g <= opt + 1e-9
