"""E3 — solution quality vs angular width rho.

Sweeps the antenna beam width on a clustered family with capacity held
fixed.  Expected series shape: served demand rises with rho until
capacity (not geometry) becomes the binding constraint, after which the
curve flattens at ``min(total demand, sum of capacities)``; the
non-overlapping DP tracks the general greedy closely at small rho (arcs
rarely want to overlap) and falls behind at large rho (disjointness bites:
``k * rho`` approaches the full circle).
"""

import math

import numpy as np
import pytest

from repro.knapsack import get_solver
from repro.model import generators as gen
from repro.packing.bounds import capacity_upper_bound
from repro.packing.multi import solve_greedy_multi, solve_non_overlapping_dp

RHOS = [math.pi / 6, math.pi / 3, math.pi / 2, 2 * math.pi / 3, math.pi]
GREEDY = get_solver("greedy")
# Near-exact oracle for medium n (the true exact B&B is exponential
# on float subset-sum plateaus at this scale).
NEAR_EXACT = get_solver("fptas", eps=0.05)


def _instance(rho, seed=21):
    return gen.clustered_angles(
        n=80, k=3, rho=rho, clusters=5, capacity_fraction=0.2, seed=seed
    )


def _series(solver):
    return [solver(_instance(rho)) for rho in RHOS]


def test_e3_series_shape():
    """Greedy value is (weakly) increasing in rho and capped by capacity."""
    values = _series(lambda i: solve_greedy_multi(i, NEAR_EXACT, adaptive=True).value(i))
    caps = [capacity_upper_bound(_instance(rho)) for rho in RHOS]
    # wider beams reach at least as much demand (tolerate greedy noise)
    assert values[-1] >= values[0] * 0.999
    for v, c in zip(values, caps):
        assert v <= c + 1e-9
    # at the widest beam the capacity bound is nearly saturated
    assert values[-1] >= 0.85 * caps[-1]


def test_e3_disjoint_penalty_grows_with_rho():
    """DP/greedy ratio at the widest rho <= ratio at the narrowest + slack."""
    g = _series(lambda i: solve_greedy_multi(i, NEAR_EXACT, adaptive=True).value(i))
    d = _series(lambda i: solve_non_overlapping_dp(i, GREEDY).value(i))
    narrow = d[0] / g[0]
    wide = d[-1] / g[-1]
    assert wide <= narrow + 0.05


@pytest.mark.parametrize("rho", RHOS)
def test_e3_greedy_at_rho(benchmark, rho):
    inst = _instance(rho)
    value = benchmark(lambda: solve_greedy_multi(inst, GREEDY).value(inst))
    assert value > 0


@pytest.mark.parametrize("rho", RHOS)
def test_e3_dp_at_rho(benchmark, rho):
    inst = _instance(rho)
    value = benchmark.pedantic(
        lambda: solve_non_overlapping_dp(inst, GREEDY).value(inst),
        rounds=3,
        iterations=1,
    )
    assert value >= 0
