"""E6 — splittable vs unsplittable gap.

For fixed orientations the splittable optimum (max-flow) upper-bounds the
unsplittable one (exact B&B).  Expected shape: the relative gap shrinks
as individual demands shrink relative to capacity (classic LP-rounding
intuition: integrality gaps are driven by items comparable to the bin),
and the splittable solve is orders of magnitude faster.
"""

import numpy as np
import pytest

from repro.geometry.angles import TWO_PI
from repro.model.antenna import AntennaSpec
from repro.model.instance import AngleInstance
from repro.packing.exact import solve_exact_fixed_orientations
from repro.packing.flow import solve_splittable, splittable_value


def _instance(n, demand_scale, seed):
    rng = np.random.default_rng(seed)
    demands = rng.uniform(0.5, 1.5, n) * demand_scale
    cap = 3.0
    return AngleInstance(
        thetas=rng.uniform(0, TWO_PI, n),
        demands=demands,
        antennas=(
            AntennaSpec(rho=2.0, capacity=cap),
            AntennaSpec(rho=2.0, capacity=cap),
        ),
    )


def _gap(n, scale, seed):
    inst = _instance(n, scale, seed)
    ori = np.array([0.0, 2.5])
    split = splittable_value(inst, ori)
    integral = solve_exact_fixed_orientations(inst, ori).value(inst)
    assert split >= integral - 1e-9
    return 0.0 if split <= 0 else (split - integral) / split


def test_e6_gap_shrinks_with_demand_granularity():
    coarse = np.mean([_gap(12, 1.0, s) for s in range(4)])
    fine = np.mean([_gap(12, 0.25, s) for s in range(4)])
    assert fine <= coarse + 1e-9


def test_e6_fine_demands_gap_small():
    gaps = [_gap(14, 0.15, s) for s in range(4)]
    assert max(gaps) <= 0.1


@pytest.mark.parametrize("scale", [1.0, 0.25])
def test_e6_splittable_speed(benchmark, scale):
    inst = _instance(60, scale, 1)
    ori = np.array([0.0, 2.5])
    value = benchmark(lambda: splittable_value(inst, ori))
    assert value > 0


@pytest.mark.parametrize("scale", [1.0, 0.25])
def test_e6_integral_speed(benchmark, scale):
    inst = _instance(12, scale, 1)
    ori = np.array([0.0, 2.5])
    value = benchmark.pedantic(
        lambda: solve_exact_fixed_orientations(inst, ori).value(inst),
        rounds=3,
        iterations=1,
    )
    assert value >= 0


def test_e6_fractional_solution_structure():
    """Each antenna's load saturates or every covered customer is served."""
    inst = _instance(30, 1.0, 3)
    ori = np.array([0.0, 2.5])
    sol = solve_splittable(inst, ori)
    sol.verify(inst)
    loads = sol.loads(inst)
    caps = inst.capacities
    served = sol.fractions.sum(axis=1)
    from repro.packing.flow import covered_matrix

    cover = covered_matrix(inst, ori)
    for j in range(inst.k):
        saturated = loads[j] >= caps[j] * (1 - 1e-6)
        all_served = np.all(served[cover[:, j]] >= 1 - 1e-6)
        assert saturated or all_served
