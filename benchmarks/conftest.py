"""Shared fixtures for the experiment benchmarks.

Expensive artefacts (instances, exact optima) are computed once per session
and shared across benchmark tests; the ``benchmark`` fixture then times
*only* the solver under measurement.
"""

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.knapsack import get_solver
from repro.model import generators as gen
from repro.packing.exact import solve_exact_angle

EXACT_ORACLE = get_solver("exact")
GREEDY_ORACLE = get_solver("greedy")


@pytest.fixture(scope="session")
def oracles():
    return {
        "exact": EXACT_ORACLE,
        "greedy": GREEDY_ORACLE,
        "fptas": get_solver("fptas", eps=0.1),
    }


@pytest.fixture(scope="session")
def small_instances():
    """Per family: small instances whose exact optimum is computable."""
    return {
        "uniform": [gen.uniform_angles(n=9, k=2, seed=s) for s in range(3)],
        "clustered": [gen.clustered_angles(n=9, k=2, seed=s) for s in range(3)],
        "hotspot": [gen.hotspot_angles(n=9, k=2, seed=s) for s in range(3)],
        "adversarial": [
            gen.adversarial_greedy_angles(blocks=3, seed=s) for s in range(3)
        ],
    }


@pytest.fixture(scope="session")
def exact_optima(small_instances):
    """family -> list of exact OPT values, aligned with small_instances."""
    return {
        family: [solve_exact_angle(inst).value(inst) for inst in insts]
        for family, insts in small_instances.items()
    }


@pytest.fixture(scope="session")
def medium_instance():
    return gen.clustered_angles(n=120, k=3, seed=7)


@pytest.fixture(scope="session")
def medium_sector_instance():
    return gen.grid_city(n=150, grid=2, seed=7)
