"""Core shared-precomputation layer.

:mod:`repro.core.compiled` holds the struct-of-arrays "compiled" view of a
problem instance — the common precomputation prefix (sorts, prefix sums,
candidate grids, per-station polar conversions) that every solver family
needs.  See ``docs/ARCHITECTURE.md`` for where this layer sits in the
stack.
"""

from repro.core.compiled import (
    CompiledAngleInstance,
    CompiledInstance,
    CompiledItems,
    CompiledSectorInstance,
    CompiledStation,
    compile_instance,
    compile_items,
)

__all__ = [
    "CompiledInstance",
    "CompiledAngleInstance",
    "CompiledSectorInstance",
    "CompiledStation",
    "CompiledItems",
    "compile_instance",
    "compile_items",
]
