"""Core shared-precomputation layer.

:mod:`repro.core.compiled` holds the struct-of-arrays "compiled" view of a
problem instance — the common precomputation prefix (sorts, prefix sums,
candidate grids, per-station polar conversions) that every solver family
needs.  :mod:`repro.core.backend` holds the vectorized numpy kernels that
consume those views when a solver runs with ``backend="numpy"`` (contract:
``docs/BACKENDS.md``).  See ``docs/ARCHITECTURE.md`` for where this layer
sits in the stack.
"""

from repro.core.backend import (
    AUTO_NUMPY_MIN_N,
    BACKENDS,
    batched_station_polar,
    greedy_prefix_mask,
    nearest_reaching_station,
    normalize_backend,
    rotation_scan,
)
from repro.core.compiled import (
    CompiledAngleInstance,
    CompiledInstance,
    CompiledItems,
    CompiledSectorInstance,
    CompiledStation,
    compile_instance,
    compile_items,
)

__all__ = [
    "CompiledInstance",
    "CompiledAngleInstance",
    "CompiledSectorInstance",
    "CompiledStation",
    "CompiledItems",
    "compile_instance",
    "compile_items",
    "BACKENDS",
    "AUTO_NUMPY_MIN_N",
    "normalize_backend",
    "rotation_scan",
    "greedy_prefix_mask",
    "batched_station_polar",
    "nearest_reaching_station",
]
