"""Compiled instances: the precomputation every solver family shares.

Every solver in the packing layer starts from the same derived data — the
stable angular sort of the customer angles, doubled prefix sums of demands
and profits, the canonical candidate-angle grid of
:mod:`repro.packing.canonical`, and (for the 2-D problem) the per-station
polar conversion with per-antenna fitting-radius masks.  Before this layer
existed each solver re-derived all of it on every call (and
``packing/sectors.py`` grew a private ``polar_cache`` to paper over the
cost).

A *compiled instance* is a struct-of-arrays view holding exactly that
shared prefix, built once and memoized at three levels:

* per width / per subset inside the view itself (thread-safe memo dicts);
* per instance *object* via ``Instance.compile()`` (model layer);
* per instance *content fingerprint* via
  :func:`repro.engine.cache.shared_compiled` (engine layer), so batched
  ``solve_many`` calls and the service's micro-batcher compile each
  distinct instance exactly once — observable through the
  ``engine.compile.*`` metrics.

Everything a compiled view hands out is either read-only or freshly
derived, and every derived quantity is *bit-identical* to what the solvers
previously computed inline: sweeps are built through
:meth:`repro.geometry.sweep.CircularSweep.from_sorted` with the same stable
argsort, subset sweeps restrict the global stable order (which equals a
fresh stable sort of the subset), and prefix-sum reuse never changes float
summation order.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.geometry.sweep import CircularSweep
from repro.obs.metrics import get_registry

__all__ = [
    "CompiledInstance",
    "CompiledAngleInstance",
    "CompiledSectorInstance",
    "CompiledStation",
    "CompiledItems",
    "compile_instance",
    "compile_items",
]

_REG = get_registry()
# Wall time spent building compiled views (contract: docs/OBSERVABILITY.md).
_COMPILE_TIMER = _REG.timer("phase.compile")
# Eligibility timer predates the compiled layer (moved here from
# packing/sectors.py so the metric name survives the refactor).
_ELIG_TIMER = _REG.timer("phase.sector.eligibility")
# Wall time composing constraint masks (docs/SCENARIOS.md pipeline); the
# scenario_bench section gates this against phase.compile (<10%).
_CONSTRAINT_TIMER = _REG.timer("phase.sector.constraints")

#: Distinguishes "not composed yet" from the composed-to-``None`` result
#: of an unconstrained instance in the constraint-mask memo.
_UNSET = object()

#: Relative slack for fitting-radius masks; matches
#: :meth:`repro.model.instance.SectorInstance.reachable_mask`.
_RADIUS_SLACK = 1.0 + 1e-12


def _frozen(arr: np.ndarray) -> np.ndarray:
    """Mark an array read-only (compiled views are shared across threads)."""
    arr.flags.writeable = False
    return arr


def _doubled_prefix(sorted_values: np.ndarray) -> np.ndarray:
    """The ``(2n+1,)`` doubled cumulative sum used by ``window_sums``.

    Built with the exact operations of
    :meth:`repro.geometry.sweep.CircularSweep.window_sums` so that
    ``prefix[hi] - prefix[lo]`` reproduces its output bit-for-bit.
    """
    return _frozen(
        np.concatenate(
            [[0.0], np.cumsum(np.concatenate([sorted_values, sorted_values]))]
        )
    )


class _SortedAngles:
    """One stable angular sort plus the per-width sweeps derived from it.

    ``thetas`` must already be normalized to ``[0, 2*pi)`` — true for
    ``AngleInstance.thetas`` (normalized on construction) and for
    ``relative_polar`` outputs (normalized by ``cartesians_to_polar``), so
    the argsort here equals the one ``CircularSweep`` would compute.
    """

    __slots__ = ("thetas", "n", "order", "sorted_thetas", "rank_of_original",
                 "_sweeps", "_lock")

    def __init__(self, thetas: np.ndarray):
        self.thetas = thetas
        self.n = int(thetas.shape[0])
        self.order = _frozen(np.argsort(thetas, kind="stable"))
        self.sorted_thetas = _frozen(thetas[self.order])
        rank = np.empty(self.n, dtype=np.intp)
        rank[self.order] = np.arange(self.n)
        self.rank_of_original = _frozen(rank)
        self._sweeps: Dict[float, CircularSweep] = {}
        self._lock = threading.Lock()

    def sweep(self, width: float) -> CircularSweep:
        """The memoized sweep over *all* angles at this window width."""
        key = float(width)
        with self._lock:
            sweep = self._sweeps.get(key)
            if sweep is None:
                sweep = CircularSweep.from_sorted(
                    self.thetas, width, self.order,
                    self.sorted_thetas, self.rank_of_original,
                )
                self._sweeps[key] = sweep
            return sweep

    def subset_sweep(self, idx: np.ndarray, width: float) -> CircularSweep:
        """A sweep over ``thetas[idx]`` without re-sorting.

        ``idx`` must be strictly increasing original indices (the
        ``np.flatnonzero`` shape every caller produces).  Restricting the
        global stable order to the subset yields the same permutation as a
        fresh stable argsort of ``thetas[idx]`` — ties keep their original
        relative order in both — so the result is indistinguishable from
        ``CircularSweep(thetas[idx], width)``.  ``O(n)`` instead of
        ``O(m log m)`` plus re-normalization.
        """
        idx = np.asarray(idx, dtype=np.intp)
        if idx.size > 1 and np.any(np.diff(idx) <= 0):
            raise ValueError("subset indices must be strictly increasing")
        if idx.size == self.n:
            # Strictly increasing, in range, full length => identity.
            return self.sweep(width)
        mask = np.zeros(self.n, dtype=bool)
        mask[idx] = True
        sub_sorted = self.order[mask[self.order]]  # original ids, sorted order
        pos = np.empty(self.n, dtype=np.intp)
        pos[idx] = np.arange(idx.size)
        sub_order = pos[sub_sorted]  # local ids in sorted order
        rank = np.empty(idx.size, dtype=np.intp)
        rank[sub_order] = np.arange(idx.size)
        return CircularSweep.from_sorted(
            self.thetas[idx], width, sub_order,
            self.thetas[sub_sorted], rank,
        )


class CompiledInstance:
    """Base class for compiled struct-of-arrays instance views.

    Subclasses are cheap to hold and thread-safe to share: all arrays are
    read-only, and the internal memo dictionaries (per-width sweeps,
    per-station views, candidate grids) are guarded by locks so a service
    batch thread and worker threads can use one view concurrently.
    """

    #: ``"angle"`` or ``"sector"`` — mirrors the solver family split.
    kind: str = "?"


class CompiledAngleInstance(CompiledInstance):
    """Compiled view of an :class:`~repro.model.instance.AngleInstance`.

    Attributes
    ----------
    instance:
        The source instance (arrays are shared, not copied).
    order / sorted_thetas / rank_of_original:
        The stable angular sort — identical to what every
        :class:`~repro.geometry.sweep.CircularSweep` over the full customer
        set would recompute.
    demand_prefix / profit_prefix:
        Doubled prefix sums over the sorted order; valid for *every* window
        width because the sorted order does not depend on ``rho`` (feed to
        :meth:`~repro.geometry.sweep.CircularSweep.window_sums_from_prefix`).
    """

    kind = "angle"

    def __init__(self, instance) -> None:
        with _COMPILE_TIMER.time():
            self.instance = instance
            self.n = int(instance.n)
            self._angles = _SortedAngles(instance.thetas)
            self.order = self._angles.order
            self.sorted_thetas = self._angles.sorted_thetas
            self.rank_of_original = self._angles.rank_of_original
            self.demand_prefix = _doubled_prefix(instance.demands[self.order])
            self.profit_prefix = _doubled_prefix(instance.profits[self.order])
            self._grids: Dict[Optional[tuple], np.ndarray] = {}
            self._lock = threading.Lock()

    def sweep(self, width: float) -> CircularSweep:
        """Memoized full-instance sweep at window width ``width``."""
        return self._angles.sweep(width)

    def subset_sweep(self, idx: np.ndarray, width: float) -> CircularSweep:
        """Sweep over the customer subset ``idx`` (strictly increasing)."""
        return self._angles.subset_sweep(idx, width)

    def candidates(self, stacking=None) -> np.ndarray:
        """Memoized canonical rotation-candidate grid (read-only).

        Same contract as
        :func:`repro.packing.canonical.rotation_candidates` over this
        instance's angles and antenna widths; ``stacking`` distinguishes
        grids enriched for stacked windows.
        """
        key = None if stacking is None else tuple(int(s) for s in stacking)
        with self._lock:
            grid = self._grids.get(key)
            if grid is None:
                from repro.packing.canonical import rotation_candidates

                grid = _frozen(
                    rotation_candidates(
                        self.instance.thetas,
                        [a.rho for a in self.instance.antennas],
                        stacking=stacking,
                    )
                )
                self._grids[key] = grid
            return grid


class CompiledStation:
    """Per-station polar view of a sector instance.

    Holds the ``(thetas, rs)`` of every customer relative to the station
    (computed once, previously re-derived by each ``station_polar`` call),
    the stable angular sort over those relative angles, and memoized
    fitting-radius masks per antenna radius.
    """

    def __init__(
        self,
        instance,
        station_id: int,
        polar: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> None:
        if polar is None:
            from repro.geometry.points import relative_polar

            st = instance.stations[station_id]
            thetas, rs = relative_polar(
                instance.positions, np.asarray(st.position)
            )
        else:
            # Batched construction (repro.core.backend.batched_station_polar)
            # hands in this station's row of the (m, n) polar matrices —
            # bit-identical to the per-station conversion above.
            thetas, rs = np.ascontiguousarray(polar[0]), np.ascontiguousarray(polar[1])
        self.station_id = int(station_id)
        self.thetas = _frozen(thetas)
        self.rs = _frozen(rs)
        self._angles = _SortedAngles(self.thetas)
        self._masks: Dict[float, np.ndarray] = {}
        self._lock = threading.Lock()

    def fit_mask(self, radius: float) -> np.ndarray:
        """Read-only mask of customers within ``radius`` of the station.

        Uses the same relative slack as
        :meth:`~repro.model.instance.SectorInstance.reachable_mask`.
        """
        key = float(radius)
        with self._lock:
            m = self._masks.get(key)
            if m is None:
                m = _frozen(self.rs <= key * _RADIUS_SLACK)
                self._masks[key] = m
            return m

    def sweep(self, width: float) -> CircularSweep:
        """Memoized sweep over all relative angles at this width."""
        return self._angles.sweep(width)

    def subset_sweep(self, idx: np.ndarray, width: float) -> CircularSweep:
        """Sweep over the customer subset ``idx`` (strictly increasing)."""
        return self._angles.subset_sweep(idx, width)


class CompiledSectorInstance(CompiledInstance):
    """Compiled view of a :class:`~repro.model.instance.SectorInstance`.

    Station views build lazily (a solver touching two of ten stations pays
    for two polar conversions) and the per-antenna eligibility triple that
    the sector solvers share is memoized behind the
    ``phase.sector.eligibility`` timer.
    """

    kind = "sector"

    def __init__(self, instance) -> None:
        with _COMPILE_TIMER.time():
            self.instance = instance
            self.n = int(instance.n)
            self._stations: Dict[int, CompiledStation] = {}
            self._eligibility: Optional[tuple] = None
            self._constraint_masks: object = _UNSET
            self._lock = threading.Lock()

    def station(self, station_id: int) -> CompiledStation:
        """The lazily built, memoized view of one station."""
        key = int(station_id)
        with self._lock:
            view = self._stations.get(key)
            if view is None:
                view = CompiledStation(self.instance, key)
                self._stations[key] = view
            return view

    def ensure_stations(self) -> None:
        """Build every missing station view from one batched polar pass.

        One ``(m, n)`` broadcast conversion
        (:func:`repro.core.backend.batched_station_polar`) replaces ``m``
        separate per-station conversions; each row is bit-identical to
        what :meth:`station` would compute lazily, so views built either
        way are interchangeable (and shared between backends).
        """
        m = len(self.instance.stations)
        with self._lock:
            missing = [s for s in range(m) if s not in self._stations]
        if not missing:
            return
        from repro.core.backend import batched_station_polar

        thetas_all, rs_all = batched_station_polar(self.instance)
        with self._lock:
            for s in missing:
                if s not in self._stations:
                    self._stations[s] = CompiledStation(
                        self.instance, s, polar=(thetas_all[s], rs_all[s])
                    )

    def constraint_masks(
        self, backend: str = "python"
    ) -> Optional[List[np.ndarray]]:
        """Per-station composed constraint masks (memoized; ``None`` = all-pass).

        Composes the instance's ``constraints`` tuple into one read-only
        ``(n,)`` boolean mask per station via
        :func:`repro.model.constraints.compose_station_masks`, fed with
        the compiled stations' ``rs`` arrays so both backends rank and
        filter on *identical* distances.  Unconstrained instances pay one
        attribute check and memoize ``None`` — the pre-pipeline fast path.

        Timed under ``phase.sector.constraints``; the ``scenario_bench``
        section gates this phase at <10% of ``phase.compile``.
        """
        with self._lock:
            cached = self._constraint_masks
        if cached is not _UNSET:
            return cached  # type: ignore[return-value]
        if not getattr(self.instance, "constraints", ()):
            with self._lock:
                self._constraint_masks = None
            return None
        from repro.model.constraints import compose_station_masks

        if backend == "numpy":
            self.ensure_stations()
        with _CONSTRAINT_TIMER.time():
            m = len(self.instance.stations)
            rs_by_station = [self.station(s).rs for s in range(m)]
            composed = compose_station_masks(
                self.instance, rs_by_station, backend=backend
            )
            if composed is not None:
                composed = [_frozen(mask) for mask in composed]
        with self._lock:
            if self._constraint_masks is _UNSET:
                self._constraint_masks = composed
            return self._constraint_masks  # type: ignore[return-value]

    def eligibility(
        self, backend: str = "python"
    ) -> Tuple[List[np.ndarray], List[np.ndarray], List[np.ndarray]]:
        """Per-antenna ``(masks, thetas, rs)`` for the global antenna table.

        For global antenna ``g`` at station ``s`` with spec ``a``:
        ``masks[g]`` is the fitting-radius mask ``rs <= a.radius * (1 +
        1e-12)`` ANDed with the station's composed constraint mask
        (:meth:`constraint_masks` — all-pass for unconstrained instances,
        where ``masks[g]`` *is* the memoized fitting mask, unchanged from
        the pre-pipeline code), and ``thetas[g]`` / ``rs[g]`` are the
        station's relative polar arrays.  This is the one place
        constraints enter the solve path: every mask-consuming solver
        honors them without further changes.

        ``backend="numpy"`` prewarms all station views through
        :meth:`ensure_stations` (one batched polar conversion) before
        assembling the triple; the memoized result is identical either
        way, so a view warmed by one backend serves both.
        """
        with self._lock:
            cached = self._eligibility
        if cached is not None:
            return cached
        if backend == "numpy":
            self.ensure_stations()
        cmasks = self.constraint_masks(backend)
        with _ELIG_TIMER.time():
            masks: List[np.ndarray] = []
            thetas: List[np.ndarray] = []
            rs: List[np.ndarray] = []
            for _, s_id, spec in self.instance.antenna_table():
                st = self.station(s_id)
                fit = st.fit_mask(spec.radius)
                if cmasks is not None:
                    fit = _frozen(fit & cmasks[s_id])
                masks.append(fit)
                thetas.append(st.thetas)
                rs.append(st.rs)
            triple = (masks, thetas, rs)
        with self._lock:
            if self._eligibility is None:
                self._eligibility = triple
            return self._eligibility


class CompiledItems:
    """Compiled view of one knapsack item set (weights + profits).

    The greedy solver's global profit-density order is the only derived
    quantity worth sharing; exact/FPTAS solvers key their DP tables off the
    raw arrays and ignore this view.
    """

    kind = "items"

    def __init__(self, weights: np.ndarray, profits: np.ndarray) -> None:
        w = np.asarray(weights, dtype=np.float64)
        p = np.asarray(profits, dtype=np.float64)
        if w.shape != p.shape or w.ndim != 1:
            raise ValueError(
                f"weights/profits must be matching 1-D arrays, "
                f"got {w.shape} and {p.shape}"
            )
        self.n = int(w.shape[0])
        self.weights = _frozen(w.copy())
        self.profits = _frozen(p.copy())
        # Same density expression and tie-breaking as solve_greedy.
        dens = np.where(w > 1e-12, p / np.maximum(w, 1e-300), np.inf)
        self.density_order = _frozen(np.argsort(-dens, kind="stable"))


def compile_instance(instance) -> CompiledInstance:
    """Build the compiled view for an angle or sector instance.

    Prefer ``instance.compile()`` (memoized per object) or
    :func:`repro.engine.cache.shared_compiled` (memoized per content
    fingerprint); this factory always builds fresh.
    """
    # Duck-typed dispatch keeps this module import-light; the model layer
    # imports us lazily from inside Instance.compile().
    if hasattr(instance, "stations"):
        return CompiledSectorInstance(instance)
    if hasattr(instance, "thetas"):
        return CompiledAngleInstance(instance)
    raise TypeError(
        f"cannot compile {type(instance).__name__}: "
        "expected an AngleInstance or SectorInstance"
    )


def compile_items(weights, profits) -> CompiledItems:
    """Build the compiled view of one knapsack item set."""
    return CompiledItems(
        np.asarray(weights, dtype=np.float64),
        np.asarray(profits, dtype=np.float64),
    )
