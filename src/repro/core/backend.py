"""Vectorized numpy kernels behind the per-solver ``backend`` knob.

The compiled layer (:mod:`repro.core.compiled`) stores struct-of-arrays
views — argsorted angles, doubled prefix sums, per-station polar arrays,
density orders — but until this module existed every *consumer* of those
arrays still walked them one element at a time in pure python.  The three
kernels here replace exactly those hot loops:

* :func:`rotation_scan` — the circular-sweep window scan of
  :func:`repro.packing.single.best_rotation`: one vectorized
  everything-fits pass over the doubled prefix sums seeds the incumbent,
  and only the windows that can still beat it survive for per-window
  oracle calls;
* :func:`greedy_prefix_mask` — the sequential acceptance loop of the
  extended density greedy (:func:`repro.knapsack.greedy.solve_greedy`),
  replayed with cumulative sums in a handful of vectorized rounds;
* :func:`batched_station_polar` / :func:`nearest_reaching_station` — the
  per-station eligibility scans of :mod:`repro.packing.sectors`, batched
  into one ``(m, n)`` polar conversion and one masked ``argmin``;
* :func:`los_blocked` / :func:`topk_station_mask` — the constraint-mask
  composition kernels of :mod:`repro.model.constraints`
  (``docs/SCENARIOS.md``): per-station line-of-sight occlusion against a
  segment set, and the per-customer top-``k`` nearest-reaching-station
  membership mask, both bit-identical to the scalar per-pair primitives.

**Contract** (``docs/BACKENDS.md``): the pure-python path is the oracle.
Every kernel is either *bit-identical* to the scalar loop it replaces
(elementwise ufuncs batched over a different shape) or *value-identical*
(the solved objective value is provably equal while tie selections and
per-solve work metrics may differ); the tests in
``tests/test_backend.py`` assert which.  Backend selection is resolved by
the engine (:func:`repro.engine.planner.plan_backend`) against each
:class:`~repro.engine.registry.SolverSpec`'s declared ``backends``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.numerics import FIT_SLACK, fits

__all__ = [
    "BACKENDS",
    "AUTO_NUMPY_MIN_N",
    "normalize_backend",
    "rotation_scan",
    "greedy_prefix_mask",
    "batched_station_polar",
    "nearest_reaching_station",
    "los_blocked",
    "topk_station_mask",
]

#: The valid values of every ``backend`` knob (requests additionally
#: accept ``"auto"``; solvers only ever see the two concrete names).
BACKENDS = ("python", "numpy", "auto")

#: Instance size at which ``backend="auto"`` switches a numpy-capable
#: solver from the scalar path to the vectorized kernels.  Below this the
#: kernel setup cost (argsorts of window potentials, mask allocation)
#: rivals the python loop it replaces; well above it the vectorized path
#: wins by orders of magnitude.  Documented in ``docs/BACKENDS.md``.
AUTO_NUMPY_MIN_N = 2048

#: Same break-even pruning epsilon as the scalar rotation search.
_PRUNE_EPS = 1e-15


def normalize_backend(name: str) -> str:
    """Validate a backend name; returns it (``ValueError`` otherwise)."""
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; expected one of {BACKENDS}"
        )
    return name


def rotation_scan(
    ids: np.ndarray,
    profit_sums: np.ndarray,
    demand_sums: np.ndarray,
    capacity: float,
) -> Tuple[int, float, float, np.ndarray]:
    """Vectorized seed-and-prune pass over the canonical windows.

    ``ids`` are the (deduplicated) window ids of a
    :class:`~repro.geometry.sweep.CircularSweep`; ``profit_sums`` /
    ``demand_sums`` its per-window totals from the doubled prefix sums.
    Returns ``(best_id, best_value, best_demand, hard_ids)``:

    * ``best_id`` — the fitting window of maximum profit potential (the
      stable-first one, matching the scalar visit order), or ``-1`` when
      no window fits entirely;
    * ``best_value`` / ``best_demand`` — its totals (0.0 when none);
    * ``hard_ids`` — the non-fitting windows whose potential still
      exceeds ``best_value``, in decreasing-potential (stable) order —
      the only windows the caller must hand to the knapsack oracle.

    Value identity with the scalar loop: both paths end at the unique
    fixed point ``V = max(best fitting potential, max oracle value over
    non-fitting windows with potential > V)`` — the scalar loop reaches
    it by interleaving fast-path and oracle visits, this kernel by
    seeding with the best fitting window up front (which can only prune
    *more* oracle calls, never change the maximum).  Tie *selection*
    (which window realizes an equal value) may differ.
    """
    if ids.size == 0:
        return -1, 0.0, 0.0, ids
    order = np.argsort(-profit_sums[ids], kind="stable")
    ids_sorted = ids[order]
    pot = profit_sums[ids_sorted]
    fit = fits(demand_sums[ids_sorted], float(capacity))

    best_id, best_value, best_demand = -1, 0.0, 0.0
    fit_pos = np.flatnonzero(fit)
    if fit_pos.size:
        p0 = int(fit_pos[0])
        # The scalar loop never takes a window with potential <= eps:
        # its incumbent starts at the empty outcome (value 0).
        if pot[p0] > _PRUNE_EPS:
            best_id = int(ids_sorted[p0])
            best_value = float(pot[p0])
            best_demand = float(demand_sums[best_id])
    hard_ids = ids_sorted[(~fit) & (pot > best_value + _PRUNE_EPS)]
    return best_id, best_value, best_demand, hard_ids


def _fits_elementwise(weight: np.ndarray, remaining: np.ndarray) -> np.ndarray:
    """:func:`repro.numerics.fits` with an *array* ``remaining``.

    Same expression, same ``FIT_SLACK``; the scalar original only
    broadcasts over ``weight`` (its slack term calls ``max``/``abs`` on
    the remaining capacity), so the per-position variant lives here.
    """
    return weight <= remaining + FIT_SLACK * np.maximum(1.0, np.abs(remaining))


def greedy_prefix_mask(weights: np.ndarray, capacity: float) -> np.ndarray:
    """Accept mask of the extended density greedy, in vectorized rounds.

    ``weights`` must already be in visit order (the density order of
    :class:`~repro.core.compiled.CompiledItems` restricted to the useful
    items).  Reproduces the sequential scan "take while it fits, keep
    scanning past misfits": each round accepts the longest fitting prefix
    via one cumulative sum, drops the first misfit, and discards every
    remaining item that can no longer fit the (monotonically shrinking)
    remaining capacity — an item rejected now is rejected forever because
    the :func:`repro.numerics.fits` threshold is monotone in the
    remaining capacity.  Each round accepts at least one item, so the
    number of rounds is bounded by the accepted count (typically a
    handful) rather than ``n``.

    The remaining capacity is tracked through cumulative sums instead of
    one scalar subtraction per item; the shared ``FIT_SLACK`` admission
    band absorbs the one-ulp summation-order differences, so the accept
    set matches the scalar loop on everything but adversarially
    ulp-boundary weights (the bench harness and the bit-identity tests
    assert equality).
    """
    w = np.asarray(weights, dtype=np.float64)
    n = w.size
    accept = np.zeros(n, dtype=bool)
    cap = float(capacity)
    active = np.arange(n)
    spent = 0.0
    while active.size:
        wa = w[active]
        csum = np.cumsum(wa)
        rem_before = (cap - spent) - (csum - wa)
        ok = _fits_elementwise(wa, rem_before)
        bad = np.flatnonzero(~ok)
        if bad.size == 0:
            accept[active] = True
            break
        cut = int(bad[0])
        accept[active[:cut]] = True
        if cut > 0:
            spent += float(csum[cut - 1])
        tail = active[cut + 1:]
        tail = tail[fits(w[tail], cap - spent)]
        active = tail
    return accept


def batched_station_polar(instance) -> Tuple[np.ndarray, np.ndarray]:
    """Relative polar of every customer to every station, in one pass.

    Returns ``(thetas, rs)`` of shape ``(m, n)``; row ``s`` is
    bit-identical to ``relative_polar(positions, stations[s].position)``
    because the batch merely reshapes the inputs of the same elementwise
    ufuncs (subtract, hypot, arctan2, angle normalization).
    """
    from repro.geometry.points import cartesians_to_polar

    positions = np.asarray(instance.positions, dtype=np.float64)
    centers = np.asarray(
        [st.position for st in instance.stations], dtype=np.float64
    )
    m = centers.shape[0]
    n = positions.shape[0]
    diff = positions[None, :, :] - centers[:, None, :]
    thetas, rs = cartesians_to_polar(diff.reshape(m * n, 2))
    return thetas.reshape(m, n), rs.reshape(m, n)


def nearest_reaching_station(
    rs_all: np.ndarray,
    max_radii: np.ndarray,
    slack: float = 1.0 + 1e-12,
    eligible: "np.ndarray | None" = None,
) -> np.ndarray:
    """Home station of every customer: nearest station that reaches it.

    ``rs_all`` is the ``(m, n)`` distance matrix (station-major, as
    returned by :func:`batched_station_polar`), ``max_radii`` the per-
    station maximum antenna radius.  Returns ``home`` of shape ``(n,)``
    with ``-1`` for unreachable customers.  Identical to the per-station
    scalar loop of ``solve_sector_independent``: the same reach slack,
    the same ``inf`` fill, and ``argmin``'s first-occurrence tie-break
    matches the loop's station order.

    ``eligible`` optionally ANDs an ``(m, n)`` boolean mask (the composed
    constraint masks of ``docs/SCENARIOS.md``) into the reach test, so
    constrained instances home each customer onto its nearest *effective*
    station.
    """
    rs_all = np.asarray(rs_all, dtype=np.float64)
    max_radii = np.asarray(max_radii, dtype=np.float64).reshape(-1, 1)
    reach = rs_all <= max_radii * slack
    if eligible is not None:
        reach &= np.asarray(eligible, dtype=bool)
    dist = np.where(reach, rs_all, np.inf)
    return np.where(
        np.isfinite(dist.min(axis=0)), dist.argmin(axis=0), -1
    ).astype(np.int64)


def los_blocked(
    sx: float, sy: float, positions: np.ndarray, segments: np.ndarray
) -> np.ndarray:
    """Customers whose line of sight to station ``(sx, sy)`` is occluded.

    ``positions`` is the ``(n, 2)`` customer array, ``segments`` the
    ``(k, 4)`` blockage-segment array of ``(x1, y1, x2, y2)`` rows
    (:class:`repro.model.constraints.LosBlockage`).  A customer is
    blocked iff its open station→customer segment *properly crosses* any
    blockage segment — four strict orientation sign tests, written with
    the exact subtract/multiply expressions of the scalar primitive
    ``repro.model.constraints._cross_sign`` so the ``(n,)`` boolean
    result is bit-identical to the per-pair loop (touching endpoints and
    collinear overlap do not block in either path).
    """
    positions = np.asarray(positions, dtype=np.float64)
    segments = np.asarray(segments, dtype=np.float64).reshape(-1, 4)
    n = positions.shape[0]
    if segments.shape[0] == 0 or n == 0:
        return np.zeros(n, dtype=bool)
    x1 = segments[:, 0][:, None]
    y1 = segments[:, 1][:, None]
    x2 = segments[:, 2][:, None]
    y2 = segments[:, 3][:, None]
    cx = positions[:, 0][None, :]
    cy = positions[:, 1][None, :]
    # The three (k, n) scratch buffers below are reused via out= — the
    # subtract/multiply op order matches the scalar ``_cross_sign``
    # expression exactly, so buffer reuse changes no result bit.
    # d1: orientation of the station about each blockage segment
    # ((k, 1), broadcast over customers); d2: of each customer ((k, n)).
    d1 = (x2 - x1) * (sy - y1) - (y2 - y1) * (sx - x1)
    t1 = np.multiply(x2 - x1, np.subtract(cy, y1))
    t2 = np.multiply(y2 - y1, np.subtract(cx, x1))
    d2 = np.subtract(t1, t2, out=t1)
    crossed = np.multiply(d1, d2, out=d2) < 0.0
    # d3/d4: orientation of each blockage endpoint about station→customer.
    ux = cx - sx
    uy = cy - sy
    d3 = np.subtract(
        np.multiply(ux, y1 - sy, out=t2), np.multiply(uy, x1 - sx), out=t2
    )
    t3 = np.multiply(ux, y2 - sy)
    d4 = np.subtract(t3, np.multiply(uy, x2 - sx, out=t1), out=t3)
    crossed &= np.multiply(d3, d4, out=d3) < 0.0
    return crossed.any(axis=0)


def topk_station_mask(
    rs_all: np.ndarray,
    max_radii: np.ndarray,
    limit: int,
    slack: float = 1.0 + 1e-12,
) -> np.ndarray:
    """Membership mask of each customer's ``limit`` nearest reaching stations.

    ``rs_all`` is the ``(m, n)`` station-major distance matrix,
    ``max_radii`` the per-station maximum antenna radius.  Returns an
    ``(m, n)`` boolean mask: ``mask[s, i]`` iff station ``s`` is among
    customer ``i``'s ``limit`` nearest *reaching* stations, ranked by
    ``(distance, station_id)`` — ``limit`` column-wise argmin passes
    (each selecting then retiring one station per customer) break
    distance ties by first occurrence, i.e. lowest station id, matching
    the lexicographic sort of the scalar primitive
    ``repro.model.constraints._topk_stations`` exactly
    (:class:`repro.model.constraints.MaxAssignments`).

    Columns with at most ``limit`` reaching stations short-circuit to
    their reach column (every reaching station *is* in the top
    ``limit``), so the argmin ranking runs only on the contested
    columns — in clustered deployments (towns far apart relative to
    reach) that is a small fraction of ``n``, and the kernel's cost is
    dominated by the one reach comparison.
    """
    rs_all = np.asarray(rs_all, dtype=np.float64)
    radii = np.asarray(max_radii, dtype=np.float64).reshape(-1, 1)
    m, n = rs_all.shape
    reach = rs_all <= radii * slack
    limit = int(limit)
    if limit >= m:
        return reach.copy()
    mask = reach.copy()
    hard = np.flatnonzero(reach.sum(axis=0) > limit)
    if hard.size:
        sub = np.where(reach[:, hard], rs_all[:, hard], np.inf)
        picked = np.zeros((m, hard.size), dtype=bool)
        cols = np.arange(hard.size)
        # Contested columns have > limit finite entries, so every pass
        # retires a genuinely reaching station.
        for _ in range(limit):
            rows = sub.argmin(axis=0)
            picked[rows, cols] = True
            sub[rows, cols] = np.inf
        mask[:, hard] = picked
    return mask
