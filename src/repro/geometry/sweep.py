"""Circular sweep: enumerate all canonical windows over a set of angles.

The canonical-rotation lemma (see :mod:`repro.packing.canonical`) shows that
a single arc of width ``rho`` may be assumed to *start at a customer angle*.
The sweep therefore only ever needs the ``n`` windows ``[theta_i,
theta_i + rho]``.  Because the customers covered by such a window form a
*contiguous run in sorted angular order* (wrapping around ``2*pi``), the
whole family of windows is represented by ``(lo, hi)`` index pairs into the
sorted order, computed in ``O(n log n)`` with one ``searchsorted`` call —
no Python-level loop (HPC-guide vectorization idiom).

:class:`CircularSweep` precomputes the sorted order and the window
boundaries once; :class:`WindowView` is a lightweight view of one window
that exposes the covered customers as *original* indices.  ``window_sums``
evaluates ``sum(values[covered])`` for *all* windows at once via a doubled
prefix sum, which is the workhorse of the greedy and DP solvers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.geometry.angles import TWO_PI, normalize_angles
from repro.obs.metrics import get_registry
from repro.resilience.budget import checkpoint as _budget_checkpoint

#: Tolerance for the closed right end of a window (matches Arc.contains).
_WINDOW_EPS = 1e-12

# Sweep telemetry: how many sweeps get built and how many canonical
# windows they expose (contract: docs/OBSERVABILITY.md).
_SWEEP_BUILDS = get_registry().counter("sweep.builds")
_SWEEP_WINDOWS = get_registry().counter("sweep.windows")


def _check_width(width: float) -> float:
    """Validate a window width and clamp it to ``[0, 2*pi]``."""
    if not (0.0 <= width <= TWO_PI + _WINDOW_EPS):
        raise ValueError(f"window width must be in [0, 2*pi], got {width}")
    return float(min(width, TWO_PI))


@dataclass(frozen=True)
class WindowView:
    """One canonical window of a :class:`CircularSweep`.

    Attributes
    ----------
    start:
        The window's start angle (a customer angle).
    lo, hi:
        Half-open range ``[lo, hi)`` into the sweep's sorted order; ``hi``
        may exceed ``n`` to express wrap-around (indices are taken mod n).
    sweep:
        The owning sweep (used to materialize indices lazily).
    """

    start: float
    lo: int
    hi: int
    sweep: "CircularSweep"

    @property
    def count(self) -> int:
        """Number of covered customers."""
        return self.hi - self.lo

    @property
    def sorted_positions(self) -> np.ndarray:
        """Positions of covered customers in sorted order (mod n)."""
        n = self.sweep.n
        return np.arange(self.lo, self.hi) % n

    @property
    def indices(self) -> np.ndarray:
        """Original (instance) indices of the covered customers."""
        return self.sweep.order[self.sorted_positions]

    def covers_original(self, original_index: int) -> bool:
        """True iff the customer with this original index is in the window."""
        pos = self.sweep.rank_of_original[original_index]
        if self.hi <= self.sweep.n:
            return self.lo <= pos < self.hi
        return pos >= self.lo or pos < self.hi - self.sweep.n


class CircularSweep:
    """All width-``rho`` windows starting at customer angles.

    Parameters
    ----------
    thetas:
        Customer angles (any radians; normalized internally).  May contain
        duplicates.
    width:
        Window width ``rho`` in ``[0, 2*pi]``.

    Notes
    -----
    ``O(n log n)`` preprocessing, ``O(1)`` per window afterwards.  Windows
    are indexed ``0..n-1`` in sorted-angle order; duplicate start angles
    produce identical windows (callers that care use
    :meth:`unique_window_ids`).
    """

    def __init__(self, thetas: Sequence[float] | np.ndarray, width: float):
        _budget_checkpoint()  # sweep builds are a phase boundary (ambient budget)
        self.width = _check_width(width)
        thetas = np.asarray(thetas, dtype=np.float64)
        self.thetas = normalize_angles(thetas)
        self.n = int(self.thetas.shape[0])
        #: order[k] = original index of the k-th smallest angle
        self.order = np.argsort(self.thetas, kind="stable")
        self.sorted_thetas = self.thetas[self.order]
        #: rank_of_original[i] = position of original customer i in sorted order
        self.rank_of_original = np.empty(self.n, dtype=np.intp)
        self.rank_of_original[self.order] = np.arange(self.n)
        self._attach_windows()

    @classmethod
    def from_sorted(
        cls,
        thetas: np.ndarray,
        width: float,
        order: np.ndarray,
        sorted_thetas: np.ndarray,
        rank_of_original: np.ndarray,
    ) -> "CircularSweep":
        """Build a sweep from a *precomputed* stable sort — no re-sorting.

        The compiled-instance layer (:mod:`repro.core.compiled`) sorts each
        angle array once and then instantiates one sweep per window width
        through this entry point.  The caller guarantees that ``thetas`` is
        already normalized to ``[0, 2*pi)`` and that ``order`` /
        ``sorted_thetas`` / ``rank_of_original`` came from
        ``np.argsort(thetas, kind="stable")`` — under that contract the
        result is indistinguishable from ``CircularSweep(thetas, width)``.
        """
        self = cls.__new__(cls)
        _budget_checkpoint()
        self.width = _check_width(width)
        self.thetas = thetas
        self.n = int(thetas.shape[0])
        self.order = order
        self.sorted_thetas = sorted_thetas
        self.rank_of_original = rank_of_original
        self._attach_windows()
        return self

    def _attach_windows(self) -> None:
        """Compute the ``(lo, hi)`` bounds of all ``n`` canonical windows."""
        _SWEEP_BUILDS.inc()
        _SWEEP_WINDOWS.inc(self.n)
        if self.n == 0:
            self._lo = np.empty(0, dtype=np.intp)
            self._hi = np.empty(0, dtype=np.intp)
            return
        if self.width >= TWO_PI:
            self._lo = np.arange(self.n)
            self._hi = self._lo + self.n
        else:
            # A window starting at theta_k also covers customers whose angle
            # equals theta_k but sorts *before* position k (duplicates), and
            # angles within the wrap-snap tolerance just below theta_k.
            self._lo = np.searchsorted(
                self.sorted_thetas, self.sorted_thetas - _WINDOW_EPS, side="left"
            )
            doubled = np.concatenate([self.sorted_thetas, self.sorted_thetas + TWO_PI])
            targets = self.sorted_thetas + self.width + _WINDOW_EPS
            hi = np.searchsorted(doubled, targets, side="right")
            # A window never covers more than all n customers.
            self._hi = np.minimum(hi, self._lo + self.n)

    # ------------------------------------------------------------------
    # Window access
    # ------------------------------------------------------------------
    def window(self, k: int) -> WindowView:
        """The window starting at the ``k``-th smallest customer angle."""
        if not (0 <= k < self.n):
            raise IndexError(f"window index {k} out of range [0, {self.n})")
        return WindowView(
            start=float(self.sorted_thetas[k]),
            lo=int(self._lo[k]),
            hi=int(self._hi[k]),
            sweep=self,
        )

    def windows(self) -> Iterator[WindowView]:
        """Iterate over all ``n`` canonical windows in sorted-start order."""
        for k in range(self.n):
            yield self.window(k)

    def window_at(self, start: float, closed_end: bool = True) -> WindowView:
        """The window ``[start, start + width]`` for an *arbitrary* start.

        Unlike :meth:`window`, the start need not be a customer angle; the
        non-overlapping DP probes the enriched candidate grid
        ``theta_i + j * rho`` with this method.  ``closed_end=False`` makes
        the window half-open ``[start, start + width)`` — used by the
        disjoint-arcs DP so that two stacked windows sharing a boundary
        never both claim a customer sitting exactly on it.  ``O(log n)``.

        The bounds arithmetic lives in
        :func:`repro.geometry.arcs.coverage_bounds`, the array-level entry
        point shared with the compiled-instance layer.
        """
        from repro.geometry.arcs import coverage_bounds

        s, lo, hi = coverage_bounds(
            self.sorted_thetas, start, self.width, closed_end=closed_end
        )
        return WindowView(start=s, lo=lo, hi=hi, sweep=self)

    def unique_window_ids(self) -> np.ndarray:
        """Window ids with duplicate (start angle, hi) pairs removed.

        Duplicate customer angles yield byte-identical windows; solvers that
        do expensive per-window work (knapsack) skip the duplicates.

        The result is memoized: a sweep's windows never change, and shared
        (compiled-instance) sweeps call this once per rotation search.
        """
        cached = getattr(self, "_uniq_ids", None)
        if cached is not None:
            return cached
        if self.n == 0:
            uniq = np.empty(0, dtype=np.intp)
        else:
            keep = np.ones(self.n, dtype=bool)
            same_start = np.isclose(np.diff(self.sorted_thetas), 0.0, atol=1e-15)
            keep[1:] = ~same_start
            uniq = np.flatnonzero(keep)
        uniq.setflags(write=False)
        self._uniq_ids = uniq
        return uniq

    def counts(self) -> np.ndarray:
        """Number of covered customers for every window (vectorized)."""
        return self._hi - self._lo

    def window_spans(self) -> tuple[np.ndarray, np.ndarray]:
        """The ``(lo, hi)`` bounds of all windows, as read-only arrays.

        ``hi`` may exceed ``n`` to express wrap-around (same convention as
        :class:`WindowView`).  This is the raw material of the vectorized
        backend (:mod:`repro.core.backend`): window sums, counts, and
        membership tests are all expressible as gather/scatter over these
        spans without touching :meth:`window` in a loop.
        """
        self._lo.setflags(write=False)
        self._hi.setflags(write=False)
        return self._lo, self._hi

    def window_sums(self, values: np.ndarray) -> np.ndarray:
        """``sum(values[covered])`` for every canonical window at once.

        ``values`` is indexed by *original* customer index.  Runs in
        ``O(n)`` after preprocessing via a doubled prefix sum.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (self.n,):
            raise ValueError(
                f"values must have shape ({self.n},), got {values.shape}"
            )
        if self.n == 0:
            return np.empty(0, dtype=np.float64)
        v_sorted = values[self.order]
        prefix = np.concatenate([[0.0], np.cumsum(np.concatenate([v_sorted, v_sorted]))])
        return prefix[self._hi] - prefix[self._lo]

    def window_sums_from_prefix(self, prefix: np.ndarray) -> np.ndarray:
        """:meth:`window_sums` from a *precomputed* doubled prefix sum.

        ``prefix`` must be the ``(2n+1,)`` array
        ``concatenate([[0.0], cumsum(concatenate([v_sorted, v_sorted]))])``
        for values aligned with this sweep's sorted order — exactly what the
        compiled-instance layer stores (``demand_prefix`` /
        ``profit_prefix``).  The same cumulative array is built once and
        reused by every window width, since the sorted order does not depend
        on ``rho``; the result is bit-identical to :meth:`window_sums` on
        the original values.
        """
        prefix = np.asarray(prefix, dtype=np.float64)
        if prefix.shape != (2 * self.n + 1,):
            raise ValueError(
                f"prefix must have shape ({2 * self.n + 1},), got {prefix.shape}"
            )
        return prefix[self._hi] - prefix[self._lo]

    def best_window_by_sum(self, values: np.ndarray) -> tuple[int, float]:
        """Window id maximizing :meth:`window_sums` and its value."""
        sums = self.window_sums(values)
        if sums.size == 0:
            raise ValueError("sweep over empty instance has no windows")
        k = int(np.argmax(sums))
        return k, float(sums[k])
