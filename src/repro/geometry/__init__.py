"""Circular and planar geometry substrate for angle/sector packing.

This package implements every geometric primitive the packing algorithms
rely on:

* :mod:`repro.geometry.angles` -- normalization and arithmetic on angles in
  ``[0, 2*pi)``, scalar and NumPy-vectorized.
* :mod:`repro.geometry.arcs` -- circular intervals (``Arc``) with
  containment, intersection, and measure operations.
* :mod:`repro.geometry.points` -- planar points, polar/cartesian conversion.
* :mod:`repro.geometry.sectors` -- the paper's directional antenna footprint
  ``(alpha, rho, R)`` anchored at an apex, with vectorized membership.
* :mod:`repro.geometry.sweep` -- the circular two-pointer sweep that
  enumerates all canonical windows of a given width over a set of angles.

Everything here is deterministic and side-effect free.
"""

from repro.geometry.angles import (
    TWO_PI,
    angular_distance,
    ccw_delta,
    normalize_angle,
    normalize_angles,
)
from repro.geometry.arcs import Arc
from repro.geometry.points import (
    cartesian_to_polar,
    polar_to_cartesian,
    relative_polar,
)
from repro.geometry.interval_set import CircularIntervalSet
from repro.geometry.sectors import Sector
from repro.geometry.sweep import CircularSweep, WindowView

__all__ = [
    "TWO_PI",
    "normalize_angle",
    "normalize_angles",
    "ccw_delta",
    "angular_distance",
    "Arc",
    "CircularIntervalSet",
    "cartesian_to_polar",
    "polar_to_cartesian",
    "relative_polar",
    "Sector",
    "CircularSweep",
    "WindowView",
]
