"""Sets of circular intervals: unions, gaps, and occupancy queries.

The non-overlapping solvers need to reason about *occupied* angular space:
"is this arc free?", "where are the gaps and how wide are they?".
:class:`CircularIntervalSet` maintains a union of arcs in normalized,
merged form and answers those queries in ``O(log m)`` / ``O(m)``.

Used by the insertion heuristic (:mod:`repro.packing.insertion`) and by
instance statistics; exactness of merging is property-tested against
point sampling.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro.geometry.angles import TWO_PI, ccw_delta, normalize_angle
from repro.geometry.arcs import Arc

#: Endpoint tolerance consistent with Arc containment.
_EPS = 1e-12


class CircularIntervalSet:
    """A union of arcs on the circle, kept merged and sorted.

    The representation is a list of disjoint, non-touching closed arcs
    sorted by start angle; a full circle is the special flag
    :attr:`is_full`.  All mutation goes through :meth:`add`.
    """

    def __init__(self, arcs: Iterable[Arc] = ()):  # noqa: D401
        self._arcs: List[Arc] = []
        self.is_full = False
        for a in arcs:
            self.add(a)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, arc: Arc) -> None:
        """Insert an arc, merging it with everything it touches."""
        if self.is_full or arc.width <= 0.0:
            if arc.width > 0.0:
                return
            if not self.is_full and arc.width == 0.0:
                return  # zero-width arcs contribute no measure
            return
        if arc.is_full_circle:
            self._arcs = []
            self.is_full = True
            return
        start, end_off = arc.start, arc.width
        merged_start = start
        merged_width = end_off
        keep: List[Arc] = []
        for a in self._arcs:
            if _touches(Arc(merged_start, merged_width), a):
                merged_start, merged_width = _merge(
                    merged_start, merged_width, a
                )
                if merged_width >= TWO_PI - _EPS:
                    self._arcs = []
                    self.is_full = True
                    return
            else:
                keep.append(a)
        keep.append(Arc(merged_start, min(merged_width, TWO_PI)))
        keep.sort(key=lambda a: a.start)
        self._arcs = keep
        # A newly merged arc can now touch a previously-kept one; iterate
        # to a fixed point (at most m merges total over the set's life).
        changed = True
        while changed and not self.is_full:
            changed = False
            for i in range(len(self._arcs)):
                for j in range(i + 1, len(self._arcs)):
                    if _touches(self._arcs[i], self._arcs[j]):
                        s, w = _merge(
                            self._arcs[i].start, self._arcs[i].width, self._arcs[j]
                        )
                        if w >= TWO_PI - _EPS:
                            self._arcs = []
                            self.is_full = True
                            return
                        rest = [
                            a for k, a in enumerate(self._arcs) if k not in (i, j)
                        ]
                        rest.append(Arc(s, w))
                        rest.sort(key=lambda a: a.start)
                        self._arcs = rest
                        changed = True
                        break
                if changed:
                    break

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def arcs(self) -> Tuple[Arc, ...]:
        """The disjoint merged arcs, sorted by start."""
        return tuple(self._arcs)

    def measure(self) -> float:
        """Total occupied angular length."""
        if self.is_full:
            return TWO_PI
        return float(sum(a.width for a in self._arcs))

    def contains(self, theta: float) -> bool:
        """Is the angle inside the occupied set?"""
        if self.is_full:
            return True
        return any(a.contains(theta) for a in self._arcs)

    def is_free(self, arc: Arc) -> bool:
        """True iff the arc's *interior* does not intersect the set.

        Touching at endpoints is allowed (arcs may abut), matching the
        non-overlapping variant's interior-disjointness semantics.
        """
        if arc.width <= 0.0:
            return True
        if self.is_full:
            return False
        return not any(arc.overlaps_interior(a) for a in self._arcs)

    def gaps(self) -> List[Arc]:
        """The complement as a list of arcs (empty when full).

        An empty set's complement is the full circle.
        """
        if self.is_full:
            return []
        if not self._arcs:
            return [Arc(0.0, TWO_PI)]
        out: List[Arc] = []
        m = len(self._arcs)
        for i in range(m):
            cur = self._arcs[i]
            nxt = self._arcs[(i + 1) % m]
            gap_start = cur.end
            gap_width = ccw_delta(gap_start, nxt.start)
            if m == 1:
                gap_width = TWO_PI - cur.width
            if gap_width > _EPS:
                out.append(Arc(gap_start, gap_width))
        return out

    def largest_gap(self) -> float:
        """Width of the widest free arc (0 when full)."""
        gaps = self.gaps()
        return max((g.width for g in gaps), default=0.0)

    def __len__(self) -> int:
        return len(self._arcs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_full:
            return "CircularIntervalSet(FULL)"
        return f"CircularIntervalSet({list(self._arcs)!r})"


def _touches(a: Arc, b: Arc) -> bool:
    """Closed intersection (shared point is enough to merge)."""
    return a.intersects(b)


def _merge(start: float, width: float, other: Arc) -> Tuple[float, float]:
    """Merge ``[start, start+width]`` with a touching arc; returns (s, w).

    The union of two touching arcs is one arc unless together they wrap
    the whole circle (handled by the caller via the width cap).
    """
    # candidate starts: either existing start or other's start; pick the
    # one whose forward span covers both arcs with minimum width.
    best = None
    for s in (start, other.start):
        end1 = ccw_delta(s, normalize_angle(start + width))
        if ccw_delta(s, start) > end1 + _EPS:
            end1 = TWO_PI
        # offset of each arc's span from s
        off_a = ccw_delta(s, start)
        w1 = off_a + width
        off_b = ccw_delta(s, other.start)
        w2 = off_b + other.width
        # the union is representable from s only if both arcs start
        # "after" s without leaving a hole before them
        if off_a > _EPS and off_b > _EPS:
            continue
        w = max(w1, w2)
        if best is None or w < best[1]:
            best = (s, w)
    if best is None:
        # both arcs start strictly after each candidate (possible only
        # through accumulated float error); fall back to covering span
        s = start
        w = max(width, ccw_delta(s, other.start) + other.width)
        best = (s, w)
    return best[0], min(best[1], TWO_PI)
