"""Planar points and polar/cartesian conversion.

The 2-D sector problem is solved by reducing, per base station, to the 1-D
angle problem: every customer is expressed in polar coordinates *relative to
the station*.  These conversions are the only place the library touches
cartesian coordinates, and they are vectorized over arrays of points.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.geometry.angles import TWO_PI, normalize_angles


def polar_to_cartesian(theta: float, r: float) -> Tuple[float, float]:
    """Convert a single polar coordinate to ``(x, y)``.

    >>> x, y = polar_to_cartesian(0.0, 2.0)
    >>> (round(x, 12), round(y, 12))
    (2.0, 0.0)
    """
    return (r * math.cos(theta), r * math.sin(theta))


def polars_to_cartesian(thetas: np.ndarray, rs: np.ndarray) -> np.ndarray:
    """Vectorized polar→cartesian; returns an ``(n, 2)`` float array."""
    thetas = np.asarray(thetas, dtype=np.float64)
    rs = np.asarray(rs, dtype=np.float64)
    return np.stack([rs * np.cos(thetas), rs * np.sin(thetas)], axis=-1)


def cartesian_to_polar(x: float, y: float) -> Tuple[float, float]:
    """Convert ``(x, y)`` to ``(theta, r)`` with ``theta`` in ``[0, 2*pi)``.

    The origin maps to ``(0.0, 0.0)``; its angle is arbitrary and callers
    that care (a customer exactly on a base station) must special-case it —
    the model layer treats such customers as covered by every orientation.
    """
    r = math.hypot(x, y)
    if r == 0.0:
        return (0.0, 0.0)
    theta = math.atan2(y, x)
    if theta < 0.0:
        theta += TWO_PI
    return (theta, r)


def cartesians_to_polar(points: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized cartesian→polar for an ``(n, 2)`` array.

    Returns ``(thetas, rs)``; points at the origin get angle ``0.0``.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError(f"expected (n, 2) array of points, got shape {pts.shape}")
    rs = np.hypot(pts[:, 0], pts[:, 1])
    thetas = np.arctan2(pts[:, 1], pts[:, 0])
    thetas = normalize_angles(thetas)
    thetas[rs == 0.0] = 0.0
    return thetas, rs


def relative_polar(points: np.ndarray, origin: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Polar coordinates of ``points`` relative to ``origin``.

    This is the per-station reduction primitive: ``origin`` is a base
    station position, ``points`` the customer positions.
    """
    pts = np.asarray(points, dtype=np.float64)
    org = np.asarray(origin, dtype=np.float64).reshape(1, 2)
    return cartesians_to_polar(pts - org)


def pairwise_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Euclidean distances between ``(n, 2)`` points and ``(m, 2)`` centers.

    Returns an ``(n, m)`` matrix.  Uses broadcasting rather than building
    intermediate cubes larger than necessary (HPC guide: operate on arrays
    as small as possible before combining).
    """
    pts = np.asarray(points, dtype=np.float64)
    ctr = np.asarray(centers, dtype=np.float64)
    diff = pts[:, None, :] - ctr[None, :, :]
    return np.sqrt(np.einsum("nmk,nmk->nm", diff, diff))
