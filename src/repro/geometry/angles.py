"""Angle arithmetic on the circle ``[0, 2*pi)``.

All angles in the library are radians normalized to the half-open interval
``[0, 2*pi)``.  The two non-obvious operations that everything else builds
on are:

``ccw_delta(a, b)``
    The counter-clockwise travel from ``a`` to ``b``, always in
    ``[0, 2*pi)``.  It is the workhorse of arc containment: an arc starting
    at ``s`` with width ``w`` contains ``x`` iff ``ccw_delta(s, x) <= w``.

``angular_distance(a, b)``
    The undirected geodesic distance on the circle, in ``[0, pi]``.

Scalar helpers accept plain floats; the ``*_array`` / plural variants accept
NumPy arrays and are fully vectorized (no Python-level loops), per the HPC
guide idiom of pushing hot loops into NumPy.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

#: Full turn, used throughout the library instead of the literal ``2 * pi``.
TWO_PI: float = 2.0 * math.pi

#: Tolerance used when snapping values that are within floating-point noise
#: of ``2*pi`` back to ``0``.  Chosen large enough to absorb a handful of
#: rounding steps but far below any meaningful angular resolution.
_EPS_WRAP: float = 1e-12


def normalize_angle(theta: float) -> float:
    """Normalize a scalar angle to ``[0, 2*pi)``.

    Values within ``1e-12`` of ``2*pi`` are snapped to ``0.0`` so that
    repeated arithmetic cannot produce an angle that compares ``>= 2*pi``.

    >>> normalize_angle(-math.pi / 2) == 3 * math.pi / 2
    True
    >>> normalize_angle(2 * math.pi)
    0.0
    """
    theta = math.fmod(theta, TWO_PI)
    if theta < 0.0:
        theta += TWO_PI
    if theta >= TWO_PI - _EPS_WRAP:
        theta = 0.0
    return theta


def normalize_angles(thetas: Iterable[float] | np.ndarray) -> np.ndarray:
    """Vectorized :func:`normalize_angle` returning a float64 array.

    >>> normalize_angles([0.0, -math.pi, 5 * math.pi])  # doctest: +SKIP
    array([0.        , 3.14159265, 3.14159265])
    """
    arr = np.asarray(thetas, dtype=np.float64)
    out = np.mod(arr, TWO_PI)
    # np.mod already maps negatives into [0, 2*pi), but values a hair below
    # 2*pi (from the mod of e.g. -1e-17) must snap to zero exactly as the
    # scalar version does.
    out[out >= TWO_PI - _EPS_WRAP] = 0.0
    return out


def ccw_delta(start: float, target: float) -> float:
    """Counter-clockwise travel from ``start`` to ``target`` in ``[0, 2*pi)``.

    Both inputs may be un-normalized.  ``ccw_delta(a, a) == 0``.

    >>> round(ccw_delta(0.0, math.pi / 2), 10) == round(math.pi / 2, 10)
    True
    >>> ccw_delta(math.pi / 2, 0.0) == 3 * math.pi / 2
    True
    """
    return normalize_angle(target - start)


def ccw_deltas(start: float, targets: np.ndarray) -> np.ndarray:
    """Vectorized :func:`ccw_delta` for one start against many targets."""
    return normalize_angles(np.asarray(targets, dtype=np.float64) - start)


def angular_distance(a: float, b: float) -> float:
    """Undirected circular distance between two angles, in ``[0, pi]``.

    >>> abs(angular_distance(0.1, TWO_PI - 0.1) - 0.2) < 1e-12
    True
    """
    d = ccw_delta(a, b)
    return min(d, TWO_PI - d)


def angular_distances(a: float, bs: np.ndarray) -> np.ndarray:
    """Vectorized :func:`angular_distance` for one angle against many."""
    d = ccw_deltas(a, bs)
    return np.minimum(d, TWO_PI - d)


def angles_in_window(
    thetas: np.ndarray, start: float, width: float
) -> np.ndarray:
    """Boolean mask: which angles lie in the closed arc ``[start, start+width]``.

    The arc is closed on both ends, matching the paper's
    ``alpha <= theta <= alpha + rho``.  ``width`` may be any value in
    ``[0, 2*pi]``; a width of ``2*pi`` covers every angle.

    This is the vectorized membership primitive used by sector filtering and
    by the solution feasibility checker, so it must agree exactly with
    :meth:`repro.geometry.arcs.Arc.contains`.
    """
    if width >= TWO_PI:
        return np.ones(np.shape(thetas), dtype=bool)
    deltas = ccw_deltas(start, np.asarray(thetas, dtype=np.float64))
    # Closed right end: delta == width counts as inside.  A tiny tolerance
    # absorbs the normalization rounding of start/target.
    return deltas <= width + _EPS_WRAP


def circular_sorted(thetas: np.ndarray) -> np.ndarray:
    """Indices sorting angles ascending after normalization (stable)."""
    return np.argsort(normalize_angles(thetas), kind="stable")


def angles_in_windows(
    thetas: np.ndarray, starts: np.ndarray, widths: np.ndarray
) -> np.ndarray:
    """Batch membership: ``(n, m)`` mask of angles against ``m`` windows.

    The fully vectorized generalization of :func:`angles_in_window`
    (one ``(n, m)`` broadcast instead of a Python loop over windows) —
    used by the coverage-matrix builders of the flow and sector layers.
    Agrees exactly with the scalar predicate, including the closed ends
    and the full-circle case.
    """
    t = np.asarray(thetas, dtype=np.float64).reshape(-1)
    s = np.asarray(starts, dtype=np.float64).reshape(-1)
    w = np.asarray(widths, dtype=np.float64).reshape(-1)
    if s.shape != w.shape:
        raise ValueError(f"starts {s.shape} and widths {w.shape} must align")
    deltas = normalize_angles(t[:, None] - s[None, :])
    mask = deltas <= w[None, :] + _EPS_WRAP
    mask |= w[None, :] >= TWO_PI
    return mask
