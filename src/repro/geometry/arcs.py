"""Circular intervals (arcs) on the unit circle.

An :class:`Arc` is the angular footprint of a directional antenna: the set
``{start + t mod 2*pi : 0 <= t <= width}``.  Arcs are *closed* on both ends
(the paper's ``alpha <= theta <= alpha + rho``) and a width of ``2*pi`` is
the full circle.

The operations the packing layer needs are containment (of angles and of
other arcs), pairwise intersection/disjointness (for the non-overlapping
variant), and the measure of a union of arcs (used by instance statistics
and by the shifting scheme's loss accounting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.geometry.angles import (
    TWO_PI,
    _EPS_WRAP,
    angles_in_window,
    ccw_delta,
    normalize_angle,
)


@dataclass(frozen=True)
class Arc:
    """A closed circular interval ``[start, start + width]`` (mod ``2*pi``).

    Parameters
    ----------
    start:
        Any angle in radians; normalized to ``[0, 2*pi)`` on construction.
    width:
        Angular width in ``[0, 2*pi]``.  Widths outside that range raise
        ``ValueError`` — a "wider than full circle" arc is always a bug in
        the caller.
    """

    start: float
    width: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.width <= TWO_PI + _EPS_WRAP):
            raise ValueError(f"arc width must be in [0, 2*pi], got {self.width}")
        object.__setattr__(self, "start", normalize_angle(self.start))
        object.__setattr__(self, "width", min(float(self.width), TWO_PI))

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def end(self) -> float:
        """The (normalized) end angle ``start + width mod 2*pi``."""
        return normalize_angle(self.start + self.width)

    @property
    def is_full_circle(self) -> bool:
        return self.width >= TWO_PI

    def contains(self, theta: float) -> bool:
        """Closed containment of a single angle."""
        if self.is_full_circle:
            return True
        return ccw_delta(self.start, theta) <= self.width + _EPS_WRAP

    def contains_angles(self, thetas: np.ndarray) -> np.ndarray:
        """Vectorized closed containment; returns a boolean mask."""
        return angles_in_window(np.asarray(thetas, dtype=np.float64), self.start, self.width)

    def coverage_bounds(
        self, sorted_thetas: np.ndarray, closed_end: bool = True
    ) -> tuple[float, int, int]:
        """Covered run of a pre-sorted angle array (see module-level
        :func:`coverage_bounds`)."""
        return coverage_bounds(
            sorted_thetas, self.start, self.width, closed_end=closed_end
        )

    def contains_arc(self, other: "Arc") -> bool:
        """True iff every point of ``other`` lies in ``self``."""
        if self.is_full_circle:
            return True
        if other.is_full_circle:
            return False
        off = ccw_delta(self.start, other.start)
        return off <= self.width + _EPS_WRAP and off + other.width <= self.width + _EPS_WRAP

    # ------------------------------------------------------------------
    # Pairwise relations
    # ------------------------------------------------------------------
    def intersects(self, other: "Arc") -> bool:
        """True iff the closed arcs share at least one point.

        Two arcs that merely touch at an endpoint *do* intersect (they are
        closed sets).  The non-overlapping packing variant therefore uses
        :meth:`overlaps_interior`, which ignores endpoint contact.
        """
        if self.is_full_circle or other.is_full_circle:
            return True
        return (
            ccw_delta(self.start, other.start) <= self.width + _EPS_WRAP
            or ccw_delta(other.start, self.start) <= other.width + _EPS_WRAP
        )

    def overlaps_interior(self, other: "Arc") -> bool:
        """True iff the arcs share a set of positive measure.

        Endpoint contact (one arc ending exactly where the other starts)
        does not count.  Degenerate zero-width arcs never overlap anything
        in the interior sense.
        """
        if self.width == 0.0 or other.width == 0.0:
            return False
        if self.is_full_circle or other.is_full_circle:
            return True
        tol = 1e-9
        a = ccw_delta(self.start, other.start)
        b = ccw_delta(other.start, self.start)
        return a < self.width - tol or b < other.width - tol

    def intersection_measure(self, other: "Arc") -> float:
        """Total angular length of ``self`` ∩ ``other`` (0 if disjoint).

        The intersection of two arcs can have up to two components (when
        each arc's start lies inside the other); both are summed.
        """
        if self.is_full_circle:
            return other.width
        if other.is_full_circle:
            return self.width
        total = 0.0
        a = ccw_delta(self.start, other.start)
        if a <= self.width + _EPS_WRAP:
            total += min(self.width - a, other.width)
        b = ccw_delta(other.start, self.start)
        # Count the second component only if it is genuinely distinct from
        # the first (b == 0 and a == 0 would double count identical starts).
        if 0.0 < b <= other.width + _EPS_WRAP:
            total += min(other.width - b, self.width)
        return max(0.0, min(total, min(self.width, other.width)))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def rotated(self, delta: float) -> "Arc":
        """A copy of this arc rotated counter-clockwise by ``delta``."""
        return Arc(self.start + delta, self.width)

    def sample_angles(self, k: int) -> np.ndarray:
        """``k`` evenly spaced angles inside the arc (endpoints included).

        Useful for plotting/examples and for randomized tests that need
        points guaranteed to be covered.
        """
        if k <= 0:
            return np.empty(0, dtype=np.float64)
        if k == 1:
            offs = np.array([self.width / 2.0])
        else:
            offs = np.linspace(0.0, self.width, k)
        return np.mod(self.start + offs, TWO_PI)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Arc(start={self.start:.6f}, width={self.width:.6f})"


def coverage_bounds(
    sorted_thetas: np.ndarray,
    start: float,
    width: float,
    closed_end: bool = True,
) -> tuple[float, int, int]:
    """Index bounds of the angles covered by the arc ``[start, start+width]``.

    Array-consuming entry point for callers that already hold a *sorted*
    normalized angle array (the compiled-instance layer, the circular
    sweep): the covered angles form the contiguous run ``[lo, hi)`` into
    ``sorted_thetas``, with ``hi`` possibly exceeding ``n`` to express
    wrap-around (positions are taken mod ``n``).  Returns ``(normalized
    start, lo, hi)``.

    Closed-end containment uses the same ``1e-12`` tolerance as
    :meth:`Arc.contains`; ``closed_end=False`` makes the right end open
    (used by the disjoint-arcs DP so two stacked windows sharing a boundary
    never both claim a customer sitting exactly on it).  ``O(log n)`` — no
    re-sorting, no Python-level loop.
    """
    s = normalize_angle(start)
    n = int(sorted_thetas.shape[0])
    if n == 0:
        return s, 0, 0
    lo = int(np.searchsorted(sorted_thetas, s - _EPS_WRAP, side="left"))
    if width >= TWO_PI:
        return s, lo, lo + n
    end_tol = _EPS_WRAP if closed_end else -_EPS_WRAP
    hi = int(
        np.searchsorted(
            np.concatenate([sorted_thetas, sorted_thetas + TWO_PI]),
            s + width + end_tol,
            side="right",
        )
    )
    hi = max(lo, min(hi, lo + n))
    return s, lo, hi


def arcs_pairwise_disjoint(arcs: Sequence[Arc]) -> bool:
    """True iff no two arcs in the sequence overlap in the interior sense.

    This is the feasibility predicate of the non-overlapping rotation
    variant.  Quadratic in the number of arcs, which is fine: the number of
    antennas per station is small (the paper's setting), and the check is
    used for verification rather than inside solver inner loops.
    """
    for i in range(len(arcs)):
        for j in range(i + 1, len(arcs)):
            if arcs[i].overlaps_interior(arcs[j]):
                return False
    return True


def union_measure(arcs: Iterable[Arc]) -> float:
    """Total angular measure of the union of a collection of arcs.

    Implemented by the standard cut-and-sweep: if any arc is the full
    circle the answer is ``2*pi``; otherwise cut the circle at the start of
    the first arc and merge linear intervals.
    """
    arc_list = [a for a in arcs if a.width > 0.0]
    if not arc_list:
        return 0.0
    if any(a.is_full_circle for a in arc_list):
        return TWO_PI
    cut = arc_list[0].start
    intervals: list[tuple[float, float]] = []
    for a in arc_list:
        s = ccw_delta(cut, a.start)
        e = s + a.width
        if e <= TWO_PI + _EPS_WRAP:
            intervals.append((s, min(e, TWO_PI)))
        else:
            intervals.append((s, TWO_PI))
            intervals.append((0.0, e - TWO_PI))
    intervals.sort()
    total = 0.0
    cur_s, cur_e = intervals[0]
    for s, e in intervals[1:]:
        if s <= cur_e + _EPS_WRAP:
            cur_e = max(cur_e, e)
        else:
            total += cur_e - cur_s
            cur_s, cur_e = s, e
    total += cur_e - cur_s
    return min(total, TWO_PI)
