"""Sectors: the paper's directional-antenna footprint.

A directional antenna with parameters ``(alpha, rho, R)`` anchored at a base
station ``apex`` serves exactly the points whose polar coordinates
``(theta, r)`` *relative to the apex* satisfy ``alpha <= theta <= alpha+rho``
and ``r <= R`` — the definition quoted verbatim in the paper's abstract.

:class:`Sector` is the geometric object; orientation-free antenna *specs*
live in :mod:`repro.model.antenna`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.geometry.angles import TWO_PI
from repro.geometry.arcs import Arc
from repro.geometry.points import cartesian_to_polar, relative_polar


@dataclass(frozen=True)
class Sector:
    """A closed sector ``{(theta, r) around apex : theta in arc, r <= radius}``.

    Parameters
    ----------
    apex:
        ``(x, y)`` position of the antenna / base station.
    arc:
        The angular footprint ``[alpha, alpha + rho]``.
    radius:
        Maximum serving distance ``R``; must be positive and finite, or
        ``math.inf`` for an unbounded sector (used when reducing pure angle
        instances to sector form).
    """

    apex: Tuple[float, float]
    arc: Arc
    radius: float

    def __post_init__(self) -> None:
        if not (self.radius > 0.0):
            raise ValueError(f"sector radius must be positive, got {self.radius}")
        object.__setattr__(self, "apex", (float(self.apex[0]), float(self.apex[1])))

    @staticmethod
    def from_parameters(
        apex: Tuple[float, float], alpha: float, rho: float, radius: float
    ) -> "Sector":
        """Build a sector from the paper's ``(alpha, rho, R)`` parameters."""
        return Sector(apex=apex, arc=Arc(alpha, rho), radius=radius)

    @property
    def alpha(self) -> float:
        """Orientation (start angle) of the sector."""
        return self.arc.start

    @property
    def rho(self) -> float:
        """Angular width of the sector."""
        return self.arc.width

    def contains_point(self, x: float, y: float) -> bool:
        """Closed membership test for a single cartesian point.

        A point exactly on the apex is inside regardless of orientation
        (its angle is undefined; it is at distance 0 <= R).
        """
        theta, r = cartesian_to_polar(x - self.apex[0], y - self.apex[1])
        if r == 0.0:
            return True
        if r > self.radius * (1.0 + 1e-12):
            return False
        return self.arc.contains(theta)

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Vectorized membership for an ``(n, 2)`` array of points."""
        thetas, rs = relative_polar(points, np.asarray(self.apex))
        mask = rs <= self.radius * (1.0 + 1e-12)
        ang = self.arc.contains_angles(thetas)
        # Apex-coincident points are covered by any orientation.
        return (mask & ang) | (rs == 0.0)

    @property
    def area(self) -> float:
        """Planar area ``rho/2 * R^2`` of the sector."""
        return 0.5 * self.arc.width * self.radius * self.radius

    def boundary_polygon(self, arc_samples: int = 32) -> np.ndarray:
        """Approximate polygon of the sector boundary (apex + arc samples).

        Intended for examples/visualisation (ASCII plots) and for sanity
        tests that compare polygon-area to the closed-form :attr:`area`.
        """
        ax, ay = self.apex
        if self.arc.is_full_circle:
            angles = np.linspace(0.0, TWO_PI, max(arc_samples, 8), endpoint=False)
            ring = np.stack(
                [ax + self.radius * np.cos(angles), ay + self.radius * np.sin(angles)],
                axis=1,
            )
            return ring
        angles = self.arc.sample_angles(max(arc_samples, 2))
        ring = np.stack(
            [ax + self.radius * np.cos(angles), ay + self.radius * np.sin(angles)],
            axis=1,
        )
        return np.vstack([[ax, ay], ring])
