"""Payload introspection shared by the engine, planner and partitioner.

Two tiny heuristics used to be private to ``repro.engine.core`` and were
about to be re-implemented by the partition planner and the service
batcher; they live here so every layer agrees on what a payload *is*
(family) and how *big* it is (the size that drives the backend and
partition auto thresholds).
"""

from __future__ import annotations

from typing import Any

__all__ = ["infer_family", "instance_size"]


def infer_family(instance: Any) -> str:
    """Infer the solver family from the payload type.

    ``AngleInstance`` -> ``"angle"``, ``SectorInstance`` -> ``"sector"``,
    a 3-tuple/list -> ``"knapsack"`` (the ``(weights, profits, capacity)``
    oracle payload).  Covering and online runs reuse angle instances, so
    they must name their family explicitly — inference raises
    ``ValueError`` for anything else.
    """
    from repro.model.instance import AngleInstance, SectorInstance

    if isinstance(instance, AngleInstance):
        return "angle"
    if isinstance(instance, SectorInstance):
        return "sector"
    if isinstance(instance, (tuple, list)) and len(instance) == 3:
        return "knapsack"
    raise ValueError(
        f"cannot infer solver family from {type(instance).__name__}; "
        f"set SolveRequest.family explicitly"
    )


def instance_size(instance: Any) -> int:
    """Customer/item count driving the backend and partition thresholds."""
    n = getattr(instance, "n", None)
    if n is not None:
        return int(n)
    if isinstance(instance, (tuple, list)) and len(instance) == 3:
        import numpy as np

        return int(np.size(instance[0]))
    return 0
