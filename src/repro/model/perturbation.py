"""Instance perturbation: noise models for robustness studies.

A plan is computed on a *forecast* instance; reality differs.  These
helpers produce controlled perturbations of an instance — demand noise
(multiplicative lognormal), angular jitter (wrapped normal), and customer
churn (drop/replace) — so experiments can measure how a fixed orientation
plan degrades as the realization drifts from the forecast (experiment
E13) and how much re-planning buys (experiment E14).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.geometry.angles import TWO_PI, normalize_angles
from repro.model.generators import RngLike, _rng
from repro.model.instance import AngleInstance


def perturb_demands(
    instance: AngleInstance, sigma: float, seed: RngLike = 0
) -> AngleInstance:
    """Multiply each demand by an independent lognormal factor.

    ``sigma`` is the standard deviation of the underlying normal; 0 is a
    no-op.  Profits follow demands when the instance uses the paper's
    profit-equals-demand objective, and are kept fixed otherwise.
    """
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    rng = _rng(seed)
    factors = np.exp(rng.normal(0.0, sigma, size=instance.n))
    new_demands = instance.demands * factors
    profits = new_demands if instance.profit_equals_demand else instance.profits
    return AngleInstance(
        thetas=instance.thetas,
        demands=new_demands,
        profits=profits,
        antennas=instance.antennas,
    )


def perturb_angles(
    instance: AngleInstance, sigma: float, seed: RngLike = 0
) -> AngleInstance:
    """Add wrapped-normal jitter of standard deviation ``sigma`` (radians)."""
    if sigma < 0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    rng = _rng(seed)
    thetas = normalize_angles(
        instance.thetas + rng.normal(0.0, sigma, size=instance.n)
    )
    return AngleInstance(
        thetas=thetas,
        demands=instance.demands,
        profits=instance.profits,
        antennas=instance.antennas,
    )


def churn_customers(
    instance: AngleInstance,
    churn_fraction: float,
    seed: RngLike = 0,
) -> AngleInstance:
    """Replace a random fraction of customers with fresh uniform ones.

    Departing customers are chosen uniformly; arrivals get uniform angles
    and demands resampled (with replacement) from the surviving empirical
    demand distribution, keeping the demand scale comparable.
    """
    if not (0.0 <= churn_fraction <= 1.0):
        raise ValueError(f"churn_fraction must be in [0, 1], got {churn_fraction}")
    if instance.n == 0 or churn_fraction == 0.0:
        return instance
    rng = _rng(seed)
    n_out = int(round(churn_fraction * instance.n))
    if n_out == 0:
        return instance
    leave = rng.choice(instance.n, size=n_out, replace=False)
    keep = np.setdiff1d(np.arange(instance.n), leave)
    pool = instance.demands[keep] if keep.size else instance.demands
    new_thetas = rng.uniform(0.0, TWO_PI, size=n_out)
    new_demands = rng.choice(pool, size=n_out, replace=True)
    thetas = np.concatenate([instance.thetas[keep], new_thetas])
    demands = np.concatenate([instance.demands[keep], new_demands])
    if instance.profit_equals_demand:
        profits = demands.copy()
    else:
        new_profits = rng.choice(
            instance.profits[keep] if keep.size else instance.profits,
            size=n_out,
            replace=True,
        )
        profits = np.concatenate([instance.profits[keep], new_profits])
    return AngleInstance(
        thetas=thetas, demands=demands, profits=profits, antennas=instance.antennas
    )


def perturb(
    instance: AngleInstance,
    demand_sigma: float = 0.0,
    angle_sigma: float = 0.0,
    churn_fraction: float = 0.0,
    seed: RngLike = 0,
) -> AngleInstance:
    """Compose the three noise models (demands, angles, churn) in order."""
    rng = _rng(seed)
    out = instance
    if demand_sigma > 0:
        out = perturb_demands(out, demand_sigma, rng)
    if angle_sigma > 0:
        out = perturb_angles(out, angle_sigma, rng)
    if churn_fraction > 0:
        out = churn_customers(out, churn_fraction, rng)
    return out


def rotating_demand_series(
    base: AngleInstance,
    periods: int = 4,
    rotation_per_period: Optional[float] = None,
    demand_sigma: float = 0.1,
    seed: RngLike = 0,
) -> list[AngleInstance]:
    """A temporal series: the demand pattern rotates around the circle.

    Models the day/night drift of hotspot demand (downtown by day,
    residential by night): each period the customer angles advance by
    ``rotation_per_period`` (default ``2*pi/periods``) with fresh demand
    noise.  Used by experiment E14 (value of re-orienting steerable
    antennas each period vs freezing one plan).
    """
    if periods < 1:
        raise ValueError(f"periods must be >= 1, got {periods}")
    rng = _rng(seed)
    step = TWO_PI / periods if rotation_per_period is None else rotation_per_period
    series = []
    for p in range(periods):
        rotated = AngleInstance(
            thetas=normalize_angles(base.thetas + p * step),
            demands=base.demands,
            profits=base.profits,
            antennas=base.antennas,
        )
        series.append(perturb_demands(rotated, demand_sigma, rng))
    return series
