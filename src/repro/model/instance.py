"""Problem instances: packing to angles (1-D) and packing to sectors (2-D).

Both instance classes are immutable-by-convention: their arrays are marked
read-only, and all "modification" methods return new instances.  Customers
live in parallel arrays (struct-of-arrays, per the HPC guides) so the
solvers can vectorize membership and prefix-sum computations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.angles import normalize_angles
from repro.geometry.points import relative_polar
from repro.model.antenna import AntennaSpec
from repro.model.customer import Customer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports model users)
    from repro.core.compiled import CompiledAngleInstance, CompiledSectorInstance
    from repro.model.constraints import Constraint


class InvalidInstanceError(ValueError):
    """An instance failed validation; ``field`` names the offending input.

    Raised at construction and deserialization time so malformed data
    (NaN/negative demands, non-finite coordinates, out-of-range angles)
    is rejected at the boundary with a precise message instead of
    surfacing as solver misbehaviour deep inside a run.
    """

    def __init__(self, field: str, message: str):
        self.field = field
        super().__init__(f"invalid instance field {field!r}: {message}")


def _readonly(arr: np.ndarray) -> np.ndarray:
    """Adopt ``arr`` as an immutable float64 array.

    Arrays that are *already* read-only float64 are adopted as-is instead
    of being copied: the caller has given up write access, so sharing the
    buffer is safe.  This is what lets the partitioner
    (:mod:`repro.engine.partition`) build per-partition sub-instances as
    contiguous *views* of one permuted struct-of-arrays without paying a
    second O(n) copy per array per partition.
    """
    if (
        isinstance(arr, np.ndarray)
        and arr.dtype == np.float64
        and not arr.flags.writeable
    ):
        return arr
    out = np.array(arr, dtype=np.float64, copy=True)
    out.flags.writeable = False
    return out


def _compile_token(*arrays: np.ndarray) -> tuple:
    """Cheap content fingerprint guarding the ``compile()`` memo.

    Instance arrays are read-only by construction, but numpy cannot stop a
    caller that owns the buffer from re-enabling ``writeable`` and
    mutating in place — which would silently desynchronize the memoized
    compiled view (stale sorts, stale prefix sums, wrong answers).  Two
    O(n) reductions per array (plain sum + position-weighted sum, so
    permutations are caught too) make the memo self-checking at a cost
    far below one compile.  See ``docs/ARCHITECTURE.md`` (immutability
    contract); collisions are possible in principle but require a
    mutation preserving both reductions of some array.
    """
    parts = []
    for arr in arrays:
        a = np.asarray(arr, dtype=np.float64).ravel()
        parts.append(float(a.sum()))
        parts.append(
            float(np.dot(a, np.arange(1, a.size + 1, dtype=np.float64)))
            if a.size
            else 0.0
        )
    return tuple(parts)


def _validate_customer_arrays(
    demands: np.ndarray, profits: np.ndarray, n: int
) -> None:
    if demands.shape != (n,):
        raise InvalidInstanceError(
            "demands", f"must have shape ({n},), got {demands.shape}"
        )
    if profits.shape != (n,):
        raise InvalidInstanceError(
            "profits", f"must have shape ({n},), got {profits.shape}"
        )
    if n and (~np.isfinite(demands)).any():
        bad = int(np.flatnonzero(~np.isfinite(demands))[0])
        raise InvalidInstanceError(
            "demands", f"must be finite (entry {bad} is {demands[bad]})"
        )
    if n and (~np.isfinite(profits)).any():
        bad = int(np.flatnonzero(~np.isfinite(profits))[0])
        raise InvalidInstanceError(
            "profits", f"must be finite (entry {bad} is {profits[bad]})"
        )
    if n and (demands <= 0).any():
        bad = int(np.flatnonzero(demands <= 0)[0])
        raise InvalidInstanceError(
            "demands", f"must be positive (entry {bad} is {demands[bad]})"
        )
    if n and (profits <= 0).any():
        bad = int(np.flatnonzero(profits <= 0)[0])
        raise InvalidInstanceError(
            "profits", f"must be positive (entry {bad} is {profits[bad]})"
        )


@dataclass(frozen=True)
class AngleInstance:
    """Packing-to-angles instance: customers on a circle, arcs with capacity.

    Parameters
    ----------
    thetas:
        ``(n,)`` customer angles in radians (normalized on construction).
    demands:
        ``(n,)`` positive demands.
    antennas:
        One :class:`AntennaSpec` per antenna; at least one.  Radii are
        ignored in the 1-D problem (every customer is reachable).
    profits:
        ``(n,)`` positive profits; defaults to ``demands`` (the paper's
        maximize-served-demand objective).
    """

    thetas: np.ndarray
    demands: np.ndarray
    antennas: Tuple[AntennaSpec, ...]
    profits: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        raw_thetas = np.asarray(self.thetas, dtype=np.float64)
        if raw_thetas.size and (~np.isfinite(raw_thetas)).any():
            bad = int(np.flatnonzero(~np.isfinite(raw_thetas))[0])
            raise InvalidInstanceError(
                "thetas", f"must be finite (entry {bad} is {raw_thetas[bad]})"
            )
        thetas = normalize_angles(raw_thetas)
        demands = np.asarray(self.demands, dtype=np.float64)
        n = thetas.shape[0]
        profits = (
            demands.copy()
            if self.profits is None
            else np.asarray(self.profits, dtype=np.float64)
        )
        if thetas.ndim != 1:
            raise ValueError(f"thetas must be 1-D, got shape {thetas.shape}")
        _validate_customer_arrays(demands, profits, n)
        antennas = tuple(self.antennas)
        if not antennas:
            raise ValueError("instance needs at least one antenna")
        if not all(isinstance(a, AntennaSpec) for a in antennas):
            raise TypeError("antennas must be AntennaSpec objects")
        object.__setattr__(self, "thetas", _readonly(thetas))
        object.__setattr__(self, "demands", _readonly(demands))
        object.__setattr__(self, "profits", _readonly(profits))
        object.__setattr__(self, "antennas", antennas)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_customers(
        cls, customers: Sequence[Customer], antennas: Sequence[AntennaSpec]
    ) -> "AngleInstance":
        """Build from :class:`Customer` records (must all be angular)."""
        if any(not c.is_angular for c in customers):
            raise ValueError("AngleInstance requires angular customers (theta set)")
        return cls(
            thetas=np.array([c.theta for c in customers], dtype=np.float64),
            demands=np.array([c.demand for c in customers], dtype=np.float64),
            profits=np.array([c.profit for c in customers], dtype=np.float64),
            antennas=tuple(antennas),
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of customers."""
        return int(self.thetas.shape[0])

    @property
    def k(self) -> int:
        """Number of antennas."""
        return len(self.antennas)

    @property
    def capacities(self) -> np.ndarray:
        """``(k,)`` vector of antenna capacities."""
        return np.array([a.capacity for a in self.antennas], dtype=np.float64)

    @property
    def widths(self) -> np.ndarray:
        """``(k,)`` vector of antenna angular widths."""
        return np.array([a.rho for a in self.antennas], dtype=np.float64)

    @property
    def total_demand(self) -> float:
        return float(self.demands.sum())

    @property
    def total_profit(self) -> float:
        return float(self.profits.sum())

    @property
    def has_uniform_antennas(self) -> bool:
        """True when all antennas share width and capacity."""
        first = self.antennas[0]
        return all(
            a.rho == first.rho and a.capacity == first.capacity
            for a in self.antennas
        )

    @property
    def profit_equals_demand(self) -> bool:
        """True for the paper's objective (profit == demand)."""
        return bool(np.array_equal(self.profits, self.demands))

    # ------------------------------------------------------------------
    # Derived instances
    # ------------------------------------------------------------------
    def restrict(self, indices: np.ndarray) -> Tuple["AngleInstance", np.ndarray]:
        """Sub-instance over the given customer indices.

        Returns ``(sub_instance, original_indices)`` where
        ``original_indices[j]`` is the index in *this* instance of the
        ``j``-th customer of the sub-instance.
        """
        idx = np.asarray(indices)
        if idx.dtype == bool:
            idx = np.flatnonzero(idx)
        idx = idx.astype(np.intp)
        sub = AngleInstance(
            thetas=self.thetas[idx],
            demands=self.demands[idx],
            profits=self.profits[idx],
            antennas=self.antennas,
        )
        return sub, idx

    def with_antennas(self, antennas: Sequence[AntennaSpec]) -> "AngleInstance":
        """Same customers, different antenna set."""
        return AngleInstance(
            thetas=self.thetas,
            demands=self.demands,
            profits=self.profits,
            antennas=tuple(antennas),
        )

    def compile(self) -> "CompiledAngleInstance":
        """The memoized compiled view of this instance.

        Builds the :class:`~repro.core.compiled.CompiledAngleInstance`
        struct-of-arrays view (stable angular sort, demand/profit prefix
        sums, per-width sweeps, candidate grids) on first call and caches
        it on the object.  The engine's fingerprint-keyed cache
        (:func:`repro.engine.cache.shared_compiled`) extends this memo
        across equal-content instances.

        The memo assumes the instance arrays are immutable (they are
        created read-only); a cheap content fingerprint re-checked on
        every memo hit raises ``RuntimeError`` if they were mutated in
        place anyway, so a stale view can never serve wrong answers.
        """
        token = _compile_token(self.thetas, self.demands, self.profits)
        view = self.__dict__.get("_compiled")
        if view is None:
            from repro.core.compiled import compile_instance

            view = compile_instance(self)
            object.__setattr__(self, "_compiled", view)
            object.__setattr__(self, "_compile_token", token)
        elif self.__dict__.get("_compile_token") != token:
            raise RuntimeError(
                "AngleInstance arrays were mutated after compile(); the "
                "memoized compiled view is stale. Instance arrays are "
                "immutable by contract (docs/ARCHITECTURE.md) — build a "
                "new instance instead of writing in place."
            )
        return view

    def __getstate__(self) -> dict:
        # The compiled view is derived data: drop it (and its staleness
        # token) from pickles — worker processes rebuild on demand instead
        # of shipping sweeps around.
        return {
            k: v for k, v in self.__dict__.items()
            if k not in ("_compiled", "_compile_token")
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AngleInstance):
            return NotImplemented
        return (
            np.array_equal(self.thetas, other.thetas)
            and np.array_equal(self.demands, other.demands)
            and np.array_equal(self.profits, other.profits)
            and self.antennas == other.antennas
        )

    def __hash__(self) -> int:  # dataclass(frozen) would use fields; arrays unhashable
        return hash((self.n, self.k, float(self.demands.sum()) if self.n else 0.0))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AngleInstance(n={self.n}, k={self.k}, total_demand={self.total_demand:.3f})"


@dataclass(frozen=True)
class Station:
    """A base station: a position holding one or more antennas.

    All antennas of a sector instance must have finite radii (otherwise the
    sector is unbounded and the 2-D problem degenerates to the 1-D one).
    """

    position: Tuple[float, float]
    antennas: Tuple[AntennaSpec, ...]

    def __post_init__(self) -> None:
        x, y = self.position
        object.__setattr__(self, "position", (float(x), float(y)))
        antennas = tuple(self.antennas)
        if not antennas:
            raise ValueError("a station needs at least one antenna")
        if any(math.isinf(a.radius) for a in antennas):
            raise ValueError("sector-instance antennas need finite radii")
        object.__setattr__(self, "antennas", antennas)

    @property
    def k(self) -> int:
        return len(self.antennas)

    @property
    def max_radius(self) -> float:
        return max(a.radius for a in self.antennas)


@dataclass(frozen=True)
class SectorInstance:
    """Packing-to-sectors instance: planar customers, stations with antennas.

    Parameters
    ----------
    positions:
        ``(n, 2)`` customer positions.
    demands / profits:
        As in :class:`AngleInstance`.
    stations:
        At least one :class:`Station`.
    constraints:
        Optional tuple of :class:`~repro.model.constraints.Constraint`
        specs (``reach``, ``los_blockage``, ``max_assignments``, …).
        They compose by AND into per-(station, customer) effective
        eligibility masks at compile time; the empty default is the
        paper's pure-reach model and solves bit-identically to the
        pre-pipeline code.  Grammar and semantics: ``docs/SCENARIOS.md``.
    """

    positions: np.ndarray
    demands: np.ndarray
    stations: Tuple[Station, ...]
    profits: Optional[np.ndarray] = None
    constraints: Tuple["Constraint", ...] = ()

    def __post_init__(self) -> None:
        pos = np.asarray(self.positions, dtype=np.float64)
        if pos.ndim != 2 or pos.shape[1] != 2:
            raise InvalidInstanceError(
                "positions", f"must have shape (n, 2), got {pos.shape}"
            )
        if pos.size and (~np.isfinite(pos)).any():
            bad = int(np.flatnonzero(~np.isfinite(pos).all(axis=1))[0])
            raise InvalidInstanceError(
                "positions", f"must be finite (row {bad} is {pos[bad].tolist()})"
            )
        n = pos.shape[0]
        demands = np.asarray(self.demands, dtype=np.float64)
        profits = (
            demands.copy()
            if self.profits is None
            else np.asarray(self.profits, dtype=np.float64)
        )
        _validate_customer_arrays(demands, profits, n)
        stations = tuple(self.stations)
        if not stations:
            raise ValueError("instance needs at least one station")
        if not all(isinstance(s, Station) for s in stations):
            raise TypeError("stations must be Station objects")
        object.__setattr__(self, "positions", _readonly(pos))
        object.__setattr__(self, "demands", _readonly(demands))
        object.__setattr__(self, "profits", _readonly(profits))
        object.__setattr__(self, "stations", stations)
        if self.constraints:
            # Lazy import: constraints.py imports InvalidInstanceError from
            # this module, so the dependency must point one way at import
            # time.  The empty default skips the import entirely.
            from repro.model.constraints import validate_constraints

            object.__setattr__(
                self, "constraints", validate_constraints(self.constraints)
            )
        else:
            object.__setattr__(self, "constraints", ())

    @classmethod
    def from_customers(
        cls, customers: Sequence[Customer], stations: Sequence[Station]
    ) -> "SectorInstance":
        """Build from :class:`Customer` records (must all be planar)."""
        if any(c.is_angular for c in customers):
            raise ValueError("SectorInstance requires planar customers (position set)")
        return cls(
            positions=np.array([c.position for c in customers], dtype=np.float64),
            demands=np.array([c.demand for c in customers], dtype=np.float64),
            profits=np.array([c.profit for c in customers], dtype=np.float64),
            stations=tuple(stations),
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return int(self.positions.shape[0])

    @property
    def m(self) -> int:
        """Number of stations."""
        return len(self.stations)

    @property
    def total_antennas(self) -> int:
        return sum(s.k for s in self.stations)

    @property
    def total_demand(self) -> float:
        return float(self.demands.sum())

    @property
    def total_profit(self) -> float:
        return float(self.profits.sum())

    def antenna_table(self) -> list[tuple[int, int, AntennaSpec]]:
        """Global antenna enumeration: ``(global_id, station_id, spec)``.

        Global ids are assigned station by station in declaration order and
        are the antenna indices used by :class:`SectorSolution`.
        """
        table = []
        g = 0
        for s_id, st in enumerate(self.stations):
            for spec in st.antennas:
                table.append((g, s_id, spec))
                g += 1
        return table

    # ------------------------------------------------------------------
    # Per-station geometry
    # ------------------------------------------------------------------
    def station_polar(self, station_id: int) -> Tuple[np.ndarray, np.ndarray]:
        """``(thetas, rs)`` of every customer relative to the station."""
        st = self.stations[station_id]
        return relative_polar(self.positions, np.asarray(st.position))

    def reachable_mask(self, station_id: int, radius: Optional[float] = None) -> np.ndarray:
        """Customers within ``radius`` (default: station max) of the station."""
        st = self.stations[station_id]
        r = st.max_radius if radius is None else radius
        _, rs = self.station_polar(station_id)
        return rs <= r * (1.0 + 1e-12)

    def station_angle_instance(
        self, station_id: int
    ) -> Tuple[AngleInstance, np.ndarray]:
        """Reduce one station to a 1-D angle instance.

        Keeps only customers within the station's *minimum* antenna radius
        when radii differ (the conservative reduction that is exact for the
        common equal-radius case), and returns the original customer
        indices alongside.  Mixed-radius stations are handled exactly by
        the 2-D solvers in :mod:`repro.packing.sectors`, which work with
        per-antenna eligibility masks instead.
        """
        st = self.stations[station_id]
        r_min = min(a.radius for a in st.antennas)
        thetas, rs = self.station_polar(station_id)
        mask = rs <= r_min * (1.0 + 1e-12)
        idx = np.flatnonzero(mask)
        sub = AngleInstance(
            thetas=thetas[idx],
            demands=self.demands[idx],
            profits=self.profits[idx],
            antennas=st.antennas,
        )
        return sub, idx

    def compile(self) -> "CompiledSectorInstance":
        """The memoized compiled view of this instance.

        Station polar conversions, fitting-radius masks and the shared
        eligibility triple live on the returned
        :class:`~repro.core.compiled.CompiledSectorInstance`; see
        :meth:`AngleInstance.compile` for the memoization contract
        (including the in-place-mutation staleness guard).
        """
        token = _compile_token(self.positions, self.demands, self.profits)
        view = self.__dict__.get("_compiled")
        if view is None:
            from repro.core.compiled import compile_instance

            view = compile_instance(self)
            object.__setattr__(self, "_compiled", view)
            object.__setattr__(self, "_compile_token", token)
        elif self.__dict__.get("_compile_token") != token:
            raise RuntimeError(
                "SectorInstance arrays were mutated after compile(); the "
                "memoized compiled view is stale. Instance arrays are "
                "immutable by contract (docs/ARCHITECTURE.md) — build a "
                "new instance instead of writing in place."
            )
        return view

    def __getstate__(self) -> dict:
        # Derived data: never pickle the compiled view (see AngleInstance).
        return {
            k: v for k, v in self.__dict__.items()
            if k not in ("_compiled", "_compile_token")
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SectorInstance):
            return NotImplemented
        return (
            np.array_equal(self.positions, other.positions)
            and np.array_equal(self.demands, other.demands)
            and np.array_equal(self.profits, other.profits)
            and self.stations == other.stations
            and self.constraints == other.constraints
        )

    def __hash__(self) -> int:
        return hash((self.n, self.m, float(self.demands.sum()) if self.n else 0.0))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SectorInstance(n={self.n}, stations={self.m}, "
            f"antennas={self.total_antennas}, total_demand={self.total_demand:.3f})"
        )
