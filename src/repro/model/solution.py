"""Solutions and independent feasibility verification.

Solvers *return* these objects; they never certify them.  Verification is
performed here, from first principles (arc containment, capacity sums,
sector membership), so that a solver bug surfaces as a
:class:`FeasibilityError` in tests instead of a silently wrong benchmark
number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.geometry.arcs import Arc, arcs_pairwise_disjoint
from repro.model.instance import AngleInstance, SectorInstance

#: Relative tolerance for capacity checks (absorbs float summation noise).
_CAP_TOL = 1e-9


class FeasibilityError(ValueError):
    """Raised when a solution violates the instance's constraints.

    Attributes
    ----------
    violations:
        Human-readable list of every violated constraint found.
    """

    def __init__(self, violations: List[str]):
        self.violations = violations
        super().__init__("; ".join(violations))


def _check_assignment_array(assignment: np.ndarray, n: int, k: int) -> List[str]:
    problems = []
    if assignment.shape != (n,):
        problems.append(
            f"assignment must have shape ({n},), got {assignment.shape}"
        )
        return problems
    if assignment.size and (assignment < -1).any():
        problems.append("assignment contains values below -1")
    if assignment.size and (assignment >= k).any():
        problems.append(f"assignment references antenna >= k={k}")
    return problems


@dataclass(frozen=True)
class AngleSolution:
    """Integral solution of a 1-D instance.

    Parameters
    ----------
    orientations:
        ``(k,)`` start angles, one per antenna of the instance.
    assignment:
        ``(n,)`` integer array: ``assignment[i]`` is the antenna serving
        customer ``i`` or ``-1`` when the customer is rejected.
    meta:
        Optional provenance dict (never affects feasibility or value).
        The resilience layer records the fallback stage / degradation
        reason here (``meta["resilience"]``, contract:
        ``docs/RESILIENCE.md``).
    """

    orientations: np.ndarray
    assignment: np.ndarray
    meta: Optional[Dict[str, Any]] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        ori = np.asarray(self.orientations, dtype=np.float64).reshape(-1)
        asg = np.asarray(self.assignment, dtype=np.int64).reshape(-1)
        object.__setattr__(self, "orientations", ori)
        object.__setattr__(self, "assignment", asg)

    @classmethod
    def empty(cls, instance: AngleInstance) -> "AngleSolution":
        """The all-rejected solution (orientations at 0)."""
        return cls(
            orientations=np.zeros(instance.k),
            assignment=np.full(instance.n, -1, dtype=np.int64),
        )

    def with_meta(self, **entries: Any) -> "AngleSolution":
        """A copy with ``entries`` merged into :attr:`meta`."""
        merged = dict(self.meta or {})
        merged.update(entries)
        return AngleSolution(
            orientations=self.orientations, assignment=self.assignment, meta=merged
        )

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def value(self, instance: AngleInstance) -> float:
        """Total profit of served customers."""
        served = self.assignment >= 0
        return float(instance.profits[served].sum())

    def served_demand(self, instance: AngleInstance) -> float:
        served = self.assignment >= 0
        return float(instance.demands[served].sum())

    def served_count(self) -> int:
        return int((self.assignment >= 0).sum())

    def loads(self, instance: AngleInstance) -> np.ndarray:
        """``(k,)`` vector of demand loads per antenna."""
        loads = np.zeros(instance.k)
        served = self.assignment >= 0
        np.add.at(loads, self.assignment[served], instance.demands[served])
        return loads

    def arcs(self, instance: AngleInstance) -> List[Arc]:
        """The oriented angular footprints of the antennas."""
        return [
            Arc(float(self.orientations[j]), instance.antennas[j].rho)
            for j in range(instance.k)
        ]

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def violations(
        self, instance: AngleInstance, require_disjoint: bool = False
    ) -> List[str]:
        """All constraint violations (empty list == feasible)."""
        problems: List[str] = []
        if self.orientations.shape != (instance.k,):
            problems.append(
                f"orientations must have shape ({instance.k},), "
                f"got {self.orientations.shape}"
            )
            return problems
        problems += _check_assignment_array(self.assignment, instance.n, instance.k)
        if problems:
            return problems
        arcs = self.arcs(instance)
        for j, arc in enumerate(arcs):
            members = np.flatnonzero(self.assignment == j)
            if members.size == 0:
                continue
            covered = arc.contains_angles(instance.thetas[members])
            for i in members[~covered]:
                problems.append(
                    f"customer {i} assigned to antenna {j} but angle "
                    f"{instance.thetas[i]:.6f} not in arc {arc}"
                )
            load = float(instance.demands[members].sum())
            cap = instance.antennas[j].capacity
            if load > cap * (1.0 + _CAP_TOL):
                problems.append(
                    f"antenna {j} overloaded: load {load:.6f} > capacity {cap:.6f}"
                )
        if require_disjoint:
            # Only antennas actually serving customers count: an idle
            # antenna is switched off and radiates no beam.
            active = [
                arcs[j]
                for j in range(instance.k)
                if (self.assignment == j).any()
            ]
            if not arcs_pairwise_disjoint(active):
                problems.append(
                    "active arcs overlap but the non-overlapping variant "
                    "was requested"
                )
        return problems

    def verify(
        self, instance: AngleInstance, require_disjoint: bool = False
    ) -> "AngleSolution":
        """Raise :class:`FeasibilityError` on any violation; else return self."""
        problems = self.violations(instance, require_disjoint=require_disjoint)
        if problems:
            raise FeasibilityError(problems)
        return self


@dataclass(frozen=True)
class FractionalSolution:
    """Splittable solution: customer ``i`` sends fraction ``x[i, j]`` to antenna ``j``.

    The objective credits profit proportionally to the served fraction:
    ``value = sum_i profits[i] * sum_j x[i, j]``.
    """

    orientations: np.ndarray
    fractions: np.ndarray

    def __post_init__(self) -> None:
        ori = np.asarray(self.orientations, dtype=np.float64).reshape(-1)
        frac = np.asarray(self.fractions, dtype=np.float64)
        object.__setattr__(self, "orientations", ori)
        object.__setattr__(self, "fractions", frac)

    def value(self, instance: AngleInstance) -> float:
        served_fraction = self.fractions.sum(axis=1)
        return float((instance.profits * served_fraction).sum())

    def served_demand(self, instance: AngleInstance) -> float:
        served_fraction = self.fractions.sum(axis=1)
        return float((instance.demands * served_fraction).sum())

    def loads(self, instance: AngleInstance) -> np.ndarray:
        return np.asarray(
            (instance.demands[:, None] * self.fractions).sum(axis=0)
        )

    def violations(self, instance: AngleInstance) -> List[str]:
        problems: List[str] = []
        if self.orientations.shape != (instance.k,):
            problems.append(
                f"orientations must have shape ({instance.k},), "
                f"got {self.orientations.shape}"
            )
            return problems
        if self.fractions.shape != (instance.n, instance.k):
            problems.append(
                f"fractions must have shape ({instance.n}, {instance.k}), "
                f"got {self.fractions.shape}"
            )
            return problems
        if instance.n == 0:
            return problems
        if (self.fractions < -1e-12).any():
            problems.append("negative assignment fraction")
        row = self.fractions.sum(axis=1)
        over = np.flatnonzero(row > 1.0 + 1e-9)
        for i in over:
            problems.append(f"customer {i} served at fraction {row[i]:.9f} > 1")
        for j in range(instance.k):
            arc = Arc(float(self.orientations[j]), instance.antennas[j].rho)
            support = np.flatnonzero(self.fractions[:, j] > 1e-12)
            if support.size:
                covered = arc.contains_angles(instance.thetas[support])
                for i in support[~covered]:
                    problems.append(
                        f"customer {i} fractionally assigned to antenna {j} "
                        f"outside its arc"
                    )
            load = float((instance.demands * self.fractions[:, j]).sum())
            cap = instance.antennas[j].capacity
            if load > cap * (1.0 + _CAP_TOL):
                problems.append(
                    f"antenna {j} overloaded: load {load:.6f} > capacity {cap:.6f}"
                )
        return problems

    def verify(self, instance: AngleInstance) -> "FractionalSolution":
        problems = self.violations(instance)
        if problems:
            raise FeasibilityError(problems)
        return self

    def round_to_integral(self, instance: AngleInstance) -> AngleSolution:
        """Greedy rounding: commit each customer to its largest fraction if it fits.

        Customers are processed in decreasing served fraction; a customer is
        assigned to the covering antenna with the largest fraction that still
        has room.  Always feasible; used as a baseline rounding.
        """
        order = np.argsort(-self.fractions.sum(axis=1), kind="stable")
        remaining = np.array(
            [instance.antennas[j].capacity for j in range(instance.k)]
        )
        arcs = [
            Arc(float(self.orientations[j]), instance.antennas[j].rho)
            for j in range(instance.k)
        ]
        assignment = np.full(instance.n, -1, dtype=np.int64)
        for i in order:
            if self.fractions[i].sum() <= 1e-12:
                continue
            for j in np.argsort(-self.fractions[i], kind="stable"):
                if self.fractions[i, j] <= 1e-12:
                    break
                if instance.demands[i] <= remaining[j] * (1 + _CAP_TOL) and arcs[
                    j
                ].contains(float(instance.thetas[i])):
                    assignment[i] = j
                    remaining[j] -= instance.demands[i]
                    break
        return AngleSolution(orientations=self.orientations.copy(), assignment=assignment)


@dataclass(frozen=True)
class SectorSolution:
    """Integral solution of a 2-D sector instance.

    ``orientations`` and ``assignment`` index the *global* antenna table of
    the instance (see :meth:`SectorInstance.antenna_table`).  ``meta`` is
    optional provenance (resilience records the fallback path there).
    """

    orientations: np.ndarray
    assignment: np.ndarray
    meta: Optional[Dict[str, Any]] = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        ori = np.asarray(self.orientations, dtype=np.float64).reshape(-1)
        asg = np.asarray(self.assignment, dtype=np.int64).reshape(-1)
        object.__setattr__(self, "orientations", ori)
        object.__setattr__(self, "assignment", asg)

    @classmethod
    def empty(cls, instance: SectorInstance) -> "SectorSolution":
        return cls(
            orientations=np.zeros(instance.total_antennas),
            assignment=np.full(instance.n, -1, dtype=np.int64),
        )

    def with_meta(self, **entries: Any) -> "SectorSolution":
        """A copy with ``entries`` merged into :attr:`meta`."""
        merged = dict(self.meta or {})
        merged.update(entries)
        return SectorSolution(
            orientations=self.orientations, assignment=self.assignment, meta=merged
        )

    def value(self, instance: SectorInstance) -> float:
        served = self.assignment >= 0
        return float(instance.profits[served].sum())

    def served_demand(self, instance: SectorInstance) -> float:
        served = self.assignment >= 0
        return float(instance.demands[served].sum())

    def loads(self, instance: SectorInstance) -> np.ndarray:
        loads = np.zeros(instance.total_antennas)
        served = self.assignment >= 0
        np.add.at(loads, self.assignment[served], instance.demands[served])
        return loads

    def violations(self, instance: SectorInstance) -> List[str]:
        problems: List[str] = []
        K = instance.total_antennas
        if self.orientations.shape != (K,):
            problems.append(
                f"orientations must have shape ({K},), got {self.orientations.shape}"
            )
            return problems
        problems += _check_assignment_array(self.assignment, instance.n, K)
        if problems:
            return problems
        for g, s_id, spec in instance.antenna_table():
            members = np.flatnonzero(self.assignment == g)
            if members.size == 0:
                continue
            from repro.geometry.sectors import Sector  # local import avoids cycle

            sector = Sector(
                apex=instance.stations[s_id].position,
                arc=Arc(float(self.orientations[g]), spec.rho),
                radius=spec.radius,
            )
            inside = sector.contains_points(instance.positions[members])
            for i in members[~inside]:
                problems.append(
                    f"customer {i} assigned to antenna {g} (station {s_id}) "
                    f"but lies outside its sector"
                )
            load = float(instance.demands[members].sum())
            if load > spec.capacity * (1.0 + _CAP_TOL):
                problems.append(
                    f"antenna {g} overloaded: load {load:.6f} > "
                    f"capacity {spec.capacity:.6f}"
                )
        if instance.constraints:
            # Constraint feasibility (docs/SCENARIOS.md): every served
            # (customer, station) pair must pass the composed masks.
            cmasks = instance.compile().constraint_masks()
            if cmasks is not None:
                for g, s_id, _spec in instance.antenna_table():
                    members = np.flatnonzero(self.assignment == g)
                    for i in members[~cmasks[s_id][members]]:
                        problems.append(
                            f"customer {i} assigned to antenna {g} "
                            f"(station {s_id}) but an eligibility "
                            f"constraint masks the pair out"
                        )
        return problems

    def verify(self, instance: SectorInstance) -> "SectorSolution":
        problems = self.violations(instance)
        if problems:
            raise FeasibilityError(problems)
        return self
