"""Problem model: customers, antennas, instances, solutions, generators.

The model layer is deliberately independent of the solvers: instances
validate themselves on construction, and solutions are *verified* against
instances by code that no solver shares, so a buggy solver cannot
accidentally certify its own output.
"""

from repro.model.antenna import AntennaSpec, OrientedAntenna
from repro.model.customer import Customer
from repro.model.instance import (
    AngleInstance,
    InvalidInstanceError,
    SectorInstance,
    Station,
)
from repro.model.introspect import infer_family, instance_size
from repro.model.solution import (
    AngleSolution,
    FeasibilityError,
    FractionalSolution,
    SectorSolution,
)
from repro.model import generators
from repro.model import perturbation
from repro.model.serialization import (
    angle_instance_from_dict,
    angle_instance_to_dict,
    load_instance,
    save_instance,
    sector_instance_from_dict,
    sector_instance_to_dict,
)

__all__ = [
    "Customer",
    "AntennaSpec",
    "OrientedAntenna",
    "AngleInstance",
    "SectorInstance",
    "Station",
    "AngleSolution",
    "FractionalSolution",
    "SectorSolution",
    "FeasibilityError",
    "InvalidInstanceError",
    "infer_family",
    "instance_size",
    "generators",
    "perturbation",
    "angle_instance_to_dict",
    "angle_instance_from_dict",
    "sector_instance_to_dict",
    "sector_instance_from_dict",
    "save_instance",
    "load_instance",
]
