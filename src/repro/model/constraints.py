"""Composable eligibility constraints: the pluggable mask pipeline.

The paper's eligibility predicate is pure reach — customer ``i`` is
servable by antenna ``(station s, spec a)`` iff ``dist(p_i, b_s) <=
R_a``.  Real directional-antenna deployments add structure on top:
line-of-sight occlusion by buildings or terrain, and deployment rules
limiting how many candidate stations a customer may attach to.  This
module makes "eligible" a *pipeline* instead of a hardcoded predicate:

* a :class:`Constraint` is a small frozen spec (serializable, hashable,
  fingerprintable) attached to a
  :class:`~repro.model.instance.SectorInstance` via its optional
  ``constraints`` field;
* each constraint *compiles* to one boolean mask per (station, customer)
  pair; :func:`compose_station_masks` ANDs them into the per-station
  **effective mask**;
* the compiled core
  (:meth:`repro.core.compiled.CompiledSectorInstance.eligibility`) ANDs
  the effective mask into the per-antenna fitting-radius masks **once at
  compile time**, so every downstream solver — greedy, independent,
  exact, splittable, local search — honors the constraints without
  knowing they exist.

Registered kinds (grammar and composition semantics: ``docs/SCENARIOS.md``):

``reach``
    The base predicate (current behavior, the default).  Compiles to the
    all-pass mask: reach is already enforced by the per-antenna
    fitting-radius masks, so listing it is purely declarative and an
    instance with ``constraints=(Reach(),)`` solves bit-identically to
    one with no constraints at all.

``los_blockage``
    Polygon/segment occlusion: a set of blockage segments (walls,
    ridgelines).  A within-reach (station, customer) pair is blocked iff
    the open line of sight between them *properly crosses* any blockage
    segment (strict orientation tests — touching an endpoint or running
    collinear does not block, so the predicate is ulp-deterministic).
    Out-of-reach pairs are left unmasked: the fitting-radius masks
    already exclude them, so skipping the crossing tests there changes
    no eligible pair and keeps composition cost proportional to the
    pairs that can actually be served.

``max_assignments``
    Per-customer deployment rule: a customer may only attach to its
    ``limit`` nearest reaching stations (ties broken by station id).
    Stations outside the top-``limit`` are masked out for that customer.

Composition is a plain AND across constraints, so order never matters
and duplicate constraints are idempotent.  The scalar composition path
here is the **oracle**; the vectorized kernels in
:mod:`repro.core.backend` are bit-identical to it (elementwise IEEE
expressions, stable sorts — asserted by ``tests/test_constraints.py``
and in-harness by the ``scenario_bench`` section of ``repro.obs.bench``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.model.instance import InvalidInstanceError

__all__ = [
    "Constraint",
    "Reach",
    "LosBlockage",
    "MaxAssignments",
    "CONSTRAINT_KINDS",
    "constraint_to_dict",
    "constraint_from_dict",
    "constraints_to_wire",
    "constraints_from_wire",
    "validate_constraints",
    "nontrivial_constraints",
    "compose_station_masks",
    "effective_column",
]

#: Same relative reach slack as the fitting-radius masks
#: (:data:`repro.core.compiled._RADIUS_SLACK`) so ``max_assignments``
#: agrees with the rest of the pipeline at radius boundaries.
_SLACK = 1.0 + 1e-12


@dataclass(frozen=True)
class Constraint:
    """Base class for eligibility constraint specs.

    Subclasses are small frozen dataclasses carrying only plain floats /
    ints / tuples, so they are hashable, comparable, and serialize to the
    wire grammar of ``docs/SCENARIOS.md`` via :func:`constraint_to_dict`.
    """

    #: Registered kind tag; the wire ``{"kind": ...}`` discriminator.
    kind = "?"

    def station_masks(
        self,
        positions: np.ndarray,
        station_positions: Sequence[Tuple[float, float]],
        rs_by_station: Sequence[np.ndarray],
        max_radii: Sequence[float],
    ) -> Optional[List[np.ndarray]]:
        """Scalar-path per-station masks (``None`` means all-pass).

        This pure-python path is the oracle the vectorized kernels in
        :mod:`repro.core.backend` must reproduce bit-for-bit.
        """
        raise NotImplementedError

    def column(
        self,
        position: Tuple[float, float],
        station_positions: Sequence[Tuple[float, float]],
        rs_to_stations: Sequence[float],
        max_radii: Sequence[float],
    ) -> Optional[List[bool]]:
        """One customer's per-station mask column (``None`` = all-pass).

        Used by the online delta layer to patch constraint masks per
        event: the column for an appended customer, computed through the
        same per-pair primitives as :meth:`station_masks`, is bitwise
        what a fresh composition would produce for that customer.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class Reach(Constraint):
    """The base reach predicate — declarative, compiles to all-pass."""

    kind = "reach"

    def station_masks(self, positions, station_positions, rs_by_station,
                      max_radii) -> Optional[List[np.ndarray]]:
        """All-pass: reach lives in the per-antenna fitting-radius masks."""
        return None

    def column(self, position, station_positions, rs_to_stations,
               max_radii) -> Optional[List[bool]]:
        """All-pass column."""
        return None


def _cross_sign(ox: float, oy: float, ax_: float, ay_: float,
                bx: float, by: float) -> float:
    """Orientation cross product ``(A - O) x (B - O)`` (shared primitive).

    Written as one expression of IEEE subtract/multiply so the scalar and
    vectorized paths (``repro.core.backend.los_blocked``) agree bitwise.
    """
    return (ax_ - ox) * (by - oy) - (ay_ - oy) * (bx - ox)


def _pair_blocked(sx: float, sy: float, cx: float, cy: float,
                  segments: Sequence[Tuple[float, float, float, float]]) -> bool:
    """True iff segment station→customer properly crosses any blockage."""
    for (x1, y1, x2, y2) in segments:
        d1 = _cross_sign(x1, y1, x2, y2, sx, sy)
        d2 = _cross_sign(x1, y1, x2, y2, cx, cy)
        d3 = _cross_sign(sx, sy, cx, cy, x1, y1)
        d4 = _cross_sign(sx, sy, cx, cy, x2, y2)
        if d1 * d2 < 0.0 and d3 * d4 < 0.0:
            return True
    return False


@dataclass(frozen=True)
class LosBlockage(Constraint):
    """Line-of-sight occlusion by a set of blockage segments.

    ``segments`` is a tuple of ``(x1, y1, x2, y2)`` endpoints.  A
    within-reach (station, customer) pair is *blocked* — masked
    ineligible — iff the open station→customer segment properly crosses
    any blockage segment (strict orientation sign tests; touching
    endpoints and collinear overlap do not block).  Pairs beyond the
    station's maximum antenna radius are left unmasked (``True``): the
    fitting-radius masks already exclude them from every solver, so the
    crossing tests are only paid where they can matter — and the scalar,
    vectorized, and per-column paths all window on the identical
    ``rs <= max_radius * (1 + 1e-12)`` predicate so they stay
    bit-identical.
    """

    segments: Tuple[Tuple[float, float, float, float], ...] = field(
        default_factory=tuple
    )
    kind = "los_blockage"

    def __post_init__(self) -> None:
        cleaned = []
        for i, seg in enumerate(self.segments):
            if len(seg) != 4:
                raise InvalidInstanceError(
                    "constraints",
                    f"los_blockage segment {i} must be (x1, y1, x2, y2)",
                )
            vals = tuple(float(v) for v in seg)
            if not all(math.isfinite(v) for v in vals):
                raise InvalidInstanceError(
                    "constraints",
                    f"los_blockage segment {i} must be finite, got {vals}",
                )
            cleaned.append(vals)
        object.__setattr__(self, "segments", tuple(cleaned))

    def station_masks(self, positions, station_positions, rs_by_station,
                      max_radii) -> Optional[List[np.ndarray]]:
        """Per-station visibility masks via the per-pair primitive."""
        if not self.segments:
            return None
        n = positions.shape[0]
        out: List[np.ndarray] = []
        for s, (sx, sy) in enumerate(station_positions):
            mask = np.ones(n, dtype=bool)
            rs = rs_by_station[s]
            reach_len = max_radii[s] * _SLACK
            for i in range(n):
                if rs[i] <= reach_len and _pair_blocked(
                    float(sx), float(sy),
                    float(positions[i, 0]), float(positions[i, 1]),
                    self.segments,
                ):
                    mask[i] = False
            out.append(mask)
        return out

    def column(self, position, station_positions, rs_to_stations,
               max_radii) -> Optional[List[bool]]:
        """One customer's visibility column (delta patching)."""
        if not self.segments:
            return None
        cx, cy = float(position[0]), float(position[1])
        return [
            rs_to_stations[s] > max_radii[s] * _SLACK
            or not _pair_blocked(float(sx), float(sy), cx, cy, self.segments)
            for s, (sx, sy) in enumerate(station_positions)
        ]


def _topk_stations(rs_c: Sequence[float], max_radii: Sequence[float],
                   limit: int) -> set:
    """Station ids of the ``limit`` nearest reaching stations (shared).

    Lexicographic ``(distance, station_id)`` order — identical to the
    stable argsort tie-break of the vectorized kernel
    (:func:`repro.core.backend.topk_station_mask`).
    """
    pairs = sorted(
        (float(rs_c[s]), s)
        for s in range(len(max_radii))
        if rs_c[s] <= max_radii[s] * _SLACK
    )
    return {s for _, s in pairs[:limit]}


@dataclass(frozen=True)
class MaxAssignments(Constraint):
    """Deployment rule: attach only to the ``limit`` nearest reaching stations.

    For each customer, stations are ranked by ``(distance, station_id)``
    among those whose maximum antenna radius reaches the customer; all
    stations outside the top ``limit`` are masked ineligible for it.
    The ranking is restricted to *reaching* stations, so the selection is
    invariant under the reach-component partition
    (:mod:`repro.engine.partition`): every station reaching a customer
    lives in its component, hence the per-component top-``limit`` equals
    the global one (``docs/SCENARIOS.md``).
    """

    limit: int = 1
    kind = "max_assignments"

    def __post_init__(self) -> None:
        try:
            limit = int(self.limit)
        except (TypeError, ValueError):
            raise InvalidInstanceError(
                "constraints", f"max_assignments limit must be an int, "
                f"got {self.limit!r}"
            ) from None
        if limit < 1:
            raise InvalidInstanceError(
                "constraints", f"max_assignments limit must be >= 1, got {limit}"
            )
        object.__setattr__(self, "limit", limit)

    def station_masks(self, positions, station_positions, rs_by_station,
                      max_radii) -> Optional[List[np.ndarray]]:
        """Top-``limit`` nearest-reaching membership masks."""
        m = len(max_radii)
        if m <= self.limit:
            return None  # every station can be in the top-k: all-pass
        n = positions.shape[0]
        masks = [np.zeros(n, dtype=bool) for _ in range(m)]
        for i in range(n):
            keep = _topk_stations(
                [rs_by_station[s][i] for s in range(m)], max_radii, self.limit
            )
            for s in keep:
                masks[s][i] = True
        return masks

    def column(self, position, station_positions, rs_to_stations,
               max_radii) -> Optional[List[bool]]:
        """One customer's top-``limit`` membership column (delta patching)."""
        m = len(max_radii)
        if m <= self.limit:
            return None
        keep = _topk_stations(rs_to_stations, max_radii, self.limit)
        return [s in keep for s in range(m)]


#: kind tag -> constraint class.  ``scripts/check_docs.py`` enforces that
#: every registered kind is documented in ``docs/SCENARIOS.md``.
CONSTRAINT_KINDS: Dict[str, type] = {
    Reach.kind: Reach,
    LosBlockage.kind: LosBlockage,
    MaxAssignments.kind: MaxAssignments,
}


# ----------------------------------------------------------------------
# Wire grammar
# ----------------------------------------------------------------------
def constraint_to_dict(constraint: Constraint) -> Dict[str, Any]:
    """Serialize one constraint to its wire dict (``docs/SCENARIOS.md``)."""
    if isinstance(constraint, Reach):
        return {"kind": "reach"}
    if isinstance(constraint, LosBlockage):
        return {
            "kind": "los_blockage",
            "segments": [list(seg) for seg in constraint.segments],
        }
    if isinstance(constraint, MaxAssignments):
        return {"kind": "max_assignments", "limit": int(constraint.limit)}
    raise TypeError(f"not a constraint: {type(constraint).__name__}")


def constraint_from_dict(d: Any, where: str = "constraints") -> Constraint:
    """Revive one constraint from its wire dict; typed errors on bad input."""
    if not isinstance(d, dict):
        raise InvalidInstanceError(
            where, f"constraint must be an object, got {type(d).__name__}"
        )
    kind = d.get("kind")
    if kind not in CONSTRAINT_KINDS:
        raise InvalidInstanceError(
            where,
            f"unknown constraint kind {kind!r} (expected one of "
            f"{sorted(CONSTRAINT_KINDS)})",
        )
    unknown = set(d) - {"kind", "segments", "limit"}
    if unknown:
        raise InvalidInstanceError(
            where, f"unknown {kind} constraint field(s): {sorted(unknown)}"
        )
    try:
        if kind == "reach":
            return Reach()
        if kind == "los_blockage":
            segments = tuple(
                tuple(float(v) for v in seg)
                for seg in d.get("segments", ())
            )
            return LosBlockage(segments=segments)
        return MaxAssignments(limit=d.get("limit", 1))
    except InvalidInstanceError:
        raise
    except (TypeError, ValueError) as exc:
        raise InvalidInstanceError(where, str(exc)) from None


def constraints_to_wire(constraints: Sequence[Constraint]) -> List[Dict[str, Any]]:
    """Serialize a constraint tuple for the instance wire dict."""
    return [constraint_to_dict(c) for c in constraints]


def constraints_from_wire(payload: Any, where: str = "constraints"
                          ) -> Tuple[Constraint, ...]:
    """Revive the optional ``constraints`` list of an instance dict."""
    if payload is None:
        return ()
    if not isinstance(payload, (list, tuple)):
        raise InvalidInstanceError(
            where, f"must be a list of constraint objects, "
            f"got {type(payload).__name__}"
        )
    return tuple(
        constraint_from_dict(c, where=f"{where}[{i}]")
        for i, c in enumerate(payload)
    )


def validate_constraints(constraints: Any) -> Tuple[Constraint, ...]:
    """Normalize an instance's ``constraints`` input to a validated tuple."""
    if constraints is None:
        return ()
    out = tuple(constraints)
    for i, c in enumerate(out):
        if not isinstance(c, Constraint):
            raise InvalidInstanceError(
                "constraints",
                f"entry {i} must be a Constraint, got {type(c).__name__}",
            )
    return out


def nontrivial_constraints(constraints: Sequence[Constraint]
                           ) -> Tuple[Constraint, ...]:
    """The constraints that can actually mask pairs (drops ``reach``)."""
    return tuple(c for c in constraints if not isinstance(c, Reach))


# ----------------------------------------------------------------------
# Composition
# ----------------------------------------------------------------------
def compose_station_masks(
    instance,
    rs_by_station: Sequence[np.ndarray],
    backend: str = "python",
) -> Optional[List[np.ndarray]]:
    """AND every constraint's masks into per-station effective masks.

    ``rs_by_station[s]`` must be the compiled station's relative-distance
    array (``CompiledStation.rs`` or any bit-identical source such as the
    partitioner's streamed ``hypot``).  Returns one ``(n,)`` boolean mask
    per station, or ``None`` when no constraint masks anything (no
    constraints, only ``reach``, or only all-pass specs) — the compiled
    core uses ``None`` to skip composition entirely, keeping the
    unconstrained path bit-identical to the pre-pipeline code.

    ``backend="numpy"`` routes each constraint through the vectorized
    kernels of :mod:`repro.core.backend`; the result is bit-identical to
    the scalar path (asserted by tests and by ``scenario_bench``).
    """
    active = nontrivial_constraints(getattr(instance, "constraints", ()))
    if not active:
        return None
    positions = instance.positions
    station_positions = [st.position for st in instance.stations]
    max_radii = [st.max_radius for st in instance.stations]
    combined: Optional[List[np.ndarray]] = None
    for constraint in active:
        if backend == "numpy":
            masks = _numpy_station_masks(
                constraint, positions, station_positions, rs_by_station,
                max_radii,
            )
        else:
            masks = constraint.station_masks(
                positions, station_positions, rs_by_station, max_radii
            )
        if masks is None:
            continue
        if combined is None:
            combined = [np.array(m, dtype=bool) for m in masks]
        else:
            for s, m in enumerate(masks):
                combined[s] &= m
    return combined


def _segments_near(sx: float, sy: float, segments: np.ndarray,
                   reach_len: float) -> np.ndarray:
    """Blockage segments within ``reach_len`` of the station (keep mask).

    A segment can only properly cross a station→customer line of length
    ``<= reach_len`` if the crossing point — a point of the segment —
    lies inside the closed reach disk, so segments strictly farther than
    ``reach_len`` are droppable without changing any within-reach mask
    bit.  The cut uses a small relative margin so floating-point error in
    the point-to-segment distance can never drop a segment that sits
    exactly on the reach boundary.
    """
    x1, y1 = segments[:, 0], segments[:, 1]
    dx = segments[:, 2] - x1
    dy = segments[:, 3] - y1
    length2 = dx * dx + dy * dy
    t = np.where(
        length2 > 0.0,
        ((sx - x1) * dx + (sy - y1) * dy) / np.where(length2 > 0.0, length2, 1.0),
        0.0,
    )
    t = np.clip(t, 0.0, 1.0)
    dist = np.hypot(x1 + t * dx - sx, y1 + t * dy - sy)
    return dist <= reach_len * (1.0 + 1e-9) + 1e-12


def _numpy_station_masks(
    constraint: Constraint,
    positions: np.ndarray,
    station_positions: Sequence[Tuple[float, float]],
    rs_by_station: Sequence[np.ndarray],
    max_radii: Sequence[float],
) -> Optional[List[np.ndarray]]:
    """Vectorized-path dispatch onto the :mod:`repro.core.backend` kernels."""
    from repro.core.backend import los_blocked, topk_station_mask

    if isinstance(constraint, LosBlockage):
        if not constraint.segments:
            return None
        segments = np.asarray(constraint.segments, dtype=np.float64)
        n = positions.shape[0]
        out: List[np.ndarray] = []
        for s, (sx, sy) in enumerate(station_positions):
            sx, sy = float(sx), float(sy)
            reach_len = max_radii[s] * _SLACK
            mask = np.ones(n, dtype=bool)
            # Same reach window as the scalar path; the crossing tests
            # run only on the customers (and segments) the station can
            # actually serve, so composition stays O(reachable pairs).
            idx = np.flatnonzero(np.asarray(rs_by_station[s]) <= reach_len)
            if idx.size:
                near = segments[_segments_near(sx, sy, segments, reach_len)]
                if near.shape[0]:
                    mask[idx] = ~los_blocked(sx, sy, positions[idx], near)
            out.append(mask)
        return out
    if isinstance(constraint, MaxAssignments):
        m = len(max_radii)
        if m <= constraint.limit:
            return None
        # Per-station reach rows, then rank only the *contested* columns
        # (more than ``limit`` reaching stations) through the kernel —
        # uncontested customers keep their reach column verbatim, which
        # is exactly their top-``limit``.  Avoids materializing the full
        # (m, n) float distance matrix when contention is sparse.
        rows = [np.asarray(r, dtype=np.float64) for r in rs_by_station]
        reach_rows = [
            rows[s] <= max_radii[s] * _SLACK for s in range(m)
        ]
        counts = np.zeros(rows[0].shape[0], dtype=np.int64)
        for r in reach_rows:
            counts += r
        hard = np.flatnonzero(counts > constraint.limit)
        if hard.size:
            sub = np.stack([rows[s][hard] for s in range(m)], axis=0)
            radii = np.asarray(max_radii, dtype=np.float64)
            sub_mask = topk_station_mask(sub, radii, constraint.limit)
            for s in range(m):
                reach_rows[s][hard] = sub_mask[s]
        return reach_rows
    # Unknown / declarative kinds fall back to their scalar path.
    return constraint.station_masks(
        positions, station_positions, rs_by_station, max_radii
    )


def effective_column(
    constraints: Sequence[Constraint],
    station_positions: Sequence[Tuple[float, float]],
    position: Tuple[float, float],
    rs_to_stations: Sequence[float],
    max_radii: Sequence[float],
) -> Optional[List[bool]]:
    """One customer's composed per-station mask column.

    The online delta layer appends this column when an ``add_customer``
    event lands (``docs/ONLINE.md``): each constraint's column is
    computed by the same per-pair primitives as the scalar
    :func:`compose_station_masks`, so the patched masks stay bit-identical
    to a recompile.  Returns ``None`` when nothing masks.
    """
    active = nontrivial_constraints(constraints)
    if not active:
        return None
    combined: Optional[List[bool]] = None
    for constraint in active:
        col = constraint.column(
            position, station_positions, rs_to_stations, max_radii
        )
        if col is None:
            continue
        if combined is None:
            combined = list(col)
        else:
            combined = [a and b for a, b in zip(combined, col)]
    return combined
