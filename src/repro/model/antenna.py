"""Antenna specifications and oriented antennas.

An :class:`AntennaSpec` is the paper's ``(rho, R)`` plus a capacity: the
*orientation-free* description of a directional antenna.  Orienting a spec
at an angle ``alpha`` produces an :class:`OrientedAntenna`, whose footprint
is an :class:`~repro.geometry.arcs.Arc` (1-D instances) or a
:class:`~repro.geometry.sectors.Sector` (2-D instances).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.geometry.angles import TWO_PI
from repro.geometry.arcs import Arc
from repro.geometry.sectors import Sector


@dataclass(frozen=True)
class AntennaSpec:
    """Orientation-free antenna description.

    Parameters
    ----------
    rho:
        Angular width in ``(0, 2*pi]``.
    capacity:
        Maximum total demand the antenna can serve; must be positive.
    radius:
        Serving radius ``R``.  ``math.inf`` (the default) means the antenna
        reaches arbitrarily far — the right value for pure angle instances.
    name:
        Optional identifier for reports.
    """

    rho: float
    capacity: float
    radius: float = math.inf
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if not (0.0 < self.rho <= TWO_PI + 1e-12):
            raise ValueError(f"antenna width rho must be in (0, 2*pi], got {self.rho}")
        object.__setattr__(self, "rho", min(float(self.rho), TWO_PI))
        if not (self.capacity > 0.0):
            raise ValueError(f"antenna capacity must be positive, got {self.capacity}")
        if not (self.radius > 0.0):
            raise ValueError(f"antenna radius must be positive, got {self.radius}")

    @property
    def is_omnidirectional(self) -> bool:
        """True when the antenna covers the full circle (``rho == 2*pi``)."""
        return self.rho >= TWO_PI

    def oriented(self, alpha: float) -> "OrientedAntenna":
        """Orient this spec at start angle ``alpha``."""
        return OrientedAntenna(spec=self, alpha=alpha)

    def scaled_capacity(self, factor: float) -> "AntennaSpec":
        """A copy with capacity multiplied by ``factor`` (> 0)."""
        if factor <= 0.0:
            raise ValueError("capacity scale factor must be positive")
        return AntennaSpec(self.rho, self.capacity * factor, self.radius, self.name)


@dataclass(frozen=True)
class OrientedAntenna:
    """An antenna spec fixed at a concrete orientation ``alpha``."""

    spec: AntennaSpec
    alpha: float

    @property
    def arc(self) -> Arc:
        """Angular footprint ``[alpha, alpha + rho]``."""
        return Arc(self.alpha, self.spec.rho)

    def sector(self, apex: Tuple[float, float]) -> Sector:
        """Planar footprint when mounted at ``apex``.

        Requires a finite radius; a spec with ``radius == inf`` has no
        bounded planar footprint.
        """
        if math.isinf(self.spec.radius):
            raise ValueError("cannot build a planar sector from an infinite radius")
        return Sector(apex=apex, arc=self.arc, radius=self.spec.radius)
