"""Seeded synthetic instance families.

The paper has no public benchmark data (and none is available offline), so
the evaluation runs on synthetic families designed to stress different
regimes of the algorithms:

* ``uniform_angles`` -- customers spread uniformly on the circle: the easy
  regime where greedy is near-optimal.
* ``clustered_angles`` -- von-Mises-style hotspots: rotation placement
  matters; the regime the paper's intro (cellular demand hotspots)
  motivates.
* ``hotspot_angles`` -- one dominant hotspot exceeding a single antenna's
  capacity: overlapping orientations beat disjoint ones.
* ``adversarial_greedy_angles`` -- the textbook worst case that drives
  greedy knapsack packing toward its 1/2 bound.
* ``subset_sum_angles`` -- tight integer demands (knapsack-hard core).
* ``uniform_disk`` / ``clustered_towns`` / ``grid_city`` -- 2-D sector
  families with one or many stations.
* ``power_law_metro`` -- the million-customer scale family: Zipf-sized
  towns spaced so far apart that station reach disks never cross town
  borders, built in streamed numpy chunks (``docs/SCALE.md``).
* ``scenario_metro_blockage`` -- the realistic radio-planning scenario:
  the metro geometry plus ``los_blockage`` wall segments and a
  ``max_assignments`` deployment rule (``docs/SCENARIOS.md``).

All generators take a ``seed`` (or an ``numpy.random.Generator``) and are
fully reproducible.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Union

import numpy as np

from repro.geometry.angles import TWO_PI
from repro.model.antenna import AntennaSpec
from repro.model.instance import AngleInstance, SectorInstance, Station

RngLike = Union[int, None, np.random.Generator]


def _rng(seed: RngLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _demands(rng: np.random.Generator, n: int, dist: str, scale: float) -> np.ndarray:
    """Draw positive demands from a named distribution."""
    if dist == "uniform":
        return rng.uniform(0.2 * scale, 1.8 * scale, size=n)
    if dist == "exponential":
        return rng.exponential(scale, size=n) + 1e-3 * scale
    if dist == "integer":
        return rng.integers(1, max(2, int(10 * scale)) + 1, size=n).astype(np.float64)
    if dist == "constant":
        return np.full(n, scale, dtype=np.float64)
    if dist == "pareto":
        # Heavy-tailed but finite-mean (shape 2.5): a few customers carry
        # a large share of the demand, the regime power-law city models
        # predict and the large-scale `metro` family uses.
        return (rng.pareto(2.5, size=n) + 0.1) * scale
    raise ValueError(f"unknown demand distribution {dist!r}")


def _uniform_antennas(
    k: int, rho: float, capacity: float, radius: float = math.inf
) -> tuple[AntennaSpec, ...]:
    return tuple(
        AntennaSpec(rho=rho, capacity=capacity, radius=radius, name=f"a{j}")
        for j in range(k)
    )


# ----------------------------------------------------------------------
# 1-D families
# ----------------------------------------------------------------------
def uniform_angles(
    n: int = 60,
    k: int = 3,
    rho: float = math.pi / 3,
    capacity_fraction: float = 0.15,
    demand_dist: str = "uniform",
    demand_scale: float = 1.0,
    seed: RngLike = 0,
) -> AngleInstance:
    """Customers uniform on the circle; ``k`` identical antennas.

    ``capacity_fraction`` sets each antenna's capacity as a fraction of the
    total demand, so tightness is controlled independently of ``n``.
    """
    rng = _rng(seed)
    thetas = rng.uniform(0.0, TWO_PI, size=n)
    demands = _demands(rng, n, demand_dist, demand_scale)
    capacity = max(capacity_fraction * demands.sum(), demands.min())
    return AngleInstance(
        thetas=thetas,
        demands=demands,
        antennas=_uniform_antennas(k, rho, capacity),
    )


def clustered_angles(
    n: int = 60,
    k: int = 3,
    clusters: int = 4,
    spread: float = 0.15,
    rho: float = math.pi / 3,
    capacity_fraction: float = 0.15,
    demand_dist: str = "uniform",
    demand_scale: float = 1.0,
    seed: RngLike = 0,
) -> AngleInstance:
    """Customers drawn around ``clusters`` random centers (wrapped normals).

    ``spread`` is the angular standard deviation of each cluster.  This is
    the regime where orientation choice matters most: a good arc swallows a
    whole cluster, a bad one straddles two half-clusters.
    """
    rng = _rng(seed)
    centers = rng.uniform(0.0, TWO_PI, size=clusters)
    which = rng.integers(0, clusters, size=n)
    thetas = np.mod(centers[which] + rng.normal(0.0, spread, size=n), TWO_PI)
    demands = _demands(rng, n, demand_dist, demand_scale)
    capacity = max(capacity_fraction * demands.sum(), demands.min())
    return AngleInstance(
        thetas=thetas,
        demands=demands,
        antennas=_uniform_antennas(k, rho, capacity),
    )


def hotspot_angles(
    n: int = 60,
    k: int = 2,
    rho: float = math.pi / 2,
    hotspot_fraction: float = 0.7,
    hotspot_width: float = 0.3,
    capacity_fraction: float = 0.25,
    seed: RngLike = 0,
) -> AngleInstance:
    """One dense hotspot holding ``hotspot_fraction`` of all customers.

    The hotspot's demand deliberately exceeds one antenna's capacity, so
    solutions that may *overlap* arcs (two antennas pointed at the hotspot)
    beat any non-overlapping rotation — the instance family that separates
    the general solvers from the non-overlapping DP.
    """
    rng = _rng(seed)
    n_hot = int(round(hotspot_fraction * n))
    n_bg = n - n_hot
    center = rng.uniform(0.0, TWO_PI)
    hot = np.mod(center + rng.uniform(-hotspot_width / 2, hotspot_width / 2, n_hot), TWO_PI)
    bg = rng.uniform(0.0, TWO_PI, size=n_bg)
    thetas = np.concatenate([hot, bg])
    demands = _demands(rng, n, "uniform", 1.0)
    capacity = max(capacity_fraction * demands.sum(), demands.min())
    return AngleInstance(
        thetas=thetas,
        demands=demands,
        antennas=_uniform_antennas(k, rho, capacity),
    )


def adversarial_greedy_angles(
    blocks: int = 4,
    rho: float = 0.5,
    eps: float = 0.01,
    seed: RngLike = 0,
) -> AngleInstance:
    """The greedy-knapsack worst case, tiled around the circle.

    Each block is a tight angular cluster of three items against a
    (single) antenna of capacity 2:

    * a **bait** item, demand ``1 + eps`` and profit ``1 + 2*eps`` — the
      highest profit density, placed in the *middle* of the block so every
      window covering both unit items covers it too;
    * two unit items (demand = profit = 1).

    An optimal packing serves the two unit items (value 2).  The density
    greedy grabs the bait first, after which neither unit item fits, and
    the best single item *is* the bait — value ``1 + 2*eps``, i.e. ratio
    ``(1 + 2*eps)/2``, arbitrarily close to the proven 1/2 bound.  (With
    the paper's profit==demand objective all densities tie and the
    extended greedy provably escapes; exhibiting the bound requires the
    generalized-profit objective, which this family therefore uses.)
    """
    rng = _rng(seed)
    if blocks < 1:
        raise ValueError("need at least one block")
    gap = TWO_PI / blocks
    if rho >= gap:
        raise ValueError("rho must be smaller than the block spacing 2*pi/blocks")
    thetas = []
    demands = []
    profits = []
    for b in range(blocks):
        base = b * gap + rng.uniform(0, 1e-3)
        step = rho / 10.0
        for pos, (d, p) in enumerate(
            ((1.0, 1.0), (1.0 + eps, 1.0 + 2 * eps), (1.0, 1.0))
        ):
            thetas.append((base + pos * step) % TWO_PI)
            demands.append(d)
            profits.append(p)
    return AngleInstance(
        thetas=np.array(thetas),
        demands=np.array(demands),
        profits=np.array(profits),
        antennas=(AntennaSpec(rho=rho, capacity=2.0, name="adv"),),
    )


def subset_sum_angles(
    n: int = 24,
    k: int = 1,
    rho: float = TWO_PI,
    max_demand: int = 50,
    capacity_fraction: float = 0.5,
    seed: RngLike = 0,
) -> AngleInstance:
    """Integer demands with a deliberately tight capacity.

    With ``rho = 2*pi`` this is exactly maximum subset-sum: the NP-hard core
    of the problem with no geometry to hide behind.  Used to validate the
    knapsack engine and the FPTAS guarantee under stress.
    """
    rng = _rng(seed)
    thetas = rng.uniform(0.0, TWO_PI, size=n)
    demands = rng.integers(1, max_demand + 1, size=n).astype(np.float64)
    capacity = max(1.0, np.floor(capacity_fraction * demands.sum()))
    return AngleInstance(
        thetas=thetas,
        demands=demands,
        antennas=_uniform_antennas(k, rho, capacity),
    )


def mixed_antenna_angles(
    n: int = 50,
    widths: Sequence[float] = (math.pi / 6, math.pi / 3, math.pi / 2),
    capacity_fractions: Sequence[float] = (0.1, 0.15, 0.2),
    seed: RngLike = 0,
) -> AngleInstance:
    """Heterogeneous antennas (different widths and capacities)."""
    if len(widths) != len(capacity_fractions):
        raise ValueError("widths and capacity_fractions must align")
    rng = _rng(seed)
    thetas = rng.uniform(0.0, TWO_PI, size=n)
    demands = _demands(rng, n, "uniform", 1.0)
    total = demands.sum()
    antennas = tuple(
        AntennaSpec(rho=w, capacity=max(f * total, demands.min()), name=f"mix{j}")
        for j, (w, f) in enumerate(zip(widths, capacity_fractions))
    )
    return AngleInstance(thetas=thetas, demands=demands, antennas=antennas)


# ----------------------------------------------------------------------
# 2-D families
# ----------------------------------------------------------------------
def uniform_disk(
    n: int = 80,
    k: int = 3,
    rho: float = math.pi / 3,
    radius: float = 10.0,
    capacity_fraction: float = 0.15,
    occupancy: float = 1.2,
    seed: RngLike = 0,
) -> SectorInstance:
    """One central station; customers uniform on a disk of radius ``occupancy * R``.

    With ``occupancy > 1`` some customers are out of reach, exercising the
    radius filter of the 2-D reduction.
    """
    rng = _rng(seed)
    r = radius * occupancy * np.sqrt(rng.uniform(0.0, 1.0, size=n))
    t = rng.uniform(0.0, TWO_PI, size=n)
    positions = np.stack([r * np.cos(t), r * np.sin(t)], axis=1)
    demands = _demands(rng, n, "uniform", 1.0)
    capacity = max(capacity_fraction * demands.sum(), demands.min())
    station = Station(
        position=(0.0, 0.0),
        antennas=_uniform_antennas(k, rho, capacity, radius=radius),
    )
    return SectorInstance(positions=positions, demands=demands, stations=(station,))


def clustered_towns(
    n: int = 120,
    towns: int = 4,
    stations: int = 2,
    k_per_station: int = 2,
    rho: float = math.pi / 2,
    radius: float = 8.0,
    area: float = 20.0,
    capacity_fraction: float = 0.1,
    seed: RngLike = 0,
) -> SectorInstance:
    """Customers in Gaussian towns; stations placed at the largest towns.

    A multi-station family where customers near the midpoint of two
    stations can be served by either — the cross-station assignment
    interaction the 2-D pipeline must resolve.
    """
    rng = _rng(seed)
    centers = rng.uniform(-area / 2, area / 2, size=(towns, 2))
    which = rng.integers(0, towns, size=n)
    positions = centers[which] + rng.normal(0.0, radius / 6.0, size=(n, 2))
    demands = _demands(rng, n, "uniform", 1.0)
    capacity = max(capacity_fraction * demands.sum(), demands.min())
    counts = np.bincount(which, minlength=towns)
    big = np.argsort(-counts)[:stations]
    sts = tuple(
        Station(
            position=(float(centers[b, 0]), float(centers[b, 1])),
            antennas=_uniform_antennas(k_per_station, rho, capacity, radius=radius),
        )
        for b in big
    )
    return SectorInstance(positions=positions, demands=demands, stations=sts)


def grid_city(
    n: int = 150,
    grid: int = 2,
    spacing: float = 10.0,
    k_per_station: int = 3,
    rho: float = 2 * math.pi / 3,
    radius: float = 7.5,
    capacity_fraction: float = 0.08,
    seed: RngLike = 0,
) -> SectorInstance:
    """A ``grid x grid`` lattice of stations over uniformly spread customers.

    Models the classical cellular layout (three 120-degree sectors per
    site).  Coverage regions of adjacent stations overlap, so assignment
    must arbitrate shared customers.
    """
    rng = _rng(seed)
    span = spacing * grid
    positions = rng.uniform(-span / 2, span / 2, size=(n, 2))
    demands = _demands(rng, n, "uniform", 1.0)
    capacity = max(capacity_fraction * demands.sum(), demands.min())
    coords = (np.arange(grid) - (grid - 1) / 2.0) * spacing
    sts = []
    for gx in coords:
        for gy in coords:
            sts.append(
                Station(
                    position=(float(gx), float(gy)),
                    antennas=_uniform_antennas(
                        k_per_station, rho, capacity, radius=radius
                    ),
                )
            )
    return SectorInstance(positions=positions, demands=demands, stations=tuple(sts))


def macro_micro(
    n: int = 100,
    rho_macro: float = 2 * math.pi / 3,
    rho_micro: float = math.pi / 4,
    radius_macro: float = 12.0,
    radius_micro: float = 4.0,
    capacity_fraction: float = 0.1,
    seed: RngLike = 0,
) -> SectorInstance:
    """One station with heterogeneous antennas: a wide long-range macro
    sector plus two narrow short-range micro sectors.

    Exercises the per-antenna eligibility path of the 2-D solvers (mixed
    radii at one station), which the conservative per-station 1-D
    reduction cannot express.
    """
    rng = _rng(seed)
    r = radius_macro * np.sqrt(rng.uniform(0.0, 1.0, size=n))
    t = rng.uniform(0.0, TWO_PI, size=n)
    positions = np.stack([r * np.cos(t), r * np.sin(t)], axis=1)
    demands = _demands(rng, n, "uniform", 1.0)
    capacity = max(capacity_fraction * demands.sum(), demands.min())
    station = Station(
        position=(0.0, 0.0),
        antennas=(
            AntennaSpec(rho=rho_macro, capacity=2 * capacity, radius=radius_macro,
                        name="macro"),
            AntennaSpec(rho=rho_micro, capacity=capacity, radius=radius_micro,
                        name="micro0"),
            AntennaSpec(rho=rho_micro, capacity=capacity, radius=radius_micro,
                        name="micro1"),
        ),
    )
    return SectorInstance(positions=positions, demands=demands, stations=(station,))


def power_law_metro(
    n: int = 10_000,
    towns: int = 8,
    stations_per_town: int = 1,
    k_per_station: int = 2,
    rho: float = math.pi / 2,
    radius: float = 6.0,
    town_spacing: float = 40.0,
    alpha: float = 1.0,
    demand_dist: str = "pareto",
    capacity_fraction: float = 0.2,
    chunk: int = 1 << 16,
    seed: RngLike = 0,
) -> SectorInstance:
    """Million-customer metro family: Zipf towns, power-law demand.

    Capacities default deliberately *loose* (``capacity_fraction = 0.2``
    of total demand per antenna, well above any single sector window's
    demand): at this scale the binding constraint is angular coverage,
    not the knapsack core, which keeps the inner rotation searches on
    their everything-fits fast path instead of invoking an exact oracle
    on thousands of continuous demands per window.  Drop the fraction to
    study the capacity-tight regime at smaller ``n``.

    Built for the scale benchmarks (``docs/SCALE.md``): ``towns`` centers
    sit on a grid spaced ``town_spacing`` apart with
    ``town_spacing > 4 * radius``, so station reach disks of different
    towns can never overlap — the reach-components partition of
    :mod:`repro.engine.partition` recovers exactly the towns.  Town sizes
    follow a Zipf law with exponent ``alpha`` (one dominant metro, a long
    tail of suburbs) and demands default to a heavy-tailed Pareto draw.

    Construction is *streamed*: customers are generated town by town in
    numpy chunks of at most ``chunk`` rows and concatenated once — no
    per-customer python objects are ever materialized, so ``n`` up to
    10**6 stays cheap (a few O(n) array passes).
    """
    if towns < 1:
        raise ValueError("need at least one town")
    if town_spacing <= 4.0 * radius:
        raise ValueError(
            "town_spacing must exceed 4 * radius so reach components "
            "coincide with towns"
        )
    rng = _rng(seed)
    side = int(math.ceil(math.sqrt(towns)))
    grid_x, grid_y = np.divmod(np.arange(towns), side)
    centers = np.stack([grid_x, grid_y], axis=1).astype(np.float64) * town_spacing
    # Zipf town weights: town t gets weight (t+1)^-alpha.
    weights = (np.arange(1, towns + 1, dtype=np.float64)) ** (-alpha)
    weights /= weights.sum()
    counts = rng.multinomial(n, weights)

    pos_chunks = []
    demand_chunks = []
    spread = radius / 2.5
    for t in range(towns):
        # Two sequential chunk loops per town — all position chunks, then
        # all demand chunks.  Generator draws are element-sequential, so
        # splitting one draw into consecutive chunked draws concatenates
        # to the same stream: the instance is invariant to `chunk`
        # (regression-tested), which interleaving positions and demands
        # per chunk was not.
        left = int(counts[t])
        while left > 0:
            took = min(left, int(chunk))
            pos_chunks.append(centers[t] + rng.normal(0.0, spread, size=(took, 2)))
            left -= took
        left = int(counts[t])
        while left > 0:
            took = min(left, int(chunk))
            demand_chunks.append(_demands(rng, took, demand_dist, 1.0))
            left -= took
    if pos_chunks:
        positions = np.concatenate(pos_chunks, axis=0)
        demands = np.concatenate(demand_chunks)
    else:  # pragma: no cover - n == 0 is rejected by instance validation
        positions = np.zeros((0, 2))
        demands = np.zeros(0)

    capacity = max(
        capacity_fraction * float(demands.sum()),
        float(demands.max()) if n else 1.0,
    )
    sts = []
    for t in range(towns):
        for s in range(stations_per_town):
            angle = TWO_PI * s / max(1, stations_per_town)
            offset = (radius / 3.0) * np.array([math.cos(angle), math.sin(angle)])
            px, py = centers[t] + (offset if stations_per_town > 1 else 0.0)
            sts.append(Station(
                position=(float(px), float(py)),
                antennas=_uniform_antennas(k_per_station, rho, capacity,
                                           radius=radius),
            ))
    return SectorInstance(positions=positions, demands=demands,
                          stations=tuple(sts))


def scenario_metro_blockage(
    n: int = 2_000,
    towns: int = 4,
    stations_per_town: int = 2,
    k_per_station: int = 2,
    rho: float = math.pi / 2,
    radius: float = 6.0,
    town_spacing: float = 40.0,
    alpha: float = 1.0,
    demand_dist: str = "pareto",
    capacity_fraction: float = 0.2,
    segments_per_town: int = 3,
    segment_length: float = 4.0,
    max_assignments: int = 2,
    chunk: int = 1 << 16,
    seed: RngLike = 0,
) -> SectorInstance:
    """Realistic radio-planning scenario: metro + blockage + deployment rules.

    The first scenario-pack family (``docs/SCENARIOS.md``): the
    :func:`power_law_metro` geometry with eligibility constraints layered
    on top —

    * ``segments_per_town`` random *blockage segments* (walls, ridgelines)
      per town, each of length ``segment_length`` at a uniform angle, with
      midpoints scattered around the town center at the customer spread,
      compiled into one ``los_blockage`` constraint;
    * a ``max_assignments`` deployment rule (attach only to the
      ``max_assignments`` nearest reaching stations; ``0`` disables it) —
      only binding when a town holds more stations than the limit.

    The constraint specs are *global* (every sub-instance of a partition
    carries the same tuple), so reach-component decomposition stays exact
    — see ``docs/SCENARIOS.md`` for the argument.  Same streamed-chunk
    construction, same seeded reproducibility as the metro family.
    """
    from repro.model.constraints import Constraint, LosBlockage, MaxAssignments

    rng = _rng(seed)
    base = power_law_metro(
        n=n,
        towns=towns,
        stations_per_town=stations_per_town,
        k_per_station=k_per_station,
        rho=rho,
        radius=radius,
        town_spacing=town_spacing,
        alpha=alpha,
        demand_dist=demand_dist,
        capacity_fraction=capacity_fraction,
        chunk=chunk,
        seed=rng,
    )
    if segments_per_town < 0:
        raise ValueError("segments_per_town must be >= 0")
    side = int(math.ceil(math.sqrt(towns)))
    grid_x, grid_y = np.divmod(np.arange(towns), side)
    centers = np.stack([grid_x, grid_y], axis=1).astype(np.float64) * town_spacing
    spread = radius / 2.5
    segments = []
    for t in range(towns):
        if segments_per_town == 0:
            continue
        mids = centers[t] + rng.normal(0.0, spread, size=(segments_per_town, 2))
        angles = rng.uniform(0.0, TWO_PI, size=segments_per_town)
        half = 0.5 * float(segment_length)
        dx = half * np.cos(angles)
        dy = half * np.sin(angles)
        for j in range(segments_per_town):
            segments.append((
                float(mids[j, 0] - dx[j]), float(mids[j, 1] - dy[j]),
                float(mids[j, 0] + dx[j]), float(mids[j, 1] + dy[j]),
            ))
    constraints: tuple[Constraint, ...] = ()
    if segments:
        constraints += (LosBlockage(segments=tuple(segments)),)
    if max_assignments:
        constraints += (MaxAssignments(limit=int(max_assignments)),)
    return SectorInstance(
        positions=base.positions,
        demands=base.demands,
        profits=base.profits,
        stations=base.stations,
        constraints=constraints,
    )


#: Name → callable registry used by the CLI and the experiment harness.
ANGLE_FAMILIES = {
    "uniform": uniform_angles,
    "clustered": clustered_angles,
    "hotspot": hotspot_angles,
    "adversarial": adversarial_greedy_angles,
    "subset_sum": subset_sum_angles,
    "mixed": mixed_antenna_angles,
}

SECTOR_FAMILIES = {
    "disk": uniform_disk,
    "towns": clustered_towns,
    "grid": grid_city,
    "macro_micro": macro_micro,
    "metro": power_law_metro,
    "scenario": scenario_metro_blockage,
}
