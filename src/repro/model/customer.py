"""Customer records.

Instances store customers as parallel NumPy arrays (HPC-guide layout);
:class:`Customer` is the user-facing record used when building instances by
hand and when reading them back out for reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.geometry.angles import normalize_angle


@dataclass(frozen=True)
class Customer:
    """One customer of the packing problem.

    Parameters
    ----------
    demand:
        Positive demand (bandwidth, load, ...) that must fit inside an
        antenna's capacity if the customer is served.
    theta:
        Angular position in radians (for pure angle instances).  Exactly one
        of ``theta`` / ``position`` must be given.
    position:
        ``(x, y)`` planar position (for sector instances).
    profit:
        Value gained by serving the customer.  Defaults to ``demand`` —
        the paper's "maximize total assigned demand" objective.
    label:
        Optional free-form identifier carried through serialization.
    """

    demand: float
    theta: Optional[float] = None
    position: Optional[Tuple[float, float]] = None
    profit: Optional[float] = None
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.demand <= 0.0:
            raise ValueError(f"customer demand must be positive, got {self.demand}")
        if (self.theta is None) == (self.position is None):
            raise ValueError("exactly one of theta / position must be set")
        if self.theta is not None:
            object.__setattr__(self, "theta", normalize_angle(float(self.theta)))
        if self.position is not None:
            x, y = self.position
            object.__setattr__(self, "position", (float(x), float(y)))
        if self.profit is None:
            object.__setattr__(self, "profit", float(self.demand))
        elif self.profit <= 0.0:
            raise ValueError(f"customer profit must be positive, got {self.profit}")

    @property
    def is_angular(self) -> bool:
        """True for a 1-D (angle-only) customer."""
        return self.theta is not None
