"""JSON (de)serialization of instances and solutions.

The on-disk format is plain JSON so instances can be shipped between the
CLI, the benchmark harness, and external tools.  Round-tripping is exact
for the float64 values NumPy produces (JSON carries full ``repr``
precision via Python floats).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.model.antenna import AntennaSpec
from repro.model.instance import AngleInstance, SectorInstance, Station
from repro.model.solution import AngleSolution, SectorSolution

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def _antenna_to_dict(a: AntennaSpec) -> Dict[str, Any]:
    return {
        "rho": a.rho,
        "capacity": a.capacity,
        "radius": None if math.isinf(a.radius) else a.radius,
        "name": a.name,
    }


def _antenna_from_dict(d: Dict[str, Any]) -> AntennaSpec:
    return AntennaSpec(
        rho=float(d["rho"]),
        capacity=float(d["capacity"]),
        radius=math.inf if d.get("radius") is None else float(d["radius"]),
        name=d.get("name"),
    )


def angle_instance_to_dict(instance: AngleInstance) -> Dict[str, Any]:
    """Serialize a 1-D instance to a JSON-compatible dict."""
    return {
        "format": _FORMAT_VERSION,
        "kind": "angle",
        "thetas": instance.thetas.tolist(),
        "demands": instance.demands.tolist(),
        "profits": instance.profits.tolist(),
        "antennas": [_antenna_to_dict(a) for a in instance.antennas],
    }


def angle_instance_from_dict(d: Dict[str, Any]) -> AngleInstance:
    if d.get("kind") != "angle":
        raise ValueError(f"expected kind 'angle', got {d.get('kind')!r}")
    return AngleInstance(
        thetas=np.asarray(d["thetas"], dtype=np.float64),
        demands=np.asarray(d["demands"], dtype=np.float64),
        profits=np.asarray(d["profits"], dtype=np.float64),
        antennas=tuple(_antenna_from_dict(a) for a in d["antennas"]),
    )


def sector_instance_to_dict(instance: SectorInstance) -> Dict[str, Any]:
    """Serialize a 2-D instance to a JSON-compatible dict."""
    return {
        "format": _FORMAT_VERSION,
        "kind": "sector",
        "positions": instance.positions.tolist(),
        "demands": instance.demands.tolist(),
        "profits": instance.profits.tolist(),
        "stations": [
            {
                "position": list(s.position),
                "antennas": [_antenna_to_dict(a) for a in s.antennas],
            }
            for s in instance.stations
        ],
    }


def sector_instance_from_dict(d: Dict[str, Any]) -> SectorInstance:
    if d.get("kind") != "sector":
        raise ValueError(f"expected kind 'sector', got {d.get('kind')!r}")
    stations = tuple(
        Station(
            position=(float(s["position"][0]), float(s["position"][1])),
            antennas=tuple(_antenna_from_dict(a) for a in s["antennas"]),
        )
        for s in d["stations"]
    )
    return SectorInstance(
        positions=np.asarray(d["positions"], dtype=np.float64),
        demands=np.asarray(d["demands"], dtype=np.float64),
        profits=np.asarray(d["profits"], dtype=np.float64),
        stations=stations,
    )


def instance_to_dict(instance: Union[AngleInstance, SectorInstance]) -> Dict[str, Any]:
    if isinstance(instance, AngleInstance):
        return angle_instance_to_dict(instance)
    if isinstance(instance, SectorInstance):
        return sector_instance_to_dict(instance)
    raise TypeError(f"unsupported instance type {type(instance)!r}")


def instance_from_dict(d: Dict[str, Any]) -> Union[AngleInstance, SectorInstance]:
    kind = d.get("kind")
    if kind == "angle":
        return angle_instance_from_dict(d)
    if kind == "sector":
        return sector_instance_from_dict(d)
    raise ValueError(f"unknown instance kind {kind!r}")


def save_instance(instance: Union[AngleInstance, SectorInstance], path: PathLike) -> None:
    """Write an instance to a JSON file."""
    Path(path).write_text(json.dumps(instance_to_dict(instance), indent=2))


def load_instance(path: PathLike) -> Union[AngleInstance, SectorInstance]:
    """Read an instance from a JSON file."""
    return instance_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Solutions
# ----------------------------------------------------------------------
def solution_to_dict(solution: Union[AngleSolution, SectorSolution]) -> Dict[str, Any]:
    kind = "angle" if isinstance(solution, AngleSolution) else "sector"
    return {
        "format": _FORMAT_VERSION,
        "kind": kind,
        "orientations": solution.orientations.tolist(),
        "assignment": solution.assignment.tolist(),
    }


def solution_from_dict(d: Dict[str, Any]) -> Union[AngleSolution, SectorSolution]:
    cls = AngleSolution if d.get("kind") == "angle" else SectorSolution
    return cls(
        orientations=np.asarray(d["orientations"], dtype=np.float64),
        assignment=np.asarray(d["assignment"], dtype=np.int64),
    )


def save_solution(solution: Union[AngleSolution, SectorSolution], path: PathLike) -> None:
    Path(path).write_text(json.dumps(solution_to_dict(solution), indent=2))


def load_solution(path: PathLike) -> Union[AngleSolution, SectorSolution]:
    return solution_from_dict(json.loads(Path(path).read_text()))
