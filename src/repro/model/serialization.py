"""JSON (de)serialization of instances and solutions.

The on-disk format is plain JSON so instances can be shipped between the
CLI, the benchmark harness, and external tools.  Round-tripping is exact
for the float64 values NumPy produces (JSON carries full ``repr``
precision via Python floats).
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, Union

import numpy as np

from repro.model.antenna import AntennaSpec
from repro.model.instance import (
    AngleInstance,
    InvalidInstanceError,
    SectorInstance,
    Station,
)
from repro.model.solution import AngleSolution, SectorSolution

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def _require(d: Dict[str, Any], key: str, where: str) -> Any:
    """Fetch a required key, raising a typed error naming the field."""
    try:
        return d[key]
    except (KeyError, TypeError):
        raise InvalidInstanceError(where, "missing required field") from None


def _antenna_to_dict(a: AntennaSpec) -> Dict[str, Any]:
    return {
        "rho": a.rho,
        "capacity": a.capacity,
        "radius": None if math.isinf(a.radius) else a.radius,
        "name": a.name,
    }


def _antenna_from_dict(d: Dict[str, Any], where: str = "antennas") -> AntennaSpec:
    try:
        return AntennaSpec(
            rho=float(_require(d, "rho", f"{where}.rho")),
            capacity=float(_require(d, "capacity", f"{where}.capacity")),
            radius=math.inf if d.get("radius") is None else float(d["radius"]),
            name=d.get("name"),
        )
    except InvalidInstanceError:
        raise
    except (ValueError, TypeError) as exc:
        # AntennaSpec's own range checks (rho outside (0, 2*pi], negative
        # capacity/radius) and float() coercion failures, re-labelled with
        # the offending on-disk field.
        raise InvalidInstanceError(where, str(exc)) from None


def angle_instance_to_dict(instance: AngleInstance) -> Dict[str, Any]:
    """Serialize a 1-D instance to a JSON-compatible dict."""
    return {
        "format": _FORMAT_VERSION,
        "kind": "angle",
        "thetas": instance.thetas.tolist(),
        "demands": instance.demands.tolist(),
        "profits": instance.profits.tolist(),
        "antennas": [_antenna_to_dict(a) for a in instance.antennas],
    }


def angle_instance_from_dict(d: Dict[str, Any]) -> AngleInstance:
    """Revive an :class:`AngleInstance` from its serialized dict."""
    if d.get("kind") != "angle":
        raise InvalidInstanceError(
            "kind", f"expected 'angle', got {d.get('kind')!r}"
        )
    try:
        thetas = np.asarray(_require(d, "thetas", "thetas"), dtype=np.float64)
        demands = np.asarray(_require(d, "demands", "demands"), dtype=np.float64)
        profits = np.asarray(_require(d, "profits", "profits"), dtype=np.float64)
    except InvalidInstanceError:
        raise
    except (ValueError, TypeError) as exc:
        raise InvalidInstanceError("customers", str(exc)) from None
    return AngleInstance(
        thetas=thetas,
        demands=demands,
        profits=profits,
        antennas=tuple(
            _antenna_from_dict(a, where=f"antennas[{i}]")
            for i, a in enumerate(_require(d, "antennas", "antennas"))
        ),
    )


def sector_instance_to_dict(instance: SectorInstance) -> Dict[str, Any]:
    """Serialize a 2-D instance to a JSON-compatible dict.

    The optional ``constraints`` list (``docs/SCENARIOS.md`` grammar) is
    emitted only when non-empty, so unconstrained instances serialize
    byte-identically to the pre-pipeline format.
    """
    out = {
        "format": _FORMAT_VERSION,
        "kind": "sector",
        "positions": instance.positions.tolist(),
        "demands": instance.demands.tolist(),
        "profits": instance.profits.tolist(),
        "stations": [
            {
                "position": list(s.position),
                "antennas": [_antenna_to_dict(a) for a in s.antennas],
            }
            for s in instance.stations
        ],
    }
    if instance.constraints:
        from repro.model.constraints import constraints_to_wire

        out["constraints"] = constraints_to_wire(instance.constraints)
    return out


def sector_instance_from_dict(d: Dict[str, Any]) -> SectorInstance:
    """Revive a :class:`SectorInstance` from its serialized dict."""
    if d.get("kind") != "sector":
        raise InvalidInstanceError(
            "kind", f"expected 'sector', got {d.get('kind')!r}"
        )

    def build_station(i: int, s: Dict[str, Any]) -> Station:
        where = f"stations[{i}]"
        pos = _require(s, "position", f"{where}.position")
        try:
            position = (float(pos[0]), float(pos[1]))
        except (ValueError, TypeError, IndexError) as exc:
            raise InvalidInstanceError(f"{where}.position", str(exc)) from None
        try:
            return Station(
                position=position,
                antennas=tuple(
                    _antenna_from_dict(a, where=f"{where}.antennas[{j}]")
                    for j, a in enumerate(_require(s, "antennas", f"{where}.antennas"))
                ),
            )
        except InvalidInstanceError:
            raise
        except ValueError as exc:
            raise InvalidInstanceError(where, str(exc)) from None

    stations = tuple(
        build_station(i, s)
        for i, s in enumerate(_require(d, "stations", "stations"))
    )
    try:
        positions = np.asarray(_require(d, "positions", "positions"), dtype=np.float64)
        demands = np.asarray(_require(d, "demands", "demands"), dtype=np.float64)
        profits = np.asarray(_require(d, "profits", "profits"), dtype=np.float64)
    except InvalidInstanceError:
        raise
    except (ValueError, TypeError) as exc:
        raise InvalidInstanceError("customers", str(exc)) from None
    from repro.model.constraints import constraints_from_wire

    return SectorInstance(
        positions=positions,
        demands=demands,
        profits=profits,
        stations=stations,
        constraints=constraints_from_wire(d.get("constraints")),
    )


def instance_to_dict(instance: Union[AngleInstance, SectorInstance]) -> Dict[str, Any]:
    """Serialize either instance kind to its JSON-safe dict."""
    if isinstance(instance, AngleInstance):
        return angle_instance_to_dict(instance)
    if isinstance(instance, SectorInstance):
        return sector_instance_to_dict(instance)
    raise TypeError(f"unsupported instance type {type(instance)!r}")


def instance_from_dict(d: Dict[str, Any]) -> Union[AngleInstance, SectorInstance]:
    """Revive either instance kind, dispatching on ``kind``."""
    kind = d.get("kind")
    if kind == "angle":
        return angle_instance_from_dict(d)
    if kind == "sector":
        return sector_instance_from_dict(d)
    raise InvalidInstanceError("kind", f"unknown instance kind {kind!r}")


def save_instance(instance: Union[AngleInstance, SectorInstance], path: PathLike) -> None:
    """Write an instance to a JSON file."""
    Path(path).write_text(json.dumps(instance_to_dict(instance), indent=2))


def load_instance(path: PathLike) -> Union[AngleInstance, SectorInstance]:
    """Read an instance from a JSON file."""
    return instance_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Solutions
# ----------------------------------------------------------------------
def solution_to_dict(solution: Union[AngleSolution, SectorSolution]) -> Dict[str, Any]:
    """Serialize a solution (orientations + assignment) to a JSON-safe dict."""
    kind = "angle" if isinstance(solution, AngleSolution) else "sector"
    out = {
        "format": _FORMAT_VERSION,
        "kind": kind,
        "orientations": solution.orientations.tolist(),
        "assignment": solution.assignment.tolist(),
    }
    if solution.meta is not None:
        out["meta"] = solution.meta
    return out


def solution_from_dict(d: Dict[str, Any]) -> Union[AngleSolution, SectorSolution]:
    """Revive a solution, dispatching on ``kind``."""
    cls = AngleSolution if d.get("kind") == "angle" else SectorSolution
    return cls(
        orientations=np.asarray(d["orientations"], dtype=np.float64),
        assignment=np.asarray(d["assignment"], dtype=np.int64),
        meta=d.get("meta"),
    )


def save_solution(solution: Union[AngleSolution, SectorSolution], path: PathLike) -> None:
    """Write a solution to ``path`` as indented JSON."""
    Path(path).write_text(json.dumps(solution_to_dict(solution), indent=2))


def load_solution(path: PathLike) -> Union[AngleSolution, SectorSolution]:
    """Read a solution JSON file written by :func:`save_solution`."""
    return solution_from_dict(json.loads(Path(path).read_text()))
