"""The regression-bench harness behind ``repro-sectors bench``.

Runs the standard solver suite over registered generator families with the
metrics registry reset around every solve, and emits a schema-versioned
payload (``BENCH_<tag>.json``) that every future performance PR diffs
against.  The payload schema is **frozen** and documented field-by-field in
``docs/OBSERVABILITY.md``; :func:`validate_bench` enforces it (and is what
``scripts/smoke.sh`` and the CLI ``--check`` flag run).

The headline numbers per (family, n, k, seed, solver) run:

* ``wall_time_s``   — one solve, wall clock;
* ``value`` / ``upper_bound`` / ``ratio_vs_bound`` — measured quality
  against the *proven* cheap bound (``combined_upper_bound`` for angle
  instances, the capacity/density bound for sector instances), so ratios
  are certified lower bounds on the true approximation ratio;
* ``oracle_calls`` / ``candidate_windows`` — the oracle-pressure metrics
  from :mod:`repro.obs.metrics`;
* ``phases`` — per-phase wall time (every ``phase.*`` timer's total).
"""

from __future__ import annotations

import inspect
import json
import platform
import sys
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.knapsack import get_solver
from repro.model import generators as gen
from repro.model.instance import AngleInstance
from repro.obs.metrics import get_registry

#: Frozen schema identifier; bump the version on any breaking field change.
SCHEMA_NAME = "repro.bench"
SCHEMA_VERSION = 1

#: Solvers the default suite runs on angle instances (CLI algorithm names).
DEFAULT_ANGLE_SOLVERS = ("greedy", "adaptive", "shifting", "dp-disjoint")

#: Solvers the default suite runs on sector instances.
DEFAULT_SECTOR_SOLVERS = ("sector-greedy", "sector-independent")

#: Families the default suite sweeps.
DEFAULT_FAMILIES = ("uniform", "clustered", "hotspot")


def _angle_solver_table(oracle, timeout_s: Optional[float] = None) -> Dict[str, Callable]:
    from repro.packing import (
        improve_solution,
        solve_greedy_multi,
        solve_lp_rounding,
        solve_non_overlapping_dp,
        solve_shifting,
    )
    from repro.packing.exact import solve_exact_anytime
    from repro.packing.insertion import solve_insertion
    from repro.resilience import Budget

    def run_exact_anytime(inst):
        # A fresh budget per solve: the exact search runs bounded and
        # returns its incumbent, so even E2-scale instances can sit in the
        # bench table next to the polynomial solvers.
        budget = Budget(wall_s=timeout_s if timeout_s is not None else 1.0)
        return solve_exact_anytime(inst, budget=budget).solution

    return {
        "exact": run_exact_anytime,
        "greedy": lambda inst: solve_greedy_multi(inst, oracle),
        "adaptive": lambda inst: solve_greedy_multi(inst, oracle, adaptive=True),
        "greedy+ls": lambda inst: improve_solution(
            inst, solve_greedy_multi(inst, oracle), oracle
        ),
        "dp-disjoint": lambda inst: solve_non_overlapping_dp(inst, oracle),
        "shifting": lambda inst: solve_shifting(inst, oracle),
        "insertion": lambda inst: solve_insertion(inst, oracle),
        "lp-round": lambda inst: solve_lp_rounding(
            inst, oracle, rounds=5, max_candidates=60
        ),
    }


def _sector_solver_table(oracle) -> Dict[str, Callable]:
    from repro.packing import solve_sector_greedy, solve_sector_independent

    return {
        "sector-greedy": lambda inst: solve_sector_greedy(inst, oracle),
        "sector-independent": lambda inst: solve_sector_independent(inst, oracle),
    }


def _make_instance(family: str, n: int, k: int, seed: int):
    """Build one instance, passing only the kwargs the generator accepts."""
    if family in gen.ANGLE_FAMILIES:
        factory = gen.ANGLE_FAMILIES[family]
    elif family in gen.SECTOR_FAMILIES:
        factory = gen.SECTOR_FAMILIES[family]
    else:
        raise ValueError(
            f"unknown family {family!r}; available: "
            f"{sorted(gen.ANGLE_FAMILIES) + sorted(gen.SECTOR_FAMILIES)}"
        )
    params = inspect.signature(factory).parameters
    kwargs = {"seed": seed}
    if "n" in params:
        kwargs["n"] = n
    if "k" in params:
        kwargs["k"] = k
    return factory(**kwargs)


def _upper_bound(instance) -> float:
    """A cheap proven upper bound for either instance kind."""
    if isinstance(instance, AngleInstance):
        from repro.packing.bounds import combined_upper_bound

        return float(combined_upper_bound(instance))
    # Sector analogue of capacity_upper_bound: any solution serves at most
    # each antenna's capacity worth of demand at the best profit density.
    if instance.n == 0:
        return 0.0
    density = float((instance.profits / instance.demands).max())
    cap_total = float(
        sum(spec.capacity for _, _, spec in instance.antenna_table())
    )
    return min(float(instance.total_profit), density * cap_total)


def _phase_totals(snapshot: Dict[str, dict]) -> Dict[str, float]:
    """Extract ``phase.* -> total seconds`` from a registry snapshot."""
    return {
        name[len("phase."):]: payload["total_s"]
        for name, payload in snapshot.items()
        if name.startswith("phase.") and payload["type"] == "timer"
    }


def run_bench(
    families: Sequence[str] = DEFAULT_FAMILIES,
    n: int = 60,
    k: int = 3,
    seeds: Sequence[int] = (0,),
    solvers: Optional[Sequence[str]] = None,
    eps: float = 0.5,
    tag: str = "pr1",
    timeout_s: Optional[float] = None,
) -> dict:
    """Run the suite and return the schema-versioned bench payload.

    ``solvers=None`` picks the default suite per instance kind; an explicit
    list is validated against the solver tables.  ``eps < 1`` switches the
    knapsack oracle from exact to the FPTAS at that ``eps``; the default is
    the FPTAS at ``eps=0.5`` because the exact oracle's branch-and-bound
    can explode on continuous-weight families at bench sizes.

    ``timeout_s`` activates an ambient :class:`~repro.resilience.Budget`
    around every solve (deadline-bounding the polynomial solvers too) and
    sets the per-solve budget of the ``exact`` table entry — the anytime
    exact search, which is only benchable *because* it is bounded.
    """
    if not families:
        raise ValueError("no families given")
    oracle = get_solver("fptas", eps=eps) if eps < 1.0 else get_solver("exact")
    angle_table = _angle_solver_table(oracle, timeout_s=timeout_s)
    sector_table = _sector_solver_table(oracle)
    known = set(angle_table) | set(sector_table)
    if solvers is not None:
        unknown = sorted(set(solvers) - known)
        if unknown:
            raise ValueError(
                f"unknown solver(s) {unknown}; available: {sorted(known)}"
            )

    registry = get_registry()
    runs: List[dict] = []
    for family in families:
        for seed in seeds:
            instance = _make_instance(family, n=n, k=k, seed=int(seed))
            is_angle = isinstance(instance, AngleInstance)
            table = angle_table if is_angle else sector_table
            if solvers is None:
                names: Tuple[str, ...] = (
                    DEFAULT_ANGLE_SOLVERS if is_angle else DEFAULT_SECTOR_SOLVERS
                )
            else:
                names = tuple(s for s in solvers if s in table)
            ub = _upper_bound(instance)
            kk = instance.k if is_angle else instance.total_antennas
            for name in names:
                solve = table[name]
                registry.reset()
                t0 = time.perf_counter()
                solution = solve(instance)
                wall = time.perf_counter() - t0
                solution.verify(instance)
                snap = registry.snapshot()
                value = float(solution.value(instance))
                oracle_calls = snap.get("oracle.calls", {}).get("value", 0)
                windows = snap.get("rotation.candidate_windows", {}).get("value", 0)
                runs.append(
                    {
                        "family": family,
                        "kind": "angle" if is_angle else "sector",
                        "n": int(instance.n),
                        "k": int(kk),
                        "seed": int(seed),
                        "solver": name,
                        "wall_time_s": float(wall),
                        "value": value,
                        "upper_bound": float(ub),
                        "ratio_vs_bound": float(value / ub) if ub > 0 else 1.0,
                        "oracle_calls": int(oracle_calls),
                        "candidate_windows": int(windows),
                        "phases": _phase_totals(snap),
                    }
                )

    summary: Dict[str, dict] = {}
    for run in runs:
        s = summary.setdefault(
            run["solver"],
            {
                "runs": 0,
                "total_wall_time_s": 0.0,
                "mean_ratio_vs_bound": 0.0,
                "min_ratio_vs_bound": float("inf"),
                "peak_oracle_calls": 0,
            },
        )
        s["runs"] += 1
        s["total_wall_time_s"] += run["wall_time_s"]
        s["mean_ratio_vs_bound"] += run["ratio_vs_bound"]
        s["min_ratio_vs_bound"] = min(s["min_ratio_vs_bound"], run["ratio_vs_bound"])
        s["peak_oracle_calls"] = max(s["peak_oracle_calls"], run["oracle_calls"])
    for s in summary.values():
        s["mean_ratio_vs_bound"] /= s["runs"]

    return {
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "tag": tag,
        "created_unix": time.time(),
        "config": {
            "families": list(families),
            "n": int(n),
            "k": int(k),
            "seeds": [int(s) for s in seeds],
            "solvers": list(solvers) if solvers is not None else None,
            "eps": float(eps),
            "oracle": oracle.name,
            "timeout_s": float(timeout_s) if timeout_s is not None else None,
        },
        "environment": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "runs": runs,
        "summary": summary,
    }


# ----------------------------------------------------------------------
# Schema validation (the contract scripts/smoke.sh enforces)
# ----------------------------------------------------------------------
_RUN_FIELDS: Dict[str, type] = {
    "family": str,
    "kind": str,
    "n": int,
    "k": int,
    "seed": int,
    "solver": str,
    "wall_time_s": float,
    "value": float,
    "upper_bound": float,
    "ratio_vs_bound": float,
    "oracle_calls": int,
    "candidate_windows": int,
    "phases": dict,
}

_SUMMARY_FIELDS: Dict[str, type] = {
    "runs": int,
    "total_wall_time_s": float,
    "mean_ratio_vs_bound": float,
    "min_ratio_vs_bound": float,
    "peak_oracle_calls": int,
}


def _check(cond: bool, msg: str) -> None:
    if not cond:
        raise ValueError(f"bench payload invalid: {msg}")


def _check_fields(obj: dict, fields: Dict[str, type], where: str) -> None:
    for field, typ in fields.items():
        _check(field in obj, f"{where} missing field {field!r}")
        val = obj[field]
        if typ is float:
            _check(
                isinstance(val, (int, float)) and not isinstance(val, bool),
                f"{where}.{field} must be a number, got {type(val).__name__}",
            )
        else:
            _check(
                isinstance(val, typ) and not (typ is int and isinstance(val, bool)),
                f"{where}.{field} must be {typ.__name__}, got {type(val).__name__}",
            )


def validate_bench(payload: dict) -> dict:
    """Validate a bench payload against the frozen schema; returns it.

    Raises ``ValueError`` with a field-level message on the first
    violation.  Checks: header identity and version, config/environment
    presence, per-run field names, types and ranges (non-negative times
    and counts, ``0 <= ratio_vs_bound <= 1 + 1e-6``, ``value <=
    upper_bound`` within tolerance), and summary consistency with the runs.
    """
    _check(isinstance(payload, dict), "payload must be a JSON object")
    _check(payload.get("schema") == SCHEMA_NAME,
           f"schema must be {SCHEMA_NAME!r}, got {payload.get('schema')!r}")
    _check(payload.get("schema_version") == SCHEMA_VERSION,
           f"schema_version must be {SCHEMA_VERSION}")
    _check(isinstance(payload.get("tag"), str) and payload["tag"],
           "tag must be a non-empty string")
    _check(isinstance(payload.get("created_unix"), (int, float)),
           "created_unix must be a number")
    _check(isinstance(payload.get("config"), dict), "config must be an object")
    _check(isinstance(payload.get("environment"), dict),
           "environment must be an object")
    runs = payload.get("runs")
    _check(isinstance(runs, list) and runs, "runs must be a non-empty list")
    solvers_seen = set()
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        _check(isinstance(run, dict), f"{where} must be an object")
        _check_fields(run, _RUN_FIELDS, where)
        _check(run["kind"] in ("angle", "sector"),
               f"{where}.kind must be 'angle' or 'sector'")
        _check(run["wall_time_s"] >= 0.0, f"{where}.wall_time_s negative")
        _check(run["oracle_calls"] >= 0, f"{where}.oracle_calls negative")
        _check(run["candidate_windows"] >= 0,
               f"{where}.candidate_windows negative")
        _check(run["value"] >= 0.0, f"{where}.value negative")
        _check(
            run["value"] <= run["upper_bound"] * (1.0 + 1e-6) + 1e-9,
            f"{where}.value exceeds its proven upper bound",
        )
        _check(
            -1e-9 <= run["ratio_vs_bound"] <= 1.0 + 1e-6,
            f"{where}.ratio_vs_bound outside [0, 1]",
        )
        for phase, seconds in run["phases"].items():
            _check(
                isinstance(phase, str)
                and isinstance(seconds, (int, float))
                and seconds >= 0.0,
                f"{where}.phases[{phase!r}] must map to non-negative seconds",
            )
        solvers_seen.add(run["solver"])
    summary = payload.get("summary")
    _check(isinstance(summary, dict), "summary must be an object")
    _check(
        set(summary) == solvers_seen,
        f"summary solvers {sorted(summary)} != run solvers {sorted(solvers_seen)}",
    )
    for name, s in summary.items():
        _check_fields(s, _SUMMARY_FIELDS, f"summary[{name!r}]")
        _check(s["runs"] > 0, f"summary[{name!r}].runs must be positive")
    return payload


def write_bench(payload: dict, path: str) -> str:
    """Validate then write the payload as pretty JSON; returns the path."""
    validate_bench(payload)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


def load_bench(path: str) -> dict:
    """Read and validate a bench JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return validate_bench(json.load(fh))
