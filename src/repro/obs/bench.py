"""The regression-bench harness behind ``repro-sectors bench``.

Runs the standard solver suite over registered generator families with the
metrics registry reset around every solve, and emits a schema-versioned
payload (``BENCH_<tag>.json``) that every future performance PR diffs
against.  The payload schema is **frozen** and documented field-by-field in
``docs/OBSERVABILITY.md``; :func:`validate_bench` enforces it (and is what
``scripts/smoke.sh`` and the CLI ``--check`` flag run).

The headline numbers per (family, n, k, seed, solver) run:

* ``wall_time_s``   — one solve, wall clock;
* ``value`` / ``upper_bound`` / ``ratio_vs_bound`` — measured quality
  against the *proven* cheap bound (``combined_upper_bound`` for angle
  instances, the capacity/density bound for sector instances), so ratios
  are certified lower bounds on the true approximation ratio;
* ``oracle_calls`` / ``candidate_windows`` — the oracle-pressure metrics
  from :mod:`repro.obs.metrics`;
* ``phases`` — per-phase wall time (every ``phase.*`` timer's total).
"""

from __future__ import annotations

import inspect
import json
import platform
import sys
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.model import generators as gen
from repro.model.instance import AngleInstance
from repro.obs.metrics import get_registry

#: Frozen schema identifier; bump the version on any breaking field change.
SCHEMA_NAME = "repro.bench"
SCHEMA_VERSION = 1

#: Solvers the default suite runs on angle instances (bench names).
DEFAULT_ANGLE_SOLVERS = ("greedy", "adaptive", "shifting", "dp-disjoint")

#: Solvers the default suite runs on sector instances.
DEFAULT_SECTOR_SOLVERS = ("sector-greedy", "sector-independent")

#: Families the default suite sweeps.
DEFAULT_FAMILIES = ("uniform", "clustered", "hotspot")


def _bench_name_table() -> Dict[str, Tuple[str, str]]:
    """Bench solver name -> engine ``(family, algorithm)``.

    Derived from the engine registry (the bench no longer owns a solver
    table).  Historical bench names are preserved: sector solvers carry a
    ``sector-`` prefix, and ``exact`` is the budget-bounded anytime exact
    solver — the only exact variant that can sit in a timing table next to
    the polynomial solvers without hanging.  Fractional-variant solvers
    are excluded: their values answer a different (relaxed) objective, so
    ``ratio_vs_bound`` would not be comparable.
    """
    from repro.engine import specs

    table: Dict[str, Tuple[str, str]] = {"exact": ("angle", "exact-anytime")}
    for spec in specs("angle"):
        if spec.complexity == "poly" and spec.variant != "fractional":
            table[spec.name] = ("angle", spec.name)
    for spec in specs("sector"):
        if spec.complexity == "poly":
            table[f"sector-{spec.name}"] = ("sector", spec.name)
    return table


def _make_instance(family: str, n: int, k: int, seed: int):
    """Build one instance, passing only the kwargs the generator accepts."""
    if family in gen.ANGLE_FAMILIES:
        factory = gen.ANGLE_FAMILIES[family]
    elif family in gen.SECTOR_FAMILIES:
        factory = gen.SECTOR_FAMILIES[family]
    else:
        raise ValueError(
            f"unknown family {family!r}; available: "
            f"{sorted(gen.ANGLE_FAMILIES) + sorted(gen.SECTOR_FAMILIES)}"
        )
    params = inspect.signature(factory).parameters
    kwargs = {"seed": seed}
    if "n" in params:
        kwargs["n"] = n
    if "k" in params:
        kwargs["k"] = k
    return factory(**kwargs)


def _upper_bound(instance) -> float:
    """A cheap proven upper bound for either instance kind."""
    if isinstance(instance, AngleInstance):
        from repro.packing.bounds import combined_upper_bound

        return float(combined_upper_bound(instance))
    # Sector analogue of capacity_upper_bound: any solution serves at most
    # each antenna's capacity worth of demand at the best profit density.
    if instance.n == 0:
        return 0.0
    density = float((instance.profits / instance.demands).max())
    cap_total = float(
        sum(spec.capacity for _, _, spec in instance.antenna_table())
    )
    return min(float(instance.total_profit), density * cap_total)


def _phase_totals(snapshot: Dict[str, dict]) -> Dict[str, float]:
    """Extract ``phase.* -> total seconds`` from a registry snapshot."""
    return {
        name[len("phase."):]: payload["total_s"]
        for name, payload in snapshot.items()
        if name.startswith("phase.") and payload["type"] == "timer"
    }


def run_bench(
    families: Sequence[str] = DEFAULT_FAMILIES,
    n: int = 60,
    k: int = 3,
    seeds: Sequence[int] = (0,),
    solvers: Optional[Sequence[str]] = None,
    eps: float = 0.5,
    tag: str = "pr1",
    timeout_s: Optional[float] = None,
    cache_bench: bool = False,
    service_bench: bool = False,
    compile_bench: bool = False,
    backend_bench: bool = False,
    scale_bench: bool = False,
    scale_sizes: Sequence[int] = (10_000, 100_000, 1_000_000),
    online_bench: bool = False,
    online_n: int = 30_000,
    online_events: int = 90,
    scenario_bench: bool = False,
    scenario_n: int = 60_000,
) -> dict:
    """Run the suite and return the schema-versioned bench payload.

    Every solve routes through the unified engine
    (:func:`repro.engine.solve`) with the result cache disabled and the
    shared-precompute cache cleared per run, so every timing is a *cold*
    solve and the numbers stay comparable across PRs.

    ``solvers=None`` picks the default suite per instance kind; an
    explicit list is validated against the registry-derived bench names.
    ``eps < 1`` switches the knapsack oracle from exact to the FPTAS at
    that ``eps``; the default is the FPTAS at ``eps=0.5`` because the
    exact oracle's branch-and-bound can explode on continuous-weight
    families at bench sizes.

    ``timeout_s`` bounds the ``exact`` entry — the anytime exact search,
    which is only benchable *because* it is bounded (default 1s).

    ``cache_bench=True`` adds the optional additive ``cache_bench``
    section: one warm-vs-cold repeated solve through the result cache,
    with the hit/miss counters it produced.  Schema stays v1 — the
    section is validated only when present.

    ``service_bench=True`` adds the additive ``service_bench`` section
    (``docs/SERVICE.md``): serving throughput through an in-process
    :mod:`repro.service` instance — sequential single requests vs a
    pipelined burst (micro-batched routing) vs a warm-cache pass.

    ``compile_bench=True`` adds the additive ``compile_bench`` section: a
    repeated multi-solver workload on one large instance, cold (compile
    cache cleared before every solve) vs shared (one
    ``CompiledInstance`` reused across all solves), with the value
    equality between the two passes asserted.

    ``backend_bench=True`` adds the additive ``backend_bench`` section
    (``docs/BACKENDS.md``): one large-``n`` angle sweep and one
    multi-station sector workload, each solved through the engine on the
    ``python`` and ``numpy`` backends, with value identity between the
    two asserted in-harness (a mismatch raises instead of recording).

    ``scale_bench=True`` adds the additive ``scale_bench`` section
    (``docs/SCALE.md``): monolithic-vs-partitioned throughput curves on
    ``metro`` instances at each ``n`` in ``scale_sizes``, with two
    invariants asserted in-harness (a violation raises instead of
    recording): every row's monolithic value is within the certified
    merge bound of the partitioned value, and the partitioned strategy
    is at least 3x faster than monolithic at ``n >= 10**6``.

    ``online_bench=True`` adds the additive ``online_bench`` section
    (``docs/ONLINE.md``): one seeded event stream of ``online_events``
    add/remove/update events over a uniform angle instance of
    ``online_n`` customers, applied two ways — through a
    :class:`~repro.online.delta.DeltaCompiledInstance` (patching the
    compiled views in place) and by rebuilding + recompiling the
    instance from scratch after every event.  Value identity between
    the two paths is asserted in-harness after *every* event, per-sector
    cache invalidation is exercised against registered windows, and the
    delta path must be at least 5x faster than recompiling when
    ``online_n >= 10**4`` (a violation raises instead of recording).

    ``scenario_bench=True`` adds the additive ``scenario_bench`` section
    (``docs/SCENARIOS.md``): the constraint-pipeline gate on the
    ``scenario`` generator family (metro + blockage segments +
    ``max_assignments``).  Three invariants are asserted in-harness (a
    violation raises instead of recording): the scalar and vectorized
    constraint compositions are bit-identical, constrained engine solves
    verify feasible against every mask with exact value identity across
    backends, and mask composition costs < 10% of the unconstrained
    compile at ``scenario_n`` (the overhead gate arms at ``scenario_n >=
    5 * 10**4`` — below that, fixed per-call overheads dominate both
    timers and the ratio is noise).
    """
    from repro.engine import SolveRequest, clear_caches
    from repro.engine import solve as engine_solve

    if not families:
        raise ValueError("no families given")
    name_table = _bench_name_table()
    if solvers is not None:
        unknown = sorted(set(solvers) - set(name_table))
        if unknown:
            raise ValueError(
                f"unknown solver(s) {unknown}; available: {sorted(name_table)}"
            )

    registry = get_registry()
    runs: List[dict] = []
    last_angle_instance = None
    for family in families:
        for seed in seeds:
            instance = _make_instance(family, n=n, k=k, seed=int(seed))
            is_angle = isinstance(instance, AngleInstance)
            if is_angle:
                last_angle_instance = instance
            if solvers is None:
                names: Tuple[str, ...] = (
                    DEFAULT_ANGLE_SOLVERS if is_angle else DEFAULT_SECTOR_SOLVERS
                )
            else:
                kind = "angle" if is_angle else "sector"
                names = tuple(
                    s for s in solvers if name_table[s][0] == kind
                )
            ub = _upper_bound(instance)
            kk = instance.k if is_angle else instance.total_antennas
            for name in names:
                spec_family, algorithm = name_table[name]
                request = SolveRequest(
                    instance=instance,
                    family=spec_family,
                    algorithm=algorithm,
                    eps=eps,
                    use_cache=False,
                    # Only the anytime exact solver runs under a deadline;
                    # the polynomial solvers are benched unbounded, as the
                    # pre-engine harness did.
                    timeout_s=(
                        (timeout_s if timeout_s is not None else 1.0)
                        if algorithm == "exact-anytime"
                        else None
                    ),
                )
                clear_caches()  # cold precompute: timings comparable across PRs
                registry.reset()
                report = engine_solve(request)
                snap = registry.snapshot()
                value = report.value
                oracle_calls = snap.get("oracle.calls", {}).get("value", 0)
                windows = snap.get("rotation.candidate_windows", {}).get("value", 0)
                runs.append(
                    {
                        "family": family,
                        "kind": "angle" if is_angle else "sector",
                        "n": int(instance.n),
                        "k": int(kk),
                        "seed": int(seed),
                        "solver": name,
                        "wall_time_s": float(report.seconds),
                        "value": value,
                        "upper_bound": float(ub),
                        "ratio_vs_bound": float(value / ub) if ub > 0 else 1.0,
                        "oracle_calls": int(oracle_calls),
                        "candidate_windows": int(windows),
                        "phases": _phase_totals(snap),
                    }
                )

    summary: Dict[str, dict] = {}
    for run in runs:
        s = summary.setdefault(
            run["solver"],
            {
                "runs": 0,
                "total_wall_time_s": 0.0,
                "mean_ratio_vs_bound": 0.0,
                "min_ratio_vs_bound": float("inf"),
                "peak_oracle_calls": 0,
            },
        )
        s["runs"] += 1
        s["total_wall_time_s"] += run["wall_time_s"]
        s["mean_ratio_vs_bound"] += run["ratio_vs_bound"]
        s["min_ratio_vs_bound"] = min(s["min_ratio_vs_bound"], run["ratio_vs_bound"])
        s["peak_oracle_calls"] = max(s["peak_oracle_calls"], run["oracle_calls"])
    for s in summary.values():
        s["mean_ratio_vs_bound"] /= s["runs"]

    from repro.knapsack import get_solver

    oracle = get_solver("fptas", eps=eps) if eps < 1.0 else get_solver("exact")
    payload = {
        "schema": SCHEMA_NAME,
        "schema_version": SCHEMA_VERSION,
        "tag": tag,
        "created_unix": time.time(),
        "config": {
            "families": list(families),
            "n": int(n),
            "k": int(k),
            "seeds": [int(s) for s in seeds],
            "solvers": list(solvers) if solvers is not None else None,
            "eps": float(eps),
            "oracle": oracle.name,
            "timeout_s": float(timeout_s) if timeout_s is not None else None,
        },
        "environment": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "platform": platform.platform(),
        },
        "runs": runs,
        "summary": summary,
    }
    if cache_bench:
        if last_angle_instance is None:
            raise ValueError("cache_bench needs at least one angle family")
        payload["cache_bench"] = _run_cache_bench(last_angle_instance, eps=eps)
    if service_bench:
        payload["service_bench"] = _run_service_bench(eps=eps)
    if compile_bench:
        payload["compile_bench"] = _run_compile_bench(eps=eps)
    if backend_bench:
        payload["backend_bench"] = _run_backend_bench(eps=eps)
    if scale_bench:
        payload["scale_bench"] = _run_scale_bench(eps=eps, sizes=scale_sizes)
    if online_bench:
        payload["online_bench"] = _run_online_bench(
            n=online_n, events=online_events
        )
    if scenario_bench:
        payload["scenario_bench"] = _run_scenario_bench(eps=eps, n=scenario_n)
    return payload


def _run_cache_bench(instance, eps: float, solver: str = "greedy+ls") -> dict:
    """Warm-vs-cold repeated solve through the engine result cache.

    Cold: caches cleared, one full solve (a cache miss that fills the
    entry).  Warm: the identical request again (a hit served from the
    cache as a deep copy).  Returns wall times, the speedup and the
    ``engine.cache`` counter deltas — the headline number the acceptance
    bar reads (warm should be >= 5x faster than cold).
    """
    from repro.engine import SolveRequest, clear_caches
    from repro.engine import solve as engine_solve

    registry = get_registry()
    clear_caches()
    registry.reset()
    request = SolveRequest(instance=instance, algorithm=solver, eps=eps)
    t0 = time.perf_counter()
    cold_report = engine_solve(request)
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm_report = engine_solve(request)
    warm_s = time.perf_counter() - t0
    snap = registry.snapshot()
    if not warm_report.cached or warm_report.value != cold_report.value:
        raise RuntimeError(
            "cache bench invariant broken: warm solve was not an "
            "identical-value cache hit"
        )
    return {
        "solver": solver,
        "n": int(instance.n),
        "k": int(instance.k),
        "cold_wall_time_s": float(cold_s),
        "warm_wall_time_s": float(warm_s),
        "speedup": float(cold_s / warm_s) if warm_s > 0 else float("inf"),
        "value": float(cold_report.value),
        "cache_hits": int(snap.get("engine.cache.hits", {}).get("value", 0)),
        "cache_misses": int(snap.get("engine.cache.misses", {}).get("value", 0)),
        "compile_hits": int(
            snap.get("engine.compile.hits", {}).get("value", 0)
        ),
        "compile_misses": int(
            snap.get("engine.compile.misses", {}).get("value", 0)
        ),
    }


def _run_compile_bench(
    eps: float,
    n: int = 8000,
    k: int = 4,
    n_distinct: int = 64,
    repeats: int = 4,
    algorithms: Sequence[str] = ("greedy", "adaptive"),
) -> dict:
    """Repeated multi-solver workload: per-call compilation vs one shared
    :class:`~repro.core.compiled.CompiledInstance`.

    One large, duplicate-heavy instance (``n`` customers clustered on
    ``n_distinct`` distinct angles), full-circle antennas and loose
    capacities.  That shape concentrates the per-solve cost in exactly
    the work a compile amortizes — angle normalization, the stable
    argsort, demand/profit prefix sums, sweep construction and
    duplicate-window dedup — while the solver's own residual (vectorized
    window sums plus the everything-fits fast path) stays O(n).  The same
    ``len(algorithms) * repeats`` engine solves run twice:

    * **cold** — caches cleared before every solve, so each one re-sorts,
      re-prefixes and rebuilds its sweeps from scratch;
    * **shared** — caches cleared once, so every solve after the first
      reuses the fingerprint-cached compiled view.

    The per-solve values must match exactly between passes (the compiled
    path is a pure refactoring of the precompute); ``speedup`` is the
    headline cold/shared throughput ratio.
    """
    import dataclasses
    import math

    from repro.engine import SolveRequest, clear_caches
    from repro.engine import solve as engine_solve
    from repro.model.generators import uniform_angles

    base = uniform_angles(n=n, k=k, seed=0, capacity_fraction=4.0)
    rng = np.random.default_rng(0)
    distinct = rng.uniform(0.0, 2.0 * math.pi, size=n_distinct)
    spec0 = base.antennas[0]
    instance = AngleInstance(
        thetas=distinct[rng.integers(0, n_distinct, size=n)],
        demands=base.demands,
        profits=base.profits,
        antennas=tuple(
            dataclasses.replace(spec0, rho=2.0 * math.pi) for _ in range(k)
        ),
    )
    requests = [
        SolveRequest(instance=instance, algorithm=alg, eps=eps, use_cache=False)
        for alg in algorithms
    ] * repeats
    registry = get_registry()

    cold_values = []
    t0 = time.perf_counter()
    for request in requests:
        clear_caches()
        cold_values.append(engine_solve(request).value)
    cold_s = time.perf_counter() - t0

    clear_caches()
    registry.reset()
    shared_values = []
    t0 = time.perf_counter()
    for request in requests:
        shared_values.append(engine_solve(request).value)
    shared_s = time.perf_counter() - t0
    snap = registry.snapshot()

    if cold_values != shared_values:
        raise RuntimeError(
            "compile bench invariant broken: shared-compile solves are not "
            "value-identical to per-call compilation"
        )
    solves = len(requests)
    return {
        "n": int(instance.n),
        "k": int(instance.k),
        "n_distinct": int(n_distinct),
        "repeats": int(repeats),
        "solves": int(solves),
        "cold_wall_time_s": float(cold_s),
        "shared_wall_time_s": float(shared_s),
        "speedup": float(cold_s / shared_s) if shared_s > 0 else float("inf"),
        "cold_solves_per_s": float(solves / cold_s) if cold_s > 0 else 0.0,
        "shared_solves_per_s": float(solves / shared_s) if shared_s > 0 else 0.0,
        "compile_hits": int(
            snap.get("engine.compile.hits", {}).get("value", 0)
        ),
        "compile_misses": int(
            snap.get("engine.compile.misses", {}).get("value", 0)
        ),
    }


def _run_backend_bench(
    eps: float,
    n: int = 20000,
    k: int = 3,
    sector_n: int = 2000,
    knapsack_n: int = 200_000,
    repeats: int = 3,
    algorithm: str = "greedy",
    sector_algorithm: str = "independent",
) -> dict:
    """Python-vs-numpy backend comparison on large engine workloads.

    Three workloads, each solved through the engine on both backends with
    the shared precompute cache warm (one priming solve first), so the
    timing isolates the solver hot loop — exactly what the backend knob
    changes:

    * **knapsack** — the headline: ``knapsack_n`` items through the
      density greedy, whose scalar path is a genuine ``O(n)``
      one-item-at-a-time python loop that
      :func:`repro.core.backend.greedy_prefix_mask` replays in a handful
      of vectorized rounds.  Recorded twice: ``knapsack_speedup`` is the
      end-to-end engine ratio (it includes the density argsort and
      result assembly both backends share, so Amdahl caps it around
      2-4x), and ``kernel_speedup`` times the acceptance scan itself —
      the exact loop the backend knob swaps out, with the accept sets
      asserted identical.  ``kernel_speedup`` is the ``>= 10x`` number
      the acceptance bar reads;
    * **angle** — an ``n``-customer moderate-``rho`` sweep through the
      greedy rotation solver.  The scalar scan already prunes to a few
      visits on this shape, so the recorded ``angle_speedup`` is a
      parity check (~1x), not a headline — the section exists to assert
      value identity of :func:`repro.core.backend.rotation_scan` at
      scale;
    * **sector** — a multi-station city at ``sector_n`` customers, where
      the numpy path batches the per-station polar conversions and the
      home-assignment scan.

    Every comparison **asserts value identity** between the backends
    (the ``docs/BACKENDS.md`` contract); a mismatch raises
    ``RuntimeError`` rather than recording a payload.  Timed sections
    run ``repeats`` times and keep the per-backend minimum, which
    de-noises the sub-millisecond numpy sides.
    """
    import dataclasses
    import math

    from repro.engine import SolveRequest, clear_caches
    from repro.engine import solve as engine_solve
    from repro.model.generators import grid_city, uniform_angles

    base = uniform_angles(n=n, k=k, seed=0, capacity_fraction=4.0)
    spec0 = base.antennas[0]
    angle_instance = AngleInstance(
        thetas=base.thetas,
        demands=base.demands,
        profits=base.profits,
        antennas=tuple(
            dataclasses.replace(spec0, rho=math.pi / 3.0) for _ in range(k)
        ),
    )
    sector_instance = grid_city(n=sector_n, seed=0, capacity_fraction=1.0)
    rng = np.random.default_rng(0)
    knapsack_instance = (
        rng.uniform(0.1, 1.0, size=knapsack_n),
        rng.uniform(0.1, 1.0, size=knapsack_n),
        0.25 * 0.55 * knapsack_n,
    )

    def timed_pair(instance, family, algorithm) -> Tuple[float, float, float]:
        def solve_once(backend: str):
            request = SolveRequest(
                instance=instance,
                family=family,
                algorithm=algorithm,
                eps=eps,
                use_cache=False,
                backend=backend,
            )
            t0 = time.perf_counter()
            report = engine_solve(request)
            return time.perf_counter() - t0, report.value

        clear_caches()
        solve_once("python")  # priming: warms the shared compile cache
        python_s = min(solve_once("python")[0] for _ in range(repeats))
        python_value = solve_once("python")[1]
        numpy_s = min(solve_once("numpy")[0] for _ in range(repeats))
        numpy_value = solve_once("numpy")[1]
        if python_value != numpy_value:
            raise RuntimeError(
                "backend bench invariant broken: numpy backend value "
                f"{numpy_value!r} != python value {python_value!r} "
                f"({family}/{algorithm})"
            )
        return python_s, numpy_s, float(python_value)

    def speedup(python_s: float, numpy_s: float) -> float:
        return float(python_s / numpy_s) if numpy_s > 0 else float("inf")

    kn_python_s, kn_numpy_s, kn_value = timed_pair(
        knapsack_instance, "knapsack", "greedy"
    )

    # Kernel-level comparison: the density-order acceptance scan alone
    # (the python branch of repro.knapsack.greedy.solve_greedy vs
    # greedy_prefix_mask), with bit-identical accept sets asserted.
    from repro.core.backend import greedy_prefix_mask
    from repro.knapsack.api import _fits

    kw, kp, kcap = knapsack_instance
    kcap = float(kcap)
    dens = np.where(kw > 1e-12, kp / np.maximum(kw, 1e-300), np.inf)
    order = np.argsort(-dens, kind="stable")
    wo = kw[order]

    def python_scan() -> np.ndarray:
        chosen = []
        remaining = kcap
        for i in order:
            if _fits(kw[i], remaining):
                chosen.append(i)
                remaining -= kw[i]
        return np.array(chosen, dtype=np.intp)

    kernel_python_s = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        scalar_sel = python_scan()
        kernel_python_s = min(kernel_python_s, time.perf_counter() - t0)
    kernel_numpy_s = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        vector_sel = order[greedy_prefix_mask(wo, kcap)]
        kernel_numpy_s = min(kernel_numpy_s, time.perf_counter() - t0)
    if not np.array_equal(scalar_sel, vector_sel):
        raise RuntimeError(
            "backend bench invariant broken: greedy_prefix_mask accept "
            "set differs from the scalar scan"
        )
    angle_python_s, angle_numpy_s, angle_value = timed_pair(
        angle_instance, "angle", algorithm
    )
    sector_python_s, sector_numpy_s, sector_value = timed_pair(
        sector_instance, "sector", sector_algorithm
    )
    return {
        "algorithm": algorithm,
        "n": int(n),
        "k": int(k),
        "knapsack_n": int(knapsack_n),
        "knapsack_python_s": float(kn_python_s),
        "knapsack_numpy_s": float(kn_numpy_s),
        "knapsack_speedup": speedup(kn_python_s, kn_numpy_s),
        "knapsack_value": float(kn_value),
        "kernel_python_s": float(kernel_python_s),
        "kernel_numpy_s": float(kernel_numpy_s),
        "kernel_speedup": speedup(kernel_python_s, kernel_numpy_s),
        "angle_python_s": float(angle_python_s),
        "angle_numpy_s": float(angle_numpy_s),
        "angle_speedup": speedup(angle_python_s, angle_numpy_s),
        "angle_value": float(angle_value),
        "sector_algorithm": sector_algorithm,
        "sector_n": int(sector_n),
        "sector_python_s": float(sector_python_s),
        "sector_numpy_s": float(sector_numpy_s),
        "sector_speedup": speedup(sector_python_s, sector_numpy_s),
        "sector_value": float(sector_value),
    }


def _run_scale_bench(
    eps: float,
    sizes: Sequence[int] = (10_000, 100_000, 1_000_000),
    algorithm: str = "greedy",
    towns: int = 8,
) -> dict:
    """Monolithic-vs-partitioned throughput curves on metro instances.

    For each ``n`` in ``sizes``, generates one ``metro`` instance
    (``towns`` well-separated power-law towns, so the reach graph has
    exactly ``towns`` components) and solves it through the engine twice
    with the same partitionable sector solver: once with
    ``partition="never"`` (the monolithic baseline, which compiles the
    full instance) and once with ``partition="force"`` (the
    partition–solve–merge path of :mod:`repro.engine.partition`).

    Two invariants are **asserted in-harness** on every row — a
    violation raises ``RuntimeError`` rather than recording a payload:

    * *merge-bound soundness* — ``mono_value <= part_value +
      merge_bound``, the certified decomposition guarantee from
      ``docs/SCALE.md`` (on well-separated towns the bound is slack but
      the values should in fact be identical);
    * *scale win* — ``speedup >= 3.0`` on rows with ``n >= 10**6``,
      the acceptance bar for the partitioned strategy.

    Each configuration is timed once per size: the million-customer
    monolithic solve runs multiple seconds, so min-of-repeats de-noising
    would triple an already-long bench for a ratio that is far from the
    3x threshold.
    """
    from repro.engine import SolveRequest, clear_caches
    from repro.engine import solve as engine_solve
    from repro.model.generators import power_law_metro

    rows: List[dict] = []
    for size in sizes:
        instance = power_law_metro(n=int(size), towns=towns, seed=0)

        def solve_once(partition: str) -> Tuple[float, Any]:
            request = SolveRequest(
                instance=instance,
                family="sector",
                algorithm=algorithm,
                eps=eps,
                use_cache=False,
                partition=partition,
            )
            clear_caches()  # cold compile both ways: the comparison is fair
            t0 = time.perf_counter()
            report = engine_solve(request)
            return time.perf_counter() - t0, report

        mono_s, mono_report = solve_once("never")
        part_s, part_report = solve_once("force")
        if part_report.extra.get("strategy") != "partitioned":
            raise RuntimeError(
                "scale bench invariant broken: partition='force' did not "
                f"run the partitioned strategy (n={size})"
            )
        merge_bound = float(part_report.extra["merge_bound"])
        speedup = float(mono_s / part_s) if part_s > 0 else float("inf")
        if mono_report.value > part_report.value + merge_bound + 1e-6:
            raise RuntimeError(
                "scale bench invariant broken: monolithic value "
                f"{mono_report.value!r} exceeds partitioned value "
                f"{part_report.value!r} + certified merge bound "
                f"{merge_bound!r} at n={size}"
            )
        if size >= 1_000_000 and speedup < 3.0:
            raise RuntimeError(
                "scale bench invariant broken: partitioned speedup "
                f"{speedup:.2f}x < 3x at n={size}"
            )
        rows.append(
            {
                "n": int(size),
                "mono_s": float(mono_s),
                "part_s": float(part_s),
                "speedup": speedup,
                "mono_value": float(mono_report.value),
                "part_value": float(part_report.value),
                "merge_bound": merge_bound,
                "partition_upper_bound": float(
                    part_report.extra["partition_upper_bound"]
                ),
                "parts": int(part_report.extra["partitions"]),
                "unreachable": int(part_report.extra["unreachable"]),
            }
        )
    return {
        "algorithm": algorithm,
        "family": "metro",
        "towns": int(towns),
        "rows": rows,
    }


def _run_online_bench(
    n: int = 30_000,
    events: int = 90,
    sectors: int = 8,
    repeats: int = 3,
) -> dict:
    """Delta-apply vs from-scratch-recompile throughput on an event stream.

    One seeded stream of ``events`` events (every 4th an add, every 4th a
    remove, the rest demand updates with ``profit == demand``, preserving
    the paper's shared-objective fast path) is applied two ways to a
    uniform angle instance of ``n`` customers:

    * **delta** — one :class:`~repro.online.delta.DeltaCompiledInstance`
      absorbing every event by patching the compiled views in place;
    * **recompile** — the no-delta baseline: patch the raw arrays, build
      a fresh :class:`~repro.model.instance.AngleInstance` and
      ``compile()`` it after every event.

    Three invariants are **asserted in-harness** (a violation raises
    ``RuntimeError`` rather than recording a payload):

    * *value identity* — after every event of an untimed correlated
      pass, the delta generation equals the fresh compile bit-for-bit
      (raw arrays, stable sort order, doubled prefix sums, content
      fingerprint);
    * *per-sector invalidation* — with ``sectors`` registered windows
      tiling the circle, one add inside a single window evicts exactly
      that window's result-cache key and leaves the others warm;
    * *speedup gate* — delta apply is at least 5x recompile throughput
      at ``n >= 10**4``.

    Both sides are timed **best-of-``repeats``** (min over full-stream
    passes): event applies are sub-millisecond, so a single pass is
    dominated by scheduler noise on shared hardware, and min-of-k is the
    standard de-noising for a ratio with a hard acceptance bar.
    """
    from repro.engine.cache import RESULT_CACHE, fingerprint
    from repro.geometry.angles import TWO_PI
    from repro.online.delta import (
        AddCustomer,
        DeltaCompiledInstance,
        RemoveCustomer,
        UpdateDemand,
    )

    seed_instance = _make_instance("uniform", n=n, k=3, seed=0)
    rng = np.random.default_rng(7)
    stream = []
    adds = removes = updates = 0
    live = n
    for i in range(events):
        if i % 4 == 0:
            stream.append(AddCustomer(demand=float(rng.uniform(0.5, 2.0)),
                                      theta=float(rng.uniform(0.0, TWO_PI))))
            adds += 1
            live += 1
        elif i % 4 == 1:
            stream.append(RemoveCustomer(index=int(rng.integers(0, live))))
            removes += 1
            live -= 1
        else:
            value = float(rng.uniform(0.5, 2.0))
            stream.append(UpdateDemand(index=int(rng.integers(0, live)),
                                       demand=value, profit=value))
            updates += 1

    def replay_raw(arrays, event):
        """The no-delta baseline step: patch raw arrays, rebuild, recompile."""
        thetas, demands = arrays
        if isinstance(event, AddCustomer):
            thetas = np.append(thetas, event.theta)
            demands = np.append(demands, event.demand)
        elif isinstance(event, RemoveCustomer):
            thetas = np.delete(thetas, event.index)
            demands = np.delete(demands, event.index)
        else:
            demands = demands.copy()
            demands[event.index] = event.demand
        instance = AngleInstance(thetas=thetas, demands=demands,
                                 antennas=seed_instance.antennas)
        return (instance.thetas, instance.demands), instance

    # -- invariant 1: value identity, asserted after every event --------
    delta = DeltaCompiledInstance(seed_instance)
    arrays = (seed_instance.thetas, seed_instance.demands)
    identity_events = 0
    for event in stream:
        delta.apply(event)
        arrays, ref = replay_raw(arrays, event)
        fresh = ref.compile()
        view = delta.compiled
        same = (
            np.array_equal(delta.instance.thetas, ref.thetas)
            and np.array_equal(delta.instance.demands, ref.demands)
            and np.array_equal(delta.instance.profits, ref.profits)
            and np.array_equal(view.order, fresh.order)
            and np.array_equal(view.sorted_thetas, fresh.sorted_thetas)
            and np.array_equal(view.demand_prefix, fresh.demand_prefix)
            and np.array_equal(view.profit_prefix, fresh.profit_prefix)
            and fingerprint(delta.instance) == fingerprint(ref)
        )
        if not same:
            raise RuntimeError(
                "online bench invariant broken: delta view diverged from "
                f"a fresh compile after event {identity_events} "
                f"({type(event).__name__})"
            )
        identity_events += 1

    # -- invariant 2: per-sector invalidation keeps untouched keys warm -
    delta = DeltaCompiledInstance(seed_instance)
    width = TWO_PI / sectors
    keys = []
    for s in range(sectors):
        key = ("online-bench", s)
        RESULT_CACHE.put(key, f"sector-{s}")
        delta.register_window(key, s * width, width * (1.0 - 1e-9))
        keys.append(key)
    summary = delta.apply(AddCustomer(demand=1.0, theta=width / 2.0))
    invalidated = int(summary["invalidated"])
    warm_hits = sum(
        1 for s, key in enumerate(keys) if RESULT_CACHE.get(key) == f"sector-{s}"
    )
    if invalidated != 1 or warm_hits != sectors - 1:
        raise RuntimeError(
            "online bench invariant broken: one in-window add should evict "
            f"exactly 1 of {sectors} registered windows, got "
            f"invalidated={invalidated} warm={warm_hits}"
        )

    # -- timing: best-of-repeats on both sides --------------------------
    def delta_pass() -> float:
        d = DeltaCompiledInstance(seed_instance)
        t0 = time.perf_counter()
        for event in stream:
            d.apply(event)
        return time.perf_counter() - t0

    def recompile_pass() -> float:
        arrays = (seed_instance.thetas, seed_instance.demands)
        t0 = time.perf_counter()
        for event in stream:
            arrays, instance = replay_raw(arrays, event)
            instance.compile()
        return time.perf_counter() - t0

    delta_s = min(delta_pass() for _ in range(repeats))
    recompile_s = min(recompile_pass() for _ in range(repeats))
    speedup = float(recompile_s / delta_s) if delta_s > 0 else float("inf")
    if n >= 10_000 and speedup < 5.0:
        raise RuntimeError(
            "online bench invariant broken: delta apply speedup "
            f"{speedup:.2f}x < 5x vs recompile at n={n}"
        )
    return {
        "n": int(n),
        "events": int(events),
        "adds": int(adds),
        "removes": int(removes),
        "updates": int(updates),
        "delta_s": float(delta_s),
        "recompile_s": float(recompile_s),
        "delta_events_per_s": float(events / delta_s) if delta_s > 0 else 0.0,
        "recompile_events_per_s": (
            float(events / recompile_s) if recompile_s > 0 else 0.0
        ),
        "speedup": speedup,
        "identity_events": int(identity_events),
        "sectors": int(sectors),
        "warm_hits": int(warm_hits),
        "invalidated": int(invalidated),
    }


def _run_scenario_bench(
    eps: float,
    n: int = 60_000,
    towns: int = 12,
    identity_n: int = 4_000,
    identity_towns: int = 6,
    repeats: int = 3,
) -> dict:
    """Constraint-pipeline gate: identity, feasibility and compose overhead.

    Exercises the ``scenario`` generator family
    (:func:`repro.model.generators.scenario_metro_blockage` — a
    power-law metro with random blockage segments plus a
    ``max_assignments`` rule, ``docs/SCENARIOS.md``) and asserts three
    invariants **in-harness** (a violation raises ``RuntimeError``
    rather than recording a payload):

    * *composition identity* — on an ``identity_n``-customer scenario,
      the scalar constraint composition (the oracle,
      :func:`repro.model.constraints.compose_station_masks` with
      ``backend="python"``) and the vectorized kernel path
      (``backend="numpy"``) produce bit-identical per-station masks;
    * *mask feasibility + backend value identity* — engine solves of the
      constrained scenario on the ``python`` and ``numpy`` backends
      verify feasible (:meth:`SectorSolution.verify` checks every served
      pair against the composed masks) and agree on the objective value
      exactly;
    * *overhead gate* — on the ``n``-customer scenario, the
      ``phase.sector.constraints`` timer (mask composition inside
      :meth:`CompiledSectorInstance.constraint_masks`) is **< 10%** of
      the full *unconstrained* compile wall time (polar conversion +
      eligibility triple of the constraint-free twin), both sides
      best-of-``repeats``.  The gate arms only at ``n >= 5 * 10**4``:
      below that, fixed per-call overheads dominate both timers and the
      ratio is noise (the smoke runs a small ``n`` for the round-trip,
      the committed payload the armed default).

    The knapsack oracle runs at ``max(eps, 0.1)``: scenario instances
    combine pareto demands with tight capacities, where the exact
    branch-and-bound oracle can blow past its node budget.
    """
    from repro.core.compiled import CompiledSectorInstance
    from repro.engine import SolveRequest, clear_caches
    from repro.engine import solve as engine_solve
    from repro.model.constraints import compose_station_masks
    from repro.model.generators import scenario_metro_blockage
    from repro.model.instance import SectorInstance

    registry = get_registry()
    eps = max(float(eps), 0.1)

    # -- invariant 1: scalar == numpy composition, bit-for-bit ----------
    small = scenario_metro_blockage(n=identity_n, towns=identity_towns, seed=0)
    compiled_small = CompiledSectorInstance(small)
    compiled_small.ensure_stations()
    m_small = len(small.stations)
    rs_small = [compiled_small.station(s).rs for s in range(m_small)]
    masks_py = compose_station_masks(small, rs_small, backend="python")
    masks_np = compose_station_masks(small, rs_small, backend="numpy")
    if masks_py is None or masks_np is None:
        raise RuntimeError(
            "scenario bench invariant broken: the scenario family must "
            "produce nontrivial constraint masks"
        )
    for s in range(m_small):
        if not np.array_equal(masks_py[s], masks_np[s]):
            raise RuntimeError(
                "scenario bench invariant broken: scalar and numpy "
                f"constraint composition diverge at station {s}"
            )
    masked_pairs = int(sum(int((~mask).sum()) for mask in masks_py))
    total_pairs = int(m_small * small.n)

    # -- invariant 2: constrained solves verify + backends agree --------
    rows: List[dict] = []
    for algorithm in ("greedy", "independent"):
        values: Dict[str, float] = {}
        times: Dict[str, float] = {}
        for backend in ("python", "numpy"):
            clear_caches()
            request = SolveRequest(
                instance=small,
                family="sector",
                algorithm=algorithm,
                eps=eps,
                backend=backend,
                use_cache=False,
            )
            report = engine_solve(request)
            # verify() re-derives the composed masks and rejects any
            # served pair a constraint masks out.
            report.solution.verify(small)
            values[backend] = float(report.value)
            times[backend] = float(report.seconds)
        if values["python"] != values["numpy"]:
            raise RuntimeError(
                "scenario bench invariant broken: constrained "
                f"{algorithm!r} value differs across backends "
                f"(python={values['python']!r}, numpy={values['numpy']!r})"
            )
        rows.append(
            {
                "solver": algorithm,
                "python_s": times["python"],
                "numpy_s": times["numpy"],
                "value": values["python"],
            }
        )

    # -- invariant 3: mask composition < 10% of unconstrained compile ---
    big = scenario_metro_blockage(n=n, towns=towns, seed=0)
    plain = SectorInstance(
        positions=big.positions,
        demands=big.demands,
        profits=big.profits,
        stations=big.stations,
    )
    compile_s = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        CompiledSectorInstance(plain).eligibility("numpy")
        compile_s = min(compile_s, time.perf_counter() - t0)
    constraints_s = float("inf")
    for _ in range(repeats):
        registry.reset()
        CompiledSectorInstance(big).eligibility("numpy")
        snap = registry.snapshot()
        constraints_s = min(
            constraints_s,
            float(snap["phase.sector.constraints"]["total_s"]),
        )
    overhead_ratio = (
        constraints_s / compile_s if compile_s > 0 else float("inf")
    )
    if n >= 50_000 and overhead_ratio >= 0.10:
        raise RuntimeError(
            "scenario bench invariant broken: constraint mask composition "
            f"took {overhead_ratio:.1%} of the unconstrained compile "
            f"({constraints_s * 1e3:.2f}ms vs {compile_s * 1e3:.2f}ms) — "
            "the <10% overhead gate failed"
        )

    segments = sum(
        len(c.segments)
        for c in big.constraints
        if hasattr(c, "segments")
    )
    return {
        "n": int(big.n),
        "towns": int(towns),
        "stations": int(len(big.stations)),
        "segments": int(segments),
        "identity_n": int(small.n),
        "identity_stations": int(m_small),
        "masked_pairs": masked_pairs,
        "total_pairs": total_pairs,
        "compile_s": float(compile_s),
        "constraints_s": float(constraints_s),
        "overhead_ratio": float(overhead_ratio),
        "rows": rows,
    }


def _run_service_bench(
    eps: float,
    n: int = 20,
    k: int = 2,
    requests: int = 200,
    algorithm: str = "greedy",
) -> dict:
    """Serving throughput through an in-process solver service.

    Three phases against one `start_in_thread` service on an ephemeral
    port (small angle instances — the serving overhead is the subject,
    not the solver):

    * ``single_rps`` — sequential request/response solves with the cache
      bypassed: every solve rides its own batch (occupancy 1);
    * ``batched_rps`` — the same requests pipelined in one burst, cache
      bypassed: the micro-batcher coalesces them into ``solve_many``
      dispatches;
    * ``warm_rps`` — the burst repeated with caching on after a priming
      pass: served from the warm parent-process result cache.

    ``requests`` distinct instances (cycling seeds) keep the cold phases
    honest — no in-batch dedup, no accidental cache hits.

    A fourth, nested ``supervised`` section benches the supervised
    worker-pool serving mode (``serve --workers``), including
    kill-under-load throughput with deterministic worker SIGKILL
    injection — see :func:`_run_supervised_bench`.
    """
    from repro.model.generators import uniform_angles
    from repro.service import ServiceClient, start_in_thread

    instances = [uniform_angles(n=n, k=k, seed=s) for s in range(requests)]
    singles = instances[: max(1, requests // 4)]
    handle = start_in_thread(port=0, max_batch=32, queue_bound=2 * requests)
    max_batch_seen = 0
    try:
        with ServiceClient(port=handle.port, timeout_s=300.0) as client:
            t0 = time.perf_counter()
            for inst in singles:
                response = client.solve(
                    inst, algorithm=algorithm, eps=eps, use_cache=False
                )
                _require_ok(response, "service_bench single")
            single_s = time.perf_counter() - t0

            t0 = time.perf_counter()
            responses = client.solve_batch(
                instances, algorithm=algorithm, eps=eps, use_cache=False
            )
            batched_s = time.perf_counter() - t0
            for response in responses:
                _require_ok(response, "service_bench batched")
            max_batch_seen = max(r["batch_size"] for r in responses)

            for response in client.solve_batch(
                instances, algorithm=algorithm, eps=eps
            ):  # priming pass fills the parent result cache
                _require_ok(response, "service_bench priming")
            t0 = time.perf_counter()
            responses = client.solve_batch(instances, algorithm=algorithm, eps=eps)
            warm_s = time.perf_counter() - t0
            for response in responses:
                _require_ok(response, "service_bench warm")
            shed = int(
                client.stats()["metrics"]
                .get("service.shed", {})
                .get("value", 0)
            )
    finally:
        handle.stop()
    return {
        "algorithm": algorithm,
        "n": int(n),
        "k": int(k),
        "requests": int(requests),
        "single_rps": float(len(singles) / single_s) if single_s > 0 else 0.0,
        "batched_rps": float(requests / batched_s) if batched_s > 0 else 0.0,
        "warm_rps": float(requests / warm_s) if warm_s > 0 else 0.0,
        "max_batch": int(max_batch_seen),
        "shed": shed,
        "supervised": _run_supervised_bench(
            instances, algorithm=algorithm, eps=eps
        ),
    }


def _run_supervised_bench(
    instances: list,
    algorithm: str,
    eps: float,
    workers: int = 2,
) -> dict:
    """Supervised worker-pool throughput, clean and under kill injection.

    Two bursts of the same cache-bypassed pipelined load:

    * ``supervised_rps`` — against a healthy ``workers``-subprocess pool
      (shard routing over per-worker pipes, no faults);
    * ``kill_rps`` — against the same pool with a deterministic
      :class:`~repro.resilience.chaos.ChaosPolicy` SIGKILLing workers at
      reply time (``kill_rate``); every request must still answer status
      0, and the supervisor's restart/redispatch/degraded counters are
      recorded alongside the throughput.  The gap between the two rates
      is the measured price of crash recovery.
    """
    from repro.resilience.chaos import ChaosPolicy
    from repro.service import ServiceClient, start_in_thread

    requests = len(instances)
    handle = start_in_thread(
        port=0, max_batch=32, queue_bound=2 * requests, workers=workers
    )
    try:
        with ServiceClient(port=handle.port, timeout_s=300.0) as client:
            t0 = time.perf_counter()
            responses = client.solve_batch(
                instances, algorithm=algorithm, eps=eps, use_cache=False
            )
            supervised_s = time.perf_counter() - t0
            for response in responses:
                _require_ok(response, "service_bench supervised")
    finally:
        handle.stop()

    chaos = ChaosPolicy(seed=11, kill_rate=0.35)
    handle = start_in_thread(
        port=0, max_batch=8, queue_bound=2 * requests, workers=workers,
        chaos=chaos,
        supervisor_options={
            "call_timeout_s": 60.0,
            "probe_interval_s": 0.05,
            "restart_backoff_s": 0.02,
        },
    )
    try:
        with ServiceClient(port=handle.port, timeout_s=300.0) as client:
            t0 = time.perf_counter()
            responses = client.solve_batch(
                instances, algorithm=algorithm, eps=eps, use_cache=False
            )
            kill_s = time.perf_counter() - t0
            for response in responses:
                _require_ok(response, "service_bench kill-under-load")
            metrics = client.stats()["metrics"]

            def _count(name: str) -> int:
                return int(metrics.get(name, {}).get("value", 0))

            restarts = _count("service.supervisor.restarts")
            redispatches = _count("service.worker.redispatches")
            degraded = _count("service.worker.degraded")
    finally:
        handle.stop()
    return {
        "workers": int(workers),
        "requests": int(requests),
        "supervised_rps": (
            float(requests / supervised_s) if supervised_s > 0 else 0.0
        ),
        "kill_rate": float(chaos.kill_rate),
        "kill_rps": float(requests / kill_s) if kill_s > 0 else 0.0,
        "restarts": restarts,
        "redispatches": redispatches,
        "degraded": degraded,
    }


def _require_ok(response: dict, where: str) -> None:
    if response.get("status") != 0:
        raise RuntimeError(f"{where}: status {response.get('status')}: "
                           f"{response.get('error')}")


# ----------------------------------------------------------------------
# Schema validation (the contract scripts/smoke.sh enforces)
# ----------------------------------------------------------------------
_RUN_FIELDS: Dict[str, type] = {
    "family": str,
    "kind": str,
    "n": int,
    "k": int,
    "seed": int,
    "solver": str,
    "wall_time_s": float,
    "value": float,
    "upper_bound": float,
    "ratio_vs_bound": float,
    "oracle_calls": int,
    "candidate_windows": int,
    "phases": dict,
}

#: Optional additive section (schema stays v1): present only when the
#: bench ran with ``cache_bench=True``; validated only when present.
_CACHE_BENCH_FIELDS: Dict[str, type] = {
    "solver": str,
    "n": int,
    "k": int,
    "cold_wall_time_s": float,
    "warm_wall_time_s": float,
    "speedup": float,
    "value": float,
    "cache_hits": int,
    "cache_misses": int,
    "compile_hits": int,
    "compile_misses": int,
}

#: Optional additive section (schema stays v1): present only when the
#: bench ran with ``compile_bench=True``; validated only when present.
_COMPILE_BENCH_FIELDS: Dict[str, type] = {
    "n": int,
    "k": int,
    "n_distinct": int,
    "repeats": int,
    "solves": int,
    "cold_wall_time_s": float,
    "shared_wall_time_s": float,
    "speedup": float,
    "cold_solves_per_s": float,
    "shared_solves_per_s": float,
    "compile_hits": int,
    "compile_misses": int,
}

#: Optional additive section (schema stays v1): present only when the
#: bench ran with ``service_bench=True``; validated only when present.
_SERVICE_BENCH_FIELDS: Dict[str, type] = {
    "algorithm": str,
    "n": int,
    "k": int,
    "requests": int,
    "single_rps": float,
    "batched_rps": float,
    "warm_rps": float,
    "max_batch": int,
    "shed": int,
}

#: Nested optional sub-object of ``service_bench`` (additive, so payloads
#: from before the supervised serving mode still validate): present only
#: when the service bench ran the supervised worker-pool phases.
_SERVICE_SUPERVISED_FIELDS: Dict[str, type] = {
    "workers": int,
    "requests": int,
    "supervised_rps": float,
    "kill_rate": float,
    "kill_rps": float,
    "restarts": int,
    "redispatches": int,
    "degraded": int,
}

#: Optional additive section (schema stays v1): present only when the
#: bench ran with ``backend_bench=True``; validated only when present.
_BACKEND_BENCH_FIELDS: Dict[str, type] = {
    "algorithm": str,
    "n": int,
    "k": int,
    "knapsack_n": int,
    "knapsack_python_s": float,
    "knapsack_numpy_s": float,
    "knapsack_speedup": float,
    "knapsack_value": float,
    "kernel_python_s": float,
    "kernel_numpy_s": float,
    "kernel_speedup": float,
    "angle_python_s": float,
    "angle_numpy_s": float,
    "angle_speedup": float,
    "angle_value": float,
    "sector_algorithm": str,
    "sector_n": int,
    "sector_python_s": float,
    "sector_numpy_s": float,
    "sector_speedup": float,
    "sector_value": float,
}

#: Optional additive section (schema stays v1): present only when the
#: bench ran with ``scale_bench=True``; validated only when present.
_SCALE_BENCH_FIELDS: Dict[str, type] = {
    "algorithm": str,
    "family": str,
    "towns": int,
    "rows": list,
}

#: Per-size row of the ``scale_bench`` section's throughput-vs-n curve.
_SCALE_BENCH_ROW_FIELDS: Dict[str, type] = {
    "n": int,
    "mono_s": float,
    "part_s": float,
    "speedup": float,
    "mono_value": float,
    "part_value": float,
    "merge_bound": float,
    "partition_upper_bound": float,
    "parts": int,
    "unreachable": int,
}

#: Optional additive section (schema stays v1): present only when the
#: bench ran with ``online_bench=True``; validated only when present.
_ONLINE_BENCH_FIELDS: Dict[str, type] = {
    "n": int,
    "events": int,
    "adds": int,
    "removes": int,
    "updates": int,
    "delta_s": float,
    "recompile_s": float,
    "delta_events_per_s": float,
    "recompile_events_per_s": float,
    "speedup": float,
    "identity_events": int,
    "sectors": int,
    "warm_hits": int,
    "invalidated": int,
}

#: Optional additive section (schema stays v1): present only when the
#: bench ran with ``scenario_bench=True``; validated only when present.
_SCENARIO_BENCH_FIELDS: Dict[str, type] = {
    "n": int,
    "towns": int,
    "stations": int,
    "segments": int,
    "identity_n": int,
    "identity_stations": int,
    "masked_pairs": int,
    "total_pairs": int,
    "compile_s": float,
    "constraints_s": float,
    "overhead_ratio": float,
    "rows": list,
}

#: Per-solver row of the ``scenario_bench`` section's constrained solves.
_SCENARIO_BENCH_ROW_FIELDS: Dict[str, type] = {
    "solver": str,
    "python_s": float,
    "numpy_s": float,
    "value": float,
}

_SUMMARY_FIELDS: Dict[str, type] = {
    "runs": int,
    "total_wall_time_s": float,
    "mean_ratio_vs_bound": float,
    "min_ratio_vs_bound": float,
    "peak_oracle_calls": int,
}


def _check(cond: bool, msg: str) -> None:
    if not cond:
        raise ValueError(f"bench payload invalid: {msg}")


def _check_fields(obj: dict, fields: Dict[str, type], where: str) -> None:
    for field, typ in fields.items():
        _check(field in obj, f"{where} missing field {field!r}")
        val = obj[field]
        if typ is float:
            _check(
                isinstance(val, (int, float)) and not isinstance(val, bool),
                f"{where}.{field} must be a number, got {type(val).__name__}",
            )
        else:
            _check(
                isinstance(val, typ) and not (typ is int and isinstance(val, bool)),
                f"{where}.{field} must be {typ.__name__}, got {type(val).__name__}",
            )


def validate_bench(payload: dict) -> dict:
    """Validate a bench payload against the frozen schema; returns it.

    Raises ``ValueError`` with a field-level message on the first
    violation.  Checks: header identity and version, config/environment
    presence, per-run field names, types and ranges (non-negative times
    and counts, ``0 <= ratio_vs_bound <= 1 + 1e-6``, ``value <=
    upper_bound`` within tolerance), and summary consistency with the runs.
    """
    _check(isinstance(payload, dict), "payload must be a JSON object")
    _check(payload.get("schema") == SCHEMA_NAME,
           f"schema must be {SCHEMA_NAME!r}, got {payload.get('schema')!r}")
    _check(payload.get("schema_version") == SCHEMA_VERSION,
           f"schema_version must be {SCHEMA_VERSION}")
    _check(isinstance(payload.get("tag"), str) and payload["tag"],
           "tag must be a non-empty string")
    _check(isinstance(payload.get("created_unix"), (int, float)),
           "created_unix must be a number")
    _check(isinstance(payload.get("config"), dict), "config must be an object")
    _check(isinstance(payload.get("environment"), dict),
           "environment must be an object")
    runs = payload.get("runs")
    _check(isinstance(runs, list) and runs, "runs must be a non-empty list")
    solvers_seen = set()
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        _check(isinstance(run, dict), f"{where} must be an object")
        _check_fields(run, _RUN_FIELDS, where)
        _check(run["kind"] in ("angle", "sector"),
               f"{where}.kind must be 'angle' or 'sector'")
        _check(run["wall_time_s"] >= 0.0, f"{where}.wall_time_s negative")
        _check(run["oracle_calls"] >= 0, f"{where}.oracle_calls negative")
        _check(run["candidate_windows"] >= 0,
               f"{where}.candidate_windows negative")
        _check(run["value"] >= 0.0, f"{where}.value negative")
        _check(
            run["value"] <= run["upper_bound"] * (1.0 + 1e-6) + 1e-9,
            f"{where}.value exceeds its proven upper bound",
        )
        _check(
            -1e-9 <= run["ratio_vs_bound"] <= 1.0 + 1e-6,
            f"{where}.ratio_vs_bound outside [0, 1]",
        )
        for phase, seconds in run["phases"].items():
            _check(
                isinstance(phase, str)
                and isinstance(seconds, (int, float))
                and seconds >= 0.0,
                f"{where}.phases[{phase!r}] must map to non-negative seconds",
            )
        solvers_seen.add(run["solver"])
    summary = payload.get("summary")
    _check(isinstance(summary, dict), "summary must be an object")
    _check(
        set(summary) == solvers_seen,
        f"summary solvers {sorted(summary)} != run solvers {sorted(solvers_seen)}",
    )
    for name, s in summary.items():
        _check_fields(s, _SUMMARY_FIELDS, f"summary[{name!r}]")
        _check(s["runs"] > 0, f"summary[{name!r}].runs must be positive")
    if "cache_bench" in payload:
        cb = payload["cache_bench"]
        _check(isinstance(cb, dict), "cache_bench must be an object")
        _check_fields(cb, _CACHE_BENCH_FIELDS, "cache_bench")
        _check(cb["cold_wall_time_s"] >= 0.0, "cache_bench.cold_wall_time_s negative")
        _check(cb["warm_wall_time_s"] >= 0.0, "cache_bench.warm_wall_time_s negative")
        _check(cb["cache_hits"] >= 0 and cb["cache_misses"] >= 0,
               "cache_bench counters negative")
    if "compile_bench" in payload:
        cp = payload["compile_bench"]
        _check(isinstance(cp, dict), "compile_bench must be an object")
        _check_fields(cp, _COMPILE_BENCH_FIELDS, "compile_bench")
        _check(cp["cold_wall_time_s"] >= 0.0,
               "compile_bench.cold_wall_time_s negative")
        _check(cp["shared_wall_time_s"] >= 0.0,
               "compile_bench.shared_wall_time_s negative")
        _check(cp["solves"] > 0, "compile_bench.solves must be positive")
        _check(cp["compile_hits"] >= 0 and cp["compile_misses"] >= 0,
               "compile_bench counters negative")
    if "backend_bench" in payload:
        bb = payload["backend_bench"]
        _check(isinstance(bb, dict), "backend_bench must be an object")
        _check_fields(bb, _BACKEND_BENCH_FIELDS, "backend_bench")
        for field in (
            "knapsack_python_s", "knapsack_numpy_s",
            "kernel_python_s", "kernel_numpy_s",
            "angle_python_s", "angle_numpy_s",
            "sector_python_s", "sector_numpy_s",
            "knapsack_speedup", "kernel_speedup", "angle_speedup",
            "sector_speedup",
        ):
            _check(bb[field] >= 0.0, f"backend_bench.{field} negative")
        _check(bb["n"] > 0 and bb["sector_n"] > 0 and bb["knapsack_n"] > 0,
               "backend_bench sizes must be positive")
    if "scale_bench" in payload:
        sc = payload["scale_bench"]
        _check(isinstance(sc, dict), "scale_bench must be an object")
        _check_fields(sc, _SCALE_BENCH_FIELDS, "scale_bench")
        _check(bool(sc["rows"]), "scale_bench.rows must be non-empty")
        for j, row in enumerate(sc["rows"]):
            where = f"scale_bench.rows[{j}]"
            _check(isinstance(row, dict), f"{where} must be an object")
            _check_fields(row, _SCALE_BENCH_ROW_FIELDS, where)
            _check(row["n"] > 0, f"{where}.n must be positive")
            _check(row["mono_s"] >= 0.0 and row["part_s"] >= 0.0,
                   f"{where} wall times must be non-negative")
            _check(row["speedup"] >= 0.0, f"{where}.speedup negative")
            _check(row["merge_bound"] >= 0.0, f"{where}.merge_bound negative")
            _check(row["parts"] >= 1, f"{where}.parts must be >= 1")
            _check(row["unreachable"] >= 0, f"{where}.unreachable negative")
            _check(
                row["mono_value"]
                <= row["part_value"] + row["merge_bound"] + 1e-6,
                f"{where} monolithic value exceeds partitioned value plus "
                "the certified merge bound",
            )
    if "online_bench" in payload:
        ob = payload["online_bench"]
        _check(isinstance(ob, dict), "online_bench must be an object")
        _check_fields(ob, _ONLINE_BENCH_FIELDS, "online_bench")
        _check(ob["n"] > 0 and ob["events"] > 0,
               "online_bench sizes must be positive")
        _check(ob["adds"] + ob["removes"] + ob["updates"] == ob["events"],
               "online_bench event mix must sum to the event count")
        _check(ob["delta_s"] >= 0.0 and ob["recompile_s"] >= 0.0,
               "online_bench wall times must be non-negative")
        _check(ob["speedup"] > 0.0, "online_bench.speedup must be positive")
        _check(ob["identity_events"] == ob["events"],
               "online_bench must assert identity on every event")
        _check(ob["warm_hits"] + ob["invalidated"] == ob["sectors"],
               "online_bench invalidation split must cover every sector")
    if "scenario_bench" in payload:
        sn = payload["scenario_bench"]
        _check(isinstance(sn, dict), "scenario_bench must be an object")
        _check_fields(sn, _SCENARIO_BENCH_FIELDS, "scenario_bench")
        _check(sn["n"] > 0 and sn["identity_n"] > 0,
               "scenario_bench sizes must be positive")
        _check(sn["stations"] >= 1 and sn["identity_stations"] >= 1,
               "scenario_bench station counts must be >= 1")
        _check(sn["segments"] >= 0, "scenario_bench.segments negative")
        _check(
            0 <= sn["masked_pairs"] <= sn["total_pairs"],
            "scenario_bench masked pairs must lie within the pair count",
        )
        _check(sn["compile_s"] >= 0.0 and sn["constraints_s"] >= 0.0,
               "scenario_bench wall times must be non-negative")
        _check(sn["overhead_ratio"] >= 0.0,
               "scenario_bench.overhead_ratio negative")
        _check(bool(sn["rows"]), "scenario_bench.rows must be non-empty")
        for j, row in enumerate(sn["rows"]):
            where = f"scenario_bench.rows[{j}]"
            _check(isinstance(row, dict), f"{where} must be an object")
            _check_fields(row, _SCENARIO_BENCH_ROW_FIELDS, where)
            _check(row["python_s"] >= 0.0 and row["numpy_s"] >= 0.0,
                   f"{where} wall times must be non-negative")
            _check(row["value"] >= 0.0, f"{where}.value negative")
    if "service_bench" in payload:
        sb = payload["service_bench"]
        _check(isinstance(sb, dict), "service_bench must be an object")
        _check_fields(sb, _SERVICE_BENCH_FIELDS, "service_bench")
        _check(sb["requests"] > 0, "service_bench.requests must be positive")
        for rate in ("single_rps", "batched_rps", "warm_rps"):
            _check(sb[rate] >= 0.0, f"service_bench.{rate} negative")
        _check(sb["max_batch"] >= 1, "service_bench.max_batch must be >= 1")
        _check(sb["shed"] >= 0, "service_bench.shed negative")
        if "supervised" in sb:
            sup = sb["supervised"]
            _check(isinstance(sup, dict),
                   "service_bench.supervised must be an object")
            _check_fields(sup, _SERVICE_SUPERVISED_FIELDS,
                          "service_bench.supervised")
            _check(sup["workers"] >= 1,
                   "service_bench.supervised.workers must be >= 1")
            for rate in ("supervised_rps", "kill_rps"):
                _check(sup[rate] >= 0.0,
                       f"service_bench.supervised.{rate} negative")
            _check(0.0 <= sup["kill_rate"] <= 1.0,
                   "service_bench.supervised.kill_rate out of [0, 1]")
            for counter in ("restarts", "redispatches", "degraded"):
                _check(sup[counter] >= 0,
                       f"service_bench.supervised.{counter} negative")
    return payload


def write_bench(payload: dict, path: str) -> str:
    """Validate then write the payload as pretty JSON; returns the path."""
    validate_bench(payload)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return path


def load_bench(path: str) -> dict:
    """Read and validate a bench JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return validate_bench(json.load(fh))
