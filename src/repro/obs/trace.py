"""Zero-dependency structured-event tracer.

Design goals (the telemetry contract lives in ``docs/OBSERVABILITY.md``):

* **Near-zero overhead when disabled.**  :func:`span` checks one module
  flag and returns a shared no-op singleton — no object allocation, no
  clock read.  Tracing is *off* by default; the hot paths stay within the
  <5 % overhead budget measured by ``benchmarks/bench_obs_overhead.py``.
* **Structured spans, not log lines.**  A span records name, wall-clock
  start, duration, nesting depth, parent span id, thread id, outcome, and
  free-form JSON-safe attributes.  Nesting is tracked per thread with a
  thread-local stack, so concurrent solves interleave correctly.
* **Two sinks.**  Completed spans land in a bounded in-memory buffer
  (drained with :func:`drain_events`) and, when a path or file object was
  given to :func:`enable_tracing`, are appended as one JSON line each —
  the JSONL stream round-trips through :func:`read_jsonl`.

Typical use::

    from repro.obs import tracing, span

    with tracing("solve.trace.jsonl"):
        with span("my.phase", n=1000) as sp:
            ...
            sp.set(value=result)
"""

from __future__ import annotations

import json
import threading
import time
from typing import IO, Any, Dict, List, Optional, Union

__all__ = [
    "span",
    "event",
    "enable_tracing",
    "disable_tracing",
    "trace_enabled",
    "tracing",
    "drain_events",
    "read_jsonl",
]

_lock = threading.RLock()
_tls = threading.local()

#: Spans silently dropped (and counted) beyond this many buffered events.
_DEFAULT_MAX_BUFFER = 100_000


class _State:
    __slots__ = ("enabled", "buffer", "max_buffer", "dropped", "sink",
                 "owns_sink", "next_id")

    def __init__(self) -> None:
        self.enabled = False
        self.buffer: List[dict] = []
        self.max_buffer = _DEFAULT_MAX_BUFFER
        self.dropped = 0
        self.sink: Optional[IO[str]] = None
        self.owns_sink = False
        self.next_id = 1


_STATE = _State()


def _stack() -> list:
    st = getattr(_tls, "stack", None)
    if st is None:
        st = _tls.stack = []
    return st


def _json_safe(value: Any) -> Any:
    """Coerce attribute values to JSON-serializable equivalents."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    # numpy scalars expose .item(); anything else degrades to repr.
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return repr(value)


def _record(ev: dict) -> None:
    with _lock:
        if not _STATE.enabled:
            return
        if len(_STATE.buffer) < _STATE.max_buffer:
            _STATE.buffer.append(ev)
        else:
            _STATE.dropped += 1
        if _STATE.sink is not None:
            _STATE.sink.write(json.dumps(ev, separators=(",", ":")) + "\n")


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class Span:
    """A live traced span; use via ``with span(name, **attrs) as sp:``."""

    __slots__ = ("name", "attrs", "span_id", "parent_id", "depth",
                 "_t0", "_ts")

    def __init__(self, name: str, attrs: Dict[str, Any]):
        self.name = name
        self.attrs = attrs
        self.span_id = -1
        self.parent_id: Optional[int] = None
        self.depth = 0

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        with _lock:
            self.span_id = _STATE.next_id
            _STATE.next_id += 1
        stack = _stack()
        if stack:
            self.parent_id = stack[-1].span_id
            self.depth = len(stack)
        stack.append(self)
        self._ts = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._t0
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        _record(
            {
                "type": "span",
                "name": self.name,
                "span_id": self.span_id,
                "parent_id": self.parent_id,
                "depth": self.depth,
                "thread": threading.get_ident(),
                "ts_unix": self._ts,
                "duration_s": duration,
                "status": "error" if exc_type is not None else "ok",
                "attrs": {k: _json_safe(v) for k, v in self.attrs.items()},
            }
        )
        return False


def span(name: str, **attrs: Any):
    """Open a traced span; returns the shared no-op when tracing is off.

    The disabled path is a single attribute read plus the kwargs dict —
    cheap enough for per-solve and per-phase call sites (per-item inner
    loops should aggregate into metrics instead; see the contract doc).
    """
    if not _STATE.enabled:
        return NULL_SPAN
    return Span(name, attrs)


def event(name: str, **attrs: Any) -> None:
    """Record a point-in-time event (no duration) under the current span."""
    if not _STATE.enabled:
        return
    stack = _stack()
    with _lock:
        span_id = _STATE.next_id
        _STATE.next_id += 1
    _record(
        {
            "type": "event",
            "name": name,
            "span_id": span_id,
            "parent_id": stack[-1].span_id if stack else None,
            "depth": len(stack),
            "thread": threading.get_ident(),
            "ts_unix": time.time(),
            "attrs": {k: _json_safe(v) for k, v in attrs.items()},
        }
    )


def enable_tracing(
    sink: Union[str, IO[str], None] = None,
    max_buffer: int = _DEFAULT_MAX_BUFFER,
) -> None:
    """Turn tracing on, optionally teeing completed spans to a JSONL sink.

    ``sink`` may be a path (opened for append, closed by
    :func:`disable_tracing`) or an open text file object (left open).
    Re-enabling replaces the sink and clears the buffer.
    """
    with _lock:
        _close_sink()
        if isinstance(sink, str):
            _STATE.sink = open(sink, "a", encoding="utf-8")
            _STATE.owns_sink = True
        else:
            _STATE.sink = sink
            _STATE.owns_sink = False
        _STATE.buffer = []
        _STATE.dropped = 0
        _STATE.max_buffer = int(max_buffer)
        _STATE.enabled = True


def _close_sink() -> None:
    if _STATE.sink is not None:
        _STATE.sink.flush()
        if _STATE.owns_sink:
            _STATE.sink.close()
        _STATE.sink = None
        _STATE.owns_sink = False


def disable_tracing() -> None:
    """Turn tracing off and flush/close any owned sink (idempotent)."""
    with _lock:
        _STATE.enabled = False
        _close_sink()


def trace_enabled() -> bool:
    """True while tracing is on."""
    return _STATE.enabled


def drain_events() -> List[dict]:
    """Return and clear the in-memory event buffer."""
    with _lock:
        out, _STATE.buffer = _STATE.buffer, []
        return out


class tracing:
    """Context manager form: ``with tracing("out.jsonl"): ...``."""

    def __init__(self, sink: Union[str, IO[str], None] = None,
                 max_buffer: int = _DEFAULT_MAX_BUFFER):
        self._sink = sink
        self._max_buffer = max_buffer

    def __enter__(self) -> "tracing":
        enable_tracing(self._sink, max_buffer=self._max_buffer)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        disable_tracing()
        return False


def read_jsonl(path: str) -> List[dict]:
    """Parse a JSONL trace file back into event dicts (blank lines skipped)."""
    out: List[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
