"""repro.obs — observability: structured tracing, metrics, bench harness.

Three layers, one contract (``docs/OBSERVABILITY.md``):

* :mod:`repro.obs.trace` — opt-in structured spans with a thread-safe
  buffer and a JSONL sink; near-zero overhead while disabled.
* :mod:`repro.obs.metrics` — always-on :class:`Counter` / :class:`Timer` /
  :class:`Gauge` / :class:`Histogram` aggregates behind one process-wide
  :class:`Registry`;
  the instrumented hot paths (knapsack oracles, the circular sweep, every
  packing solver) report oracle-call counts, candidate-window counts, and
  per-phase wall time through it.
* :mod:`repro.obs.bench` — the ``repro-sectors bench`` harness: runs the
  solver suite over generator families and emits the schema-versioned
  ``BENCH_<tag>.json`` regression baseline.

>>> from repro.obs import get_registry, span
>>> reg = get_registry(); reg.reset()
>>> with span("demo"):          # no-op unless tracing is enabled
...     reg.counter("demo.calls").inc()
>>> reg.snapshot()["demo.calls"]["value"]
1
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    Timer,
    get_registry,
)
from repro.obs.trace import (
    disable_tracing,
    drain_events,
    enable_tracing,
    event,
    read_jsonl,
    span,
    trace_enabled,
    tracing,
)

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "Timer",
    "Registry",
    "get_registry",
    # tracing
    "span",
    "event",
    "enable_tracing",
    "disable_tracing",
    "trace_enabled",
    "tracing",
    "drain_events",
    "read_jsonl",
]
