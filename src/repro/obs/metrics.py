"""Always-on, zero-dependency metrics primitives.

The contract (frozen in ``docs/OBSERVABILITY.md``):

* Metrics are **always on** — they are cheap in-process aggregates (a
  counter increment or a ``perf_counter`` subtraction), so the hot paths
  update them unconditionally.  Structured *tracing*
  (:mod:`repro.obs.trace`) is the opt-in, higher-overhead layer.
* The process-wide :class:`Registry` (via :func:`get_registry`) owns every
  metric.  :meth:`Registry.reset` **zeroes values in place** and keeps the
  metric objects registered, so modules may cache handles at import time
  (the hot-path idiom used throughout ``repro.packing``) and a
  ``reset → run → snapshot`` cycle measures exactly one run.
* :meth:`Registry.snapshot` returns plain JSON-safe dicts keyed by metric
  name; the per-type payloads are part of the telemetry contract.

Thread safety: every metric guards its state with its own lock; the
registry guards its name table with another.  Uncontended lock acquisition
costs ~100 ns, far below the cost of the knapsack-oracle calls these
metrics count.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, Union

__all__ = ["Counter", "Gauge", "Timer", "Histogram", "Registry", "get_registry"]


class Counter:
    """Monotonic counter: ``inc(n)``; reset to zero only via the registry."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, n: int = 1) -> None:
        # acquire/release beats `with` by ~140 ns; this runs per oracle call.
        self._lock.acquire()
        self._value += n
        self._lock.release()

    @property
    def value(self) -> int:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0

    def _snapshot(self) -> dict:
        return {"type": "counter", "value": int(self._value)}


class Gauge:
    """Last-write-wins scalar (e.g. "LP variables this solve")."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        self._lock.acquire()
        self._value = float(value)
        self._lock.release()

    @property
    def value(self) -> float:
        return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def _snapshot(self) -> dict:
        return {"type": "gauge", "value": float(self._value)}


class _TimerContext:
    """``with timer.time(): ...`` — observes the block's wall time."""

    __slots__ = ("_timer", "_t0")

    def __init__(self, timer: "Timer") -> None:
        self._timer = timer

    def __enter__(self) -> "_TimerContext":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._timer.observe(time.perf_counter() - self._t0)
        return False


class Timer:
    """Aggregating wall-time meter: count / total / min / max seconds."""

    __slots__ = ("_lock", "count", "total_s", "min_s", "max_s")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        s = float(seconds)
        self._lock.acquire()
        self.count += 1
        self.total_s += s
        if s < self.min_s:
            self.min_s = s
        if s > self.max_s:
            self.max_s = s
        self._lock.release()

    def time(self) -> _TimerContext:
        return _TimerContext(self)

    def _reset(self) -> None:
        with self._lock:
            self.count = 0
            self.total_s = 0.0
            self.min_s = float("inf")
            self.max_s = 0.0

    def _snapshot(self) -> dict:
        count = self.count
        return {
            "type": "timer",
            "count": int(count),
            "total_s": float(self.total_s),
            "min_s": float(self.min_s) if count else 0.0,
            "max_s": float(self.max_s),
            "mean_s": float(self.total_s / count) if count else 0.0,
        }


class Histogram:
    """Sliding-window quantile meter (p50/p90/p99 over recent samples).

    Keeps the last ``window`` observations in a bounded deque; the
    snapshot sorts them (O(window log window), paid only when snapshotting)
    and reports nearest-rank quantiles.  ``count``/``total`` aggregate over
    *all* observations, not just the window, so throughput math stays
    exact while the quantiles track recent behavior — the right trade for
    long-lived servers (``service.latency`` in ``docs/SERVICE.md``).
    """

    __slots__ = ("_lock", "_window", "count", "total")

    #: Default sample-window size; ~16 KiB of floats per histogram.
    DEFAULT_WINDOW = 2048

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        self._lock = threading.Lock()
        self._window: "deque[float]" = deque(maxlen=int(window))
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        v = float(value)
        self._lock.acquire()
        self.count += 1
        self.total += v
        self._window.append(v)
        self._lock.release()

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile over the sample window (0.0 when empty)."""
        with self._lock:
            samples = sorted(self._window)
        if not samples:
            return 0.0
        idx = min(len(samples) - 1, max(0, round(q * (len(samples) - 1))))
        return samples[idx]

    def _reset(self) -> None:
        with self._lock:
            self._window.clear()
            self.count = 0
            self.total = 0.0

    def _snapshot(self) -> dict:
        with self._lock:
            samples = sorted(self._window)
            count, total = self.count, self.total

        def rank(q: float) -> float:
            idx = min(len(samples) - 1, max(0, round(q * (len(samples) - 1))))
            return float(samples[idx])

        if not samples:
            return {"type": "histogram", "count": int(count), "total": 0.0,
                    "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}
        return {
            "type": "histogram",
            "count": int(count),
            "total": float(total),
            "mean": float(total / count) if count else 0.0,
            "p50": rank(0.50),
            "p90": rank(0.90),
            "p99": rank(0.99),
            "max": float(samples[-1]),
        }


Metric = Union[Counter, Gauge, Timer, Histogram]


class Registry:
    """Named metric table with get-or-create accessors.

    ``counter(name)`` / ``gauge(name)`` / ``timer(name)`` return the
    existing metric or register a fresh one; asking for a name that exists
    under a *different* type raises ``TypeError`` (names are contractual,
    see ``docs/OBSERVABILITY.md``).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, cls) -> Metric:
        with self._lock:
            m = self._metrics.get(name)
            if m is None:
                m = self._metrics[name] = cls()
            elif not isinstance(m, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(m).__name__}, "
                    f"not a {cls.__name__}"
                )
            return m

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)  # type: ignore[return-value]

    def timer(self, name: str) -> Timer:
        return self._get_or_create(name, Timer)  # type: ignore[return-value]

    def histogram(self, name: str) -> Histogram:
        return self._get_or_create(name, Histogram)  # type: ignore[return-value]

    def reset(self) -> None:
        """Zero every metric *in place* (registrations and handles survive)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for m in metrics:
            m._reset()

    def snapshot(self) -> Dict[str, dict]:
        """JSON-safe ``{name: payload}`` of every registered metric."""
        with self._lock:
            items = list(self._metrics.items())
        return {name: m._snapshot() for name, m in sorted(items)}


#: The process-wide registry every instrumented module writes to.
_REGISTRY = Registry()


def get_registry() -> Registry:
    """The process-wide :class:`Registry` (one per interpreter)."""
    return _REGISTRY
