"""Unified solver engine (registry + planner + cache + batched solves).

Public surface (contract: ``docs/ENGINE.md``):

* :class:`~repro.engine.registry.SolverSpec` / :func:`register` /
  :func:`get_spec` / :func:`specs` / :func:`solver_names` — the single
  declarative solver table every consumer (CLI, bench, fallback chains,
  analysis harness) derives from;
* :class:`~repro.engine.core.SolveRequest` /
  :class:`~repro.engine.core.SolveReport` / :func:`solve` /
  :func:`solve_many` — the uniform solve envelope;
* :func:`cache_probe` / :func:`cache_store` — parent-process warm-cache
  helpers for batching front ends (:mod:`repro.service`);
* :func:`~repro.engine.planner.plan` — ``algorithm="auto"`` resolution —
  :func:`~repro.engine.planner.plan_backend` — ``backend="auto"``
  resolution against each spec's declared kernels (``docs/BACKENDS.md``) —
  and :func:`~repro.engine.planner.plan_partition` — ``partition="auto"``
  strategy resolution against each spec's ``partitionable`` capability
  (``docs/SCALE.md``);
* :mod:`repro.engine.partition` — reach-component decomposition with
  certified merge bounds (:func:`partition_instance`,
  :func:`solve_partitioned`, :func:`merge_partial_solutions`);
* :mod:`repro.engine.cache` — instance-fingerprint result + precompute
  caches (:func:`clear_caches`, ``engine.cache.*`` metrics);
* :func:`check_registry` / :func:`smoke_check` — CI completeness gates.
"""

from repro.engine.cache import clear_caches, fingerprint
from repro.engine.core import (
    SolveReport,
    SolveRequest,
    cache_probe,
    cache_store,
    solve,
    solve_many,
)
from repro.engine.partition import (
    Part,
    PartitionPlan,
    merge_partial_solutions,
    partition_instance,
    reach_components,
    solve_partitioned,
)
from repro.engine.planner import plan, plan_backend, plan_partition
from repro.engine.registry import (
    FAMILIES,
    SolveContext,
    SolverSpec,
    check_registry,
    get_spec,
    register,
    smoke_check,
    solver_names,
    specs,
)

__all__ = [
    "FAMILIES",
    "Part",
    "PartitionPlan",
    "SolveContext",
    "SolveRequest",
    "SolveReport",
    "SolverSpec",
    "cache_probe",
    "cache_store",
    "check_registry",
    "clear_caches",
    "fingerprint",
    "get_spec",
    "merge_partial_solutions",
    "partition_instance",
    "plan",
    "plan_backend",
    "plan_partition",
    "reach_components",
    "register",
    "smoke_check",
    "solve",
    "solve_many",
    "solve_partitioned",
    "solver_names",
    "specs",
]
