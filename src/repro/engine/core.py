"""The solve engine: uniform request/report envelope over every solver.

One entry point — :func:`solve` — replaces the per-call-site wiring that
used to live in ``cli.py``, ``obs/bench.py`` and
``resilience/fallbacks.py``:

* **request** (:class:`SolveRequest`): instance + family + algorithm
  (``"auto"`` invokes the planner) + eps/seed/timeout/guarantee;
* **report** (:class:`SolveReport`): normalized result with the solved
  value, wall time, cache provenance and family-specific extras
  (certified bounds from anytime solves, cover lower bounds, online
  competitive ratios).

The engine owns the cross-cutting policy so solvers do not have to:
oracle construction from eps, cooperative ``Budget`` activation from
``timeout_s``, result verification, instance-fingerprint caching
(:mod:`repro.engine.cache`) and telemetry (``engine.*`` metrics, see
``docs/OBSERVABILITY.md``).  :func:`solve_many` fans requests over
:func:`repro.parallel.pool.parallel_map` with per-request budgets and
partial-result semantics.

Execution is dispatched through one *strategy seam* (``_STRATEGIES``):
``monolithic`` runs the resolved spec directly, ``partitioned``
decomposes large multi-station sector instances by station reach and
merges with a certified bound (:mod:`repro.engine.partition`,
``docs/SCALE.md``), and the worker-sharded strategy of the service tier
(:mod:`repro.service`) composes on top by routing whole requests to
supervised workers that re-enter this seam.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.engine import cache as _cache
from repro.engine.planner import plan, plan_backend, plan_partition
from repro.engine.registry import SolveContext, SolverSpec, get_spec
from repro.model.introspect import infer_family, instance_size
from repro.obs.metrics import get_registry

__all__ = [
    "SolveRequest",
    "SolveReport",
    "solve",
    "solve_many",
    "cache_probe",
    "cache_store",
]

_REG = get_registry()
_REQUESTS = _REG.counter("engine.requests")
_PLANNED = _REG.counter("engine.planned")
_SOLVE_TIMER = _REG.timer("engine.solve")
# Which kernel path served each (uncached) solve; an explicit numpy
# request on a python-only spec counts under both python and fallback.
# Contract: docs/OBSERVABILITY.md, docs/BACKENDS.md.
_BACKEND_PYTHON = _REG.counter("engine.backend.python")
_BACKEND_NUMPY = _REG.counter("engine.backend.numpy")
_BACKEND_FALLBACK = _REG.counter("engine.backend.fallback")
# Which execution strategy served each solve; an explicit
# partition="force" on a non-partitionable spec counts under both
# monolithic and fallback.  Contract: docs/OBSERVABILITY.md, docs/SCALE.md.
_PARTITION_MONOLITHIC = _REG.counter("engine.partition.monolithic")
_PARTITION_PARTITIONED = _REG.counter("engine.partition.partitioned")
_PARTITION_FALLBACK = _REG.counter("engine.partition.fallback")


@dataclass(frozen=True)
class SolveRequest:
    """One solve, fully specified by value (picklable for solve_many).

    ``family="auto"`` infers angle/sector/knapsack from the payload type;
    covering and online runs on angle instances must name their family
    explicitly.  ``algorithm="auto"`` defers to the planner.
    ``timeout_s`` becomes a cooperative ``Budget(wall_s=...)`` activated
    around the solver (carrying a Budget object itself would not pickle).
    ``backend`` picks the kernel implementation — ``"python"``,
    ``"numpy"``, or ``"auto"`` (numpy when the resolved solver declares it
    and the instance is large; see
    :func:`repro.engine.planner.plan_backend` and ``docs/BACKENDS.md``).
    Both backends are value-identical, so the result cache key ignores it.
    ``partition`` picks the execution strategy — ``"auto"``, ``"never"``,
    or ``"force"`` (decompose large multi-station sector instances by
    station reach and merge with a certified bound; see
    :func:`repro.engine.planner.plan_partition` and ``docs/SCALE.md``).
    Partitioned values may differ from monolithic ones (both feasible,
    related by the certified merge bound), so partitioned solves bypass
    the result cache entirely.
    """

    instance: Any
    family: str = "auto"
    algorithm: str = "auto"
    eps: float = 1.0
    seed: int = 0
    timeout_s: Optional[float] = None
    guarantee: Optional[float] = None
    variant: str = "overlap"
    backend: str = "auto"
    partition: str = "auto"
    use_cache: bool = True
    label: str = ""


@dataclass
class SolveReport:
    """Normalized outcome of one engine solve.

    ``value`` follows the family's objective sense: served profit for
    angle/sector/knapsack/online (higher is better), antennas used for
    covering (lower is better).  ``solution`` is the family-native result
    object (AngleSolution, SectorSolution, FractionalSolution,
    CoverResult, KnapsackResult, online stats dict); for anytime solves
    it is the incumbent and ``extra`` carries the certified bounds.
    ``error`` is set (and ``solution`` is None) only on ``solve_many``
    partial failures — plain :func:`solve` raises instead.
    """

    family: str
    algorithm: str
    value: float = 0.0
    solution: Any = None
    seconds: float = 0.0
    cached: bool = False
    planned: bool = False
    label: str = ""
    error: Optional[str] = None
    extra: Dict[str, Any] = field(default_factory=dict)


def _resolve_backend(request: SolveRequest, spec: SolverSpec) -> str:
    """Resolve the request's backend and count which path serves the solve."""
    backend, fell_back = plan_backend(
        request.backend, spec.backends, instance_size(request.instance)
    )
    (_BACKEND_NUMPY if backend == "numpy" else _BACKEND_PYTHON).inc()
    if fell_back:
        _BACKEND_FALLBACK.inc()
    return backend


def _resolve_strategy(request: SolveRequest, spec: SolverSpec) -> tuple:
    """Resolve the execution strategy — pure, no metrics (see module doc).

    Returns ``(strategy, fell_back)`` with ``strategy`` one of the
    :data:`_STRATEGIES` keys.
    """
    return plan_partition(
        request.partition,
        spec.partitionable,
        instance_size(request.instance),
        stations=int(getattr(request.instance, "m", 0) or 0),
    )


def _build_oracle(spec: SolverSpec, eps: float):
    from repro.knapsack import get_solver

    if spec.family == "knapsack":
        return None  # knapsack specs *are* oracles
    if spec.supports_eps and eps < 1.0:
        return get_solver("fptas", eps=eps)
    return get_solver("exact")


def _build_compiled(instance: Any, family: str) -> Any:
    """Resolve the shared compiled view the solver context carries.

    Knapsack payloads compile their item arrays directly; every other
    family goes through the fingerprint-keyed compile cache, so repeated
    solves of equal-content instances (batches, service aliases) compile
    once per process.
    """
    if family == "knapsack":
        import numpy as np

        from repro.core.compiled import compile_items

        weights, profits, _ = instance
        return compile_items(
            np.asarray(weights, dtype=np.float64),
            np.asarray(profits, dtype=np.float64),
        )
    return _cache.shared_compiled(instance)


def _normalize(result: Any, instance: Any, extra: Dict[str, Any]) -> tuple:
    """Return ``(solution, value)`` and fill family-specific extras."""
    from repro.knapsack.api import KnapsackResult
    from repro.packing.covering import CoverResult
    from repro.resilience.anytime import AnytimeOutcome

    if isinstance(result, AnytimeOutcome):
        extra["lower_bound"] = float(result.lower_bound)
        extra["upper_bound"] = float(result.upper_bound)
        extra["optimal"] = bool(result.optimal)
        extra["reason"] = result.reason
        return result.solution, float(result.solution.value(instance))
    if isinstance(result, CoverResult):
        extra["lower_bound"] = int(result.lower_bound)
        extra["gap"] = float(result.gap())
        extra["objective"] = "min_antennas"
        return result, float(result.antennas_used)
    if isinstance(result, KnapsackResult):
        return result, float(result.value)
    if isinstance(result, dict) and "value" in result:
        extra.update({k: v for k, v in result.items() if k != "value"})
        return result, float(result["value"])
    if hasattr(result, "value") and callable(result.value):
        return result, float(result.value(instance))
    raise TypeError(f"solver returned unnormalizable {type(result).__name__}")


def _verify(solution: Any, instance: Any, family: str) -> None:
    if family == "knapsack":
        import numpy as np

        weights, profits, capacity = instance
        solution.verify(
            np.asarray(weights, dtype=np.float64),
            np.asarray(profits, dtype=np.float64),
            float(capacity),
        )
        return
    if family == "covering":
        from repro.packing.covering import verify_cover

        verify_cover(instance.thetas, instance.demands, instance.antennas[0], solution)
        return
    verify = getattr(solution, "verify", None)
    if callable(verify):
        verify(instance)


def _resolve(request: SolveRequest) -> tuple:
    """Resolve ``family``/``algorithm`` (running the planner for ``auto``).

    Pure: no metrics, no caching — shared by :func:`solve` and the
    parent-process cache helpers so both agree on the resolved names.
    Returns ``(family, algorithm, planned)``.
    """
    family = (
        request.family if request.family != "auto"
        else infer_family(request.instance)
    )
    planned = request.algorithm == "auto"
    if planned:
        algorithm = plan(
            request.instance,
            family,
            timeout_s=request.timeout_s,
            guarantee=request.guarantee,
            variant=request.variant,
            eps=request.eps,
        )
    else:
        algorithm = request.algorithm
    return family, algorithm, planned


def _cacheable(
    request: SolveRequest, family: str, strategy: str = "monolithic"
) -> bool:
    """Whether this request may consult/fill the result cache.

    A deadline (explicit or ambient) makes the outcome time-dependent,
    hence non-canonical for the instance: never cache such solves.  This
    also keeps ``--timeout 0`` failing deterministically with exit code 4
    instead of answering from cache.  Partitioned solves are likewise
    uncacheable: their value is strategy-dependent (within the certified
    merge bound of monolithic, not equal to it), and the cache key is
    strategy-agnostic by design.
    """
    from repro.resilience.budget import current_budget

    budgeted = request.timeout_s is not None or current_budget() is not None
    return (
        request.use_cache
        and not budgeted
        and family != "knapsack"
        and strategy == "monolithic"
    )


def cache_probe(request: SolveRequest) -> Optional[SolveReport]:
    """Answer a request from this process's result cache, or ``None``.

    Used by the batched service front end (:mod:`repro.service`) to serve
    warm results from the *parent* process before fanning cache misses to
    the worker pool (whose processes have their own, cold caches).
    Resolution (family inference, planning) matches :func:`solve` exactly,
    so a probe hit is indistinguishable from a cached engine solve.
    """
    family, algorithm, planned = _resolve(request)
    strategy, _ = _resolve_strategy(request, get_spec(family, algorithm))
    if not _cacheable(request, family, strategy):
        return None
    key = _cache.result_key(
        request.instance, family, algorithm, request.eps, request.seed
    )
    hit = _cache.RESULT_CACHE.get(key)
    if hit is None:
        return None
    solution, value, extra = hit
    return SolveReport(
        family=family, algorithm=algorithm, value=value, solution=solution,
        seconds=0.0, cached=True, planned=planned, label=request.label,
        extra=dict(extra),
    )


def cache_store(request: SolveRequest, report: SolveReport) -> bool:
    """Insert a completed report into this process's result cache.

    The counterpart of :func:`cache_probe`: after ``solve_many`` fans a
    batch to worker processes, the parent stores the returned reports so
    later identical requests hit the warm cache.  Error reports, budgeted
    solves and uncacheable families are skipped; returns whether the
    report was stored.
    """
    if report.error is not None or report.solution is None:
        return False
    if report.extra.get("strategy") == "partitioned":
        return False
    if not _cacheable(request, report.family):
        return False
    key = _cache.result_key(
        request.instance, report.family, report.algorithm,
        request.eps, request.seed,
    )
    _cache.RESULT_CACHE.put(key, (report.solution, report.value, dict(report.extra)))
    return True


# ======================================================================
# Execution strategies.  One dispatch seam for how a resolved
# (family, algorithm) actually executes:
#
# * ``monolithic``  — build the solve context and run the spec directly;
# * ``partitioned`` — reach-component decomposition, per-part solves
#   fanned over the process pool, certified merge
#   (:mod:`repro.engine.partition`, ``docs/SCALE.md``);
# * worker-sharded — the third strategy lives one layer up: the service
#   tier (``repro.service``) routes whole requests to supervised worker
#   processes by content-fingerprint shard, and each worker re-enters
#   this seam (monolithic or partitioned) locally.
#
# Strategy callables share one signature and return the raw solver
# result for :func:`_normalize`; family-specific extras go into ``extra``.
# ======================================================================
def _run_monolithic(
    request: SolveRequest, spec: SolverSpec, family: str, algorithm: str,
    extra: Dict[str, Any],
) -> Any:
    """Run the spec in-process over the whole instance (default strategy)."""
    ctx = SolveContext(eps=request.eps, seed=request.seed,
                       oracle=_build_oracle(spec, request.eps),
                       compiled=_build_compiled(request.instance, family),
                       backend=_resolve_backend(request, spec))
    return spec.run(request.instance, ctx)


def _run_partitioned(
    request: SolveRequest, spec: SolverSpec, family: str, algorithm: str,
    extra: Dict[str, Any],
) -> Any:
    """Partition–solve–merge over the reach components (docs/SCALE.md).

    Deliberately skips :func:`_build_compiled` for the parent instance —
    compiling per-station views of all ``n`` customers is exactly the
    cost this strategy avoids; each child solve compiles only its part.
    """
    from repro.engine.partition import solve_partitioned

    solution, part_extra = solve_partitioned(request, algorithm)
    extra.update(part_extra)
    return solution


_STRATEGIES = {
    "monolithic": _run_monolithic,
    "partitioned": _run_partitioned,
}


def solve(request: SolveRequest) -> SolveReport:
    """Resolve, plan, pick a strategy, solve, verify, and (maybe) cache.

    Raises whatever the underlying solver raises (``BudgetExpired`` on an
    expired ``timeout_s``, ``ValueError`` on inapplicable algorithms) —
    error swallowing is :func:`solve_many`'s job, not this one's.
    """
    from contextlib import nullcontext

    from repro.resilience.budget import Budget

    _REQUESTS.inc()
    family, algorithm, planned = _resolve(request)
    if planned:
        _PLANNED.inc()
    spec = get_spec(family, algorithm)

    reason = spec.rejects(request.instance)
    if reason is not None:
        raise ValueError(f"solver {family}/{algorithm} rejects this instance: {reason}")

    strategy, fell_back = _resolve_strategy(request, spec)
    (_PARTITION_PARTITIONED if strategy == "partitioned"
     else _PARTITION_MONOLITHIC).inc()
    if fell_back:
        _PARTITION_FALLBACK.inc()

    cacheable = _cacheable(request, family, strategy)
    key = None
    if cacheable:
        key = _cache.result_key(
            request.instance, family, algorithm, request.eps, request.seed
        )
        hit = _cache.RESULT_CACHE.get(key)
        if hit is not None:
            solution, value, extra = hit
            return SolveReport(
                family=family, algorithm=algorithm, value=value,
                solution=solution, seconds=0.0, cached=True, planned=planned,
                label=request.label, extra=dict(extra),
            )

    budget_ctx = (
        Budget(wall_s=request.timeout_s).activate()
        if request.timeout_s is not None
        else nullcontext()
    )
    extra: Dict[str, Any] = {}
    start = time.perf_counter()
    with budget_ctx:
        result = _STRATEGIES[strategy](request, spec, family, algorithm, extra)
    seconds = time.perf_counter() - start
    _SOLVE_TIMER.observe(seconds)

    solution, value = _normalize(result, request.instance, extra)
    _verify(solution, request.instance, family)

    if cacheable:
        _cache.RESULT_CACHE.put(key, (solution, value, extra))
    return SolveReport(
        family=family, algorithm=algorithm, value=value, solution=solution,
        seconds=seconds, cached=False, planned=planned, label=request.label,
        extra=extra,
    )


def _solve_worker(request: SolveRequest) -> SolveReport:
    """Module-level (hence picklable) worker for :func:`solve_many`."""
    try:
        return solve(request)
    except Exception as exc:  # noqa: BLE001 - converted to a partial report
        family = request.family
        if family == "auto":
            try:
                family = infer_family(request.instance)
            except ValueError:
                family = "?"
        return SolveReport(
            family=family, algorithm=request.algorithm, label=request.label,
            error=f"{type(exc).__name__}: {exc}",
        )


def solve_many(
    requests: Sequence[SolveRequest],
    workers: Optional[int] = None,
    allow_partial: bool = True,
) -> List[SolveReport]:
    """Batched solve, fanned over the process pool, order-preserving.

    Each request carries its own ``timeout_s`` (budgets are rebuilt inside
    each worker — they do not cross process boundaries).  With
    ``allow_partial=True`` (default) failures come back as reports with
    ``error`` set; with ``allow_partial=False`` the first failure raises.

    Worker processes have their own caches, so cross-request cache reuse
    is only guaranteed for the serial fallback path (< 4 requests or
    ``workers=1``); results returned to the parent are complete either
    way.
    """
    from repro.parallel.pool import parallel_map

    reports = parallel_map(_solve_worker, list(requests), workers=workers)
    if not allow_partial:
        for report in reports:
            if report.error is not None:
                raise RuntimeError(
                    f"solve_many: {report.family}/{report.algorithm} "
                    f"{report.label or ''} failed: {report.error}"
                )
    return reports
