"""Partition–solve–merge: spatial decomposition of large sector instances.

The paper's 2-D→1-D reduction makes every unit of work *local to a
station*: a customer only ever interacts with stations whose reach disk
contains it.  This module exploits that locality to cut one huge
:class:`~repro.model.instance.SectorInstance` into independent
sub-instances that are solved separately (optionally in parallel over
:mod:`repro.parallel.pool`) and merged back losslessly:

**Partition rule.**  Two stations *overlap* when their reach disks can
share a customer, i.e. ``dist(s, t) <= R_s + R_t`` (``R`` the station's
max antenna radius).  The partition is the set of connected components of
that overlap graph.  If a customer is reachable from stations ``s`` and
``t`` then ``dist(s, t) <= R_s + R_t`` by the triangle inequality, so
*all* stations that can serve a given customer lie in one component —
assigning each reachable customer to (any of) its reaching stations'
component is therefore well defined, and **no feasible assignment ever
crosses components**.  Customers out of reach of every station are
dropped (no solution can serve them).

**Constraints stay exact.**  When the instance carries eligibility
constraints (``docs/SCENARIOS.md``), customers are assigned to components
through their *effective* eligibility — raw reach ANDed with the composed
constraint masks.  Effective eligibility is a subset of raw reach, so the
component argument above still covers it (the station graph itself stays
raw-reach: conservative, never wrong), customers every constraint masks
out everywhere are dropped exactly as a monolithic solve would leave them
unserved, and the constraint specs pass to each sub-instance verbatim —
global ``los_blockage`` segments mask the same pairs either way, and a
``max_assignments`` top-``k`` computed inside a component equals the
global one because *all* of a customer's reaching stations live in its
component and the local station order preserves the global id order.

**Merge bound.**  Solving each component with a heuristic and
concatenating gives value ``V_part = Σ_p V_p``.  Per component the cheap
capacity/profit bound ``UB_p = min(total_profit_p, max_density_p × Σ
capacities_p)`` certifies ``OPT_p <= UB_p``; because the decomposition is
exact, ``OPT = Σ_p OPT_p <= Σ_p UB_p``.  The *certified merge bound*
reported with every partitioned solve is ``merge_bound = Σ_p UB_p -
V_part >= 0``, and for any monolithic solve value ``V_mono <= OPT`` it
guarantees ``V_mono <= V_part + merge_bound`` — the inequality the scale
bench and the property tests assert.

**Views, not copies.**  The partitioner permutes the parent
struct-of-arrays once so each component's customers are contiguous; the
per-part sub-instances are then built from read-only *slices* of the
permuted arrays (adopted uncopied by instance construction, see
``repro.model.instance``).  The parent instance is **never compiled** on
this path — per-station angle sorts happen inside each sub-solve over
that component's customers only, which is where the large-``n`` speedup
comes from (``docs/SCALE.md``).

Engine integration: :func:`repro.engine.planner.plan_partition` decides
monolithic vs. partitioned per request, and
:mod:`repro.engine.core` dispatches to :func:`solve_partitioned` behind
its strategy seam.  Telemetry: ``engine.partition.parts`` /
``engine.partition.unreachable`` counters and the ``phase.partition``
timer (``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.model.instance import SectorInstance
from repro.model.solution import SectorSolution
from repro.obs.metrics import get_registry

__all__ = [
    "Part",
    "PartitionPlan",
    "reach_components",
    "partition_instance",
    "merge_partial_solutions",
    "solve_partitioned",
]

_REG = get_registry()
_PARTS = _REG.counter("engine.partition.parts")
_UNREACHABLE = _REG.counter("engine.partition.unreachable")
_PARTITION_TIMER = _REG.timer("phase.partition")

#: Same relative slack the instance reach predicates use, so the
#: partition agrees with :meth:`SectorInstance.reachable_mask` at radius
#: boundaries.
_SLACK = 1.0 + 1e-12


@dataclass(frozen=True)
class Part:
    """One independent sub-problem of a partitioned sector instance.

    ``customer_index[j]`` is the parent index of the sub-instance's
    ``j``-th customer; ``antenna_ids[a]`` is the parent *global* antenna
    id of the sub-instance's local antenna ``a`` — the two arrays are the
    merge's remapping tables.  ``upper_bound`` certifies ``OPT_part <=
    upper_bound`` (capacity/profit bound, see the module doc).
    """

    component: int
    station_ids: Tuple[int, ...]
    customer_index: np.ndarray
    antenna_ids: np.ndarray
    sub: SectorInstance
    upper_bound: float


@dataclass(frozen=True)
class PartitionPlan:
    """The full decomposition of one instance into independent parts."""

    instance: SectorInstance
    station_components: np.ndarray
    parts: Tuple[Part, ...]
    unreachable: int

    @property
    def upper_bound(self) -> float:
        """Certified bound on the optimum: ``OPT <= Σ_p UB_p``."""
        return float(sum(p.upper_bound for p in self.parts))


def reach_components(instance: SectorInstance) -> np.ndarray:
    """Connected components of the station reach-overlap graph.

    Returns a ``(m,)`` int array mapping each station to its component id
    (0-based, dense).  Stations ``s``/``t`` are adjacent when
    ``dist(s, t) <= R_s + R_t``, the necessary condition for any customer
    to be reachable from both.
    """
    m = instance.m
    pos = np.array([s.position for s in instance.stations], dtype=np.float64)
    radii = np.array([s.max_radius for s in instance.stations], dtype=np.float64)
    diff = pos[:, None, :] - pos[None, :, :]
    dist = np.hypot(diff[..., 0], diff[..., 1])
    adjacent = dist <= (radii[:, None] + radii[None, :]) * _SLACK
    comp = np.full(m, -1, dtype=np.int64)
    next_id = 0
    for s in range(m):
        if comp[s] >= 0:
            continue
        comp[s] = next_id
        stack = [s]
        while stack:
            u = stack.pop()
            for v in np.flatnonzero(adjacent[u]):
                if comp[v] < 0:
                    comp[v] = next_id
                    stack.append(int(v))
        next_id += 1
    return comp


def _part_upper_bound(sub: SectorInstance) -> float:
    """Capacity/profit upper bound on one part's optimum."""
    if sub.n == 0:
        return 0.0
    density = float((sub.profits / sub.demands).max())
    caps = float(sum(spec.capacity for _, _, spec in sub.antenna_table()))
    return min(float(sub.total_profit), density * caps)


def partition_instance(instance: SectorInstance) -> PartitionPlan:
    """Decompose ``instance`` into independent reach-component parts.

    Customer→component assignment is a streamed O(m·n) pass (one distance
    vector per station, discarded immediately), so the parent instance is
    never compiled and peak memory stays a few float arrays of length
    ``n``.  The customer struct-of-arrays is then permuted once so every
    part is a contiguous read-only slice — sub-instance construction
    adopts those slices as views without copying.
    """
    with _PARTITION_TIMER.time():
        comp = reach_components(instance)
        n = instance.n
        comp_of = np.full(n, -1, dtype=np.int64)
        xs = instance.positions[:, 0]
        ys = instance.positions[:, 1]
        if instance.constraints:
            # Effective eligibility: raw reach ANDed with the composed
            # constraint masks, built from the same streamed distances.
            # O(m·n) mask memory, paid only on constrained instances.
            from repro.model.constraints import compose_station_masks

            rs_list = [
                np.hypot(xs - st.position[0], ys - st.position[1])
                for st in instance.stations
            ]
            cmasks = compose_station_masks(instance, rs_list, backend="numpy")
            for s_id, st in enumerate(instance.stations):
                reach = rs_list[s_id] <= st.max_radius * _SLACK
                if cmasks is not None:
                    reach &= cmasks[s_id]
                comp_of[reach] = comp[s_id]
        else:
            for s_id, st in enumerate(instance.stations):
                px, py = st.position
                reach = np.hypot(xs - px, ys - py) <= st.max_radius * _SLACK
                # All stations reaching a customer share one component
                # (module doc), so overwrites are consistent by
                # construction.
                comp_of[reach] = comp[s_id]

        order = np.argsort(comp_of, kind="stable")
        comp_sorted = comp_of[order]
        positions = instance.positions[order]
        demands = instance.demands[order]
        profits = instance.profits[order]
        for arr in (positions, demands, profits):
            arr.flags.writeable = False

        station_gids: List[List[int]] = [[] for _ in range(instance.m)]
        for g, s_id, _spec in instance.antenna_table():
            station_gids[s_id].append(g)

        n_components = int(comp.max()) + 1 if instance.m else 0
        unreachable = int(np.searchsorted(comp_sorted, 0, side="left"))
        parts: List[Part] = []
        for c in range(n_components):
            a = int(np.searchsorted(comp_sorted, c, side="left"))
            b = int(np.searchsorted(comp_sorted, c, side="right"))
            station_ids = tuple(int(s) for s in np.flatnonzero(comp == c))
            if a == b:
                continue  # no reachable customers: nothing to solve
            sub = SectorInstance(
                positions=positions[a:b],
                demands=demands[a:b],
                profits=profits[a:b],
                stations=tuple(instance.stations[s] for s in station_ids),
                constraints=instance.constraints,
            )
            antenna_ids = np.array(
                [g for s in station_ids for g in station_gids[s]],
                dtype=np.int64,
            )
            parts.append(Part(
                component=c,
                station_ids=station_ids,
                customer_index=order[a:b],
                antenna_ids=antenna_ids,
                sub=sub,
                upper_bound=_part_upper_bound(sub),
            ))
    _PARTS.inc(len(parts))
    _UNREACHABLE.inc(unreachable)
    return PartitionPlan(
        instance=instance,
        station_components=comp,
        parts=tuple(parts),
        unreachable=unreachable,
    )


def merge_partial_solutions(
    plan: PartitionPlan, solutions: Sequence[SectorSolution]
) -> SectorSolution:
    """Concatenate per-part solutions into one parent solution.

    Lossless by the partition rule: parts share no customers and no
    antennas, so per-antenna loads and per-customer assignments transfer
    verbatim through the remapping tables.  Antennas of parts with no
    reachable customers keep orientation 0; unreachable customers stay
    unassigned.
    """
    if len(solutions) != len(plan.parts):
        raise ValueError(
            f"got {len(solutions)} partial solutions for {len(plan.parts)} parts"
        )
    orientations = np.zeros(plan.instance.total_antennas)
    assignment = np.full(plan.instance.n, -1, dtype=np.int64)
    for part, sol in zip(plan.parts, solutions):
        orientations[part.antenna_ids] = sol.orientations
        served = sol.assignment >= 0
        assignment[part.customer_index[served]] = (
            part.antenna_ids[sol.assignment[served]]
        )
    return SectorSolution(orientations=orientations, assignment=assignment)


def solve_partitioned(
    request: Any, algorithm: str
) -> Tuple[SectorSolution, Dict[str, Any]]:
    """Partition, fan out, merge: the engine's partitioned strategy.

    Every part becomes a child :class:`~repro.engine.core.SolveRequest`
    pinned to the *resolved* ``algorithm`` with ``partition="never"``
    (no recursion) and ``use_cache=False`` (sub-solutions are fragments
    of this solve, not canonical answers for their sub-instances), fanned
    out through :func:`repro.engine.core.solve_many` — i.e. over
    :func:`repro.parallel.pool.parallel_map`, honoring ``REPRO_WORKERS``.
    A cooperative deadline on the parent request applies through the
    ambient budget on the in-process path; it does not cross process
    boundaries to pool workers.

    Returns ``(solution, extra)`` where ``extra`` carries the certificate:
    ``partitions``, ``unreachable``, ``partition_upper_bound`` and
    ``merge_bound`` with ``V_mono <= value + merge_bound`` guaranteed for
    any monolithic solve of the same instance (module doc).
    """
    from dataclasses import replace

    from repro.engine.core import solve_many

    plan = partition_instance(request.instance)
    child_requests = [
        replace(
            request,
            instance=part.sub,
            family="sector",
            algorithm=algorithm,
            partition="never",
            use_cache=False,
            timeout_s=None,
            label=f"{request.label}#part{part.component}",
        )
        for part in plan.parts
    ]
    reports = solve_many(child_requests, allow_partial=False)
    merged = merge_partial_solutions(plan, [r.solution for r in reports])
    value = merged.value(plan.instance)
    upper = plan.upper_bound
    extra: Dict[str, Any] = {
        "strategy": "partitioned",
        "partitions": len(plan.parts),
        "unreachable": plan.unreachable,
        "partition_upper_bound": upper,
        "merge_bound": max(0.0, upper - value),
    }
    return merged, extra
