"""Solver registry: one declarative table for every solver family.

Before this layer the repo kept three private dispatch tables in sync by
hand — ``cli.py`` (``ANGLE_ALGORITHMS``/``SECTOR_ALGORITHMS`` + if-chains),
``obs/bench.py`` (``_angle_solver_table``/``_sector_solver_table``) and
``resilience/fallbacks.py`` (hard-wired chain closures).  The registry
replaces all three: a :class:`SolverSpec` declares *what* a solver is
(family, variant, exactness, guarantee, complexity class, applicability)
and *how* to run it (a ``run(instance, ctx)`` callable threading the
shared oracle/eps/seed context), and every consumer derives its table
from here.

Families: ``angle`` and ``sector`` (the paper's two geometries),
``covering`` (the dual min-antenna problem), ``knapsack`` (the inner
oracles, run on ``(weights, profits, capacity)`` triples), and ``online``
(admission policies).

Completeness is machine-checked: :func:`check_registry` verifies that
every solver exported from :mod:`repro.packing` is claimed by some spec's
``uses`` tuple (or is a declared building block) and that every knapsack
oracle name is registered — so adding a solver without registering it
fails ``scripts/smoke.sh``.  Contract: ``docs/ENGINE.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "SolveContext",
    "SolverSpec",
    "register",
    "get_spec",
    "specs",
    "solver_names",
    "FAMILIES",
    "check_registry",
    "smoke_check",
]

FAMILIES = ("angle", "sector", "covering", "knapsack", "online")

#: Exports that are legitimate *building blocks* of registered solvers
#: rather than end-user algorithms; the completeness check exempts them.
_BUILDING_BLOCKS = frozenset(
    {
        "solve_single_antenna_fractional",  # inner step of `splittable`
        "solve_sector_splittable",  # fixed-orientation LP used by analysis
    }
)


@dataclass(frozen=True)
class SolveContext:
    """Everything a solver factory may consume besides the instance.

    ``oracle`` is prebuilt from ``eps`` by the engine (fptas below 1.0,
    exact at 1.0) so every spec shares one oracle policy; ``seed`` feeds
    randomized solvers (lp-round, online arrival order).  ``compiled`` is
    the instance's shared :class:`~repro.core.compiled.CompiledInstance`
    view (or :class:`~repro.core.compiled.CompiledItems` for the knapsack
    family), resolved by the engine via
    :func:`repro.engine.cache.shared_compiled`; ``None`` lets each solver
    fall back to the per-object ``instance.compile()`` memo.

    ``backend`` is the *resolved* kernel choice — ``"python"`` or
    ``"numpy"``, never ``"auto"`` (the engine resolves requests through
    :func:`repro.engine.planner.plan_backend` against the spec's declared
    ``backends`` before building the context).  Run wrappers of
    numpy-capable solvers thread it into the solver; the rest ignore it.
    Contract: ``docs/BACKENDS.md``.
    """

    eps: float = 1.0
    seed: int = 0
    oracle: Any = None
    compiled: Any = None
    backend: str = "python"


@dataclass(frozen=True)
class SolverSpec:
    """Declarative description of one registered solver.

    Attributes
    ----------
    name / family:
        Registry key; ``(family, name)`` is unique.
    run:
        ``run(instance, ctx: SolveContext) -> result``.  The result type
        is family-specific (AngleSolution, SectorSolution, CoverResult,
        KnapsackResult, AnytimeOutcome, online stats dict); the engine
        normalizes it into a SolveReport.
    variant:
        ``overlap`` | ``disjoint`` | ``fractional`` | ``-`` (not an
        angle-packing variant, e.g. knapsack or online).
    exact:
        True when the solver returns a certified optimum (given an exact
        oracle and enough time).
    guarantee:
        Human-readable approximation label for tables (e.g. ``b/(1+b)``).
    guarantee_fn:
        Maps the oracle factor beta to the solver's overall factor; None
        when no worst-case multiplicative guarantee is claimed.
    supports_eps / supports_budget:
        Whether eps changes the outcome and whether the solver checkpoints
        cooperatively against an ambient resilience Budget.
    complexity:
        ``poly`` or ``exponential`` — the planner refuses exponential
        specs under tight deadlines and on large instances.
    uses:
        Names of :mod:`repro.packing` exports this spec covers, consumed
        by the registry completeness check.
    backends:
        Kernel implementations this solver can run on (``"python"`` is
        always first; solvers whose run wrapper threads
        ``SolveContext.backend`` into vectorized kernels also declare
        ``"numpy"``).  :func:`repro.engine.planner.plan_backend` resolves
        a request's ``backend`` against this tuple — requesting numpy on
        a python-only spec falls back cleanly (counted by
        ``engine.backend.fallback``).  Contract: ``docs/BACKENDS.md``.
    partitionable:
        Whether the solver's answers survive the reach-component
        decomposition of :mod:`repro.engine.partition` — i.e. running it
        per component and concatenating yields a feasible solution of
        the whole instance.  Only meaningful for sector solvers whose
        work is local to a station's reach; the planner's
        :func:`repro.engine.planner.plan_partition` consults this column
        the way ``plan_backend`` consults ``backends``.  Contract:
        ``docs/SCALE.md``.
    accepts:
        ``accepts(instance) -> None | str``: None when applicable, else a
        one-line rejection reason (wrong k, heterogeneous antennas, ...).
    """

    name: str
    family: str
    run: Callable[[Any, SolveContext], Any]
    variant: str = "overlap"
    exact: bool = False
    guarantee: str = "heuristic"
    guarantee_fn: Optional[Callable[[float], float]] = None
    supports_eps: bool = True
    supports_budget: bool = False
    complexity: str = "poly"
    uses: Tuple[str, ...] = ()
    backends: Tuple[str, ...] = ("python",)
    partitionable: bool = False
    accepts: Optional[Callable[[Any], Optional[str]]] = None
    description: str = ""

    def rejects(self, instance: Any) -> Optional[str]:
        """None when the spec applies to ``instance``, else the reason."""
        return self.accepts(instance) if self.accepts is not None else None


_REGISTRY: Dict[Tuple[str, str], SolverSpec] = {}


def register(spec: SolverSpec) -> SolverSpec:
    """Register a spec under ``(family, name)``; returns it (decorator-friendly)."""
    if spec.family not in FAMILIES:
        raise ValueError(f"unknown family {spec.family!r} (know {FAMILIES})")
    key = (spec.family, spec.name)
    if key in _REGISTRY:
        raise ValueError(f"duplicate solver spec {key}")
    _REGISTRY[key] = spec
    return spec


def get_spec(family: str, name: str) -> SolverSpec:
    """Look up a registered spec; raises ``KeyError`` naming the options."""
    try:
        return _REGISTRY[(family, name)]
    except KeyError:
        known = ", ".join(sorted(s.name for s in specs(family))) or "<none>"
        raise KeyError(
            f"no solver {name!r} in family {family!r} (know: {known})"
        ) from None


def specs(family: Optional[str] = None) -> List[SolverSpec]:
    """All registered specs (optionally one family), in registration order."""
    return [s for s in _REGISTRY.values() if family is None or s.family == family]


def solver_names(family: str) -> List[str]:
    """Registered algorithm names for one family, registration order."""
    return [s.name for s in specs(family)]


# ======================================================================
# Built-in specs.  All solver imports happen lazily inside run/accepts:
# repro.packing's package __init__ may be mid-import when the engine
# loads, and the registry itself must stay importable from anywhere.
# ======================================================================
def _is_angle(instance) -> Optional[str]:
    from repro.model.instance import AngleInstance

    if not isinstance(instance, AngleInstance):
        return "angle instances only"
    return None


def _is_sector(instance) -> Optional[str]:
    from repro.model.instance import SectorInstance

    if not isinstance(instance, SectorInstance):
        return "sector instances only"
    return None


def _angle_uniform(instance) -> Optional[str]:
    reason = _is_angle(instance)
    if reason:
        return reason
    if not instance.has_uniform_antennas:
        return "requires identical antennas"
    return None


def _angle_small_masks(instance) -> Optional[str]:
    reason = _is_angle(instance)
    if reason:
        return reason
    if instance.k > 12 and not instance.has_uniform_antennas:
        return "heterogeneous DP needs k <= 12 (bitmask state)"
    return None


def _angle_single(instance) -> Optional[str]:
    reason = _is_angle(instance)
    if reason:
        return reason
    if instance.k != 1:
        return "single-antenna solver needs k == 1"
    return None


def _beta_identity(beta: float) -> float:
    return beta


def _beta_greedy(beta: float) -> float:
    return beta / (1.0 + beta)


def _run_greedy(instance, ctx):
    from repro.packing import solve_greedy_multi

    return solve_greedy_multi(
        instance, ctx.oracle, compiled=ctx.compiled, backend=ctx.backend
    )


def _run_adaptive(instance, ctx):
    from repro.packing import solve_greedy_multi

    return solve_greedy_multi(
        instance, ctx.oracle, adaptive=True, compiled=ctx.compiled,
        backend=ctx.backend,
    )


def _run_greedy_ls(instance, ctx):
    from repro.packing import improve_solution, solve_greedy_multi

    base = solve_greedy_multi(
        instance, ctx.oracle, compiled=ctx.compiled, backend=ctx.backend
    )
    return improve_solution(
        instance, base, ctx.oracle, compiled=ctx.compiled, backend=ctx.backend
    )


def _run_dp_disjoint(instance, ctx):
    from repro.packing import solve_non_overlapping_dp

    # The candidate grid comes from the compiled view (shared process-wide
    # when the engine resolved ctx.compiled via shared_compiled).
    return solve_non_overlapping_dp(instance, ctx.oracle, compiled=ctx.compiled)


def _run_shifting(instance, ctx):
    from repro.packing import solve_shifting

    return solve_shifting(instance, ctx.oracle, compiled=ctx.compiled)


def _run_insertion(instance, ctx):
    from repro.packing import solve_insertion

    return solve_insertion(instance, ctx.oracle, compiled=ctx.compiled)


def _run_lp_round(instance, ctx):
    from repro.packing import solve_lp_rounding

    return solve_lp_rounding(
        instance, ctx.oracle, seed=ctx.seed, compiled=ctx.compiled
    )


def _run_exact_angle(instance, ctx):
    from repro.packing import solve_exact_angle

    return solve_exact_angle(instance, compiled=ctx.compiled)


def _run_exact_anytime(instance, ctx):
    # budget=None: picks up the ambient Budget the engine activated (or
    # runs to completion when none is active).
    from repro.packing.exact import solve_exact_anytime

    return solve_exact_anytime(instance, budget=None, compiled=ctx.compiled)


def _run_single(instance, ctx):
    from repro.packing import solve_single_antenna

    return solve_single_antenna(
        instance, ctx.oracle, compiled=ctx.compiled, backend=ctx.backend
    )


def _run_splittable(instance, ctx):
    # Orientation profile from the greedy pass, then the exact splittable
    # optimum (max-flow / LP) for those orientations.
    from repro.packing import solve_greedy_multi, solve_splittable

    plan = solve_greedy_multi(
        instance, ctx.oracle, adaptive=True, compiled=ctx.compiled
    )
    return solve_splittable(instance, plan.orientations)


def _run_sector_greedy(instance, ctx):
    from repro.packing import solve_sector_greedy

    return solve_sector_greedy(
        instance, ctx.oracle, compiled=ctx.compiled, backend=ctx.backend
    )


def _run_sector_greedy_ls(instance, ctx):
    from repro.packing import improve_sector_solution, solve_sector_greedy

    base = solve_sector_greedy(
        instance, ctx.oracle, compiled=ctx.compiled, backend=ctx.backend
    )
    return improve_sector_solution(
        instance, base, ctx.oracle, compiled=ctx.compiled, backend=ctx.backend
    )


def _run_sector_independent(instance, ctx):
    from repro.packing import solve_sector_independent

    return solve_sector_independent(
        instance, ctx.oracle, compiled=ctx.compiled, backend=ctx.backend
    )


def _run_sector_exact(instance, ctx):
    from repro.packing import solve_exact_sector

    return solve_exact_sector(instance, compiled=ctx.compiled)


def _run_greedy_cover(instance, ctx):
    from repro.packing import cover_instance

    return cover_instance(instance, ctx.oracle, compiled=ctx.compiled)


def _knapsack_triple(payload) -> Optional[str]:
    if not (isinstance(payload, (tuple, list)) and len(payload) == 3):
        return "knapsack solvers take (weights, profits, capacity)"
    return None


def _make_knapsack_run(solver_name: str):
    def run(payload, ctx):
        from repro.knapsack import get_solver

        weights, profits, capacity = payload
        kwargs = {"eps": ctx.eps if ctx.eps < 1.0 else 0.5} if solver_name == "fptas" else {}
        if solver_name == "greedy":
            kwargs["backend"] = ctx.backend
        solver = get_solver(solver_name, **kwargs)
        return solver.solve(
            np.asarray(weights, dtype=np.float64),
            np.asarray(profits, dtype=np.float64),
            float(capacity),
            compiled=ctx.compiled,
        )

    return run


def _make_online_run(policy_name: str):
    def run(instance, ctx):
        from repro.online import OnlineAdmission, replay_offline_reference
        from repro.packing import solve_greedy_multi

        plan = solve_greedy_multi(
            instance, ctx.oracle, adaptive=True, compiled=ctx.compiled
        )
        rng = np.random.default_rng(ctx.seed)
        order = rng.permutation(instance.n)
        thetas = instance.thetas[order]
        demands = instance.demands[order]
        sim = OnlineAdmission(instance.antennas, plan.orientations, policy=policy_name)
        accepted = sim.run(thetas, demands)
        offline = replay_offline_reference(
            instance.antennas, plan.orientations, thetas, demands
        )
        return {
            "value": float(accepted),
            "offline_reference": float(offline),
            "competitive": float(accepted / offline) if offline > 0 else 1.0,
            "rejected": int(sim.rejected_count),
            "orientations": plan.orientations.copy(),
        }

    return run


def _register_builtin() -> None:
    # ---- angle ------------------------------------------------------
    register(SolverSpec(
        name="greedy", family="angle", run=_run_greedy,
        guarantee="b/(1+b)", guarantee_fn=_beta_greedy, supports_budget=True,
        uses=("solve_greedy_multi",),
        backends=("python", "numpy"),
        accepts=_is_angle,
        description="separable-assignment greedy, one knapsack per antenna",
    ))
    register(SolverSpec(
        name="adaptive", family="angle", run=_run_adaptive,
        guarantee="b/(1+b)", guarantee_fn=_beta_greedy, supports_budget=True,
        uses=("solve_greedy_multi",),
        backends=("python", "numpy"),
        accepts=_is_angle,
        description="greedy re-evaluating every remaining antenna each round",
    ))
    register(SolverSpec(
        name="greedy+ls", family="angle", run=_run_greedy_ls,
        guarantee="b/(1+b) + polish", guarantee_fn=_beta_greedy,
        supports_budget=True,
        uses=("solve_greedy_multi", "improve_solution"),
        backends=("python", "numpy"),
        accepts=_is_angle,
        description="greedy followed by monotone local search",
    ))
    register(SolverSpec(
        name="dp-disjoint", family="angle", run=_run_dp_disjoint,
        variant="disjoint", guarantee="b (vs disjoint OPT)",
        guarantee_fn=_beta_identity, supports_budget=True,
        uses=("solve_non_overlapping_dp",),
        accepts=_angle_small_masks,
        description="exact-window DP for the non-overlapping variant",
    ))
    register(SolverSpec(
        name="shifting", family="angle", run=_run_shifting,
        variant="disjoint", guarantee="b(1 - rho/2pi - 1/t)",
        supports_budget=True,
        uses=("solve_shifting",),
        accepts=_angle_uniform,
        description="best-of-t-cuts shifted linear DP (identical antennas)",
    ))
    register(SolverSpec(
        name="insertion", family="angle", run=_run_insertion,
        variant="disjoint", guarantee="heuristic",
        uses=("solve_insertion",),
        accepts=_angle_uniform,
        description="conflict-greedy window insertion (identical antennas)",
    ))
    register(SolverSpec(
        name="lp-round", family="angle", run=_run_lp_round,
        guarantee="(1-1/e)b in expectation",
        uses=("solve_lp_rounding", "lp_upper_bound"),
        accepts=_is_angle,
        description="randomized rounding of the configuration LP",
    ))
    register(SolverSpec(
        name="exact", family="angle", run=_run_exact_angle,
        exact=True, guarantee="optimal", supports_eps=False,
        supports_budget=True, complexity="exponential",
        uses=("solve_exact_angle", "solve_exact_fixed_orientations"),
        accepts=_is_angle,
        description="orientation enumeration + branch-and-bound assignment",
    ))
    register(SolverSpec(
        name="exact-anytime", family="angle", run=_run_exact_anytime,
        exact=True, guarantee="optimal (certified bounds under budget)",
        supports_eps=False, supports_budget=True, complexity="exponential",
        uses=("solve_exact_anytime",),
        accepts=_is_angle,
        description="budget-bounded exact search, greedy-seeded incumbent",
    ))
    register(SolverSpec(
        name="single", family="angle", run=_run_single,
        guarantee="b", guarantee_fn=_beta_identity,
        uses=("solve_single_antenna", "best_rotation", "canonical_starts"),
        backends=("python", "numpy"),
        accepts=_angle_single,
        description="rotation search for the one-antenna case",
    ))
    register(SolverSpec(
        name="splittable", family="angle", run=_run_splittable,
        variant="fractional", guarantee="optimal for fixed orientations",
        uses=("solve_splittable", "splittable_value", "best_rotation_fractional"),
        accepts=_is_angle,
        description="greedy orientations + exact splittable flow/LP",
    ))

    # ---- sector -----------------------------------------------------
    register(SolverSpec(
        name="greedy", family="sector", run=_run_sector_greedy,
        guarantee="b/(1+b)", guarantee_fn=_beta_greedy, supports_budget=True,
        uses=("solve_sector_greedy",),
        backends=("python", "numpy"),
        partitionable=True,
        accepts=_is_sector,
        description="global greedy over every antenna of every station",
    ))
    register(SolverSpec(
        name="greedy+ls", family="sector", run=_run_sector_greedy_ls,
        guarantee="b/(1+b) + polish", guarantee_fn=_beta_greedy,
        supports_budget=True,
        uses=("solve_sector_greedy", "improve_sector_solution"),
        backends=("python", "numpy"),
        partitionable=True,
        accepts=_is_sector,
        description="sector greedy followed by monotone local search",
    ))
    register(SolverSpec(
        name="independent", family="sector", run=_run_sector_independent,
        guarantee="heuristic baseline",
        uses=("solve_sector_independent",),
        backends=("python", "numpy"),
        partitionable=True,
        accepts=_is_sector,
        description="nearest-station partition, independent 1-D solves",
    ))
    register(SolverSpec(
        name="exact", family="sector", run=_run_sector_exact,
        exact=True, guarantee="optimal", supports_eps=False,
        complexity="exponential",
        uses=("solve_exact_sector", "solve_exact_sector_single"),
        accepts=_is_sector,
        description="per-antenna orientation enumeration + exact assignment",
    ))

    # ---- covering ---------------------------------------------------
    register(SolverSpec(
        name="greedy-cover", family="covering", run=_run_greedy_cover,
        guarantee="O(OPT log(D/d_min))",
        uses=("greedy_cover", "cover_instance", "cover_lower_bound",
              "verify_cover"),
        accepts=_is_angle,
        description="greedy set cover over single-antenna packings",
    ))

    # ---- knapsack ---------------------------------------------------
    for kname, kguar, kexact in (
        ("exact", "optimal", True),
        ("fptas", "1-eps", False),
        ("greedy", "1/2", False),
    ):
        register(SolverSpec(
            name=kname, family="knapsack", run=_make_knapsack_run(kname),
            variant="-", exact=kexact, guarantee=kguar,
            supports_eps=(kname == "fptas"),
            complexity="exponential" if kname == "exact" else "poly",
            backends=("python", "numpy") if kname == "greedy" else ("python",),
            accepts=_knapsack_triple,
            description=f"inner knapsack oracle ({kname})",
        ))

    # ---- online -----------------------------------------------------
    for pname in ("first_fit", "best_fit", "worst_fit"):
        register(SolverSpec(
            name=pname, family="online", run=_make_online_run(pname),
            variant="-", guarantee="(1-d)/(2-d) work-conserving floor",
            uses=("solve_greedy_multi",),
            accepts=_is_angle,
            description=f"streaming admission under the {pname} policy",
        ))


_register_builtin()


# ======================================================================
# Completeness + smoke checks (wired into scripts/smoke.sh)
# ======================================================================
def check_registry() -> List[str]:
    """Return a list of completeness problems (empty = healthy).

    * every ``solve_*`` export of :mod:`repro.packing` — plus the named
      improvement/covering entry points — must appear in some registered
      spec's ``uses`` or in the building-block exemption list;
    * every :data:`repro.knapsack.api.KNAPSACK_SOLVERS` name must be a
      registered ``knapsack`` spec and vice versa;
    * every :data:`repro.online.admission.POLICIES` name must be a
      registered ``online`` spec.
    """
    import repro.packing as packing
    from repro.knapsack.api import KNAPSACK_SOLVERS
    from repro.online.admission import POLICIES

    problems: List[str] = []

    targets = {n for n in packing.__all__ if n.startswith("solve_")}
    targets |= {"improve_solution", "improve_sector_solution",
                "greedy_cover", "cover_instance"}
    covered = set(_BUILDING_BLOCKS)
    for spec in specs():
        covered |= set(spec.uses)
    for name in sorted(targets - covered):
        problems.append(
            f"packing export {name!r} is not claimed by any SolverSpec.uses "
            f"(register it or add it to the building-block list)"
        )
    for name in sorted(covered - _BUILDING_BLOCKS - set(dir(packing))):
        if not hasattr(packing, name):
            problems.append(f"SolverSpec.uses names unknown export {name!r}")

    knap_registered = set(solver_names("knapsack"))
    for name in sorted(set(KNAPSACK_SOLVERS) - knap_registered):
        problems.append(f"knapsack oracle {name!r} is not registered")
    for name in sorted(knap_registered - set(KNAPSACK_SOLVERS)):
        problems.append(f"registered knapsack spec {name!r} has no oracle")

    online_registered = set(solver_names("online"))
    for name in sorted(set(POLICIES) - online_registered):
        problems.append(f"online policy {name!r} is not registered")

    return problems


def smoke_check(seed: int = 0) -> List[str]:
    """Run every registered solver on a tiny instance; return failures.

    Each applicable spec must produce a result the engine can value.
    Exponential specs get the same tiny instances, so this stays fast
    (< a few seconds) and suitable for CI.
    """
    from repro.engine.core import SolveRequest, solve
    from repro.model.generators import grid_city, uniform_angles

    angle = uniform_angles(n=8, k=2, seed=seed)
    sector = grid_city(n=8, seed=seed)
    # Covering needs every demand to fit one antenna: loosen the capacity.
    cover = uniform_angles(n=8, k=2, capacity_fraction=0.6, seed=seed)
    knap = (angle.demands, angle.profits, float(angle.antennas[0].capacity))
    payloads = {"angle": angle, "sector": sector, "covering": cover,
                "knapsack": knap, "online": angle}

    failures: List[str] = []
    for spec in specs():
        if spec.family == "angle" and spec.name == "single":
            payload = uniform_angles(n=6, k=1, seed=seed)
        else:
            payload = payloads[spec.family]
        if spec.rejects(payload) is not None:
            continue
        try:
            report = solve(SolveRequest(
                instance=payload, family=spec.family, algorithm=spec.name,
                eps=0.5 if spec.supports_eps else 1.0, use_cache=False,
            ))
            if report.error is not None:
                failures.append(f"{spec.family}/{spec.name}: {report.error}")
        except Exception as exc:  # noqa: BLE001 - smoke surface, report all
            failures.append(f"{spec.family}/{spec.name}: {type(exc).__name__}: {exc}")
    return failures
