"""Instance-fingerprint caches: solve results and shared precomputation.

Two process-wide LRU caches keyed by **content**, not identity:

* the **result cache** memoizes full verified solve results under
  ``(instance fingerprint, family, algorithm, eps, seed)``;
* the **precompute cache** memoizes the expensive geometry shared by
  otherwise-independent solvers — the enriched rotation-candidate grid
  (:func:`repro.packing.canonical.rotation_candidates`) and the
  :class:`~repro.geometry.sweep.CircularSweep` event structure — which
  before this layer were recomputed independently by ``multi.py``,
  ``exact.py`` and the CLI compare path for the *same* instance.

Keying is a SHA-256 over the canonical content: array bytes plus the
antenna/station scalars, via :func:`fingerprint`.  Two instances with
equal content share entries no matter how they were constructed; any
content change produces a new key, so there is no invalidation protocol —
stale entries simply age out of the LRU.  This is sound because instances
are immutable by contract (read-only arrays, frozen dataclasses) and a
:class:`CircularSweep` is immutable after construction.

Mutation safety: the result cache stores and returns **deep copies**, so
callers may freely edit what they get back.  The precompute cache returns
shared objects; they are immutable (candidate arrays are handed out
read-only).

Hit/miss/eviction counters live in the metrics registry under
``engine.cache.*`` and ``engine.precompute.*`` (contract:
``docs/OBSERVABILITY.md``).

Budget-bounded solves are **never cached**: a deadline-truncated result
is not canonical for the instance (see ``docs/ENGINE.md``).
"""

from __future__ import annotations

import copy
import hashlib
import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional, Sequence, Tuple

import numpy as np

from repro.model.instance import AngleInstance, SectorInstance
from repro.obs.metrics import get_registry

__all__ = [
    "LruCache",
    "RESULT_CACHE",
    "PRECOMPUTE_CACHE",
    "fingerprint",
    "result_key",
    "shared_sweep",
    "shared_rotation_candidates",
    "clear_caches",
]

#: Default capacities.  Results hold full solutions (small: two arrays of
#: size n/k); precompute entries hold sweeps (O(n log n) ints).
RESULT_CACHE_MAXSIZE = 256
PRECOMPUTE_CACHE_MAXSIZE = 128


class LruCache:
    """Thread-safe LRU with hit/miss/eviction counters in the registry.

    ``metric_prefix`` names the counter family (``<prefix>.hits`` /
    ``.misses`` / ``.evictions``).  ``copy_values=True`` deep-copies on
    both ``put`` and ``get`` so cached payloads can never be mutated
    through what callers hold.
    """

    def __init__(self, metric_prefix: str, maxsize: int, copy_values: bool = False):
        reg = get_registry()
        self._hits = reg.counter(f"{metric_prefix}.hits")
        self._misses = reg.counter(f"{metric_prefix}.misses")
        self._evictions = reg.counter(f"{metric_prefix}.evictions")
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._maxsize = int(maxsize)
        self._copy = copy_values

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._hits.inc()
                value = self._data[key]
                return copy.deepcopy(value) if self._copy else value
            self._misses.inc()
            return None

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._data[key] = copy.deepcopy(value) if self._copy else value
            self._data.move_to_end(key)
            while len(self._data) > self._maxsize:
                self._data.popitem(last=False)
                self._evictions.inc()

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def resize(self, maxsize: int) -> None:
        """Shrink/grow capacity (evicting LRU-first); used by tests."""
        with self._lock:
            self._maxsize = int(maxsize)
            while len(self._data) > self._maxsize:
                self._data.popitem(last=False)
                self._evictions.inc()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


RESULT_CACHE = LruCache("engine.cache", RESULT_CACHE_MAXSIZE, copy_values=True)
PRECOMPUTE_CACHE = LruCache("engine.precompute", PRECOMPUTE_CACHE_MAXSIZE)


def clear_caches() -> None:
    """Empty both caches (counters keep accumulating; reset them via the
    metrics registry)."""
    RESULT_CACHE.clear()
    PRECOMPUTE_CACHE.clear()


# ----------------------------------------------------------------------
# Content fingerprinting
# ----------------------------------------------------------------------
def _hash_array(h, arr: np.ndarray) -> None:
    h.update(np.ascontiguousarray(arr).tobytes())


def _hash_antenna(h, spec) -> None:
    h.update(repr((spec.rho, spec.capacity, spec.radius, spec.name)).encode())


def fingerprint(instance) -> str:
    """Canonical SHA-256 content hash of an instance (hex digest).

    Equal-content instances fingerprint identically regardless of how
    they were built (generator, JSON round-trip, ``restrict()``...).
    Computing it is linear in the instance size and costs microseconds at
    the sizes the suite handles, so fingerprints are not memoized.
    """
    h = hashlib.sha256()
    if isinstance(instance, AngleInstance):
        h.update(b"angle")
        _hash_array(h, instance.thetas)
        _hash_array(h, instance.demands)
        _hash_array(h, instance.profits)
        for spec in instance.antennas:
            _hash_antenna(h, spec)
    elif isinstance(instance, SectorInstance):
        h.update(b"sector")
        _hash_array(h, instance.positions)
        _hash_array(h, instance.demands)
        _hash_array(h, instance.profits)
        for station in instance.stations:
            h.update(repr(station.position).encode())
            for spec in station.antennas:
                _hash_antenna(h, spec)
    else:
        raise TypeError(f"cannot fingerprint {type(instance).__name__}")
    return h.hexdigest()


def result_key(
    instance, family: str, algorithm: str, eps: float, seed: int
) -> Tuple:
    """Cache key for a full solve result.

    ``eps`` and ``seed`` are always part of the key: they are cheap to
    include and make the key an honest function of everything that can
    change a solver's output (eps selects the oracle, seed drives the
    randomized rounding).
    """
    return (fingerprint(instance), family, algorithm, float(eps), int(seed))


# ----------------------------------------------------------------------
# Shared precomputation
# ----------------------------------------------------------------------
def _digest_floats(arr: np.ndarray) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(np.asarray(arr, dtype=np.float64)).tobytes()
    ).hexdigest()


def shared_sweep(thetas: np.ndarray, rho: float):
    """Get-or-build the :class:`CircularSweep` for ``(thetas, rho)``.

    Sweeps are immutable after ``__init__`` (sorted order, window bounds
    and canonical-window ids are precomputed), so one object is safely
    shared across solvers and threads.
    """
    # Imported lazily: repro.packing modules import this module at import
    # time, and geometry.sweep sits below them in the layering.
    from repro.geometry.sweep import CircularSweep

    key = ("sweep", _digest_floats(thetas), float(rho))
    sweep = PRECOMPUTE_CACHE.get(key)
    if sweep is None:
        sweep = CircularSweep(thetas, rho)
        PRECOMPUTE_CACHE.put(key, sweep)
    return sweep


def shared_rotation_candidates(
    thetas: np.ndarray,
    widths: Sequence[float],
    stacking: Optional[int] = None,
) -> np.ndarray:
    """Get-or-build the enriched candidate grid for ``(thetas, widths)``.

    Returns a **read-only** array shared between callers; copy before
    mutating (``np.sort`` and friends already do).
    """
    # Lazy for the same layering reason as shared_sweep: repro.packing's
    # package __init__ is mid-import when multi/exact import this module.
    from repro.packing.canonical import rotation_candidates

    widths_arr = np.asarray(sorted(float(w) for w in widths), dtype=np.float64)
    key = (
        "candidates",
        _digest_floats(thetas),
        widths_arr.tobytes(),
        stacking,
    )
    cand = PRECOMPUTE_CACHE.get(key)
    if cand is None:
        cand = np.asarray(
            rotation_candidates(thetas, widths, stacking=stacking),
            dtype=np.float64,
        )
        cand.setflags(write=False)
        PRECOMPUTE_CACHE.put(key, cand)
    return cand
