"""Instance-fingerprint caches: solve results and compiled instances.

Two process-wide LRU caches keyed by **content**, not identity:

* the **result cache** memoizes full verified solve results under
  ``(instance fingerprint, family, algorithm, eps, seed)``;
* the **compile cache** memoizes the
  :class:`~repro.core.compiled.CompiledInstance` view — the sorted-angle
  permutations, demand/profit prefix sums, shared sweeps and candidate
  grids that every solver consumes — so ``solve_many`` batches and the
  service's micro-batcher compile each distinct instance once, no matter
  how many requests reference equal content.

Keying is a SHA-256 over the canonical content: array bytes plus the
antenna/station scalars, via :func:`fingerprint`.  Two instances with
equal content share entries no matter how they were constructed; any
content change produces a new key, so *correctness* never needs an
invalidation protocol — stale entries simply age out of the LRU.  This is
sound because instances are immutable by contract (read-only arrays,
frozen dataclasses) and a compiled view is append-only after construction
(its internal memo tables only accrete sweeps for new widths).  The online
delta layer (:mod:`repro.online.delta`, ``docs/ONLINE.md``) additionally
performs *capacity hygiene*: when an event stream touches a sector, it
calls :meth:`LruCache.evict` on the registered result keys whose angular
window contains a touched customer, so dead keys stop occupying LRU slots
while untouched-sector entries stay warm.

Mutation safety: the result cache stores and returns **deep copies**, so
callers may freely edit what they get back.  The compile cache returns
shared objects; their arrays are handed out read-only.

Hit/miss/eviction counters live in the metrics registry under
``engine.cache.*`` and ``engine.compile.*`` (contract:
``docs/OBSERVABILITY.md``).

Budget-bounded solves are **never cached**: a deadline-truncated result
is not canonical for the instance (see ``docs/ENGINE.md``).
"""

from __future__ import annotations

import copy
import hashlib
import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional, Tuple

import numpy as np

from repro.model.instance import AngleInstance, SectorInstance
from repro.obs.metrics import get_registry

__all__ = [
    "LruCache",
    "RESULT_CACHE",
    "COMPILE_CACHE",
    "fingerprint",
    "result_key",
    "shared_compiled",
    "clear_caches",
]

#: Default capacities.  Results hold full solutions (small: two arrays of
#: size n/k); compile entries hold sorted views (O(n log n) ints each).
RESULT_CACHE_MAXSIZE = 256
COMPILE_CACHE_MAXSIZE = 128


class LruCache:
    """Thread-safe LRU with hit/miss/eviction counters in the registry.

    ``metric_prefix`` names the counter family (``<prefix>.hits`` /
    ``.misses`` / ``.evictions``).  ``copy_values=True`` deep-copies on
    both ``put`` and ``get`` so cached payloads can never be mutated
    through what callers hold.
    """

    def __init__(self, metric_prefix: str, maxsize: int, copy_values: bool = False):
        reg = get_registry()
        self._hits = reg.counter(f"{metric_prefix}.hits")
        self._misses = reg.counter(f"{metric_prefix}.misses")
        self._evictions = reg.counter(f"{metric_prefix}.evictions")
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._maxsize = int(maxsize)
        self._copy = copy_values

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._hits.inc()
                value = self._data[key]
                return copy.deepcopy(value) if self._copy else value
            self._misses.inc()
            return None

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._data[key] = copy.deepcopy(value) if self._copy else value
            self._data.move_to_end(key)
            while len(self._data) > self._maxsize:
                self._data.popitem(last=False)
                self._evictions.inc()

    def evict(self, key: Hashable) -> bool:
        """Drop one entry by key; True if it was present.

        Used by the online delta layer's per-sector invalidation
        (``docs/ONLINE.md``): keys whose angular window contains a touched
        customer are dead (their content fingerprint can never recur), so
        evicting them is pure capacity hygiene.  Counted under
        ``<prefix>.evictions`` like a capacity eviction.
        """
        with self._lock:
            if key in self._data:
                del self._data[key]
                self._evictions.inc()
                return True
            return False

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def resize(self, maxsize: int) -> None:
        """Shrink/grow capacity (evicting LRU-first); used by tests."""
        with self._lock:
            self._maxsize = int(maxsize)
            while len(self._data) > self._maxsize:
                self._data.popitem(last=False)
                self._evictions.inc()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


RESULT_CACHE = LruCache("engine.cache", RESULT_CACHE_MAXSIZE, copy_values=True)
COMPILE_CACHE = LruCache("engine.compile", COMPILE_CACHE_MAXSIZE)


def clear_caches() -> None:
    """Empty both caches (counters keep accumulating; reset them via the
    metrics registry)."""
    RESULT_CACHE.clear()
    COMPILE_CACHE.clear()


# ----------------------------------------------------------------------
# Content fingerprinting
# ----------------------------------------------------------------------
def _hash_array(h, arr: np.ndarray) -> None:
    h.update(np.ascontiguousarray(arr).tobytes())


def _hash_antenna(h, spec) -> None:
    h.update(repr((spec.rho, spec.capacity, spec.radius, spec.name)).encode())


def fingerprint(instance) -> str:
    """Canonical SHA-256 content hash of an instance (hex digest).

    Equal-content instances fingerprint identically regardless of how
    they were built (generator, JSON round-trip, ``restrict()``...).
    Computing it is linear in the instance size and costs microseconds at
    the sizes the suite handles, so fingerprints are not memoized.
    """
    h = hashlib.sha256()
    if isinstance(instance, AngleInstance):
        h.update(b"angle")
        _hash_array(h, instance.thetas)
        _hash_array(h, instance.demands)
        _hash_array(h, instance.profits)
        for spec in instance.antennas:
            _hash_antenna(h, spec)
    elif isinstance(instance, SectorInstance):
        h.update(b"sector")
        _hash_array(h, instance.positions)
        _hash_array(h, instance.demands)
        _hash_array(h, instance.profits)
        for station in instance.stations:
            h.update(repr(station.position).encode())
            for spec in station.antennas:
                _hash_antenna(h, spec)
        if instance.constraints:
            # Hashed only when present, so unconstrained instances keep
            # their pre-pipeline fingerprints (warm caches stay warm and
            # the shard routing of existing deployments is undisturbed).
            from repro.model.constraints import constraint_to_dict

            h.update(b"constraints")
            for c in instance.constraints:
                h.update(repr(sorted(constraint_to_dict(c).items())).encode())
    else:
        raise TypeError(f"cannot fingerprint {type(instance).__name__}")
    return h.hexdigest()


def result_key(
    instance, family: str, algorithm: str, eps: float, seed: int
) -> Tuple:
    """Cache key for a full solve result.

    ``eps`` and ``seed`` are always part of the key: they are cheap to
    include and make the key an honest function of everything that can
    change a solver's output (eps selects the oracle, seed drives the
    randomized rounding).
    """
    return (fingerprint(instance), family, algorithm, float(eps), int(seed))


# ----------------------------------------------------------------------
# Shared compiled instances
# ----------------------------------------------------------------------
def shared_compiled(instance):
    """Get-or-build the :class:`~repro.core.compiled.CompiledInstance`
    for ``instance``, memoized process-wide under its content fingerprint.

    Unlike ``instance.compile()`` (a per-*object* memo), this shares one
    compiled view across every equal-content instance the process sees —
    batch duplicates, JSON round-trips, service aliases.  The view is
    built fresh on a miss (never lifted from the object memo), so
    :func:`clear_caches` makes subsequent compiles genuinely cold — the
    property the benchmark's cold/shared comparison relies on.
    """
    # Imported lazily: repro.packing modules import this module at import
    # time, and repro.core sits below them in the layering.
    from repro.core.compiled import compile_instance

    key = ("compiled", fingerprint(instance))
    compiled = COMPILE_CACHE.get(key)
    if compiled is None:
        compiled = compile_instance(instance)
        COMPILE_CACHE.put(key, compiled)
    return compiled
