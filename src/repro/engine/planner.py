"""Feature-based planner: pick a solver when the caller says ``auto``.

The rules are deliberately simple, deterministic and documented (see
``docs/ENGINE.md``); the planner never invents solvers, it only chooses
among registered :class:`~repro.engine.registry.SolverSpec`s whose
``accepts`` admits the instance.

Angle rules, in order:

1. ``variant="fractional"`` -> ``splittable``.
2. ``variant="disjoint"`` -> ``dp-disjoint`` when it applies and the
   deadline is not tight, else ``shifting`` (identical antennas), else
   ``insertion``, else ``dp-disjoint`` as the last resort.
3. ``k == 1`` -> ``single`` (the dedicated rotation search).
4. *small* (``n <= 12`` and ``k <= 3``) and deadline not *tight* ->
   ``exact`` — orientation enumeration is affordable and certifies OPT.
5. a requested ``guarantee`` -> the cheapest polynomial spec whose
   ``guarantee_fn(beta)`` meets it (beta from eps).
6. tight deadline -> ``greedy`` (cheapest budget-aware solver).
7. ``n <= 400`` -> ``greedy+ls``, else ``greedy``.

Sector rules: *small* (``n <= 12`` and ``total_antennas <= 3``) and not
tight -> ``exact``; else ``greedy``.  Covering has one solver; knapsack
and online default to ``exact`` / ``best_fit``.

*Tight* means ``timeout_s < 2.0`` — under that the exponential solvers
cannot be trusted to produce a certified answer, so the planner refuses
them outright rather than betting on the anytime path.

The planner also owns the *backend* auto rule (:func:`plan_backend`,
contract in ``docs/BACKENDS.md``): a request's
``backend="python"|"numpy"|"auto"`` resolves against the chosen spec's
declared ``backends`` — ``"auto"`` picks numpy exactly when the spec
declares it and the instance has at least :data:`AUTO_NUMPY_MIN_N`
customers (below that the kernel setup cost rivals the python loop);
requesting ``"numpy"`` on a python-only spec falls back to ``"python"``
cleanly (the engine counts it under ``engine.backend.fallback``).

And the *partition* auto rule (:func:`plan_partition`, contract in
``docs/SCALE.md``): ``partition="auto"|"never"|"force"`` resolves against
the chosen spec's ``partitionable`` capability and the instance size —
``"auto"`` partitions exactly when the spec allows it, the instance is a
multi-station sector instance, and it has at least
:data:`AUTO_PARTITION_MIN_N` customers; ``"force"`` on a
non-partitionable spec falls back to monolithic cleanly (counted under
``engine.partition.fallback``).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.backend import AUTO_NUMPY_MIN_N, normalize_backend
from repro.engine.registry import get_spec

__all__ = [
    "plan",
    "plan_backend",
    "plan_partition",
    "SMALL_N",
    "SMALL_K",
    "MID_N",
    "TIGHT_DEADLINE_S",
    "AUTO_NUMPY_MIN_N",
    "AUTO_PARTITION_MIN_N",
]

SMALL_N = 12
SMALL_K = 3
MID_N = 400
TIGHT_DEADLINE_S = 2.0

#: Minimum customer count before ``partition="auto"`` decomposes: below
#: this the O(m·n) partition pass and per-part solve overhead rival the
#: monolithic solve (``docs/SCALE.md``).
AUTO_PARTITION_MIN_N = 20_000


def plan_backend(
    requested: str, backends: Sequence[str], size: int
) -> Tuple[str, bool]:
    """Resolve a requested backend against a spec's declared ``backends``.

    Returns ``(backend, fell_back)`` where ``backend`` is ``"python"`` or
    ``"numpy"`` and ``fell_back`` is True when an explicit ``"numpy"``
    request had to drop to python because the spec declares no vectorized
    kernel.  ``"auto"`` never counts as a fallback: it is a preference,
    resolved by the size threshold above.
    """
    requested = normalize_backend(requested)
    has_numpy = "numpy" in backends
    if requested == "numpy":
        return ("numpy", False) if has_numpy else ("python", True)
    if requested == "auto" and has_numpy and size >= AUTO_NUMPY_MIN_N:
        return "numpy", False
    return "python", False


def plan_partition(
    requested: str, partitionable: bool, size: int, stations: int = 0
) -> Tuple[str, bool]:
    """Resolve a request's partition policy against a spec's capability.

    ``requested`` is ``"auto"``, ``"never"`` or ``"force"``; returns
    ``(strategy, fell_back)`` where ``strategy`` is ``"monolithic"`` or
    ``"partitioned"`` and ``fell_back`` is True when an explicit
    ``"force"`` had to drop to monolithic because the spec declares
    ``partitionable=False`` (the engine counts it under
    ``engine.partition.fallback``).  ``"auto"`` never counts as a
    fallback: it partitions exactly when the spec allows it, the payload
    has more than one station, and ``size >= AUTO_PARTITION_MIN_N``.
    """
    if requested not in ("auto", "never", "force"):
        raise ValueError(
            f"partition must be 'auto', 'never' or 'force', got {requested!r}"
        )
    if requested == "force":
        return ("partitioned", False) if partitionable else ("monolithic", True)
    if (
        requested == "auto"
        and partitionable
        and stations > 1
        and size >= AUTO_PARTITION_MIN_N
    ):
        return "partitioned", False
    return "monolithic", False


def _oracle_beta(eps: float) -> float:
    """Approximation factor of the oracle the engine builds for ``eps``."""
    return 1.0 - eps if eps < 1.0 else 1.0


def _pick_by_guarantee(instance, family: str, guarantee: float, eps: float) -> Optional[str]:
    from repro.engine.registry import specs

    beta = _oracle_beta(eps)
    for spec in specs(family):
        if spec.complexity != "poly" or spec.guarantee_fn is None:
            continue
        if spec.rejects(instance) is not None:
            continue
        if spec.guarantee_fn(beta) >= guarantee:
            return spec.name
    return None


def _plan_angle(
    instance,
    timeout_s: Optional[float],
    guarantee: Optional[float],
    variant: str,
    eps: float,
) -> str:
    tight = timeout_s is not None and timeout_s < TIGHT_DEADLINE_S
    if variant == "fractional":
        return "splittable"
    if variant == "disjoint":
        dp_ok = get_spec("angle", "dp-disjoint").rejects(instance) is None
        if dp_ok and not tight:
            return "dp-disjoint"
        if instance.has_uniform_antennas:
            return "shifting"
        return "dp-disjoint"
    if instance.k == 1:
        return "single"
    small = instance.n <= SMALL_N and instance.k <= SMALL_K
    if small and not tight:
        return "exact"
    if guarantee is not None:
        name = _pick_by_guarantee(instance, "angle", guarantee, eps)
        if name is not None:
            return name
        raise ValueError(
            f"no polynomial solver guarantees {guarantee:.3f} "
            f"at eps={eps} (oracle beta={_oracle_beta(eps):.3f})"
        )
    if tight:
        return "greedy"
    return "greedy+ls" if instance.n <= MID_N else "greedy"


def _plan_sector(
    instance, timeout_s: Optional[float], guarantee: Optional[float], eps: float
) -> str:
    tight = timeout_s is not None and timeout_s < TIGHT_DEADLINE_S
    small = instance.n <= SMALL_N and instance.total_antennas <= SMALL_K
    if small and not tight:
        return "exact"
    if guarantee is not None:
        name = _pick_by_guarantee(instance, "sector", guarantee, eps)
        if name is not None:
            return name
        raise ValueError(f"no polynomial sector solver guarantees {guarantee:.3f}")
    return "greedy"


def plan(
    instance,
    family: str,
    timeout_s: Optional[float] = None,
    guarantee: Optional[float] = None,
    variant: str = "overlap",
    eps: float = 1.0,
) -> str:
    """Choose a registered solver name for ``instance`` (see module doc)."""
    if family == "angle":
        return _plan_angle(instance, timeout_s, guarantee, variant, eps)
    if family == "sector":
        return _plan_sector(instance, timeout_s, guarantee, eps)
    if family == "covering":
        return "greedy-cover"
    if family == "knapsack":
        # Tight deadlines get the constant-factor greedy, otherwise exact.
        if timeout_s is not None and timeout_s < TIGHT_DEADLINE_S:
            return "greedy"
        return "exact"
    if family == "online":
        return "best_fit"
    raise ValueError(f"cannot plan for unknown family {family!r}")
