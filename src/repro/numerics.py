"""Shared numeric tolerance policy for capacity arithmetic.

Every packing solver ultimately asks the same two questions — "does this
demand still fit the remaining capacity?" and "how many capacity units
does this total need?" — and float summation order makes the naive
comparisons flaky exactly at the boundaries the paper's instances love
(subset-sum families are *built* from exact-capacity packings).  Before
this module each call site inlined its own slack constant
(``knapsack/api.py``, ``packing/covering.py``, ``packing/exact.py``,
``packing/insertion.py``, ...), and the mixed ``1e-12``-relative /
``1e-12``-absolute forms could disagree with each other at exact-capacity
boundaries.  This module is the single source of truth:

* :func:`fits` — the **solver-side admission predicate** (tight):
  ``weight <= remaining + 1e-12 * max(1, |remaining|)``.  The hybrid
  absolute/relative slack absorbs the one-ulp error of summing a handful
  of float64 demands in either magnitude regime.
* :func:`overloads` — the **verifier-side rejection predicate** (loose,
  ``1e-9`` relative).  Three decades looser than :func:`fits`, so any
  selection a solver admits is always accepted by every verifier: the two
  bands can never disagree about a solution's feasibility.
* :func:`ceil_units` — ceil-with-slack for "how many capacity units",
  immune to ``total/unit`` landing one ulp above an exact integer.

The constants are part of the repo's numeric contract: tightening
``FIT_SLACK`` or loosening ``VERIFY_RTOL`` is safe; the reverse risks a
solver admitting a packing its verifier rejects.
"""

from __future__ import annotations

import math

__all__ = ["FIT_SLACK", "VERIFY_RTOL", "fits", "overloads", "ceil_units"]

#: Solver-side admission slack (relative, floored at absolute 1e-12).
FIT_SLACK = 1e-12

#: Verifier-side rejection band (relative).  Must stay >= FIT_SLACK by a
#: comfortable margin so admitted packings always verify.
VERIFY_RTOL = 1e-9


def fits(weight, remaining, slack: float = FIT_SLACK):
    """Solver-side test that ``weight`` fits in ``remaining`` capacity.

    ``weight <= remaining + slack * max(1, |remaining|)`` — an exact-
    capacity item is admitted even when summation order costs one ulp.
    Works elementwise when ``weight`` is an array (``remaining`` scalar).

    >>> fits(1.0, 1.0)
    True
    >>> fits(1.0 + 1e-13, 1.0)
    True
    >>> fits(1.0 + 1e-9, 1.0)
    False
    """
    return weight <= remaining + slack * max(1.0, abs(remaining))


def overloads(load, capacity, rtol: float = VERIFY_RTOL):
    """Verifier-side test that ``load`` exceeds ``capacity``.

    Deliberately looser than :func:`fits` (``1e-9`` relative vs ``1e-12``)
    so the verifier never rejects a packing a solver legitimately
    admitted.  Works elementwise when ``load`` is an array.

    >>> overloads(1.0 + 1e-13, 1.0)
    False
    >>> overloads(1.0 + 1e-6, 1.0)
    True
    """
    return load > capacity * (1.0 + rtol)


def ceil_units(total: float, unit: float, slack: float = VERIFY_RTOL) -> int:
    """``ceil(total / unit)`` robust to a one-ulp overshoot of the ratio.

    The shared "how many antennas/bins of capacity ``unit`` does
    ``total`` demand need" idiom: an exactly divisible total must not
    round up because the division landed infinitesimally above an
    integer.

    >>> ceil_units(3.0000000000000004, 1.0)
    3
    >>> ceil_units(3.1, 1.0)
    4
    """
    return int(math.ceil(total / unit - slack))
