"""Command line interface: ``repro-sectors`` / ``python -m repro``.

Subcommands
-----------
``generate``
    Write a synthetic instance (any registered family) to JSON.
``solve``
    Solve an instance file with a chosen algorithm, print a report, and
    optionally write the solution to JSON.
``compare``
    Run the standard solver suite on one instance and print a table.
``cover``
    Solve the dual covering problem (serve everyone, minimize antennas).
``online``
    Stream an instance's customers through the online admission policies.
``stats``
    Print instance statistics and an ASCII rendering.
``report``
    Regenerate the compact evaluation report (EXPERIMENTS.md headline rows).
``bench``
    Run the observability bench harness and write a schema-versioned
    ``BENCH_<tag>.json`` (see docs/OBSERVABILITY.md), or validate one
    with ``--check``.
``families``
    List the registered instance families and solver names.
``serve``
    Run the batched async solver service (JSON-lines over TCP / Unix
    socket, see ``docs/SERVICE.md``); drains gracefully on SIGTERM.
``client``
    Talk to a running service: ``solve`` / ``event`` / ``stats`` /
    ``ping`` / ``shutdown``.  ``event`` streams dynamic-workload events
    (add/remove/update customers) into a server-side delta session
    (``docs/ONLINE.md``).

Exit codes (error hygiene contract, ``docs/RESILIENCE.md``): ``0`` success,
``1`` unexpected internal error, ``2`` usage / unknown name, ``3`` invalid
input (malformed JSON, bad instance fields, unreadable files), ``4``
deadline expired (``--timeout`` without ``--fallback``), ``5`` request
shed by an overloaded solver service (``client`` only, the wire status of
``docs/SERVICE.md``).  Errors print one line to stderr — never a raw
traceback.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional

from repro.analysis.tables import format_table
from repro.engine import SolveRequest
from repro.engine import solve as engine_solve
from repro.engine import solver_names, specs
from repro.model import generators as gen
from repro.model.instance import AngleInstance, SectorInstance
from repro.model.serialization import (
    instance_from_dict,
    load_instance,
    save_instance,
    solution_to_dict,
)
from repro.packing.bounds import combined_upper_bound

#: CLI exit codes (documented in the module docstring / docs/RESILIENCE.md).
#: The solver service reuses them as wire status codes (docs/SERVICE.md);
#: EXIT_OVERLOADED is wire-born — the CLI only exits with it when
#: ``client`` relays a shed response.
EXIT_OK = 0
EXIT_INTERNAL = 1
EXIT_USAGE = 2
EXIT_INVALID_INPUT = 3
EXIT_TIMEOUT = 4
EXIT_OVERLOADED = 5

#: The ``--help`` epilog: the full exit-code contract in one place
#: (mirrors docs/RESILIENCE.md and docs/SERVICE.md).
_EXIT_CODE_EPILOG = """\
exit codes:
  0  success
  1  unexpected internal error (incl. infeasible solver output)
  2  usage error / unknown name
  3  invalid input (malformed JSON, bad instance fields, unreadable files)
  4  deadline expired (--timeout without --fallback)
  5  request shed by an overloaded solver service (client subcommand only)

The same numbers are the solver service's wire status codes; full contract
in docs/RESILIENCE.md and docs/SERVICE.md.
"""


def _version() -> str:
    """Package version from installed metadata, else the source tree."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # noqa: BLE001 - uninstalled source checkout
        import repro

        return repro.__version__


def _solve_algorithm_choices() -> list:
    """``solve --algorithm`` choices, generated from the engine registry."""
    return ["auto"] + sorted(
        set(solver_names("angle")) | set(solver_names("sector"))
    )


def _exact_affordable(instance) -> bool:
    """Whether exponential solvers belong in a compare table."""
    if isinstance(instance, AngleInstance):
        return instance.n <= 12
    return instance.n <= 12 and instance.total_antennas <= 3


def cmd_generate(args: argparse.Namespace) -> int:
    """``generate``: write a seeded family instance as JSON."""
    params = json.loads(args.params) if args.params else {}
    params.setdefault("seed", args.seed)
    if args.family in gen.ANGLE_FAMILIES:
        inst = gen.ANGLE_FAMILIES[args.family](**params)
    elif args.family in gen.SECTOR_FAMILIES:
        inst = gen.SECTOR_FAMILIES[args.family](**params)
    else:
        print(f"unknown family {args.family!r}", file=sys.stderr)
        return 2
    save_instance(inst, args.output)
    print(f"wrote {inst!r} to {args.output}")
    return 0


def cmd_solve(args: argparse.Namespace) -> int:
    """``solve``: run one algorithm (or the planner) on an instance file."""
    from contextlib import nullcontext

    from repro.obs import tracing

    inst = load_instance(args.instance)
    timeout = getattr(args, "timeout", None)
    use_fallback = getattr(args, "fallback", False)
    trace_ctx = tracing(args.trace) if getattr(args, "trace", None) else nullcontext()
    chain_result = None
    start = time.perf_counter()
    with trace_ctx:
        if use_fallback:
            from repro.resilience import default_chain_for

            chain = default_chain_for(
                inst,
                eps=args.eps if args.eps < 1.0 else 0.25,
                exact_timeout_s=timeout if timeout is not None else 1.0,
            )
            chain_result = chain.run(inst)
            sol = chain_result.solution
            algo_label = "fallback-chain"
        else:
            report = engine_solve(
                SolveRequest(
                    instance=inst,
                    algorithm=args.algorithm,
                    eps=args.eps,
                    timeout_s=timeout,
                    backend=getattr(args, "backend", "auto"),
                    partition=getattr(args, "partition", "auto"),
                )
            )
            sol = report.solution
            algo_label = (
                f"auto -> {report.algorithm}" if args.algorithm == "auto"
                else report.algorithm
            )
    seconds = time.perf_counter() - start
    if getattr(args, "trace", None):
        print(f"trace events written to {args.trace}")
    sol.verify(inst)
    rows = [
        ["algorithm", algo_label],
        ["value", sol.value(inst)],
        ["served demand", sol.served_demand(inst)],
        ["total demand", inst.total_demand],
        ["seconds", seconds],
    ]
    if chain_result is not None:
        rows.append(["stage", chain_result.stage])
        rows.append(["reason", chain_result.reason])
        rows.append(["degraded", chain_result.degraded])
    if isinstance(inst, AngleInstance):
        ub = combined_upper_bound(inst)
        rows.append(["upper bound", ub])
        rows.append(["ratio vs bound", sol.value(inst) / ub if ub > 0 else 1.0])
    print(format_table(["metric", "value"], rows, title=f"solve {args.instance}"))
    if getattr(args, "render", False) and isinstance(inst, AngleInstance):
        from repro.analysis.viz import render_loads, render_solution

        print()
        print(render_solution(inst, sol))
        print()
        print(render_loads(inst, sol))
    if args.output:
        import pathlib

        pathlib.Path(args.output).write_text(
            json.dumps(solution_to_dict(sol), indent=2)
        )
        print(f"solution written to {args.output}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """``compare``: table of every applicable solver on one instance."""
    inst = load_instance(args.instance)
    family = "angle" if isinstance(inst, AngleInstance) else "sector"
    exact_ok = _exact_affordable(inst)
    rows = []
    for spec in specs(family):
        if spec.name == "exact-anytime":
            continue  # duplicates `exact` in a value table
        if spec.complexity == "exponential" and not exact_ok:
            continue
        if spec.rejects(inst) is not None:
            continue
        try:
            report = engine_solve(
                SolveRequest(
                    instance=inst, family=family, algorithm=spec.name,
                    eps=args.eps, use_cache=False,
                )
            )
        except (ValueError, RuntimeError) as exc:
            rows.append([spec.name, "failed", 0.0, str(exc)[:40]])
            continue
        note = spec.variant if spec.variant != "overlap" else ""
        rows.append([spec.name, report.value, report.seconds, note])
    print(
        format_table(
            ["algorithm", "value", "seconds", "note"],
            rows,
            title=f"compare {args.instance}",
        )
    )
    return 0


def cmd_cover(args: argparse.Namespace) -> int:
    """``cover``: the dual problem — antennas needed to serve everyone."""
    inst = load_instance(args.instance)
    # The engine verifies the cover and raises ValueError ("angle
    # instances only" -> exit 2) on sector input.
    report = engine_solve(
        SolveRequest(instance=inst, family="covering", eps=args.eps)
    )
    rows = [
        ["antennas used", int(report.value)],
        ["lower bound", report.extra["lower_bound"]],
        ["gap", report.extra["gap"]],
        ["seconds", report.seconds],
    ]
    print(format_table(["metric", "value"], rows, title=f"cover {args.instance}"))
    return 0


def cmd_online(args: argparse.Namespace) -> int:
    """``online``: replay the instance through the admission policies."""
    from repro.online import work_conserving_bound

    inst = load_instance(args.instance)
    rows = []
    offline = 0.0
    for name in sorted(solver_names("online")):
        report = engine_solve(
            SolveRequest(instance=inst, family="online", algorithm=name,
                         seed=args.seed)
        )
        offline = report.extra["offline_reference"]
        rows.append([name, report.value, report.extra["competitive"],
                     report.extra["rejected"]])
    floor = work_conserving_bound(inst.antennas, inst.demands)
    print(
        format_table(
            ["policy", "accepted", "vs offline", "rejected"],
            rows,
            title=f"online {args.instance} (offline={offline:.3f}, floor={floor:.3f})",
        )
    )
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """``stats``: instance statistics table (tightness, concentration)."""
    from repro.analysis.stats import instance_stats
    from repro.analysis.viz import render_instance

    inst = load_instance(args.instance)
    if not isinstance(inst, AngleInstance):
        print("stats currently supports angle instances only", file=sys.stderr)
        return 2
    s = instance_stats(inst)
    rows = [[k, v] for k, v in s.as_dict().items()]
    print(format_table(["statistic", "value"], rows, title=f"stats {args.instance}"))
    print()
    print(render_instance(inst))
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """``report``: the compact E1..E12 evaluation report."""
    from repro.analysis.report_runner import run_report

    print(run_report(seeds=args.seeds, quick=args.quick))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """``bench``: run the bench suite / validate an existing payload."""
    from repro.obs.bench import load_bench, run_bench, validate_bench, write_bench

    if args.check:
        try:
            payload = load_bench(args.check)
        except (OSError, json.JSONDecodeError, ValueError) as exc:
            print(f"{args.check}: {exc}", file=sys.stderr)
            return 2
        print(f"{args.check}: valid repro.bench v{payload['schema_version']} "
              f"({len(payload['runs'])} runs)")
        return 0
    families = tuple(f.strip() for f in args.families.split(",") if f.strip())
    seeds = tuple(int(s) for s in args.seeds.split(","))
    solvers = None
    if args.solvers:
        solvers = tuple(s.strip() for s in args.solvers.split(",") if s.strip())
    try:
        payload = run_bench(
            families=families,
            n=args.n,
            k=args.k,
            seeds=seeds,
            solvers=solvers,
            eps=args.eps,
            tag=args.tag,
            timeout_s=args.timeout,
            cache_bench=args.cache_bench,
            service_bench=args.service_bench,
            compile_bench=args.compile_bench,
            backend_bench=args.backend_bench,
            scale_bench=args.scale_bench,
            online_bench=args.online_bench,
            scenario_bench=args.scenario_bench,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    output = args.output or f"BENCH_{args.tag}.json"
    write_bench(payload, output)
    rows = [
        [solver, s["runs"], s["total_wall_time_s"], s["mean_ratio_vs_bound"],
         s["min_ratio_vs_bound"], s["peak_oracle_calls"]]
        for solver, s in sorted(payload["summary"].items())
    ]
    print(
        format_table(
            ["solver", "runs", "seconds", "mean ratio", "min ratio", "peak oracle"],
            rows,
            title=f"bench -> {output}",
        )
    )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``serve``: run the solver service until a signal drains it."""
    from repro.service.server import run_service

    chaos = None
    if args.chaos is not None:
        if args.workers is None:
            print("error: --chaos requires --workers (faults are injected "
                  "into supervised workers)", file=sys.stderr)
            return EXIT_USAGE
        from repro.resilience.chaos import ChaosPolicy

        try:
            chaos = ChaosPolicy.from_spec(args.chaos)
        except ValueError as exc:
            print(f"error: bad --chaos spec: {exc}", file=sys.stderr)
            return EXIT_USAGE
    return run_service(
        host=args.host,
        port=args.port,
        unix_path=args.unix,
        max_batch=args.max_batch,
        flush_interval_s=args.flush_ms / 1000.0,
        queue_bound=args.queue_bound,
        workers=args.workers,
        chaos=chaos,
    )


def cmd_client(args: argparse.Namespace) -> int:
    """``client``: talk to a running service (solve/event/stats/ping/...)."""
    from repro.service.client import ServiceClient, ServiceError

    try:
        client = ServiceClient(host=args.host, port=args.port,
                               unix_path=args.unix)
    except (OSError, ServiceError) as exc:
        print(f"error: cannot reach service: {exc}", file=sys.stderr)
        return EXIT_INVALID_INPUT
    with client:
        if args.action == "ping":
            response = client.ping()
            print(json.dumps(response))
            return int(response.get("status", EXIT_INTERNAL))
        if args.action == "shutdown":
            response = client.shutdown()
            print(json.dumps(response))
            return int(response.get("status", EXIT_INTERNAL))
        if args.action == "stats":
            response = client.stats()
            metrics = response.pop("metrics", {})
            rows = [[k, v] for k, v in sorted(response.items()) if k != "id"]
            print(format_table(["field", "value"], rows, title="service stats"))
            service_rows = [
                [name, json.dumps(payload)]
                for name, payload in sorted(metrics.items())
                if name.startswith(("service.", "engine.cache.", "engine.compile."))
            ]
            if service_rows:
                print()
                print(format_table(["metric", "snapshot"], service_rows,
                                   title="service metrics"))
            return int(response.get("status", EXIT_INTERNAL))
        if args.action == "event":
            if not args.session:
                print("error: client event needs --session", file=sys.stderr)
                return EXIT_USAGE
            events = []
            if args.events:
                import pathlib

                events = json.loads(pathlib.Path(args.events).read_text())
                if not isinstance(events, list):
                    print(f"error: {args.events} must hold a JSON list of "
                          f"event dicts (docs/ONLINE.md)", file=sys.stderr)
                    return EXIT_INVALID_INPUT
            resolve = None
            if args.resolve:
                resolve = {"algorithm": args.algorithm}
                if args.eps != 1.0:
                    resolve["eps"] = args.eps
            instance = load_instance(args.instance) if args.instance else None
            response = client.event(
                args.session, events=events, instance=instance,
                resolve=resolve, timeout_s=args.timeout,
            )
            extra = response.get("extra", {})
            rows = [
                ["status", response["status"]],
                ["session", extra.get("session", args.session)],
                ["n", extra.get("n", "?")],
                ["events applied", extra.get("applied", 0)],
                ["cache invalidated", extra.get("invalidated", 0)],
                ["cache retained", extra.get("retained", 0)],
            ]
            inner = extra.get("resolve")
            if inner:
                rows.append(["resolve algorithm", inner.get("algorithm", "?")])
                rows.append(["resolve value", inner.get("value", 0.0)])
                rows.append(["resolve seconds", inner.get("seconds", 0.0)])
            if response["status"] != EXIT_OK:
                rows.append(["error", response.get("error", "?")])
            print(format_table(["metric", "value"], rows,
                               title=f"client event {args.session}"))
            return int(response.get("status", EXIT_INTERNAL))
        # action == "solve"
        if not args.instance:
            print("error: client solve needs an instance path", file=sys.stderr)
            return EXIT_USAGE
        instance = load_instance(args.instance)
        responses = client.solve_batch(
            [instance] * args.repeat,
            algorithm=args.algorithm,
            eps=args.eps if args.eps != 1.0 else None,
            timeout_s=args.timeout,
            use_cache=None if args.no_cache is False else False,
            want_solution=args.solution,
        )
    first = responses[0]
    rows = [
        ["status", first["status"]],
        ["algorithm", first.get("algorithm", "?")],
        ["value", first.get("value", 0.0)],
        ["cached", first.get("cached", False)],
        ["batch size (max)", max(r.get("batch_size", 1) for r in responses)],
        ["requests", len(responses)],
        ["ok", sum(1 for r in responses if r["status"] == EXIT_OK)],
    ]
    errors = [r for r in responses if r["status"] != EXIT_OK]
    if errors:
        rows.append(["first error", errors[0].get("error", "?")])
    print(format_table(["metric", "value"], rows,
                       title=f"client solve {args.instance}"))
    if args.output and first.get("solution") is not None:
        import pathlib

        pathlib.Path(args.output).write_text(json.dumps(first["solution"], indent=2))
        print(f"solution written to {args.output}")
    return int(errors[0]["status"]) if errors else EXIT_OK


def cmd_families(args: argparse.Namespace) -> int:
    """``families``: list generator families and their parameters."""
    print("angle families:  " + ", ".join(sorted(gen.ANGLE_FAMILIES)))
    print("sector families: " + ", ".join(sorted(gen.SECTOR_FAMILIES)))
    print()
    rows = [
        [s.name, s.family, s.variant, s.guarantee,
         "exact" if s.exact else "approx", s.complexity]
        for s in specs()
    ]
    print(
        format_table(
            ["solver", "family", "variant", "guarantee", "exactness", "complexity"],
            rows,
            title="registered solvers (repro.engine)",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The full ``repro-sectors`` argparse tree (used by docs lint too)."""
    p = argparse.ArgumentParser(
        prog="repro-sectors",
        description="Packing to angles and sectors (SPAA 2007 reproduction)",
        epilog=_EXIT_CODE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument("--version", action="version",
                   version=f"%(prog)s {_version()}")
    sub = p.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a synthetic instance")
    g.add_argument("family", help="instance family name (see `families`)")
    g.add_argument("output", help="output JSON path")
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--params", help="JSON dict of generator keyword args")
    g.set_defaults(fn=cmd_generate)

    s = sub.add_parser("solve", help="solve an instance file")
    s.add_argument("instance", help="instance JSON path")
    s.add_argument(
        "--algorithm",
        default="auto",
        choices=_solve_algorithm_choices(),
        help="a registered engine solver, or 'auto' to let the planner "
             "pick from instance size, variant and deadline",
    )
    s.add_argument("--eps", type=float, default=1.0,
                   help="< 1 uses the FPTAS oracle at this eps; 1 = exact oracle")
    s.add_argument("--output", help="write the solution JSON here")
    s.add_argument("--render", action="store_true",
                   help="ASCII-render the solution (angle instances)")
    s.add_argument("--trace", metavar="PATH",
                   help="write structured span events (JSONL) to this file")
    s.add_argument("--timeout", type=float, metavar="SECONDS",
                   help="cooperative wall-clock deadline; without --fallback "
                        "an expired deadline exits with code 4")
    s.add_argument("--fallback", action="store_true",
                   help="degrade exact -> fptas -> greedy instead of failing "
                        "(--timeout bounds the exact stage)")
    s.add_argument("--backend", default="auto",
                   choices=("auto", "python", "numpy"),
                   help="kernel implementation: 'numpy' vectorizes the hot "
                        "loops of capable solvers (value-identical, see "
                        "docs/BACKENDS.md), 'auto' picks it on large "
                        "instances, 'python' forces the scalar oracle path")
    s.add_argument("--partition", default="auto",
                   choices=("auto", "never", "force"),
                   help="solve strategy: 'force' decomposes partitionable "
                        "sector solves into reach components with a "
                        "certified merge bound (docs/SCALE.md), 'auto' "
                        "partitions large multi-station instances, 'never' "
                        "forces the monolithic path")
    s.set_defaults(fn=cmd_solve)

    c = sub.add_parser("compare", help="run the solver suite on an instance")
    c.add_argument("instance", help="instance JSON path")
    c.add_argument("--eps", type=float, default=1.0)
    c.set_defaults(fn=cmd_compare)

    cov = sub.add_parser("cover", help="serve everyone with minimum antennas")
    cov.add_argument("instance", help="angle-instance JSON path")
    cov.add_argument("--eps", type=float, default=1.0)
    cov.set_defaults(fn=cmd_cover)

    onl = sub.add_parser("online", help="stream customers through admission policies")
    onl.add_argument("instance", help="angle-instance JSON path")
    onl.add_argument("--seed", type=int, default=0, help="arrival-order shuffle seed")
    onl.set_defaults(fn=cmd_online)

    st = sub.add_parser("stats", help="instance statistics + ASCII rendering")
    st.add_argument("instance", help="angle-instance JSON path")
    st.set_defaults(fn=cmd_stats)

    rep = sub.add_parser("report", help="regenerate the evaluation report")
    rep.add_argument("--seeds", type=int, default=3)
    rep.add_argument("--quick", action="store_true",
                     help="skip the exact-solver experiments")
    rep.set_defaults(fn=cmd_report)

    b = sub.add_parser("bench", help="run the bench harness, write BENCH_<tag>.json")
    b.add_argument("--families", default="uniform,clustered,hotspot",
                   help="comma-separated instance families (angle or sector)")
    b.add_argument("--n", type=int, default=60, help="customers per instance")
    b.add_argument("--k", type=int, default=3, help="antennas per angle instance")
    b.add_argument("--seeds", default="0", help="comma-separated seeds")
    b.add_argument("--solvers",
                   help="comma-separated solver subset (default: all applicable)")
    b.add_argument("--eps", type=float, default=0.5,
                   help="< 1 uses the FPTAS oracle at this eps; 1 = exact oracle "
                        "(exact can blow up on continuous-weight families)")
    b.add_argument("--timeout", type=float, metavar="SECONDS",
                   help="per-solve budget; also enables the budget-bounded "
                        "anytime exact solver as a bench entry")
    b.add_argument("--cache-bench", action="store_true",
                   help="add the warm-vs-cold engine-cache benchmark section")
    b.add_argument("--service-bench", action="store_true",
                   help="add the serving-throughput benchmark section "
                        "(single vs batched vs warm-cache req/s)")
    b.add_argument("--compile-bench", action="store_true",
                   help="add the compiled-instance benchmark section "
                        "(per-call compilation vs one shared compiled view)")
    b.add_argument("--scale-bench", action="store_true",
                   help="add the scale section: monolithic-vs-partitioned "
                        "throughput curves on metro instances up to n=10^6, "
                        "merge-bound soundness asserted in-harness "
                        "(docs/SCALE.md)")
    b.add_argument("--online-bench", action="store_true",
                   help="add the online-delta section: event-apply vs "
                        "from-scratch recompile throughput on a large "
                        "instance, value identity and per-sector cache "
                        "invalidation asserted in-harness (docs/ONLINE.md)")
    b.add_argument("--scenario-bench", action="store_true",
                   help="add the constraint-pipeline section: scalar-vs-"
                        "vectorized mask composition identity, constrained "
                        "solve feasibility across backends, and the <10% "
                        "mask-compose overhead gate asserted in-harness "
                        "(docs/SCENARIOS.md)")
    b.add_argument("--backend-bench", action="store_true",
                   help="add the backend-comparison section: large-n sweep "
                        "and sector workloads on the python vs numpy "
                        "backends, asserting value identity")
    b.add_argument("--tag", default="pr1", help="tag baked into the payload/filename")
    b.add_argument("--output", help="output path (default BENCH_<tag>.json)")
    b.add_argument("--check", metavar="PATH",
                   help="validate an existing bench JSON instead of running")
    b.set_defaults(fn=cmd_bench)

    f = sub.add_parser("families", help="list families and algorithms")
    f.set_defaults(fn=cmd_families)

    sv = sub.add_parser(
        "serve",
        help="run the batched async solver service (docs/SERVICE.md)",
    )
    sv.add_argument("--host", default="127.0.0.1", help="TCP bind address")
    sv.add_argument("--port", type=int, default=7077,
                    help="TCP port (0 binds an ephemeral port, printed on start)")
    sv.add_argument("--unix", metavar="PATH",
                    help="also listen on this Unix socket path")
    sv.add_argument("--max-batch", type=int, default=16,
                    help="most requests one solve_many dispatch carries")
    sv.add_argument("--flush-ms", type=float, default=5.0,
                    help="micro-batch flush interval in milliseconds")
    sv.add_argument("--queue-bound", type=int, default=256,
                    help="admission limit; excess requests are shed (status 5)")
    sv.add_argument("--workers", type=int,
                    help="run N supervised engine worker subprocesses with "
                         "shard routing and crash recovery (default: solve "
                         "in-process via the batch thread)")
    sv.add_argument("--chaos", metavar="SPEC",
                    help="deterministic service fault injection into the "
                         "workers, e.g. 'seed=7,kill_rate=0.2,corrupt_rate="
                         "0.1'; requires --workers (docs/RESILIENCE.md)")
    sv.set_defaults(fn=cmd_serve)

    cl = sub.add_parser(
        "client",
        help="talk to a running solver service (docs/SERVICE.md)",
    )
    cl.add_argument("action",
                    choices=("solve", "event", "stats", "ping", "shutdown"),
                    help="what to ask the service")
    cl.add_argument("instance", nargs="?",
                    help="instance JSON path (solve; for event it opens or "
                         "rebinds the session)")
    cl.add_argument("--host", default="127.0.0.1", help="service TCP address")
    cl.add_argument("--port", type=int, default=7077, help="service TCP port")
    cl.add_argument("--unix", metavar="PATH",
                    help="connect over this Unix socket instead of TCP")
    cl.add_argument("--algorithm", default="auto",
                    help="engine solver name, or 'auto' for the planner")
    cl.add_argument("--eps", type=float, default=1.0,
                    help="< 1 uses the FPTAS oracle at this eps; 1 = exact oracle")
    cl.add_argument("--timeout", type=float, metavar="SECONDS",
                    help="end-to-end deadline (queue time counts; status 4 "
                         "on expiry)")
    cl.add_argument("--repeat", type=int, default=1, metavar="N",
                    help="pipeline the same solve N times (exercises batching)")
    cl.add_argument("--session", metavar="NAME",
                    help="delta-session name on the service (event action; "
                         "sessions are shard-sticky, docs/ONLINE.md)")
    cl.add_argument("--events", metavar="PATH",
                    help="JSON file holding a list of event dicts to apply "
                         "to the session, e.g. [{\"type\": \"add_customer\", "
                         "\"demand\": 2.0, \"theta\": 0.5}]")
    cl.add_argument("--resolve", action="store_true",
                    help="re-solve the post-event instance in the same "
                         "round trip (uses --algorithm/--eps)")
    cl.add_argument("--no-cache", action="store_true",
                    help="bypass the service's warm result cache")
    cl.add_argument("--solution", action="store_true",
                    help="request the serialized solution in the response")
    cl.add_argument("--output", help="write the returned solution JSON here")
    cl.set_defaults(fn=cmd_client)
    return p


def main(argv: Optional[list] = None) -> int:
    """Parse and dispatch; route failures to documented exit codes.

    Never lets a traceback reach the terminal: every anticipated failure
    class maps to one stderr line and a distinct exit code.
    """
    from repro.model.instance import InvalidInstanceError
    from repro.model.solution import FeasibilityError
    from repro.resilience import BudgetExpired

    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except BudgetExpired as exc:
        print(f"error: deadline expired ({exc.reason}); "
              f"re-run with --fallback for a degraded answer", file=sys.stderr)
        return EXIT_TIMEOUT
    except InvalidInstanceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_INVALID_INPUT
    except json.JSONDecodeError as exc:
        print(f"error: malformed JSON: {exc}", file=sys.stderr)
        return EXIT_INVALID_INPUT
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_INVALID_INPUT
    except FeasibilityError as exc:
        print(f"error: solver produced an infeasible solution: {exc}",
              file=sys.stderr)
        return EXIT_INTERNAL
    except (ValueError, KeyError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except Exception as exc:  # noqa: BLE001 - last-resort hygiene
        print(f"error: unexpected {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_INTERNAL


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
