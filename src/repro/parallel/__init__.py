"""Process-level parallelism for sweeps and experiment fan-out."""

from repro.parallel.pool import parallel_map, scatter_gather, worker_count

__all__ = ["parallel_map", "scatter_gather", "worker_count"]
