"""Process-level parallelism for sweeps and experiment fan-out."""

from repro.parallel.pool import (
    PipeWorker,
    WorkerCrashed,
    parallel_map,
    scatter_gather,
    worker_count,
)

__all__ = [
    "PipeWorker",
    "WorkerCrashed",
    "parallel_map",
    "scatter_gather",
    "worker_count",
]
