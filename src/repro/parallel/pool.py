"""Chunked process-pool map with graceful serial fallback.

The HPC guides for this project teach two execution models: MPI-style
scatter/gather (mpi4py) and JIT-compiled kernels (numba).  Neither package
is available in this offline environment, so the library provides the same
*shape* of API on top of :mod:`concurrent.futures`:

* :func:`parallel_map` -- order-preserving map over items, chunked to
  amortize pickling overhead (the process-pool analogue of
  ``comm.scatter`` / ``comm.gather``);
* :func:`scatter_gather` -- explicit scatter/gather over pre-made chunks,
  mirroring the mpi4py tutorial idiom for code that wants to control the
  decomposition itself.

Both degrade to serial execution when ``workers <= 1``, when the item
count is tiny, or when the callable is not picklable (lambdas/closures) —
so callers never need a code path split.  Worker count resolution order:
explicit argument, ``REPRO_WORKERS`` environment variable, CPU count.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

#: Below this many items the pool overhead dominates; run serial.
_MIN_PARALLEL_ITEMS = 4


def worker_count(workers: Optional[int] = None) -> int:
    """Resolve the worker count: argument > ``REPRO_WORKERS`` > CPU count."""
    if workers is not None:
        return max(1, int(workers))
    env = os.environ.get("REPRO_WORKERS")
    if env is not None:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(f"REPRO_WORKERS must be an integer, got {env!r}")
    return max(1, os.cpu_count() or 1)


def _is_picklable(obj) -> bool:
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


def _apply_chunk(payload):
    fn, chunk = payload
    return [fn(item) for item in chunk]


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> List[R]:
    """Order-preserving map, fanned out over processes in chunks.

    Falls back to a serial list comprehension when parallelism cannot help
    (single worker, few items) or cannot work (unpicklable ``fn``).
    """
    items = list(items)
    w = worker_count(workers)
    if w <= 1 or len(items) < _MIN_PARALLEL_ITEMS or not _is_picklable(fn):
        return [fn(item) for item in items]
    if chunk_size is None:
        # ~4 chunks per worker balances load without pickling per item.
        chunk_size = max(1, len(items) // (4 * w))
    chunks = [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]
    results: List[R] = []
    with ProcessPoolExecutor(max_workers=w) as pool:
        for part in pool.map(_apply_chunk, [(fn, c) for c in chunks]):
            results.extend(part)
    return results


def scatter_gather(
    fn: Callable[[Sequence[T]], R],
    chunks: Iterable[Sequence[T]],
    workers: Optional[int] = None,
) -> List[R]:
    """Apply ``fn`` to each pre-made chunk and gather results in order.

    The mpi4py-tutorial idiom: the caller decides the decomposition,
    ``fn`` processes one chunk, results come back rank-ordered.
    """
    chunk_list = [list(c) for c in chunks]
    w = worker_count(workers)
    if w <= 1 or len(chunk_list) <= 1 or not _is_picklable(fn):
        return [fn(c) for c in chunk_list]
    with ProcessPoolExecutor(max_workers=w) as pool:
        return list(pool.map(fn, chunk_list))
