"""Chunked process-pool map with graceful serial fallback and crash recovery.

The HPC guides for this project teach two execution models: MPI-style
scatter/gather (mpi4py) and JIT-compiled kernels (numba).  Neither package
is available in this offline environment, so the library provides the same
*shape* of API on top of :mod:`concurrent.futures`:

* :func:`parallel_map` -- order-preserving map over items, chunked to
  amortize pickling overhead (the process-pool analogue of
  ``comm.scatter`` / ``comm.gather``);
* :func:`scatter_gather` -- explicit scatter/gather over pre-made chunks,
  mirroring the mpi4py tutorial idiom for code that wants to control the
  decomposition itself.

Both degrade to serial execution when ``workers <= 1``, when the item
count is tiny, or when the callable is not picklable (lambdas/closures) —
so callers never need a code path split.  Worker count resolution order:
explicit argument, ``REPRO_WORKERS`` environment variable, CPU count.

**Crash recovery** (resilience contract, ``docs/RESILIENCE.md``): each
chunk is submitted as its own future, so one dying worker (segfault,
``os._exit``, OOM-kill — surfaced as ``BrokenProcessPool``) or one hung /
poisoned chunk (``chunk_timeout_s``) only loses *its* chunks.  Failed
chunks are re-run **serially in the parent**, which recovers both crashes
and transient worker-only faults (the chaos harness injects faults only in
worker pids for exactly this reason).  A chunk whose serial re-run *also*
fails raises by default; ``scatter_gather(..., allow_partial=True)``
instead records ``None`` for that chunk and returns the rest.  Events are
counted in the ``parallel.*`` metrics.

**Long-lived workers**: :class:`PipeWorker` is the third primitive — a
supervised subprocess speaking framed-pickle request/response over a
duplex pipe, built for callers that need worker *affinity* (warm
per-process caches) rather than stateless chunk fan-out.  Every failure
mode a worker can exhibit (dead pid, pipe EOF, reply timeout, corrupted
frame) surfaces as one typed :class:`WorkerCrashed` exception so the
supervising layer (:mod:`repro.service.supervisor`) has a single recovery
path.  Stale replies from a timed-out earlier call are discarded by
sequence number, so one slow reply can never desynchronize the protocol.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, TimeoutError
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

from repro.obs.metrics import get_registry

T = TypeVar("T")
R = TypeVar("R")

#: Below this many items the pool overhead dominates; run serial.
_MIN_PARALLEL_ITEMS = 4

# Pool-resilience telemetry (contract: docs/RESILIENCE.md).
_REG = get_registry()
_WORKER_FAILURES = _REG.counter("parallel.worker_failures")
_SERIAL_RETRIES = _REG.counter("parallel.serial_retries")
_CHUNK_TIMEOUTS = _REG.counter("parallel.chunk_timeouts")
_FAILED_CHUNKS = _REG.counter("parallel.failed_chunks")


def worker_count(workers: Optional[int] = None) -> int:
    """Resolve the worker count: argument > ``REPRO_WORKERS`` > CPU count."""
    if workers is not None:
        return max(1, int(workers))
    env = os.environ.get("REPRO_WORKERS")
    if env is not None:
        try:
            return max(1, int(env))
        except ValueError:
            raise ValueError(f"REPRO_WORKERS must be an integer, got {env!r}")
    return max(1, os.cpu_count() or 1)


def _is_picklable(obj) -> bool:
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


def _apply_chunk(payload):
    fn, chunk = payload
    return [fn(item) for item in chunk]


def _run_chunked(
    fn: Callable,
    chunk_args: List,
    workers: int,
    chunk_timeout_s: Optional[float],
    allow_partial: bool,
) -> List:
    """Run ``fn`` over ``chunk_args`` with crash/timeout recovery.

    Returns per-chunk results in order.  Failed chunks are re-run serially
    in the parent; a chunk that fails even serially raises (or yields
    ``None`` under ``allow_partial``).
    """
    m = len(chunk_args)
    results: List = [None] * m
    done = [False] * m
    failed: List[int] = []
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {i: pool.submit(fn, chunk_args[i]) for i in range(m)}
            for i, fut in futures.items():
                try:
                    results[i] = fut.result(timeout=chunk_timeout_s)
                    done[i] = True
                except TimeoutError:
                    _CHUNK_TIMEOUTS.inc()
                    fut.cancel()
                    failed.append(i)
                except BrokenProcessPool:
                    # The pool is dead: everything not yet collected is lost.
                    _WORKER_FAILURES.inc()
                    failed.extend(j for j in range(i, m) if not done[j])
                    break
                except Exception:
                    _WORKER_FAILURES.inc()
                    failed.append(i)
    except BrokenProcessPool:
        # Shutdown can also surface the breakage; anything unfinished is lost.
        _WORKER_FAILURES.inc()
        failed.extend(j for j in range(m) if not done[j] and j not in failed)

    # Serial recovery in the parent process.
    for i in sorted(set(failed)):
        _SERIAL_RETRIES.inc()
        try:
            results[i] = fn(chunk_args[i])
            done[i] = True
        except Exception:
            _FAILED_CHUNKS.inc()
            if not allow_partial:
                raise
            results[i] = None
    return results


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    chunk_timeout_s: Optional[float] = None,
) -> List[R]:
    """Order-preserving map, fanned out over processes in chunks.

    Falls back to a serial list comprehension when parallelism cannot help
    (single worker, few items) or cannot work (unpicklable ``fn``).
    Worker crashes and per-chunk timeouts (``chunk_timeout_s``) are
    recovered by re-running the lost chunks serially in the parent; the
    result is complete or an exception — never silently truncated.
    """
    items = list(items)
    w = worker_count(workers)
    if w <= 1 or len(items) < _MIN_PARALLEL_ITEMS or not _is_picklable(fn):
        return [fn(item) for item in items]
    if chunk_size is None:
        # ~4 chunks per worker balances load without pickling per item.
        chunk_size = max(1, len(items) // (4 * w))
    chunks = [items[i : i + chunk_size] for i in range(0, len(items), chunk_size)]
    parts = _run_chunked(
        _apply_chunk,
        [(fn, c) for c in chunks],
        workers=w,
        chunk_timeout_s=chunk_timeout_s,
        allow_partial=False,
    )
    results: List[R] = []
    for part in parts:
        results.extend(part)
    return results


def scatter_gather(
    fn: Callable[[Sequence[T]], R],
    chunks: Iterable[Sequence[T]],
    workers: Optional[int] = None,
    chunk_timeout_s: Optional[float] = None,
    allow_partial: bool = False,
) -> List[R]:
    """Apply ``fn`` to each pre-made chunk and gather results in order.

    The mpi4py-tutorial idiom: the caller decides the decomposition,
    ``fn`` processes one chunk, results come back rank-ordered.  Crashed
    or timed-out chunks are re-run serially; with ``allow_partial=True`` a
    chunk that fails even serially yields ``None`` in its slot instead of
    raising (partial results beat no results for bench sweeps).
    """
    chunk_list = [list(c) for c in chunks]
    w = worker_count(workers)
    if w <= 1 or len(chunk_list) <= 1 or not _is_picklable(fn):
        out: List[R] = []
        for c in chunk_list:
            try:
                out.append(fn(c))
            except Exception:
                _FAILED_CHUNKS.inc()
                if not allow_partial:
                    raise
                out.append(None)  # type: ignore[arg-type]
        return out
    return _run_chunked(
        fn,
        chunk_list,
        workers=w,
        chunk_timeout_s=chunk_timeout_s,
        allow_partial=allow_partial,
    )


class WorkerCrashed(RuntimeError):
    """A :class:`PipeWorker` died, timed out, or sent an unusable frame.

    One exception type for every transport-level failure (dead process,
    pipe EOF, reply timeout, corrupted pickle frame, worker-reported
    internal error) so supervisors have a single recovery path: treat the
    worker as lost, redispatch the in-flight work elsewhere, and restart.
    """


class PipeWorker:
    """A long-lived subprocess driven over a duplex pipe with framed pickle.

    Unlike the stateless pool in :func:`parallel_map`, a ``PipeWorker``
    keeps one process alive across many requests so per-process state
    (compiled-instance caches, result LRUs) stays warm.  The parent sends
    ``(seq, op, payload)`` frames via ``send_bytes(pickle.dumps(...))`` and
    waits — bounded by ``timeout_s`` — for the matching ``(seq, status,
    result)`` reply; replies carrying a stale ``seq`` (from a call that
    already timed out) are silently discarded, keeping the channel usable
    after partial failures.

    ``target(conn, *args)`` runs in the child and owns the protocol loop;
    see :func:`repro.service.workers.worker_main` for the canonical loop.
    The caller must serialize :meth:`request` calls (the supervisor holds a
    per-worker lock); the class adds no locking of its own.

    Processes are created through the supplied multiprocessing ``context``
    (the service layer passes *forkserver* so children never inherit the
    asyncio thread's locks or listening sockets) and are daemonic: they can
    never outlive the parent.
    """

    def __init__(
        self,
        target: Callable[..., None],
        args: Tuple = (),
        name: Optional[str] = None,
        context=None,
    ) -> None:
        ctx = context if context is not None else multiprocessing.get_context()
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._proc = ctx.Process(
            target=target, args=(child_conn, *args), name=name, daemon=True
        )
        self._proc.start()
        child_conn.close()
        self._seq = 0

    @property
    def pid(self) -> Optional[int]:
        """OS pid of the child process (``None`` before start)."""
        return self._proc.pid

    def alive(self) -> bool:
        """Whether the child process is currently running."""
        return self._proc.is_alive()

    def request(self, op: str, payload: Any = None,
                timeout_s: Optional[float] = None) -> Any:
        """Send one ``(op, payload)`` request and return the reply payload.

        Raises :class:`WorkerCrashed` when the worker cannot answer: the
        pipe is broken, the reply does not arrive within ``timeout_s``,
        the reply frame fails to unpickle (corruption), or the worker
        reports an internal error.  After a :class:`WorkerCrashed` the
        worker should be considered lost and replaced — even on a timeout,
        since a late reply for this ``seq`` will be discarded, not healed.
        """
        self._seq += 1
        seq = self._seq
        try:
            self._conn.send_bytes(pickle.dumps((seq, op, payload)))
        except (OSError, ValueError) as exc:
            raise WorkerCrashed(f"worker pipe send failed: {exc}") from exc
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        while True:
            if deadline is None:
                wait = 1.0
            else:
                wait = deadline - time.monotonic()
                if wait <= 0:
                    raise WorkerCrashed(
                        f"worker {self.pid} sent no reply within {timeout_s:g}s"
                    )
            if not self._conn.poll(min(wait, 1.0)):
                continue
            try:
                raw = self._conn.recv_bytes()
            except (EOFError, OSError) as exc:
                raise WorkerCrashed(f"worker pipe closed: {exc}") from exc
            try:
                reply_seq, status, result = pickle.loads(raw)
            except Exception as exc:
                raise WorkerCrashed(
                    f"corrupted reply frame from worker {self.pid}: "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
            if reply_seq != seq:
                continue  # stale reply from a timed-out earlier request
            if status != "ok":
                raise WorkerCrashed(f"worker error reply: {result}")
            return result

    def stop(self, timeout_s: float = 2.0) -> None:
        """Ask the worker to exit, escalating to terminate/kill if ignored."""
        try:
            self._conn.send_bytes(pickle.dumps((0, "stop", None)))
        except (OSError, ValueError):
            pass
        self._proc.join(timeout=timeout_s)
        if self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=timeout_s)
        if self._proc.is_alive():
            self._proc.kill()
            self._proc.join(timeout=timeout_s)
        self._conn.close()

    def kill(self) -> None:
        """Hard-kill the worker process (used by drain on unresponsive pids)."""
        if self._proc.is_alive():
            self._proc.kill()
            self._proc.join(timeout=2.0)
        self._conn.close()
