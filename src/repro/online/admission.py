"""Online admission with fixed orientations.

Model.  Antenna arcs are oriented up front (e.g. from the offline planner
run on a forecast).  Customers arrive one at a time as ``(theta, demand)``;
on arrival the algorithm must either assign the customer to an antenna
whose arc covers it and whose residual capacity fits the demand, or reject
it forever.  Objective: total accepted demand, compared to the *offline*
optimum on the same arrivals and orientations.

Policies (all work-conserving — they never reject a customer that fits
somewhere):

* ``first_fit``  -- lowest-index covering antenna with room;
* ``best_fit``   -- covering antenna whose residual is smallest but
  sufficient (keeps big residuals for big future demands);
* ``worst_fit``  -- covering antenna with the largest residual (load
  balancing);
* ``threshold``  -- best-fit, but rejects any demand exceeding a fraction
  ``tau`` of capacity (sacrifices whales to protect the long tail).

**Guarantee (work-conserving policies).**  Let ``d_max`` be the largest
demand, ``c_min`` the smallest capacity, and ``delta = d_max / c_min``.
When a work-conserving policy rejects a customer, every antenna covering
it has residual ``< d_max`` — and loads only grow, so at termination
every antenna in ``J`` (the set covering at least one rejected customer)
carries load ``> c_j - d_max >= (1 - delta) * c_j``.  The offline optimum
can serve rejected customers only on ``J``'s antennas, hence::

    OPT <= accepted + sum_{j in J} c_j <= accepted * (1 + 1/(1 - delta))

i.e. every work-conserving policy is ``(1 - delta) / (2 - delta)``-
competitive (→ 1/2 as demands become small, 1 when nothing is rejected).
:func:`work_conserving_bound` returns that floor; experiment E12 measures
how far above it the policies land.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.arcs import Arc
from repro.model.antenna import AntennaSpec
from repro.model.instance import AngleInstance
from repro.model.solution import AngleSolution
from repro.packing.exact import solve_exact_fixed_orientations
from repro.packing.flow import splittable_value

#: policy name -> selection function (residuals, covering_ids, demand) -> antenna or -1
AdmissionPolicy = Callable[[np.ndarray, np.ndarray, float], int]


def _first_fit(residuals: np.ndarray, covering: np.ndarray, demand: float) -> int:
    for j in covering:
        if demand <= residuals[j] * (1 + 1e-12):
            return int(j)
    return -1


def _best_fit(residuals: np.ndarray, covering: np.ndarray, demand: float) -> int:
    best, best_res = -1, np.inf
    for j in covering:
        r = residuals[j]
        if demand <= r * (1 + 1e-12) and r < best_res:
            best, best_res = int(j), r
    return best


def _worst_fit(residuals: np.ndarray, covering: np.ndarray, demand: float) -> int:
    best, best_res = -1, -np.inf
    for j in covering:
        r = residuals[j]
        if demand <= r * (1 + 1e-12) and r > best_res:
            best, best_res = int(j), r
    return best


def make_threshold_policy(tau: float) -> AdmissionPolicy:
    """Best-fit that rejects demands above ``tau`` x (largest capacity seen).

    ``tau`` in (0, 1]; ``tau=1`` degenerates to plain best-fit.  Not
    work-conserving (it rejects deliberately), so the work-conserving
    bound does not apply to it — that is the point of comparing them.
    """
    if not (0.0 < tau <= 1.0):
        raise ValueError(f"tau must be in (0, 1], got {tau}")

    def policy(residuals: np.ndarray, covering: np.ndarray, demand: float) -> int:
        cap_scale = residuals.max(initial=0.0)
        if demand > tau * max(cap_scale, 1e-300):
            return -1
        return _best_fit(residuals, covering, demand)

    return policy


POLICIES: Dict[str, AdmissionPolicy] = {
    "first_fit": _first_fit,
    "best_fit": _best_fit,
    "worst_fit": _worst_fit,
}


@dataclass
class OnlineAdmission:
    """Streaming admission simulator over fixed oriented antennas.

    Parameters
    ----------
    antennas:
        Antenna specs (capacities used as budgets).
    orientations:
        One start angle per antenna.
    policy:
        An :data:`AdmissionPolicy` or a registered name.
    """

    antennas: Sequence[AntennaSpec]
    orientations: Sequence[float]
    policy: AdmissionPolicy | str = "best_fit"

    def __post_init__(self) -> None:
        if len(self.antennas) != len(self.orientations):
            raise ValueError("antennas and orientations must align")
        if isinstance(self.policy, str):
            try:
                self.policy = POLICIES[self.policy]
            except KeyError:
                raise ValueError(
                    f"unknown policy {self.policy!r}; "
                    f"known: {sorted(POLICIES)} or a callable"
                ) from None
        self._arcs = [
            Arc(float(a), spec.rho)
            for a, spec in zip(self.orientations, self.antennas)
        ]
        self._residuals = np.array([s.capacity for s in self.antennas])
        self._accepted: List[Tuple[float, float, int]] = []
        self._rejected: List[Tuple[float, float]] = []

    # ------------------------------------------------------------------
    @property
    def residuals(self) -> np.ndarray:
        return self._residuals.copy()

    @property
    def accepted_demand(self) -> float:
        return float(sum(d for _, d, _ in self._accepted))

    @property
    def accepted_count(self) -> int:
        return len(self._accepted)

    @property
    def rejected_count(self) -> int:
        return len(self._rejected)

    def offer(self, theta: float, demand: float) -> int:
        """Offer one customer; returns the assigned antenna or ``-1``."""
        if demand <= 0:
            raise ValueError(f"demand must be positive, got {demand}")
        covering = np.array(
            [j for j, arc in enumerate(self._arcs) if arc.contains(float(theta))],
            dtype=np.intp,
        )
        j = self.policy(self._residuals, covering, float(demand)) if covering.size else -1
        if j >= 0:
            if not self._arcs[j].contains(float(theta)):
                raise RuntimeError("policy assigned a non-covering antenna")
            if demand > self._residuals[j] * (1 + 1e-9):
                raise RuntimeError("policy overfilled an antenna")
            self._residuals[j] -= demand
            self._accepted.append((float(theta), float(demand), int(j)))
        else:
            self._rejected.append((float(theta), float(demand)))
        return int(j)

    def run(self, thetas: Sequence[float], demands: Sequence[float]) -> float:
        """Offer a whole stream; returns total accepted demand."""
        for t, d in zip(thetas, demands):
            self.offer(float(t), float(d))
        return self.accepted_demand


def replay_offline_reference(
    antennas: Sequence[AntennaSpec],
    orientations: Sequence[float],
    thetas: Sequence[float],
    demands: Sequence[float],
    exact_limit: int = 18,
) -> float:
    """Offline reference value on the same arrivals and orientations.

    Uses the exact fixed-orientation solver when the stream is small,
    otherwise the splittable optimum (a valid upper bound on any offline
    integral solution, hence on any online run).
    """
    inst = AngleInstance(
        thetas=np.asarray(thetas, dtype=np.float64),
        demands=np.asarray(demands, dtype=np.float64),
        antennas=tuple(antennas),
    )
    ori = np.asarray(orientations, dtype=np.float64)
    if inst.n <= exact_limit:
        return solve_exact_fixed_orientations(inst, ori).value(inst)
    return splittable_value(inst, ori)


def work_conserving_bound(
    antennas: Sequence[AntennaSpec],
    demands: Sequence[float],
) -> float:
    """Competitive-ratio floor ``(1 - delta) / (2 - delta)`` for any
    work-conserving policy, where ``delta = d_max / c_min``.

    Derivation in the module docstring.  Returns 0.0 when some demand
    exceeds the smallest capacity (``delta >= 1`` — no guarantee), and
    1.0 for an empty stream.
    """
    demands = np.asarray(demands, dtype=np.float64)
    if demands.size == 0:
        return 1.0
    d_max = float(demands.max())
    c_min = min(s.capacity for s in antennas)
    delta = d_max / c_min
    if delta >= 1.0:
        return 0.0
    return (1.0 - delta) / (2.0 - delta)
