"""Delta-compiled instances: incremental online solving without recompiles.

The dynamic workload (``docs/ONLINE.md``): customers arrive, depart, and
change demand, and the engine must answer from the *current* instance
without paying a full ``Instance.compile()`` per event.  A
:class:`DeltaCompiledInstance` owns one instance plus its compiled
struct-of-arrays view and applies :class:`AddCustomer` /
:class:`RemoveCustomer` / :class:`UpdateDemand` events by patching the
views in place of rebuilding them:

* the **stable angle argsort** is patched by binary insertion
  (``searchsorted`` right-bisect for inserts — a new customer carries the
  largest original index, so it lands *after* every equal angle, exactly
  where a fresh stable argsort would put it — and left-bisect plus a
  tie-run scan for removals);
* the **doubled prefix sums** are rebuilt with the exact operations of
  ``repro.core.compiled._doubled_prefix`` (cumulative sums cannot be
  float-patched without changing summation order), but only for the arrays
  an event actually dirtied;
* per-station **polar views and fitting-radius masks** (sector kind) are
  patched with single-row ``relative_polar`` conversions and scalar mask
  appends — elementwise operations, hence bit-identical to a fresh batch
  conversion;
* per-station **constraint masks** (sector kind, ``docs/SCENARIOS.md``)
  are patched by column: every registered constraint is per-customer
  independent (a customer's line-of-sight and top-``k`` station ranking
  depend only on its own position and the fixed stations), so the
  appended customer's composed column
  (:func:`repro.model.constraints.effective_column`, computed through the
  same per-pair primitives as a full composition) plus row deletion on
  removals reproduces a fresh ``constraint_masks()`` bit-for-bit;
* the **staleness fingerprint** (``_compile_token``) is refreshed so the
  patched instance passes ``compile()``'s memo self-check.

The contract — property-tested in ``tests/test_online_delta.py`` — is that
after every event the delta view is **bit-identical** to
``Instance.compile()`` of a freshly constructed instance with the same
content: same argsort, same prefix sums, same masks, same engine
fingerprint.  Untouched arrays are reused by reference across generations,
which is what makes delta-apply ≥5× cheaper than a recompile at n ≥ 10⁴
(the ``online_bench`` section of ``obs/bench.py`` enforces this).

Per-sector cache invalidation: callers tag engine result-cache keys with
the angular window they were solved over (:meth:`register_window`); an
event touching angle θ evicts exactly the keys whose window contains θ
(``engine.online.invalidated``) and retains the rest
(``engine.online.retained``), so untouched-sector entries stay warm.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.compiled import (
    CompiledAngleInstance,
    CompiledSectorInstance,
    CompiledStation,
    _RADIUS_SLACK,
    _SortedAngles,
    _doubled_prefix,
    _frozen,
)
from repro.geometry.angles import TWO_PI, _EPS_WRAP, ccw_delta, normalize_angles
from repro.geometry.points import cartesians_to_polar, relative_polar
from repro.model.instance import (
    AngleInstance,
    InvalidInstanceError,
    SectorInstance,
)
from repro.obs.metrics import get_registry

__all__ = [
    "AddCustomer",
    "RemoveCustomer",
    "UpdateDemand",
    "Event",
    "DeltaCompiledInstance",
    "event_to_dict",
    "event_from_dict",
]

_REG = get_registry()
# Wall time spent applying event deltas (contract: docs/OBSERVABILITY.md).
_DELTA_TIMER = _REG.timer("phase.delta")
_EVENTS = _REG.counter("engine.online.events")
_APPLIES = _REG.counter("engine.online.applies")
_INVALIDATED = _REG.counter("engine.online.invalidated")
_RETAINED = _REG.counter("engine.online.retained")


# ----------------------------------------------------------------------
# Events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AddCustomer:
    """A new customer appears (appended at original index ``n``).

    Angle instances take ``theta`` (radians, normalized on apply); sector
    instances take ``position`` ``(x, y)``.  ``profit`` defaults to
    ``demand``, matching the constructors' ``profits=None`` semantics.
    """

    demand: float
    theta: Optional[float] = None
    position: Optional[Tuple[float, float]] = None
    profit: Optional[float] = None


@dataclass(frozen=True)
class RemoveCustomer:
    """Customer ``index`` departs; later customers shift down by one.

    ``index`` is the *current* original index (the row in the instance
    arrays), not a stable external id — after a removal, indices above it
    decrement, exactly as if the instance had been rebuilt without the row.
    """

    index: int


@dataclass(frozen=True)
class UpdateDemand:
    """Customer ``index`` changes demand and/or profit (geometry fixed).

    At least one of ``demand`` / ``profit`` must be given; an omitted field
    keeps its current value.
    """

    index: int
    demand: Optional[float] = None
    profit: Optional[float] = None


#: Union of the three event types accepted by :meth:`DeltaCompiledInstance.apply`.
Event = Union[AddCustomer, RemoveCustomer, UpdateDemand]

_EVENT_TYPES = {
    "add_customer": AddCustomer,
    "remove_customer": RemoveCustomer,
    "update_demand": UpdateDemand,
}

#: Allowed wire fields per event type (strict: unknown fields are rejected,
#: mirroring the envelope grammar in :mod:`repro.service.protocol`).
_EVENT_FIELDS = {
    "add_customer": {"type", "demand", "theta", "position", "profit"},
    "remove_customer": {"type", "index"},
    "update_demand": {"type", "index", "demand", "profit"},
}


def event_to_dict(event: Event) -> dict:
    """Serialize an event for the wire (``docs/ONLINE.md`` event grammar)."""
    if isinstance(event, AddCustomer):
        payload: dict = {"type": "add_customer", "demand": float(event.demand)}
        if event.theta is not None:
            payload["theta"] = float(event.theta)
        if event.position is not None:
            payload["position"] = [float(event.position[0]), float(event.position[1])]
        if event.profit is not None:
            payload["profit"] = float(event.profit)
        return payload
    if isinstance(event, RemoveCustomer):
        return {"type": "remove_customer", "index": int(event.index)}
    if isinstance(event, UpdateDemand):
        payload = {"type": "update_demand", "index": int(event.index)}
        if event.demand is not None:
            payload["demand"] = float(event.demand)
        if event.profit is not None:
            payload["profit"] = float(event.profit)
        return payload
    raise TypeError(f"not an event: {type(event).__name__}")


def event_from_dict(payload) -> Event:
    """Parse one wire event dict; raises ``ValueError`` on a malformed one.

    Malformed *structure* (unknown ``type``, missing required keys,
    non-numeric fields) raises ``ValueError`` — wire status 2 — while
    semantically invalid *values* (non-positive demand, index out of
    range) surface later, at apply time, as ``InvalidInstanceError`` —
    wire status 3.  See ``docs/ONLINE.md``.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"event must be an object, got {type(payload).__name__}")
    kind = payload.get("type")
    if kind not in _EVENT_TYPES:
        raise ValueError(
            f"unknown event type {kind!r} (expected one of "
            f"{sorted(_EVENT_TYPES)})"
        )
    unknown = set(payload) - _EVENT_FIELDS[kind]
    if unknown:
        raise ValueError(
            f"unknown {kind} event field(s): {sorted(unknown)}"
        )
    try:
        if kind == "add_customer":
            if "demand" not in payload:
                raise ValueError("add_customer event requires 'demand'")
            if ("theta" in payload) == ("position" in payload):
                raise ValueError(
                    "add_customer event requires exactly one of "
                    "'theta' (angle) or 'position' (sector)"
                )
            position = payload.get("position")
            if position is not None:
                if len(position) != 2:
                    raise ValueError("'position' must be an [x, y] pair")
                position = (float(position[0]), float(position[1]))
            return AddCustomer(
                demand=float(payload["demand"]),
                theta=float(payload["theta"]) if "theta" in payload else None,
                position=position,
                profit=float(payload["profit"]) if "profit" in payload else None,
            )
        if kind == "remove_customer":
            if "index" not in payload:
                raise ValueError("remove_customer event requires 'index'")
            return RemoveCustomer(index=int(payload["index"]))
        if "index" not in payload:
            raise ValueError("update_demand event requires 'index'")
        if "demand" not in payload and "profit" not in payload:
            raise ValueError(
                "update_demand event requires at least one of 'demand'/'profit'"
            )
        return UpdateDemand(
            index=int(payload["index"]),
            demand=float(payload["demand"]) if "demand" in payload else None,
            profit=float(payload["profit"]) if "profit" in payload else None,
        )
    except (TypeError, KeyError) as exc:
        raise ValueError(f"malformed {kind} event: {exc}") from exc


# ----------------------------------------------------------------------
# Array patch primitives (always allocate fresh: current arrays are frozen)
# ----------------------------------------------------------------------
def _insert_at(arr: np.ndarray, pos: int, value) -> np.ndarray:
    out = np.empty(arr.shape[0] + 1, dtype=arr.dtype)
    out[:pos] = arr[:pos]
    out[pos] = value
    out[pos + 1:] = arr[pos:]
    return out


def _delete_at(arr: np.ndarray, pos: int) -> np.ndarray:
    out = np.empty(arr.shape[0] - 1, dtype=arr.dtype)
    out[:pos] = arr[:pos]
    out[pos:] = arr[pos + 1:]
    return out


def _set_at(arr: np.ndarray, pos: int, value) -> np.ndarray:
    out = arr.copy()
    out[pos] = value
    return out


def _append_row(arr: np.ndarray, row: Tuple[float, float]) -> np.ndarray:
    out = np.empty((arr.shape[0] + 1, 2), dtype=arr.dtype)
    out[:-1] = arr
    out[-1, 0] = row[0]
    out[-1, 1] = row[1]
    return out


def _delete_row(arr: np.ndarray, pos: int) -> np.ndarray:
    out = np.empty((arr.shape[0] - 1, 2), dtype=arr.dtype)
    out[:pos] = arr[:pos]
    out[pos:] = arr[pos + 1:]
    return out


def _token_parts(arr: np.ndarray) -> Tuple[float, float]:
    """One array's ``(sum, position-weighted sum)`` staleness-token pair.

    Mirrors ``repro.model.instance._compile_token`` exactly so cached
    per-array pairs assemble into a bitwise-equal token tuple.
    """
    a = np.asarray(arr, dtype=np.float64).ravel()
    s = float(a.sum())
    d = (
        float(np.dot(a, np.arange(1, a.size + 1, dtype=np.float64)))
        if a.size
        else 0.0
    )
    return (s, d)


def _check_positive(field: str, value: float) -> float:
    value = float(value)
    if not np.isfinite(value):
        raise InvalidInstanceError(field, f"must be finite (event value is {value})")
    if value <= 0:
        raise InvalidInstanceError(field, f"must be positive (event value is {value})")
    return value


class _SortPatch:
    """A patchable stable argsort: (order, sorted_thetas) kept in sync.

    The invariant after every patch is exactly
    ``order == np.argsort(thetas, kind="stable")`` and
    ``sorted_thetas == thetas[order]`` for the current ``thetas``.
    """

    __slots__ = ("order", "sorted_thetas")

    def __init__(self, order: np.ndarray, sorted_thetas: np.ndarray):
        self.order = order
        self.sorted_thetas = sorted_thetas

    def insert(self, theta: float, original_index: int) -> None:
        """Insert the appended customer (largest original index).

        Right-bisect: a stable argsort orders equal angles by original
        index, and the new customer's index exceeds every existing one.
        """
        p = int(np.searchsorted(self.sorted_thetas, theta, side="right"))
        self.order = _insert_at(self.order, p, original_index)
        self.sorted_thetas = _insert_at(self.sorted_thetas, p, theta)

    def remove(self, theta: float, original_index: int) -> None:
        """Remove customer ``original_index`` and shift later indices down.

        Left-bisect finds the first equal angle; the tie run is scanned for
        the matching original index (stored angles are compared exactly, so
        the bisect lands on the run containing it).
        """
        p = int(np.searchsorted(self.sorted_thetas, theta, side="left"))
        while self.order[p] != original_index:
            p += 1
        order = _delete_at(self.order, p)
        order[order > original_index] -= 1
        self.order = order
        self.sorted_thetas = _delete_at(self.sorted_thetas, p)


def _materialize_sorted(patch: _SortPatch, thetas: np.ndarray) -> _SortedAngles:
    """Build a ``_SortedAngles`` shell from a patched sort (no re-argsort)."""
    n = int(thetas.shape[0])
    angles = _SortedAngles.__new__(_SortedAngles)
    angles.thetas = thetas
    angles.n = n
    angles.order = _frozen(patch.order)
    angles.sorted_thetas = _frozen(patch.sorted_thetas)
    rank = np.empty(n, dtype=np.intp)
    rank[angles.order] = np.arange(n)
    angles.rank_of_original = _frozen(rank)
    angles._sweeps = {}
    angles._lock = threading.Lock()
    # Re-adopt as writable working copies for the next patch generation.
    patch.order = angles.order
    patch.sorted_thetas = angles.sorted_thetas
    return angles


# ----------------------------------------------------------------------
# The delta view
# ----------------------------------------------------------------------
class DeltaCompiledInstance:
    """An instance plus its compiled view, updated by events in place.

    Construction compiles the seed instance once (sector instances build
    every station view eagerly through the same per-station path a lazy
    ``station()`` call takes, so patched and fresh views are
    interchangeable).  :meth:`apply` then advances both the instance and
    the compiled view per event; :attr:`instance` / :attr:`compiled`
    always expose the current generation, with the compiled view already
    installed as the instance's ``compile()`` memo (matching token).

    Thread-safety: one delta view is single-writer — :meth:`apply` holds a
    lock, and readers must take a generation snapshot via
    :attr:`instance` before solving (the shard-sticky service tier gives
    each session one owning worker, see ``docs/ONLINE.md``).
    """

    def __init__(self, instance) -> None:
        if isinstance(instance, AngleInstance):
            self.kind = "angle"
        elif isinstance(instance, SectorInstance):
            self.kind = "sector"
        else:
            raise TypeError(
                f"cannot delta-compile {type(instance).__name__}: "
                "expected an AngleInstance or SectorInstance"
            )
        self._instance = instance
        self._compiled = instance.compile()
        self._lock = threading.Lock()
        self._windows: Dict[object, Tuple[float, float]] = {}
        self._events_applied = 0
        # The paper's objective has profit == demand; when the arrays are
        # bitwise equal the demand-sorted prefix sums and token reductions
        # serve for both, halving the per-event rebuild cost.  Conservative:
        # once an event breaks equality the flag never returns.
        self._profits_shared = bool(
            np.array_equal(instance.demands, instance.profits)
        )
        geom = instance.thetas if self.kind == "angle" else instance.positions
        self._tok = {
            "geom": _token_parts(geom),
            "demands": _token_parts(instance.demands),
            "profits": _token_parts(instance.profits),
        }
        if self.kind == "angle":
            self._sort = _SortPatch(self._compiled.order, self._compiled.sorted_thetas)
        else:
            # Build every station view now so each has arrays to patch.
            for s in range(len(instance.stations)):
                self._compiled.station(s)
            self._station_sorts = {
                s: _SortPatch(view._angles.order, view._angles.sorted_thetas)
                for s, view in self._compiled._stations.items()
            }
            # Materialize constraint masks up front (memoized None for
            # unconstrained instances) so every generation has arrays to
            # column-patch instead of recomposing per event.
            self._cmask_active = self._compiled.constraint_masks() is not None

    # -- read side ------------------------------------------------------
    @property
    def instance(self):
        """The current-generation instance (immutable, compile()-memoized)."""
        return self._instance

    @property
    def compiled(self):
        """The current-generation compiled view (``instance.compile()``)."""
        return self._compiled

    @property
    def n(self) -> int:
        """Current number of customers."""
        return int(self._instance.n)

    @property
    def events_applied(self) -> int:
        """Total events applied since construction."""
        return self._events_applied

    # -- write side -----------------------------------------------------
    def apply(self, events: Union[Event, Sequence[Event]]) -> dict:
        """Apply one event or a sequence, advancing the generation once.

        Returns ``{"applied", "invalidated", "retained", "n"}`` — the
        event count, the result-cache eviction split from per-sector
        invalidation, and the new customer count.  Timed under
        ``phase.delta``; counted under ``engine.online.*``.
        """
        if isinstance(events, (AddCustomer, RemoveCustomer, UpdateDemand)):
            events = [events]
        events = list(events)
        with self._lock, _DELTA_TIMER.time():
            touched: List[float] = []
            if self.kind == "angle":
                state = self._angle_state()
                for event in events:
                    self._apply_angle(state, event, touched)
                self._finalize_angle(state)
            else:
                state = self._sector_state()
                for event in events:
                    self._apply_sector(state, event, touched)
                self._finalize_sector(state)
            self._events_applied += len(events)
            _EVENTS.inc(len(events))
            _APPLIES.inc()
            invalidated, retained = self._invalidate(touched)
        return {
            "applied": len(events),
            "invalidated": invalidated,
            "retained": retained,
            "n": self.n,
        }

    # -- angle kind -----------------------------------------------------
    def _angle_state(self) -> dict:
        inst = self._instance
        return {
            "thetas": inst.thetas,
            "demands": inst.demands,
            "profits": inst.profits,
            "dirty_thetas": False,
            "dirty_demands": False,
            "dirty_profits": False,
            "resorted": False,
        }

    def _apply_angle(self, state: dict, event: Event, touched: List[float]) -> None:
        if isinstance(event, AddCustomer):
            if event.theta is None:
                raise InvalidInstanceError(
                    "thetas", "angle-instance add_customer event requires 'theta'"
                )
            raw = float(event.theta)
            if not np.isfinite(raw):
                raise InvalidInstanceError(
                    "thetas", f"must be finite (event value is {raw})"
                )
            # One-element vectorized normalize: bit-identical to what a
            # fresh __post_init__ would compute for this entry, and
            # idempotent on the already-normalized stored values.
            theta = float(normalize_angles(np.array([raw]))[0])
            demand = _check_positive("demands", event.demand)
            profit = (
                demand if event.profit is None
                else _check_positive("profits", event.profit)
            )
            if profit != demand:
                self._profits_shared = False
            n = state["thetas"].shape[0]
            self._sort.insert(theta, n)
            state["thetas"] = _insert_at(state["thetas"], n, theta)
            state["demands"] = _insert_at(state["demands"], n, demand)
            state["profits"] = _insert_at(state["profits"], n, profit)
            state["dirty_thetas"] = state["dirty_demands"] = True
            state["dirty_profits"] = state["resorted"] = True
            touched.append(theta)
        elif isinstance(event, RemoveCustomer):
            i = self._check_index(event.index, state["thetas"].shape[0])
            theta = float(state["thetas"][i])
            self._sort.remove(theta, i)
            state["thetas"] = _delete_at(state["thetas"], i)
            state["demands"] = _delete_at(state["demands"], i)
            state["profits"] = _delete_at(state["profits"], i)
            state["dirty_thetas"] = state["dirty_demands"] = True
            state["dirty_profits"] = state["resorted"] = True
            touched.append(theta)
        else:
            i = self._check_index(event.index, state["thetas"].shape[0])
            self._apply_update(state, event, i)
            touched.append(float(state["thetas"][i]))

    @staticmethod
    def _check_index(index: int, n: int) -> int:
        i = int(index)
        if not 0 <= i < n:
            raise InvalidInstanceError(
                "index", f"event index {i} out of range for n={n}"
            )
        return i

    def _apply_update(self, state: dict, event: UpdateDemand, i: int) -> None:
        if event.demand is None and event.profit is None:
            raise InvalidInstanceError(
                "demands", "update_demand event changed neither demand nor profit"
            )
        if not (
            event.demand is not None
            and event.profit is not None
            and float(event.demand) == float(event.profit)
        ):
            self._profits_shared = False
        if event.demand is not None:
            state["demands"] = _set_at(
                state["demands"], i, _check_positive("demands", event.demand)
            )
            state["dirty_demands"] = True
        if event.profit is not None:
            state["profits"] = _set_at(
                state["profits"], i, _check_positive("profits", event.profit)
            )
            state["dirty_profits"] = True

    def _finalize_angle(self, state: dict) -> None:
        old = self._compiled
        thetas = (
            _frozen(state["thetas"]) if state["dirty_thetas"]
            else self._instance.thetas
        )
        demands = (
            _frozen(state["demands"]) if state["dirty_demands"]
            else self._instance.demands
        )
        if self._profits_shared:
            # profits is bitwise equal to demands: share the array object
            # (fingerprint/equality hash content, not identity).
            profits = demands
        elif state["dirty_profits"]:
            profits = _frozen(state["profits"])
        else:
            profits = self._instance.profits
        inst = AngleInstance.__new__(AngleInstance)
        object.__setattr__(inst, "thetas", thetas)
        object.__setattr__(inst, "demands", demands)
        object.__setattr__(inst, "profits", profits)
        object.__setattr__(inst, "antennas", self._instance.antennas)
        view = CompiledAngleInstance.__new__(CompiledAngleInstance)
        view.instance = inst
        view.n = int(thetas.shape[0])
        if state["resorted"]:
            view._angles = _materialize_sorted(self._sort, thetas)
        else:
            view._angles = old._angles
        view.order = view._angles.order
        view.sorted_thetas = view._angles.sorted_thetas
        view.rank_of_original = view._angles.rank_of_original
        # Prefix sums cannot be float-patched (summation order): rebuild
        # dirty ones with the exact _doubled_prefix operations.
        if state["resorted"] or state["dirty_demands"]:
            view.demand_prefix = _doubled_prefix(demands[view.order])
        else:
            view.demand_prefix = old.demand_prefix
        if self._profits_shared:
            # Equal arrays -> the same _doubled_prefix ops yield the same
            # bits; one cumsum pass serves both prefixes.
            view.profit_prefix = view.demand_prefix
        elif state["resorted"] or state["dirty_profits"]:
            view.profit_prefix = _doubled_prefix(profits[view.order])
        else:
            view.profit_prefix = old.profit_prefix
        view._grids = {}
        view._lock = threading.Lock()
        token = self._refresh_token(state, "dirty_thetas", thetas, demands, profits)
        object.__setattr__(inst, "_compiled", view)
        object.__setattr__(inst, "_compile_token", token)
        self._instance = inst
        self._compiled = view

    def _refresh_token(
        self,
        state: dict,
        geom_key: str,
        geom: np.ndarray,
        demands: np.ndarray,
        profits: np.ndarray,
    ) -> tuple:
        """Assemble the staleness token, recomputing only dirty arrays.

        Per-array ``(sum, dot)`` pairs are cached across generations;
        concatenating them reproduces ``_compile_token(geom, demands,
        profits)`` bitwise because each pair is computed by the identical
        expression over the identical array content.
        """
        if state[geom_key]:
            self._tok["geom"] = _token_parts(geom)
        if state["dirty_demands"]:
            self._tok["demands"] = _token_parts(demands)
        if self._profits_shared:
            self._tok["profits"] = self._tok["demands"]
        elif state["dirty_profits"]:
            self._tok["profits"] = _token_parts(profits)
        return self._tok["geom"] + self._tok["demands"] + self._tok["profits"]

    # -- sector kind ----------------------------------------------------
    def _sector_state(self) -> dict:
        inst = self._instance
        return {
            "positions": inst.positions,
            "demands": inst.demands,
            "profits": inst.profits,
            # Per-station (thetas, rs) working arrays; populated lazily on
            # the first geometry event, None means "unchanged".
            "station_polar": {},
            # Per-station constraint-mask working arrays (same protocol).
            "cmask": {},
            "dirty_positions": False,
            "dirty_demands": False,
            "dirty_profits": False,
        }

    def _station_arrays(self, state: dict, s: int) -> Tuple[np.ndarray, np.ndarray]:
        pair = state["station_polar"].get(s)
        if pair is None:
            view = self._compiled._stations[s]
            pair = (view.thetas, view.rs)
        return pair

    def _cmask_array(self, state: dict, s: int) -> np.ndarray:
        cm = state["cmask"].get(s)
        if cm is None:
            cm = self._compiled._constraint_masks[s]
        return cm

    def _apply_sector(self, state: dict, event: Event, touched: List[float]) -> None:
        if isinstance(event, AddCustomer):
            if event.position is None:
                raise InvalidInstanceError(
                    "positions",
                    "sector-instance add_customer event requires 'position'",
                )
            x, y = float(event.position[0]), float(event.position[1])
            if not (np.isfinite(x) and np.isfinite(y)):
                raise InvalidInstanceError(
                    "positions", f"must be finite (event value is {(x, y)})"
                )
            demand = _check_positive("demands", event.demand)
            profit = (
                demand if event.profit is None
                else _check_positive("profits", event.profit)
            )
            if profit != demand:
                self._profits_shared = False
            n = state["positions"].shape[0]
            point = np.array([[x, y]], dtype=np.float64)
            rs_new: List[float] = []
            for s, st in enumerate(self._instance.stations):
                # Single-row conversion: relative_polar is elementwise, so
                # row i of a batch equals the same row converted alone.
                th_row, r_row = relative_polar(point, np.asarray(st.position))
                theta_s, r_s = float(th_row[0]), float(r_row[0])
                thetas, rs = self._station_arrays(state, s)
                state["station_polar"][s] = (
                    _insert_at(thetas, n, theta_s),
                    _insert_at(rs, n, r_s),
                )
                self._station_sorts[s].insert(theta_s, n)
                rs_new.append(r_s)
            if self._cmask_active:
                # Per-customer independence (module doc): the new column
                # composed alone equals its slice of a full recomposition.
                from repro.model.constraints import effective_column

                col = effective_column(
                    self._instance.constraints,
                    [st.position for st in self._instance.stations],
                    (x, y),
                    rs_new,
                    [st.max_radius for st in self._instance.stations],
                )
                for s in range(len(self._instance.stations)):
                    state["cmask"][s] = _insert_at(
                        self._cmask_array(state, s), n, bool(col[s])
                    )
            state["positions"] = _append_row(state["positions"], (x, y))
            state["demands"] = _insert_at(state["demands"], n, demand)
            state["profits"] = _insert_at(state["profits"], n, profit)
            state["dirty_positions"] = state["dirty_demands"] = True
            state["dirty_profits"] = True
            touched.append(self._origin_angle(x, y))
        elif isinstance(event, RemoveCustomer):
            i = self._check_index(event.index, state["positions"].shape[0])
            x, y = (
                float(state["positions"][i, 0]),
                float(state["positions"][i, 1]),
            )
            for s in range(len(self._instance.stations)):
                thetas, rs = self._station_arrays(state, s)
                self._station_sorts[s].remove(float(thetas[i]), i)
                state["station_polar"][s] = (
                    _delete_at(thetas, i),
                    _delete_at(rs, i),
                )
                if self._cmask_active:
                    state["cmask"][s] = _delete_at(self._cmask_array(state, s), i)
            state["positions"] = _delete_row(state["positions"], i)
            state["demands"] = _delete_at(state["demands"], i)
            state["profits"] = _delete_at(state["profits"], i)
            state["dirty_positions"] = state["dirty_demands"] = True
            state["dirty_profits"] = True
            touched.append(self._origin_angle(x, y))
        else:
            i = self._check_index(event.index, state["positions"].shape[0])
            self._apply_update(state, event, i)
            touched.append(
                self._origin_angle(
                    float(state["positions"][i, 0]),
                    float(state["positions"][i, 1]),
                )
            )

    @staticmethod
    def _origin_angle(x: float, y: float) -> float:
        """Polar angle of a position about the global origin (sector tags)."""
        thetas, _ = cartesians_to_polar(np.array([[x, y]], dtype=np.float64))
        return float(thetas[0])

    def _finalize_sector(self, state: dict) -> None:
        old = self._compiled
        positions = (
            _frozen(state["positions"]) if state["dirty_positions"]
            else self._instance.positions
        )
        demands = (
            _frozen(state["demands"]) if state["dirty_demands"]
            else self._instance.demands
        )
        if self._profits_shared:
            profits = demands
        elif state["dirty_profits"]:
            profits = _frozen(state["profits"])
        else:
            profits = self._instance.profits
        inst = SectorInstance.__new__(SectorInstance)
        object.__setattr__(inst, "positions", positions)
        object.__setattr__(inst, "demands", demands)
        object.__setattr__(inst, "profits", profits)
        object.__setattr__(inst, "stations", self._instance.stations)
        # __new__ bypasses dataclass defaults: the constraints tuple must
        # carry over explicitly or equality/serialization/fingerprint break.
        object.__setattr__(inst, "constraints", self._instance.constraints)
        view = CompiledSectorInstance.__new__(CompiledSectorInstance)
        view.instance = inst
        view.n = int(positions.shape[0])
        stations: Dict[int, CompiledStation] = {}
        for s, old_station in old._stations.items():
            pair = state["station_polar"].get(s)
            if pair is None:
                # Geometry untouched: the whole station view (arrays, sort,
                # memoized masks and sweeps) carries over by reference.
                stations[s] = old_station
                continue
            thetas = _frozen(pair[0])
            rs = _frozen(pair[1])
            st = CompiledStation.__new__(CompiledStation)
            st.station_id = old_station.station_id
            st.thetas = thetas
            st.rs = rs
            st._angles = _materialize_sorted(self._station_sorts[s], thetas)
            # Patch only the radius keys already materialized; others build
            # on demand from the new rs exactly as in a fresh view.
            st._masks = {
                key: _frozen(rs <= key * _RADIUS_SLACK)
                for key in old_station._masks
            }
            st._lock = threading.Lock()
            stations[s] = st
        view._stations = stations
        view._eligibility = None
        if self._cmask_active:
            old_cm = old._constraint_masks
            view._constraint_masks = [
                _frozen(state["cmask"][s]) if s in state["cmask"] else old_cm[s]
                for s in range(len(stations))
            ]
        else:
            # Equivalent to the memoized all-pass composition a fresh
            # compile of an unconstrained instance would cache.
            view._constraint_masks = None
        view._lock = threading.Lock()
        token = self._refresh_token(
            state, "dirty_positions", positions, demands, profits
        )
        object.__setattr__(inst, "_compiled", view)
        object.__setattr__(inst, "_compile_token", token)
        self._instance = inst
        self._compiled = view

    # -- per-sector cache invalidation ---------------------------------
    def register_window(self, key, start: float, width: float) -> None:
        """Tag a result-cache key with the angular window it covers.

        ``key`` is an engine result-cache key (``engine.cache.result_key``
        output, or any hashable); ``[start, start + width]`` is the closed
        arc — angles about the global origin for sector instances — whose
        customers the cached result depends on.  A later event touching an
        angle inside the arc evicts the key (``engine.online.invalidated``);
        events elsewhere leave it warm (``engine.online.retained``).
        """
        self._windows[key] = (float(start), float(width))

    def registered_windows(self) -> Dict[object, Tuple[float, float]]:
        """Snapshot of currently registered ``key -> (start, width)`` tags."""
        return dict(self._windows)

    def _invalidate(self, touched: List[float]) -> Tuple[int, int]:
        from repro.engine.cache import RESULT_CACHE

        if not self._windows:
            return 0, 0
        invalidated = retained = 0
        for key, (start, width) in list(self._windows.items()):
            hit = any(
                ccw_delta(start, theta) <= width + _EPS_WRAP for theta in touched
            )
            if hit:
                RESULT_CACHE.evict(key)
                del self._windows[key]
                invalidated += 1
            else:
                retained += 1
        _INVALIDATED.inc(invalidated)
        _RETAINED.inc(retained)
        return invalidated, retained

    # -- engine integration --------------------------------------------
    def publish(self) -> str:
        """Seed the engine compile cache with the current view.

        ``shared_compiled`` builds fresh on a miss; publishing after every
        apply means engine solves of the current generation hit the patched
        view instead of recompiling.  Returns the content fingerprint.
        """
        from repro.engine.cache import COMPILE_CACHE, fingerprint

        fp = fingerprint(self._instance)
        COMPILE_CACHE.put(("compiled", fp), self._compiled)
        return fp

    # -- sector-window helpers -----------------------------------------
    def angles(self) -> np.ndarray:
        """Current customer angles for sectoring (origin-polar for 2-D)."""
        if self.kind == "angle":
            return self._instance.thetas
        thetas, _ = cartesians_to_polar(self._instance.positions)
        return thetas

    @staticmethod
    def sector_windows(num_sectors: int) -> List[Tuple[float, float]]:
        """The ``num_sectors`` equal ``(start, width)`` arcs tiling the circle."""
        if num_sectors < 1:
            raise ValueError("num_sectors must be >= 1")
        width = TWO_PI / num_sectors
        return [(s * width, width) for s in range(num_sectors)]

    @staticmethod
    def sector_of(theta: float, num_sectors: int) -> int:
        """Index of the equal sector containing a normalized angle."""
        if num_sectors < 1:
            raise ValueError("num_sectors must be >= 1")
        return min(int(float(theta) * num_sectors / TWO_PI), num_sectors - 1)

    def sector_members(self, sector: int, num_sectors: int) -> np.ndarray:
        """Strictly increasing customer indices whose angle falls in a sector."""
        thetas = self.angles()
        idx = np.minimum(
            (thetas * num_sectors / TWO_PI).astype(np.intp), num_sectors - 1
        )
        return np.flatnonzero(idx == int(sector))

    def sector_instance(self, sector: int, num_sectors: int):
        """Sub-instance over one sector's customers (``restrict`` semantics).

        Returns ``(sub_instance, original_indices)``.  Only defined for
        angle instances (sector instances partition by station reach via
        ``repro.engine.partition`` instead).
        """
        if self.kind != "angle":
            raise TypeError(
                "sector_instance() is for angle instances; use "
                "repro.engine.partition for 2-D decomposition"
            )
        return self._instance.restrict(self.sector_members(sector, num_sectors))
