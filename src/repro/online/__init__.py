"""Online variant: customers arrive one at a time, decisions are final.

The SPAA 2007 problem is offline; two online relaxations live here:

* :mod:`repro.online.admission` — fixed orientations, an arrival stream
  of customers, and irrevocable accept/assign-or-reject decisions;
* :mod:`repro.online.delta` — the dynamic-instance workload: arrivals,
  departures and demand drift applied as events to a
  :class:`~repro.online.delta.DeltaCompiledInstance` that patches the
  compiled struct-of-arrays views instead of recompiling, with
  per-sector result-cache invalidation (``docs/ONLINE.md``).
"""

from repro.online.admission import (
    AdmissionPolicy,
    OnlineAdmission,
    POLICIES,
    replay_offline_reference,
    work_conserving_bound,
)
from repro.online.delta import (
    AddCustomer,
    DeltaCompiledInstance,
    Event,
    RemoveCustomer,
    UpdateDemand,
    event_from_dict,
    event_to_dict,
)

__all__ = [
    "AdmissionPolicy",
    "OnlineAdmission",
    "POLICIES",
    "work_conserving_bound",
    "replay_offline_reference",
    "AddCustomer",
    "RemoveCustomer",
    "UpdateDemand",
    "Event",
    "DeltaCompiledInstance",
    "event_from_dict",
    "event_to_dict",
]
