"""Online variant: customers arrive one at a time, decisions are final.

The SPAA 2007 problem is offline; the natural online relaxation (an
operator admits subscribers as they sign up, with beams already oriented)
is implemented here: fixed orientations, an arrival stream of customers,
and irrevocable accept/assign-or-reject decisions.
"""

from repro.online.admission import (
    AdmissionPolicy,
    OnlineAdmission,
    POLICIES,
    replay_offline_reference,
    work_conserving_bound,
)

__all__ = [
    "AdmissionPolicy",
    "OnlineAdmission",
    "POLICIES",
    "work_conserving_bound",
    "replay_offline_reference",
]
