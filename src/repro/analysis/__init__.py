"""Measurement, certification, and reporting utilities."""

from repro.analysis.metrics import (
    RunRecord,
    approximation_ratio,
    geometric_mean,
    summarize,
    timed,
)
from repro.analysis.tables import format_table, format_markdown
from repro.analysis.stats import InstanceStats, best_window_share, circular_concentration, gini, instance_stats
from repro.analysis.viz import render_instance, render_loads, render_solution
from repro.analysis.robustness import (
    RobustnessPoint,
    evaluate_plan,
    replanning_gain,
    robustness_curve,
)
from repro.analysis.experiments import (
    SolverSpec,
    compare_solvers,
    ratio_study,
    report,
    specs_from_engine,
)

__all__ = [
    "RunRecord",
    "approximation_ratio",
    "geometric_mean",
    "summarize",
    "timed",
    "format_table",
    "format_markdown",
    "SolverSpec",
    "compare_solvers",
    "ratio_study",
    "report",
    "specs_from_engine",
    "InstanceStats",
    "instance_stats",
    "gini",
    "circular_concentration",
    "best_window_share",
    "render_instance",
    "render_solution",
    "render_loads",
    "RobustnessPoint",
    "evaluate_plan",
    "robustness_curve",
    "replanning_gain",
]
