"""Robustness evaluation: how does a frozen plan survive reality?

Workflow: a plan (orientations) is computed on a forecast instance; the
realized instance differs (noise, churn, temporal drift).  With steerable
antennas the operator can either keep the orientations and only re-run
*assignment*, or re-plan orientations from scratch.  These helpers
quantify both:

* :func:`evaluate_plan` -- value of a fixed-orientation plan on a realized
  instance (assignment re-optimized by the greedy fixed packer, which is
  what an admission controller actually does);
* :func:`robustness_curve` -- mean degradation across noise levels
  (experiment E13);
* :func:`replanning_gain` -- fixed plan vs per-period re-planning over a
  temporal series (experiment E14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.knapsack.api import KnapsackSolver
from repro.model.instance import AngleInstance
from repro.model.perturbation import perturb
from repro.packing.assignment import greedy_assignment_fixed


@dataclass(frozen=True)
class RobustnessPoint:
    """One (noise level, outcome) sample of a robustness study."""

    noise: float
    fixed_plan_value: float
    replanned_value: float

    @property
    def retention(self) -> float:
        """Fraction of the re-planned value the frozen plan retains."""
        if self.replanned_value <= 0:
            return 1.0
        return self.fixed_plan_value / self.replanned_value


def evaluate_plan(
    realized: AngleInstance,
    orientations: np.ndarray,
    oracle: KnapsackSolver,
) -> float:
    """Value of frozen orientations on the realized instance.

    Assignment is re-optimized (greedy fixed packer) — freezing a plan
    means freezing the *beams*, not the admission decisions.
    """
    sol = greedy_assignment_fixed(realized, orientations, oracle)
    sol.verify(realized)
    return sol.value(realized)


def robustness_curve(
    forecast: AngleInstance,
    planner: Callable[[AngleInstance], np.ndarray],
    oracle: KnapsackSolver,
    noise_levels: Sequence[float] = (0.0, 0.1, 0.25, 0.5),
    trials: int = 3,
    angle_noise: bool = False,
    seed: int = 0,
) -> List[RobustnessPoint]:
    """Degradation of a frozen plan as the realization drifts.

    ``planner`` maps an instance to orientations (e.g. greedy planner);
    for each noise level we draw ``trials`` realizations and compare the
    frozen plan against re-planning on each realization.  Means over
    trials per level.
    """
    base_orientations = planner(forecast)
    points: List[RobustnessPoint] = []
    for noise in noise_levels:
        fixed_vals, replanned_vals = [], []
        for t in range(trials):
            realized = perturb(
                forecast,
                demand_sigma=0.0 if angle_noise else noise,
                angle_sigma=noise if angle_noise else 0.0,
                seed=seed * 1000 + t * 17 + int(noise * 100),
            )
            fixed_vals.append(evaluate_plan(realized, base_orientations, oracle))
            re_orient = planner(realized)
            replanned_vals.append(evaluate_plan(realized, re_orient, oracle))
        points.append(
            RobustnessPoint(
                noise=float(noise),
                fixed_plan_value=float(np.mean(fixed_vals)),
                replanned_value=float(np.mean(replanned_vals)),
            )
        )
    return points


def replanning_gain(
    series: Sequence[AngleInstance],
    planner: Callable[[AngleInstance], np.ndarray],
    oracle: KnapsackSolver,
) -> dict:
    """Fixed plan vs per-period re-planning over a temporal series.

    The fixed plan is computed on the first period and frozen; the
    re-planner re-orients every period.  Returns totals and the relative
    gain — the measured value of antenna steerability on this series.
    """
    if not series:
        raise ValueError("need at least one period")
    frozen = planner(series[0])
    fixed_total = sum(evaluate_plan(inst, frozen, oracle) for inst in series)
    replanned_total = sum(
        evaluate_plan(inst, planner(inst), oracle) for inst in series
    )
    return {
        "fixed_total": float(fixed_total),
        "replanned_total": float(replanned_total),
        "relative_gain": (
            0.0
            if fixed_total <= 0
            else float((replanned_total - fixed_total) / fixed_total)
        ),
        "periods": len(series),
    }
