"""One-shot evaluation report: regenerate the EXPERIMENTS.md headline rows.

``repro-sectors report`` (or :func:`run_report`) runs a compact version of
every experiment E1–E12 and prints the same tables EXPERIMENTS.md records,
so a user can re-verify the claimed shapes on their machine in about a
minute.  The heavy per-experiment sweeps live in ``benchmarks/``; this
runner trades statistical depth for wall-clock friendliness.

Independent instance solves are fanned out through
:mod:`repro.parallel` when ``workers > 1``.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List

import numpy as np

from repro.analysis.metrics import geometric_mean
from repro.analysis.tables import format_table
from repro.geometry.angles import TWO_PI
from repro.knapsack import get_solver
from repro.model import generators as gen
from repro.model.antenna import AntennaSpec
from repro.model.instance import AngleInstance
from repro.packing.bounds import capacity_upper_bound
from repro.packing.covering import greedy_cover
from repro.packing.exact import (
    solve_exact_angle,
    solve_exact_fixed_orientations,
)
from repro.packing.flow import splittable_value
from repro.packing.insertion import solve_insertion
from repro.packing.multi import solve_greedy_multi, solve_non_overlapping_dp
from repro.packing.sectors import (
    solve_sector_greedy,
    solve_sector_independent,
    solve_sector_splittable,
)
from repro.packing.shifting import solve_shifting
from repro.packing.single import solve_single_antenna
from repro.online import (
    OnlineAdmission,
    POLICIES,
    replay_offline_reference,
    work_conserving_bound,
)

EXACT = get_solver("exact")
GREEDY = get_solver("greedy")
NEAR_EXACT = get_solver("fptas", eps=0.05)


def _println(out: List[str], text: str = "") -> None:
    out.append(text)


def _e1(out: List[str], seeds: int) -> None:
    fams = {
        "uniform": gen.uniform_angles,
        "clustered": gen.clustered_angles,
        "hotspot": gen.hotspot_angles,
    }
    rows = []
    for fam, fn in fams.items():
        insts = [fn(n=9, k=2, seed=s) for s in range(seeds)]
        opts = [solve_exact_angle(i).value(i) for i in insts]
        ratios = [
            solve_greedy_multi(i, EXACT).value(i) / o
            for i, o in zip(insts, opts)
        ]
        rows.append([fam, min(ratios), geometric_mean(ratios), 0.5])
    adv = [gen.adversarial_greedy_angles(blocks=3, seed=s) for s in range(seeds)]
    aopts = [solve_exact_angle(i).value(i) for i in adv]
    aratios = [
        solve_greedy_multi(i, GREEDY).value(i) / o for i, o in zip(adv, aopts)
    ]
    rows.append(["adversarial (greedy oracle)", min(aratios),
                 geometric_mean(aratios), 1.0 / 3.0])
    _println(out, format_table(
        ["family", "min ratio", "geo ratio", "proven bound"],
        rows, title="E1  approximation ratio vs exact optimum",
    ))


def _e2(out: List[str]) -> None:
    rows = []
    for n in (50, 100, 200):
        inst = gen.clustered_angles(n=n, k=3, seed=11)
        t0 = time.perf_counter()
        solve_greedy_multi(inst, GREEDY)
        tg = time.perf_counter() - t0
        t0 = time.perf_counter()
        solve_shifting(inst, GREEDY, t=8)
        ts = time.perf_counter() - t0
        t0 = time.perf_counter()
        solve_insertion(inst, GREEDY)
        ti = time.perf_counter() - t0
        rows.append([n, tg * 1e3, ts * 1e3, ti * 1e3])
    _println(out, format_table(
        ["n", "greedy (ms)", "shifting (ms)", "insertion (ms)"],
        rows, float_fmt=".1f", title="E2  runtime scaling",
    ))


def _e3_e4(out: List[str]) -> None:
    rows = []
    for rho in (math.pi / 6, math.pi / 2, math.pi):
        inst = gen.clustered_angles(
            n=80, k=3, rho=rho, clusters=5, capacity_fraction=0.2, seed=21
        )
        v = solve_greedy_multi(inst, NEAR_EXACT, adaptive=True).value(inst)
        d = solve_non_overlapping_dp(inst, GREEDY).value(inst)
        rows.append([f"{rho:.2f}", v, d, capacity_upper_bound(inst)])
    _println(out, format_table(
        ["rho", "greedy", "disjoint DP", "capacity UB"],
        rows, title="E3  beam width sweep",
    ))
    rows = []
    for cf in (0.05, 0.2, 0.5):
        inst = gen.uniform_angles(n=70, k=3, capacity_fraction=cf, seed=33)
        v = solve_greedy_multi(inst, NEAR_EXACT, adaptive=True).value(inst)
        rows.append([cf, v / inst.total_demand])
    _println(out)
    _println(out, format_table(
        ["capacity fraction", "served fraction"],
        rows, title="E4  capacity tightness",
    ))


def _e5(out: List[str], seeds: int) -> None:
    rows = []
    for seed in range(seeds):
        inst = gen.hotspot_angles(n=10, k=2, seed=seed)
        free = solve_exact_angle(inst).value(inst)
        disj = solve_exact_angle(inst, require_disjoint=True).value(inst)
        rows.append([seed, free, disj, disj / free])
    _println(out, format_table(
        ["seed", "overlap OPT", "disjoint OPT", "ratio"],
        rows, title="E5  price of non-overlap (hotspot family)",
    ))


def _e6(out: List[str]) -> None:
    rows = []
    for scale in (1.0, 0.25):
        gaps = []
        for s in range(3):
            rng = np.random.default_rng(s)
            inst = AngleInstance(
                thetas=rng.uniform(0, TWO_PI, 12),
                demands=rng.uniform(0.5, 1.5, 12) * scale,
                antennas=(
                    AntennaSpec(rho=2.0, capacity=3.0),
                    AntennaSpec(rho=2.0, capacity=3.0),
                ),
            )
            ori = np.array([0.0, 2.5])
            sp = splittable_value(inst, ori)
            it = solve_exact_fixed_orientations(inst, ori).value(inst)
            gaps.append(0.0 if sp <= 0 else (sp - it) / sp)
        rows.append([scale, float(np.mean(gaps)), float(max(gaps))])
    _println(out, format_table(
        ["demand scale", "mean gap", "max gap"],
        rows, title="E6  splittable vs unsplittable",
    ))


def _e7(out: List[str]) -> None:
    inst = gen.subset_sum_angles(n=40, k=1, rho=2.0, seed=5)
    opt = solve_single_antenna(inst, EXACT).value(inst)
    rows = []
    for eps in (0.5, 0.1):
        v = solve_single_antenna(inst, get_solver("fptas", eps=eps)).value(inst)
        rows.append([eps, v / opt, 1 - eps])
    _println(out, format_table(
        ["eps", "measured ratio", "guarantee"],
        rows, title="E7  FPTAS trade-off",
    ))


def _e9(out: List[str], seeds: int) -> None:
    rows = []
    for seed in range(seeds):
        inst = gen.grid_city(n=100, grid=2, capacity_fraction=0.05, seed=seed)
        g = solve_sector_greedy(inst, NEAR_EXACT)
        b = solve_sector_independent(inst, NEAR_EXACT).value(inst)
        _, ub = solve_sector_splittable(inst, g.orientations)
        rows.append([seed, g.value(inst), b, ub])
    _println(out, format_table(
        ["seed", "global greedy", "baseline", "splittable UB"],
        rows, title="E9  2-D sector pipeline (2x2 grid)",
    ))


def _e10(out: List[str]) -> None:
    inst = gen.clustered_angles(n=40, k=3, capacity_fraction=0.15, seed=0)
    ref = solve_non_overlapping_dp(inst, EXACT).value(inst)
    rows = []
    for t in (2, 8, 32):
        v = solve_shifting(inst, EXACT, t=t).value(inst)
        rows.append([t, v, (ref - v) / ref])
    ins = solve_insertion(inst, EXACT).value(inst)
    rows.append(["insertion", ins, (ref - ins) / ref])
    _println(out, format_table(
        ["t / heuristic", "value", "loss vs DP"],
        rows, title=f"E10/A4  disjoint heuristics (DP ref {ref:.3f})",
    ))


def _e11(out: List[str], seeds: int) -> None:
    rows = []
    for seed in range(seeds):
        inst = gen.clustered_angles(n=40, k=1, capacity_fraction=0.15, seed=seed)
        res = greedy_cover(inst.thetas, inst.demands, inst.antennas[0], GREEDY)
        rows.append([seed, res.antennas_used, res.lower_bound, res.gap()])
    _println(out, format_table(
        ["seed", "antennas used", "lower bound", "gap"],
        rows, title="E11  dual covering",
    ))


def _e12(out: List[str]) -> None:
    ants = [AntennaSpec(rho=2.2, capacity=4.0) for _ in range(3)]
    oris = [0.0, 2.1, 4.2]
    rows = []
    for lo, hi in ((0.8, 2.0), (0.1, 0.3)):
        per_policy = {}
        floor = 0.0
        for name in sorted(POLICIES):
            vals = []
            for s in range(3):
                rng = np.random.default_rng(s)
                th = rng.uniform(0, TWO_PI, 50)
                d = rng.uniform(lo, hi, 50)
                floor = work_conserving_bound(ants, d)
                sim = OnlineAdmission(ants, oris, policy=name)
                on = sim.run(th, d)
                off = replay_offline_reference(ants, oris, th, d)
                vals.append(on / off if off > 0 else 1.0)
            per_policy[name] = float(np.mean(vals))
        rows.append(
            [f"U({lo},{hi})", floor]
            + [per_policy[n] for n in sorted(POLICIES)]
        )
    _println(out, format_table(
        ["demands", "floor"] + sorted(POLICIES),
        rows, title="E12  online admission",
    ))


def run_report(seeds: int = 3, quick: bool = False) -> str:
    """Run the compact evaluation and return the report text.

    ``quick=True`` limits to the fast experiments (skips E1/E5 exact
    solves), for smoke checks.
    """
    out: List[str] = []
    start = time.perf_counter()
    _println(out, "packing-to-angles-and-sectors: evaluation report")
    _println(out, "=" * 50)
    _println(out)
    if not quick:
        _e1(out, seeds)
        _println(out)
    _e2(out)
    _println(out)
    _e3_e4(out)
    _println(out)
    if not quick:
        _e5(out, seeds)
        _println(out)
    _e6(out)
    _println(out)
    _e7(out)
    _println(out)
    _e9(out, min(seeds, 2))
    _println(out)
    _e10(out)
    _println(out)
    _e11(out, seeds)
    _println(out)
    _e12(out)
    _println(out)
    _println(out, f"report generated in {time.perf_counter() - start:.1f}s")
    return "\n".join(out)
