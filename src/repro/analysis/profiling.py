"""Profiling helpers: measure before optimizing (the HPC guide's rule #1).

Thin wrappers over :mod:`cProfile` that return structured rows instead of
dumping text, so experiment scripts can assert on where time goes (e.g.
"the sweep dominates, not the verifier") and print tidy tables via
:mod:`repro.analysis.tables`.
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass
from io import StringIO
from typing import Callable, List, Tuple


@dataclass(frozen=True)
class ProfileRow:
    """One function's aggregate from a profile run."""

    function: str
    calls: int
    total_time: float      # time inside the function itself
    cumulative_time: float  # including callees


def profile_call(
    fn: Callable, *args, top: int = 15, **kwargs
) -> Tuple[object, List[ProfileRow]]:
    """Run ``fn(*args, **kwargs)`` under cProfile.

    Returns ``(result, rows)`` with the ``top`` rows by cumulative time.
    """
    prof = cProfile.Profile()
    prof.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        prof.disable()
    stats = pstats.Stats(prof, stream=StringIO())
    stats.sort_stats("cumulative")
    rows: List[ProfileRow] = []
    for func, (cc, nc, tt, ct, callers) in stats.stats.items():  # type: ignore[attr-defined]
        filename, lineno, name = func
        # keep the last two path components so module filters (e.g.
        # "repro") still match after shortening
        short = "/".join(filename.rsplit("/", 3)[-3:])
        label = f"{short}:{lineno}({name})"
        rows.append(
            ProfileRow(
                function=label,
                calls=int(nc),
                total_time=float(tt),
                cumulative_time=float(ct),
            )
        )
    rows.sort(key=lambda r: -r.cumulative_time)
    return result, rows[:top]


def hotspots(rows: List[ProfileRow], module_filter: str = "repro") -> List[ProfileRow]:
    """Keep only rows whose function lives in the given module path part."""
    return [r for r in rows if module_filter in r.function]


def format_profile(rows: List[ProfileRow]) -> str:
    """Render profile rows as an ASCII table."""
    from repro.analysis.tables import format_table

    return format_table(
        ["function", "calls", "tottime (s)", "cumtime (s)"],
        [[r.function, r.calls, r.total_time, r.cumulative_time] for r in rows],
    )
