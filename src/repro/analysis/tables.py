"""Plain-text and Markdown table rendering for experiment reports.

No plotting libraries are available offline, so every "figure" in the
benchmark harness is rendered as a table of its series — the same numbers
a plot would show, machine-diffable.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def _fmt(x: Any, float_fmt: str) -> str:
    if isinstance(x, bool):
        return str(x)
    if isinstance(x, float):
        return format(x, float_fmt)
    return str(x)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    float_fmt: str = ".4f",
    title: Optional[str] = None,
) -> str:
    """Fixed-width ASCII table.

    >>> print(format_table(["a", "b"], [[1, 2.0]], float_fmt=".1f"))
    a  b
    -  ---
    1  2.0
    """
    cells = [[_fmt(x, float_fmt) for x in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_markdown(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    float_fmt: str = ".4f",
) -> str:
    """GitHub-flavoured Markdown table (used by EXPERIMENTS.md updates)."""
    cells = [[_fmt(x, float_fmt) for x in row] for row in rows]
    out = ["| " + " | ".join(str(h) for h in headers) + " |"]
    out.append("|" + "|".join("---" for _ in headers) + "|")
    for r in cells:
        out.append("| " + " | ".join(r) + " |")
    return "\n".join(out)
