"""Metrics: timing, approximation ratios, summary statistics."""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional


@dataclass
class RunRecord:
    """One (solver, instance) measurement."""

    solver: str
    family: str
    value: float
    seconds: float
    reference: Optional[float] = None  # OPT or an upper bound

    @property
    def ratio(self) -> Optional[float]:
        """``value / reference``; ``None`` when no reference is known.

        Against an exact reference this is the true approximation ratio;
        against an upper bound it is a *lower bound* on the true ratio.
        A zero reference with zero value counts as a perfect 1.0.
        """
        if self.reference is None:
            return None
        if self.reference <= 0:
            return 1.0 if self.value <= 0 else math.inf
        return self.value / self.reference


def approximation_ratio(value: float, reference: float) -> float:
    """``value / reference`` with the zero-optimum convention of RunRecord."""
    if reference <= 0:
        return 1.0 if value <= 0 else math.inf
    return value / reference


def geometric_mean(xs: Iterable[float]) -> float:
    """Geometric mean (the right average for ratios); 0/negatives rejected."""
    xs = list(xs)
    if not xs:
        raise ValueError("geometric mean of empty sequence")
    if any(x <= 0 for x in xs):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


@contextmanager
def timed():
    """Context manager yielding a dict that receives ``seconds`` on exit.

    >>> with timed() as t:
    ...     _ = sum(range(1000))
    >>> t["seconds"] >= 0
    True
    """
    box: Dict[str, float] = {}
    start = time.perf_counter()
    try:
        yield box
    finally:
        box["seconds"] = time.perf_counter() - start


def summarize(records: List[RunRecord]) -> Dict[str, Dict[str, float]]:
    """Aggregate records per solver: mean value/time, min & geo-mean ratio."""
    by_solver: Dict[str, List[RunRecord]] = {}
    for r in records:
        by_solver.setdefault(r.solver, []).append(r)
    out: Dict[str, Dict[str, float]] = {}
    for solver, rs in by_solver.items():
        ratios = [r.ratio for r in rs if r.ratio is not None and math.isfinite(r.ratio)]
        entry = {
            "runs": float(len(rs)),
            "mean_value": sum(r.value for r in rs) / len(rs),
            "mean_seconds": sum(r.seconds for r in rs) / len(rs),
        }
        if ratios:
            entry["min_ratio"] = min(ratios)
            entry["geo_mean_ratio"] = geometric_mean([max(r, 1e-12) for r in ratios])
        out[solver] = entry
    return out
