"""Instance statistics: how hard is this instance, and why?

Used by the experiment reports to characterise generated families and by
users to understand their own data before choosing a solver:

* **demand statistics** — Gini coefficient (are a few whales dominating?),
  max-demand-to-capacity ratio (drives the integrality gap, E6, and the
  online competitive floor, E12);
* **angular statistics** — circular concentration (mean resultant length),
  best-window demand share (is there one hotspot an arc can swallow?);
* **tightness** — total demand over total capacity (the knob of E4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.geometry.angles import TWO_PI
from repro.geometry.sweep import CircularSweep
from repro.model.instance import AngleInstance


def gini(values: np.ndarray) -> float:
    """Gini coefficient in ``[0, 1)``; 0 = perfectly equal demands.

    Standard mean-absolute-difference form; requires positive values.
    """
    v = np.sort(np.asarray(values, dtype=np.float64))
    n = v.size
    if n == 0:
        raise ValueError("gini of empty array")
    if (v <= 0).any():
        raise ValueError("gini requires positive values")
    cum = np.cumsum(v)
    # G = (2 * sum_i i*v_i) / (n * sum v) - (n + 1) / n  with i starting at 1
    i = np.arange(1, n + 1)
    return float((2.0 * (i * v).sum()) / (n * cum[-1]) - (n + 1.0) / n)


def circular_concentration(thetas: np.ndarray) -> float:
    """Mean resultant length R in ``[0, 1]``: 0 = uniform, 1 = one point.

    The standard first trigonometric moment of directional statistics.
    """
    t = np.asarray(thetas, dtype=np.float64)
    if t.size == 0:
        return 0.0
    return float(np.hypot(np.cos(t).mean(), np.sin(t).mean()))


def best_window_share(instance: AngleInstance, rho: float | None = None) -> float:
    """Largest fraction of total demand reachable by one width-``rho`` arc.

    Defaults to the first antenna's width.  1.0 means a single beam can
    see everything (geometry never binds); small values mean demand is
    spread and orientation choice matters.
    """
    if instance.n == 0:
        return 0.0
    if rho is None:
        rho = instance.antennas[0].rho
    sweep = CircularSweep(instance.thetas, rho)
    sums = sweep.window_sums(instance.demands)
    return float(sums.max() / instance.total_demand)


@dataclass(frozen=True)
class InstanceStats:
    """Summary statistics of a 1-D instance."""

    n: int
    k: int
    tightness: float            # total demand / total capacity
    demand_gini: float
    max_demand_ratio: float     # d_max / c_min (the delta of E6/E12)
    concentration: float        # circular mean resultant length
    hotspot_share: float        # best single-window demand fraction

    def as_dict(self) -> Dict[str, float]:
        return {
            "n": float(self.n),
            "k": float(self.k),
            "tightness": self.tightness,
            "demand_gini": self.demand_gini,
            "max_demand_ratio": self.max_demand_ratio,
            "concentration": self.concentration,
            "hotspot_share": self.hotspot_share,
        }


def instance_stats(instance: AngleInstance) -> InstanceStats:
    """Compute :class:`InstanceStats` for an angle instance."""
    if instance.n == 0:
        return InstanceStats(
            n=0, k=instance.k, tightness=0.0, demand_gini=0.0,
            max_demand_ratio=0.0, concentration=0.0, hotspot_share=0.0,
        )
    total_cap = float(sum(a.capacity for a in instance.antennas))
    c_min = min(a.capacity for a in instance.antennas)
    return InstanceStats(
        n=instance.n,
        k=instance.k,
        tightness=instance.total_demand / total_cap,
        demand_gini=gini(instance.demands),
        max_demand_ratio=float(instance.demands.max()) / c_min,
        concentration=circular_concentration(instance.thetas),
        hotspot_share=best_window_share(instance),
    )
