"""Generic experiment harness: run solver suites over instance families.

The benchmark scripts under ``benchmarks/`` are thin wrappers over two
entry points here:

* :func:`compare_solvers` -- run every named solver on every instance,
  timing each run and recording the value;
* :func:`ratio_study` -- additionally compute a per-instance reference
  (exact optimum or an upper bound) and report ratios.

Solvers are plain callables ``instance -> value`` wrapped in
:class:`SolverSpec` so reports carry names and proven guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.metrics import RunRecord, summarize, timed
from repro.analysis.tables import format_table
from repro.model.instance import AngleInstance


@dataclass(frozen=True)
class SolverSpec:
    """A named solver for the harness.

    ``fn`` maps an instance to the achieved objective value.  ``guarantee``
    is the proven worst-case ratio (``None`` for heuristics without one);
    the harness asserts measured ratios against it when a reference is
    available.
    """

    name: str
    fn: Callable[..., float]
    guarantee: Optional[float] = None


def compare_solvers(
    instances: Dict[str, Sequence],
    solvers: Sequence[SolverSpec],
    reference: Optional[Callable[..., float]] = None,
) -> List[RunRecord]:
    """Run all solvers over all (family, instance) pairs.

    ``reference(instance)`` — typically the exact optimum or an upper
    bound — is evaluated once per instance and shared by every solver's
    :attr:`RunRecord.reference`.
    """
    records: List[RunRecord] = []
    for family, family_instances in instances.items():
        for inst in family_instances:
            ref = reference(inst) if reference is not None else None
            for spec in solvers:
                with timed() as t:
                    value = spec.fn(inst)
                records.append(
                    RunRecord(
                        solver=spec.name,
                        family=family,
                        value=value,
                        seconds=t["seconds"],
                        reference=ref,
                    )
                )
    return records


def ratio_study(
    instances: Dict[str, Sequence],
    solvers: Sequence[SolverSpec],
    reference: Callable[..., float],
    check_guarantees: bool = True,
    slack: float = 1e-9,
) -> List[RunRecord]:
    """Like :func:`compare_solvers`, but enforces proven guarantees.

    When ``check_guarantees`` is set, every record whose solver declares a
    guarantee must satisfy ``value >= guarantee * reference - slack``
    (valid when ``reference`` is the exact optimum; with an upper-bound
    reference, disable the check).  Raises ``AssertionError`` otherwise —
    experiments fail loudly instead of reporting broken numbers.
    """
    records = compare_solvers(instances, solvers, reference)
    if check_guarantees:
        by_name = {s.name: s for s in solvers}
        for r in records:
            g = by_name[r.solver].guarantee
            if g is not None and r.reference is not None:
                if r.value < g * r.reference - slack:
                    raise AssertionError(
                        f"{r.solver} broke its {g:.3f} guarantee on "
                        f"{r.family}: {r.value:.6f} < {g:.3f} * {r.reference:.6f}"
                    )
    return records


def report(records: List[RunRecord], title: str = "results") -> str:
    """Human-readable summary table of a record list."""
    agg = summarize(records)
    headers = ["solver", "runs", "mean value", "mean s", "min ratio", "geo ratio"]
    rows = []
    for solver in sorted(agg):
        e = agg[solver]
        rows.append(
            [
                solver,
                int(e["runs"]),
                e["mean_value"],
                e["mean_seconds"],
                e.get("min_ratio", float("nan")),
                e.get("geo_mean_ratio", float("nan")),
            ]
        )
    return format_table(headers, rows, title=title)
