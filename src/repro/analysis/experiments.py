"""Generic experiment harness: run solver suites over instance families.

The benchmark scripts under ``benchmarks/`` are thin wrappers over two
entry points here:

* :func:`compare_solvers` -- run every named solver on every instance,
  timing each run and recording the value;
* :func:`ratio_study` -- additionally compute a per-instance reference
  (exact optimum or an upper bound) and report ratios.

Solvers are plain callables ``instance -> value`` wrapped in
:class:`SolverSpec` so reports carry names and proven guarantees.
:func:`specs_from_engine` derives a suite straight from the
:mod:`repro.engine` registry — the harness owns no solver table of its
own; dispatch, oracle policy, and caching live in the engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.metrics import RunRecord, summarize, timed
from repro.analysis.tables import format_table
from repro.model.instance import AngleInstance


@dataclass(frozen=True)
class SolverSpec:
    """A named solver for the harness.

    ``fn`` maps an instance to the achieved objective value.  ``guarantee``
    is the proven worst-case ratio (``None`` for heuristics without one);
    the harness asserts measured ratios against it when a reference is
    available.
    """

    name: str
    fn: Callable[..., float]
    guarantee: Optional[float] = None


def specs_from_engine(
    family: str = "angle",
    names: Optional[Sequence[str]] = None,
    eps: float = 1.0,
    seed: int = 0,
    use_cache: bool = True,
) -> List[SolverSpec]:
    """Build a harness suite from the :mod:`repro.engine` registry.

    Each returned :class:`SolverSpec` routes through ``engine.solve`` (so
    runs share the engine's oracle policy, verification, and instance
    cache) and carries the registry's proven guarantee evaluated at the
    oracle factor implied by ``eps`` (``beta = 1 - eps`` below 1.0).

    ``names=None`` selects every polynomial overlap-variant solver of the
    family that applies to generic instances (probed on a tiny canonical
    instance, so conditional specs like ``single`` drop out); name
    exponential, fractional, or conditional specs explicitly when you
    want them.
    """
    from repro.engine import SolveRequest, get_spec
    from repro.engine import solve as engine_solve
    from repro.engine import specs as engine_specs

    if names is None:
        candidates = [
            s
            for s in engine_specs(family)
            if s.complexity == "poly" and s.variant in ("overlap", "-")
        ]
        probe = None
        if family in ("angle", "covering", "online"):
            from repro.model.generators import uniform_angles

            probe = uniform_angles(n=6, k=2, seed=0)
        elif family == "sector":
            from repro.model.generators import grid_city

            probe = grid_city(n=6, seed=0)
        names = [
            s.name
            for s in candidates
            if probe is None or s.rejects(probe) is None
        ]

    suite: List[SolverSpec] = []
    for name in names:
        spec = get_spec(family, name)
        beta = 1.0 - eps if (spec.supports_eps and eps < 1.0) else 1.0
        if spec.exact:
            guarantee: Optional[float] = 1.0
        elif spec.guarantee_fn is not None:
            guarantee = spec.guarantee_fn(beta)
        else:
            guarantee = None

        def fn(instance, _name=name):
            return engine_solve(
                SolveRequest(
                    instance=instance, family=family, algorithm=_name,
                    eps=eps, seed=seed, use_cache=use_cache,
                )
            ).value

        suite.append(SolverSpec(name=name, fn=fn, guarantee=guarantee))
    return suite


def compare_solvers(
    instances: Dict[str, Sequence],
    solvers: Sequence[SolverSpec],
    reference: Optional[Callable[..., float]] = None,
) -> List[RunRecord]:
    """Run all solvers over all (family, instance) pairs.

    ``reference(instance)`` — typically the exact optimum or an upper
    bound — is evaluated once per instance and shared by every solver's
    :attr:`RunRecord.reference`.
    """
    records: List[RunRecord] = []
    for family, family_instances in instances.items():
        for inst in family_instances:
            ref = reference(inst) if reference is not None else None
            for spec in solvers:
                with timed() as t:
                    value = spec.fn(inst)
                records.append(
                    RunRecord(
                        solver=spec.name,
                        family=family,
                        value=value,
                        seconds=t["seconds"],
                        reference=ref,
                    )
                )
    return records


def ratio_study(
    instances: Dict[str, Sequence],
    solvers: Sequence[SolverSpec],
    reference: Callable[..., float],
    check_guarantees: bool = True,
    slack: float = 1e-9,
) -> List[RunRecord]:
    """Like :func:`compare_solvers`, but enforces proven guarantees.

    When ``check_guarantees`` is set, every record whose solver declares a
    guarantee must satisfy ``value >= guarantee * reference - slack``
    (valid when ``reference`` is the exact optimum; with an upper-bound
    reference, disable the check).  Raises ``AssertionError`` otherwise —
    experiments fail loudly instead of reporting broken numbers.
    """
    records = compare_solvers(instances, solvers, reference)
    if check_guarantees:
        by_name = {s.name: s for s in solvers}
        for r in records:
            g = by_name[r.solver].guarantee
            if g is not None and r.reference is not None:
                if r.value < g * r.reference - slack:
                    raise AssertionError(
                        f"{r.solver} broke its {g:.3f} guarantee on "
                        f"{r.family}: {r.value:.6f} < {g:.3f} * {r.reference:.6f}"
                    )
    return records


def report(records: List[RunRecord], title: str = "results") -> str:
    """Human-readable summary table of a record list."""
    agg = summarize(records)
    headers = ["solver", "runs", "mean value", "mean s", "min ratio", "geo ratio"]
    rows = []
    for solver in sorted(agg):
        e = agg[solver]
        rows.append(
            [
                solver,
                int(e["runs"]),
                e["mean_value"],
                e["mean_seconds"],
                e.get("min_ratio", float("nan")),
                e.get("geo_mean_ratio", float("nan")),
            ]
        )
    return format_table(headers, rows, title=title)
