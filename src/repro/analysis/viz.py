"""ASCII visualisation: render angle instances and solutions in a terminal.

No plotting stack is available offline; these renderers give examples and
debugging sessions a way to *see* an instance — a linearised strip of the
circle with customers, and the arcs of a solution drawn above it.

Example output (width 64)::

    antenna arcs   [0===0]      [1=======1]
    customers      .  *  :* .      *   . **   *
                   0        pi/2        pi       3pi/2       2pi
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.geometry.angles import TWO_PI
from repro.model.instance import AngleInstance
from repro.model.solution import AngleSolution


def _column(theta: float, width: int) -> int:
    return min(int(theta / TWO_PI * width), width - 1)


def render_instance(
    instance: AngleInstance, width: int = 72, demand_levels: str = ".:*#@"
) -> str:
    """One-line strip of the circle; denser glyphs = larger demand.

    Customers sharing a column show the larger demand's glyph.
    """
    if width < 16:
        raise ValueError("width must be at least 16 columns")
    strip = [" "] * width
    if instance.n:
        dmax = float(instance.demands.max())
        levels = len(demand_levels)
        for theta, d in zip(instance.thetas, instance.demands):
            col = _column(float(theta), width)
            lvl = min(int(d / dmax * levels), levels - 1)
            cur = strip[col]
            if cur == " " or demand_levels.index(cur) < lvl:
                strip[col] = demand_levels[lvl]
    axis = [" "] * width
    for frac, label in [(0.0, "0"), (0.25, "pi/2"), (0.5, "pi"), (0.75, "3pi/2")]:
        col = _column(frac * TWO_PI, width)
        for i, ch in enumerate(label):
            if col + i < width:
                axis[col + i] = ch
    return "customers  |" + "".join(strip) + "|\n           |" + "".join(axis) + "|"


def render_solution(
    instance: AngleInstance,
    solution: AngleSolution,
    width: int = 72,
) -> str:
    """Arc rows (one per antenna) above the customer strip.

    Served customers are drawn with the antenna's digit; unserved keep
    their demand glyph.
    """
    rows: List[str] = []
    for j in range(instance.k):
        line = [" "] * width
        start = float(solution.orientations[j])
        rho = instance.antennas[j].rho
        a = _column(start, width)
        b = _column((start + min(rho, TWO_PI - 1e-9)) % TWO_PI, width)
        mark = str(j % 10)
        if rho >= TWO_PI - 1e-9:
            for c in range(width):
                line[c] = "="
        elif a <= b:
            for c in range(a, b + 1):
                line[c] = "="
        else:  # wraps
            for c in range(a, width):
                line[c] = "="
            for c in range(0, b + 1):
                line[c] = "="
        line[a] = mark
        line[b] = mark
        rows.append(f"antenna {j}  |" + "".join(line) + "|")

    strip = [" "] * width
    if instance.n:
        for i in range(instance.n):
            col = _column(float(instance.thetas[i]), width)
            a = solution.assignment[i]
            strip[col] = str(int(a) % 10) if a >= 0 else "."
    rows.append("served     |" + "".join(strip) + "|")
    return "\n".join(rows)


def render_loads(
    instance: AngleInstance, solution: AngleSolution, width: int = 40
) -> str:
    """Horizontal utilisation bars, one per antenna."""
    loads = solution.loads(instance)
    rows = []
    for j in range(instance.k):
        cap = instance.antennas[j].capacity
        frac = 0.0 if cap <= 0 else min(loads[j] / cap, 1.0)
        filled = int(round(frac * width))
        rows.append(
            f"antenna {j} [{'#' * filled}{'.' * (width - filled)}] "
            f"{loads[j]:.2f}/{cap:.2f}"
        )
    return "\n".join(rows)
