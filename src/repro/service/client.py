"""Blocking JSON-lines client for the solver service (stdlib sockets).

:class:`ServiceClient` speaks the :mod:`repro.service.protocol` envelopes
over TCP or a Unix socket.  Two calling styles:

* **request/response** — :meth:`solve` / :meth:`stats` / :meth:`ping` /
  :meth:`shutdown` send one envelope and block for its answer;
* **pipelined** — :meth:`solve_batch` writes every request before reading
  any response, which is what lets the server's micro-batcher coalesce
  them into one ``solve_many`` dispatch (responses are matched back into
  submission order by ``id``, since the server answers out of order).

The client never deserializes solutions eagerly: responses are plain
dicts (see ``docs/SERVICE.md`` for the fields); pass ``want_solution=True``
to receive the serialized solution and
:func:`repro.model.serialization.solution_from_dict` to revive it.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.service import protocol

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """Transport-level failure (closed socket, truncated line)."""


def _instance_payload(instance: Any) -> Any:
    """Serialize any supported instance shape for the wire."""
    from repro.model.instance import AngleInstance, SectorInstance
    from repro.model.serialization import instance_to_dict

    if isinstance(instance, (AngleInstance, SectorInstance)):
        return instance_to_dict(instance)
    if isinstance(instance, dict):
        return instance  # already serialized
    if isinstance(instance, (tuple, list)) and len(instance) == 3:
        weights, profits, capacity = instance
        return [list(map(float, weights)), list(map(float, profits)),
                float(capacity)]
    raise TypeError(f"cannot serialize instance of type {type(instance).__name__}")


class ServiceClient:
    """One connection to a solver service.

    Connect over TCP (``host``/``port``) or a Unix socket (``unix_path``
    wins when given).  ``timeout_s`` is the per-read socket timeout —
    generous by default because a pipelined burst may sit behind a long
    batch.  Usable as a context manager.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7077,
        unix_path: Optional[str] = None,
        timeout_s: float = 60.0,
    ):
        if unix_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout_s)
            self._sock.connect(unix_path)
        else:
            self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._reader = self._sock.makefile("rb")
        self._next_id = 0

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def _fresh_id(self) -> str:
        self._next_id += 1
        return f"c{self._next_id}"

    def _write(self, envelope: Dict[str, Any]) -> None:
        self._sock.sendall(protocol.encode_line(envelope))

    def _read_response(self) -> Dict[str, Any]:
        line = self._reader.readline()
        if not line:
            raise ServiceError("connection closed by the service")
        return protocol.decode_line(line)

    def request(self, envelope: Dict[str, Any]) -> Dict[str, Any]:
        """Send one raw envelope and block for the matching response."""
        if "id" not in envelope:
            envelope = {**envelope, "id": self._fresh_id()}
        self._write(envelope)
        wanted = envelope["id"]
        while True:
            response = self._read_response()
            if response.get("id") == wanted:
                return response

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        """Round-trip liveness check (answered even under full load)."""
        return self.request({"op": "ping"})

    def stats(self) -> Dict[str, Any]:
        """Service state + full metric snapshot (``service.*`` et al.)."""
        return self.request({"op": "stats"})

    def shutdown(self) -> Dict[str, Any]:
        """Ask the service to drain gracefully (same path as SIGTERM)."""
        return self.request({"op": "shutdown"})

    def _solve_envelope(self, instance: Any, **options) -> Dict[str, Any]:
        envelope: Dict[str, Any] = {
            "op": "solve",
            "id": self._fresh_id(),
            "instance": _instance_payload(instance),
        }
        want_solution = options.pop("want_solution", False)
        if want_solution:
            envelope["solution"] = True
        for key, value in options.items():
            if value is not None:
                envelope[key] = value
        return envelope

    def solve(
        self,
        instance: Any,
        family: Optional[str] = None,
        algorithm: Optional[str] = None,
        eps: Optional[float] = None,
        seed: Optional[int] = None,
        timeout_s: Optional[float] = None,
        label: Optional[str] = None,
        use_cache: Optional[bool] = None,
        want_solution: bool = False,
    ) -> Dict[str, Any]:
        """Solve one instance; returns the response dict (``status`` 0 = ok).

        ``timeout_s`` is end-to-end from admission — queueing time counts,
        and an expired deadline answers with status 4.
        """
        return self.request(
            self._solve_envelope(
                instance, family=family, algorithm=algorithm, eps=eps,
                seed=seed, timeout_s=timeout_s, label=label,
                use_cache=use_cache, want_solution=want_solution,
            )
        )

    def solve_batch(
        self,
        instances: Union[Sequence[Any], Iterable[Any]],
        **options,
    ) -> List[Dict[str, Any]]:
        """Pipeline many solves at once; returns responses in input order.

        Writing every envelope before reading any response is what lets
        the server coalesce the burst into ``solve_many`` batches — use
        this (or many concurrent connections) to hit batched throughput.
        Shared ``options`` (``algorithm=...``, ``timeout_s=...``,
        ``want_solution=...``) apply to every request.
        """
        envelopes = [self._solve_envelope(inst, **dict(options))
                     for inst in instances]
        for envelope in envelopes:
            self._write(envelope)
        pending = {e["id"] for e in envelopes}
        by_id: Dict[Any, Dict[str, Any]] = {}
        while pending:
            response = self._read_response()
            rid = response.get("id")
            if rid in pending:
                pending.discard(rid)
                by_id[rid] = response
        return [by_id[e["id"]] for e in envelopes]
