"""Blocking JSON-lines client for the solver service (stdlib sockets).

:class:`ServiceClient` speaks the :mod:`repro.service.protocol` envelopes
over TCP or a Unix socket.  Two calling styles:

* **request/response** — :meth:`solve` / :meth:`stats` / :meth:`ping` /
  :meth:`shutdown` send one envelope and block for its answer;
* **pipelined** — :meth:`solve_batch` writes every request before reading
  any response, which is what lets the server's micro-batcher coalesce
  them into one ``solve_many`` dispatch (responses are matched back into
  submission order by ``id``, since the server answers out of order).

The client never deserializes solutions eagerly: responses are plain
dicts (see ``docs/SERVICE.md`` for the fields); pass ``want_solution=True``
to receive the serialized solution and
:func:`repro.model.serialization.solution_from_dict` to revive it.

**Reconnect-with-backoff**: a connection reset or EOF mid-call (service
restart, proxy hiccup) does not surface to the caller — the client
redials with exponential backoff and *resends the unanswered envelopes
with their original ids*.  Same-id retries are what make the retry safe:
the service's dedup/result cache answers a replayed request without
solving it twice.  Only after ``reconnect_attempts`` consecutive failed
redials does :class:`ServiceError` reach the caller.
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from repro.service import protocol

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """Transport-level failure (closed socket, truncated line)."""


class _ConnectionLost(ServiceError):
    """Internal marker: the transport dropped mid-call (reconnectable)."""


def _instance_payload(instance: Any) -> Any:
    """Serialize any supported instance shape for the wire."""
    from repro.model.instance import AngleInstance, SectorInstance
    from repro.model.serialization import instance_to_dict

    if isinstance(instance, (AngleInstance, SectorInstance)):
        return instance_to_dict(instance)
    if isinstance(instance, dict):
        return instance  # already serialized
    if isinstance(instance, (tuple, list)) and len(instance) == 3:
        weights, profits, capacity = instance
        return [list(map(float, weights)), list(map(float, profits)),
                float(capacity)]
    raise TypeError(f"cannot serialize instance of type {type(instance).__name__}")


class ServiceClient:
    """One connection to a solver service.

    Connect over TCP (``host``/``port``) or a Unix socket (``unix_path``
    wins when given).  ``timeout_s`` is the per-read socket timeout —
    generous by default because a pipelined burst may sit behind a long
    batch.  Usable as a context manager.

    ``reconnect_attempts``/``reconnect_backoff_s`` tune the transparent
    redial on mid-call resets (attempt *n* sleeps
    ``reconnect_backoff_s * 2**n`` first); ``reconnect_attempts=0``
    disables it, restoring fail-fast :class:`ServiceError` behavior.
    :attr:`reconnects` counts successful redials, for tests and
    diagnostics.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7077,
        unix_path: Optional[str] = None,
        timeout_s: float = 60.0,
        reconnect_attempts: int = 4,
        reconnect_backoff_s: float = 0.05,
    ):
        self._host = host
        self._port = port
        self._unix_path = unix_path
        self._timeout_s = timeout_s
        self.reconnect_attempts = int(reconnect_attempts)
        self.reconnect_backoff_s = float(reconnect_backoff_s)
        self.reconnects = 0
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._next_id = 0
        self._connect()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connect(self) -> None:
        if self._unix_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(self._timeout_s)
            self._sock.connect(self._unix_path)
        else:
            self._sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout_s
            )
        self._reader = self._sock.makefile("rb")

    def _reconnect(self) -> None:
        """Redial with exponential backoff; :class:`ServiceError` on defeat."""
        self.close()
        last: Optional[Exception] = None
        for attempt in range(self.reconnect_attempts):
            time.sleep(self.reconnect_backoff_s * (2 ** attempt))
            try:
                self._connect()
                self.reconnects += 1
                return
            except OSError as exc:
                last = exc
        raise ServiceError(
            f"connection lost and {self.reconnect_attempts} reconnect "
            f"attempt(s) failed: {last if last is not None else 'disabled'}"
        )

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            if self._reader is not None:
                self._reader.close()
        except OSError:
            pass
        finally:
            self._reader = None
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def _fresh_id(self) -> str:
        self._next_id += 1
        return f"c{self._next_id}"

    def _write(self, envelope: Dict[str, Any]) -> None:
        if self._sock is None:
            raise _ConnectionLost("not connected")
        try:
            self._sock.sendall(protocol.encode_line(envelope))
        except (BrokenPipeError, ConnectionResetError) as exc:
            raise _ConnectionLost(f"send failed: {exc}") from exc

    def _read_response(self) -> Dict[str, Any]:
        try:
            line = self._reader.readline()
        except (ConnectionResetError, BrokenPipeError) as exc:
            raise _ConnectionLost(f"read failed: {exc}") from exc
        if not line:
            raise _ConnectionLost("connection closed by the service")
        return protocol.decode_line(line)

    def request(self, envelope: Dict[str, Any]) -> Dict[str, Any]:
        """Send one raw envelope and block for the matching response.

        A mid-call reset/EOF triggers the reconnect path: the *same*
        envelope (same ``id``) is resent on the fresh connection, so the
        service dedup cache shields the retry from double-solving.
        """
        if "id" not in envelope:
            envelope = {**envelope, "id": self._fresh_id()}
        wanted = envelope["id"]
        for _ in range(self.reconnect_attempts + 1):
            try:
                self._write(envelope)
                while True:
                    response = self._read_response()
                    if response.get("id") == wanted:
                        return response
            except _ConnectionLost:
                self._reconnect()
        raise ServiceError(
            f"request {wanted!r} kept losing its connection; giving up"
        )

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        """Round-trip liveness check (answered even under full load)."""
        return self.request({"op": "ping"})

    def stats(self) -> Dict[str, Any]:
        """Service state + full metric snapshot (``service.*`` et al.)."""
        return self.request({"op": "stats"})

    def shutdown(self) -> Dict[str, Any]:
        """Ask the service to drain gracefully (same path as SIGTERM)."""
        return self.request({"op": "shutdown"})

    def _solve_envelope(self, instance: Any, **options) -> Dict[str, Any]:
        envelope: Dict[str, Any] = {
            "op": "solve",
            "id": self._fresh_id(),
            "instance": _instance_payload(instance),
        }
        want_solution = options.pop("want_solution", False)
        if want_solution:
            envelope["solution"] = True
        for key, value in options.items():
            if value is not None:
                envelope[key] = value
        return envelope

    def solve(
        self,
        instance: Any,
        family: Optional[str] = None,
        algorithm: Optional[str] = None,
        eps: Optional[float] = None,
        seed: Optional[int] = None,
        timeout_s: Optional[float] = None,
        label: Optional[str] = None,
        use_cache: Optional[bool] = None,
        want_solution: bool = False,
    ) -> Dict[str, Any]:
        """Solve one instance; returns the response dict (``status`` 0 = ok).

        ``timeout_s`` is end-to-end from admission — queueing time counts,
        and an expired deadline answers with status 4.
        """
        return self.request(
            self._solve_envelope(
                instance, family=family, algorithm=algorithm, eps=eps,
                seed=seed, timeout_s=timeout_s, label=label,
                use_cache=use_cache, want_solution=want_solution,
            )
        )

    def event(
        self,
        session: str,
        events: Optional[Sequence[Any]] = None,
        instance: Any = None,
        resolve: Optional[Dict[str, Any]] = None,
        timeout_s: Optional[float] = None,
        label: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Apply events to a delta session; optionally resolve in-flight.

        ``session`` names the server-side
        :class:`~repro.online.delta.DeltaCompiledInstance`; passing
        ``instance`` opens (or rebinds) it.  ``events`` accepts event
        objects (:class:`~repro.online.delta.AddCustomer` et al.) or
        already-serialized dicts; ``resolve`` is a dict of solve options
        (``{"algorithm": "greedy"}``) to run against the post-event
        instance in the same round trip.  Wire grammar: ``docs/ONLINE.md``.
        """
        from repro.online.delta import event_to_dict

        envelope: Dict[str, Any] = {
            "op": "event",
            "id": self._fresh_id(),
            "session": session,
        }
        if instance is not None:
            envelope["instance"] = _instance_payload(instance)
        if events:
            envelope["events"] = [
                e if isinstance(e, dict) else event_to_dict(e) for e in events
            ]
        if resolve is not None:
            envelope["resolve"] = dict(resolve)
        if timeout_s is not None:
            envelope["timeout_s"] = timeout_s
        if label is not None:
            envelope["label"] = label
        return self.request(envelope)

    def solve_batch(
        self,
        instances: Union[Sequence[Any], Iterable[Any]],
        **options,
    ) -> List[Dict[str, Any]]:
        """Pipeline many solves at once; returns responses in input order.

        Writing every envelope before reading any response is what lets
        the server coalesce the burst into ``solve_many`` batches — use
        this (or many concurrent connections) to hit batched throughput.
        Shared ``options`` (``algorithm=...``, ``timeout_s=...``,
        ``want_solution=...``) apply to every request.

        Resilient to mid-pipeline drops: after a reconnect only the
        *unanswered* envelopes are resent, with their original ids, and
        already-collected responses are kept.
        """
        envelopes = [self._solve_envelope(inst, **dict(options))
                     for inst in instances]
        pending = {e["id"]: e for e in envelopes}
        by_id: Dict[Any, Dict[str, Any]] = {}
        to_send = list(envelopes)
        for _ in range(self.reconnect_attempts + 1):
            try:
                for envelope in to_send:
                    self._write(envelope)
                to_send = []
                while pending:
                    response = self._read_response()
                    rid = response.get("id")
                    if rid in pending:
                        del pending[rid]
                        by_id[rid] = response
                return [by_id[e["id"]] for e in envelopes]
            except _ConnectionLost:
                self._reconnect()
                to_send = list(pending.values())
        raise ServiceError(
            f"pipeline kept losing its connection with {len(pending)} "
            f"response(s) outstanding; giving up"
        )
