"""The worker supervisor: health probes, restarts, breakers, redispatch.

This is the self-healing layer between the :class:`~repro.service.batcher.
MicroBatcher` and the engine worker subprocesses (``docs/SERVICE.md``).
One :class:`WorkerSupervisor` owns N workers and installs itself as the
batcher's dispatcher; each coalesced batch is planned (cache probe +
dedup, shared with the in-process path), partitioned by shard owner on
the consistent-hash ring, and dispatched concurrently over the per-worker
pipes.

Failure handling is layered, cheapest first:

1. **redispatch** — a :class:`~repro.parallel.WorkerCrashed` on a dispatch
   moves the slice to the next sibling on the ring (its natural spill
   target, so retried keys still warm a durable cache);
2. **degraded fallback** — with every worker down or tried, the slice
   solves serially *in the service process* — strictly slower, never
   wrong, and it keeps ``ping``/``stats`` and solves answerable while the
   supervisor restarts the pool underneath;
3. **restart** — a background probe loop detects dead workers and
   respawns them with bounded exponential backoff (a crash-looping worker
   cannot hog the loop), bumping the worker's *generation* so a
   deterministic chaos stream does not replay the same kill forever;
4. **circuit breaker** — per-worker, trips open after
   ``breaker_threshold`` consecutive failures, which removes the worker
   from the routing ring; after ``breaker_cooldown_s`` it half-opens and
   the probe's ping decides: pong closes it (worker rejoins the ring),
   failure re-opens it for another cooldown.

Everything observable is counted under the frozen ``service.worker.*`` /
``service.supervisor.*`` metric names (``docs/OBSERVABILITY.md``), and
per-worker dispatch latency histograms are aggregated into the service
``stats`` op via :meth:`WorkerSupervisor.describe`.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List, Optional, Tuple

from repro.engine import SolveReport, SolveRequest, cache_store
from repro.obs.metrics import Histogram, get_registry
from repro.parallel.pool import PipeWorker, WorkerCrashed
from repro.resilience.chaos import ChaosPolicy
from repro.service.batcher import _fill_aliases, _plan_batch
from repro.service.workers import (
    ShardRing,
    service_mp_context,
    shard_key,
    worker_main,
)

__all__ = ["CircuitBreaker", "WorkerSupervisor"]

_REG = get_registry()
_DISPATCHES = _REG.counter("service.worker.dispatches")
_WORKER_FAILURES = _REG.counter("service.worker.failures")
_REDISPATCHES = _REG.counter("service.worker.redispatches")
_DEGRADED = _REG.counter("service.worker.degraded")
_WORKER_LATENCY = _REG.histogram("service.worker.latency")
_RESTARTS = _REG.counter("service.supervisor.restarts")
_BREAKER_OPENS = _REG.counter("service.supervisor.breaker_opens")
_ALIVE = _REG.gauge("service.supervisor.alive")


class CircuitBreaker:
    """Per-worker circuit breaker: closed → open → half-open → closed.

    ``record_failure`` trips the breaker open after ``threshold``
    *consecutive* failures; while open, :meth:`allow` is ``False`` and the
    worker is excluded from shard routing.  After ``cooldown_s`` the
    breaker half-opens (:meth:`probe_due` turns ``True``): the supervisor
    sends one health probe, and ``record_success`` closes the breaker
    while another failure re-opens it for a fresh cooldown.  Routing stays
    off in half-open — only the probe may touch a suspect worker.
    """

    def __init__(self, threshold: int = 3, cooldown_s: float = 0.5,
                 clock=time.monotonic):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = int(threshold)
        self.cooldown_s = float(cooldown_s)
        self._clock = clock
        self._consecutive = 0
        self._opened_at: Optional[float] = None

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"`` (cooldown elapsed)."""
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self.cooldown_s:
            return "half_open"
        return "open"

    def allow(self) -> bool:
        """Whether regular traffic may route to this worker (closed only)."""
        return self._opened_at is None

    def probe_due(self) -> bool:
        """Whether a half-open health probe should run now."""
        return self.state == "half_open"

    def record_success(self) -> None:
        """A dispatch or probe succeeded: close and reset the failure run."""
        self._consecutive = 0
        self._opened_at = None

    def record_failure(self) -> None:
        """A dispatch or probe failed: count it, trip open at threshold.

        A failure while open or half-open re-arms the cooldown, so a
        flapping worker is probed at most once per cooldown window.
        """
        self._consecutive += 1
        if self._opened_at is not None:
            self._opened_at = self._clock()
        elif self._consecutive >= self.threshold:
            self._opened_at = self._clock()
            _BREAKER_OPENS.inc()


class _Worker:
    """Supervisor-side bookkeeping for one engine worker slot."""

    def __init__(self, worker_id: int, breaker: CircuitBreaker):
        self.id = worker_id
        self.handle: Optional[PipeWorker] = None
        self.generation = 0
        self.breaker = breaker
        self.lock = asyncio.Lock()
        self.dispatches = 0
        self.failures = 0
        self.restarts = 0
        self.consecutive_crashes = 0
        self.next_restart_at = 0.0
        self.latency = Histogram()

    def routable(self) -> bool:
        """Live and breaker-closed: eligible as a shard owner."""
        return (
            self.handle is not None
            and self.handle.alive()
            and self.breaker.allow()
        )


class WorkerSupervisor:
    """Own N engine workers: spawn, probe, restart, route, drain.

    Parameters
    ----------
    workers:
        Worker subprocess count (>= 1).
    chaos:
        Optional :class:`~repro.resilience.chaos.ChaosPolicy` shipped to
        every worker; drives the service-level fault sites deterministically
        (``docs/RESILIENCE.md``).
    call_timeout_s:
        Per-dispatch reply deadline; a blackholed or wedged worker is
        declared crashed when it passes.
    probe_interval_s:
        Supervisor loop period (heartbeat, restart, half-open probes).
    restart_backoff_s / restart_backoff_max_s:
        Exponential restart backoff bounds: crash *n* of a run waits
        ``restart_backoff_s * 2**(n-1)`` capped at the max.
    breaker_threshold / breaker_cooldown_s:
        Circuit-breaker tuning, see :class:`CircuitBreaker`.
    ring_replicas:
        Virtual nodes per worker on the consistent-hash ring.
    """

    def __init__(
        self,
        workers: int,
        chaos: Optional[ChaosPolicy] = None,
        call_timeout_s: float = 30.0,
        probe_interval_s: float = 0.2,
        restart_backoff_s: float = 0.05,
        restart_backoff_max_s: float = 2.0,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 0.5,
        ring_replicas: int = 64,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.chaos = chaos
        self.call_timeout_s = float(call_timeout_s)
        self.probe_interval_s = float(probe_interval_s)
        self.restart_backoff_s = float(restart_backoff_s)
        self.restart_backoff_max_s = float(restart_backoff_max_s)
        self._workers: Dict[int, _Worker] = {
            wid: _Worker(
                wid, CircuitBreaker(breaker_threshold, breaker_cooldown_s)
            )
            for wid in range(int(workers))
        }
        self.ring = ShardRing(list(self._workers), replicas=ring_replicas)
        self._probe_task: Optional[asyncio.Task] = None
        self._stopping = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, worker: _Worker) -> None:
        """(Blocking) start the subprocess for one worker slot."""
        worker.generation += 1
        worker.handle = PipeWorker(
            worker_main,
            args=(worker.id, worker.generation, self.chaos),
            name=f"repro-engine-worker-{worker.id}",
            context=service_mp_context(),
        )

    async def start(self) -> None:
        """Spawn every worker and begin the probe/restart loop."""
        loop = asyncio.get_running_loop()
        for worker in self._workers.values():
            await loop.run_in_executor(None, self._spawn, worker)
        _ALIVE.set(self.alive_count())
        self._probe_task = asyncio.ensure_future(self._probe_loop())

    async def stop(self) -> None:
        """Drain: stop the probe loop, then stop every worker (escalating)."""
        self._stopping = True
        if self._probe_task is not None:
            self._probe_task.cancel()
            try:
                await self._probe_task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            self._probe_task = None
        loop = asyncio.get_running_loop()
        for worker in self._workers.values():
            handle, worker.handle = worker.handle, None
            if handle is not None:
                async with worker.lock:
                    await loop.run_in_executor(None, handle.stop)
        _ALIVE.set(0)

    def alive_count(self) -> int:
        """Workers whose subprocess is currently running."""
        return sum(
            1 for w in self._workers.values()
            if w.handle is not None and w.handle.alive()
        )

    # ------------------------------------------------------------------
    # Probe / restart loop
    # ------------------------------------------------------------------
    async def _probe_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while not self._stopping:
            await asyncio.sleep(self.probe_interval_s)
            now = time.monotonic()
            for worker in self._workers.values():
                if self._stopping:
                    return
                dead = worker.handle is None or not worker.handle.alive()
                if dead:
                    if now >= worker.next_restart_at:
                        await self._restart(worker, loop)
                    continue
                if worker.breaker.probe_due():
                    await self._probe(worker, loop)
            _ALIVE.set(self.alive_count())

    async def _restart(self, worker: _Worker, loop) -> None:
        """Respawn a dead worker with bounded exponential backoff."""
        async with worker.lock:
            if self._stopping:
                return
            old = worker.handle
            if old is not None:
                await loop.run_in_executor(None, old.kill)
            await loop.run_in_executor(None, self._spawn, worker)
            worker.restarts += 1
            worker.consecutive_crashes += 1
            backoff = min(
                self.restart_backoff_s * (2 ** (worker.consecutive_crashes - 1)),
                self.restart_backoff_max_s,
            )
            worker.next_restart_at = time.monotonic() + backoff
            _RESTARTS.inc()

    async def _probe(self, worker: _Worker, loop) -> None:
        """Half-open health probe: a pong closes the breaker."""
        handle = worker.handle
        if handle is None:
            return
        async with worker.lock:
            try:
                await loop.run_in_executor(
                    None,
                    lambda: handle.request(
                        "ping", timeout_s=min(2.0, self.call_timeout_s)
                    ),
                )
            except WorkerCrashed:
                worker.breaker.record_failure()
                return
        worker.breaker.record_success()
        worker.consecutive_crashes = 0

    # ------------------------------------------------------------------
    # Dispatch (installed as the MicroBatcher's dispatcher)
    # ------------------------------------------------------------------
    async def solve_batch(self, requests: List[SolveRequest]) -> List[SolveReport]:
        """Plan, shard, dispatch, and heal one coalesced batch.

        Mirrors :func:`repro.service.batcher.run_batch` semantics exactly
        (probe → dedup → solve → store → alias fill) with the solve step
        partitioned across shard owners; per-request failures come back as
        error reports, never exceptions.
        """
        loop = asyncio.get_running_loop()
        reports, unique, alias = await loop.run_in_executor(
            None, _plan_batch, requests
        )
        if unique:
            groups = self._partition(requests, unique)
            solved_slices = await asyncio.gather(
                *(self._dispatch_slice(requests, idxs, first_choice)
                  for first_choice, idxs in groups)
            )
            for idxs, solved in solved_slices:
                for i, report in zip(idxs, solved):
                    reports[i] = report
                    cache_store(requests[i], report)
        return _fill_aliases(reports, requests, alias)

    def _partition(
        self, requests: List[SolveRequest], unique: List[int]
    ) -> List[Tuple[Optional[int], List[int]]]:
        """Group miss indices by live shard owner (``None`` = no worker up)."""
        routable = [w.id for w in self._workers.values() if w.routable()]
        groups: Dict[Optional[int], List[int]] = {}
        for i in unique:
            owner = self.ring.owner(shard_key(requests[i].instance), routable)
            groups.setdefault(owner, []).append(i)
        return list(groups.items())

    async def _dispatch_slice(
        self,
        requests: List[SolveRequest],
        idxs: List[int],
        first_choice: Optional[int],
    ) -> Tuple[List[int], List[SolveReport]]:
        """Solve one owner's slice, redispatching/degrading on crashes."""
        loop = asyncio.get_running_loop()
        slice_requests = [requests[i] for i in idxs]
        tried: set = set()
        worker_id = first_choice
        while worker_id is not None:
            worker = self._workers[worker_id]
            tried.add(worker_id)
            handle = worker.handle
            if handle is None or not handle.alive():
                worker_id = self._next_sibling(slice_requests[0], tried)
                continue
            started = time.monotonic()
            try:
                async with worker.lock:
                    solved = await loop.run_in_executor(
                        None,
                        lambda h=handle: h.request(
                            "solve", slice_requests,
                            timeout_s=self.call_timeout_s,
                        ),
                    )
                if not isinstance(solved, list) or len(solved) != len(idxs):
                    raise WorkerCrashed(
                        f"worker {worker.id} returned "
                        f"{len(solved) if isinstance(solved, list) else solved!r}"
                        f" reports for {len(idxs)} requests"
                    )
            except WorkerCrashed:
                _WORKER_FAILURES.inc()
                worker.failures += 1
                worker.breaker.record_failure()
                worker_id = self._next_sibling(slice_requests[0], tried)
                if worker_id is not None:
                    _REDISPATCHES.inc(len(idxs))
                continue
            elapsed = time.monotonic() - started
            _DISPATCHES.inc()
            _WORKER_LATENCY.observe(elapsed)
            worker.latency.observe(elapsed)
            worker.dispatches += len(idxs)
            worker.breaker.record_success()
            worker.consecutive_crashes = 0
            return idxs, solved
        # Graceful degradation: no worker reachable — solve in-process.
        _DEGRADED.inc(len(idxs))
        solved = await loop.run_in_executor(
            None, _solve_in_process, slice_requests
        )
        return idxs, solved

    def _next_sibling(self, request: SolveRequest, tried: set) -> Optional[int]:
        """The next live ring owner for this slice's key not yet tried."""
        routable = [
            w.id for w in self._workers.values()
            if w.routable() and w.id not in tried
        ]
        return self.ring.owner(shard_key(request.instance), routable)

    # ------------------------------------------------------------------
    # Introspection (the service `stats` op)
    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """Aggregated per-worker state for the service ``stats`` response."""
        workers = []
        for w in sorted(self._workers.values(), key=lambda x: x.id):
            handle = w.handle
            workers.append({
                "id": w.id,
                "pid": None if handle is None else handle.pid,
                "alive": handle is not None and handle.alive(),
                "generation": w.generation,
                "breaker": w.breaker.state,
                "dispatches": w.dispatches,
                "failures": w.failures,
                "restarts": w.restarts,
                "latency": w.latency._snapshot(),
            })
        return {
            "count": len(self._workers),
            "alive": self.alive_count(),
            "chaos": self.chaos is not None,
            "workers": workers,
        }


def _solve_in_process(requests: List[SolveRequest]) -> List[SolveReport]:
    """Last-resort serial solve in the service process (degraded mode).

    Event requests execute against the *parent's* session table here — a
    degraded-mode session diverges from the dead worker's copy, so the
    client must re-open it (attach ``instance``) once workers recover;
    ``docs/ONLINE.md`` documents this failure semantic.
    """
    from repro.service.events import execute_request

    return [execute_request(request) for request in requests]
