"""The service's dynamic-workload op: sessions of delta-compiled instances.

An ``event`` request (wire grammar in ``docs/ONLINE.md``) names a
*session* — a named :class:`~repro.online.delta.DeltaCompiledInstance`
living in the process that answers — and carries a list of
add/remove/update events to apply, plus an optional ``resolve`` spec to
solve the post-event instance in the same round trip.

Sessions are sticky by design: the supervised tier shards an
:class:`EventRequest` by its session name (the ``instance`` property below
feeds the same ``shard_key`` routing the solve path uses), so every event
for a session lands on the one worker holding its delta view, and the
patched compiled view never crosses a process boundary.  Single-process
servers hold all sessions in one table.

``execute_request`` is the dispatch seam the batcher, the in-process
degraded path and the worker main loop share: event requests run through
:func:`execute_event`, everything else through the engine's
``_solve_worker``.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.engine import SolveReport, SolveRequest
from repro.engine.core import _solve_worker
from repro.obs.metrics import get_registry
from repro.online.delta import DeltaCompiledInstance, Event

__all__ = [
    "EventRequest",
    "SessionTable",
    "SESSIONS",
    "execute_event",
    "execute_request",
]

_REG = get_registry()
_SESSIONS_GAUGE = _REG.gauge("service.sessions")

#: Sessions kept per process before the least-recently-used one is dropped.
SESSION_TABLE_MAXSIZE = 64


@dataclass(frozen=True)
class EventRequest:
    """An ``event`` op riding the micro-batcher next to solve requests.

    Field layout is duck-compatible with the slices of
    :class:`~repro.engine.SolveRequest` the batching machinery touches:
    ``timeout_s`` (deadline rewriting via ``dataclasses.replace``),
    ``family`` / ``algorithm`` / ``label`` (whole-batch error reports),
    ``use_cache`` (the parent's ``cache_store`` pass — always ``False``
    here, results of a mutating op are not cacheable).
    """

    session: str
    events: Tuple[Event, ...] = ()
    open_instance: Any = None
    resolve: Optional[dict] = None
    timeout_s: Optional[float] = None
    family: str = "event"
    algorithm: str = "delta"
    label: str = ""
    use_cache: bool = False

    @property
    def instance(self) -> str:
        """Routing surrogate: shard-sticky by session name, not content.

        ``shard_key`` fingerprints real instances but falls back to
        ``repr()`` hashing for anything else — this string keys every
        event of one session to the same worker, which is what keeps the
        delta view and the events applied to it in the same process.
        """
        return f"event-session:{self.session}"


class SessionTable:
    """Named delta sessions, LRU-bounded, one table per process.

    ``open`` (re)binds a name to a fresh delta view over the given
    instance; ``get`` returns the live view and refreshes its recency.
    The ``service.sessions`` gauge tracks the table size.
    """

    def __init__(self, maxsize: int = SESSION_TABLE_MAXSIZE):
        self._data: "OrderedDict[str, DeltaCompiledInstance]" = OrderedDict()
        self._lock = threading.Lock()
        self._maxsize = int(maxsize)

    def open(self, name: str, instance: Any) -> DeltaCompiledInstance:
        """Bind ``name`` to a new delta view of ``instance`` (replacing any)."""
        delta = DeltaCompiledInstance(instance)
        with self._lock:
            self._data[name] = delta
            self._data.move_to_end(name)
            while len(self._data) > self._maxsize:
                self._data.popitem(last=False)
            _SESSIONS_GAUGE.set(len(self._data))
        return delta

    def get(self, name: str) -> DeltaCompiledInstance:
        """The live view for ``name``; raises ``KeyError`` if unknown."""
        with self._lock:
            if name not in self._data:
                raise KeyError(
                    f"unknown session {name!r} (open it by attaching 'instance')"
                )
            self._data.move_to_end(name)
            return self._data[name]

    def clear(self) -> None:
        """Drop every session (tests)."""
        with self._lock:
            self._data.clear()
            _SESSIONS_GAUGE.set(0)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


#: The per-process session table (workers each hold their own shard).
SESSIONS = SessionTable()


def execute_event(request: EventRequest) -> SolveReport:
    """Apply one event request to its session; optionally resolve after.

    Never raises: failures come back as error reports exactly like
    ``_solve_worker``'s, so the protocol layer's status mapping applies
    (unknown session -> ``KeyError`` -> status 2; bad event values ->
    ``InvalidInstanceError`` -> status 3).  On success ``extra`` carries
    the apply summary, the published fingerprint, and — when ``resolve``
    was requested — the nested solve's headline numbers; ``value`` is the
    resolved objective (or the customer count for a pure apply).
    """
    t0 = time.perf_counter()
    try:
        if request.open_instance is not None:
            delta = SESSIONS.open(request.session, request.open_instance)
        else:
            delta = SESSIONS.get(request.session)
        summary = (
            delta.apply(list(request.events))
            if request.events
            else {"applied": 0, "invalidated": 0, "retained": 0, "n": delta.n}
        )
        fp = delta.publish()
        extra = {
            "session": request.session,
            "n": summary["n"],
            "applied": summary["applied"],
            "invalidated": summary["invalidated"],
            "retained": summary["retained"],
            "fingerprint": fp,
        }
        value = float(summary["n"])
        error = None
        if request.resolve is not None:
            inner = SolveRequest(
                instance=delta.instance,
                timeout_s=request.timeout_s,
                **request.resolve,
            )
            inner_report = _solve_worker(inner)
            extra["resolve"] = {
                "family": inner_report.family,
                "algorithm": inner_report.algorithm,
                "value": float(inner_report.value),
                "cached": bool(inner_report.cached),
                "seconds": float(inner_report.seconds),
            }
            value = float(inner_report.value)
            error = inner_report.error
        return SolveReport(
            family="event",
            algorithm="delta",
            value=value,
            solution=None,
            seconds=time.perf_counter() - t0,
            label=request.label,
            error=error,
            extra=extra,
        )
    except Exception as exc:  # noqa: BLE001 - converted to a partial report
        return SolveReport(
            family="event",
            algorithm="delta",
            seconds=time.perf_counter() - t0,
            label=request.label,
            error=f"{type(exc).__name__}: {exc}",
            extra={"session": request.session},
        )


def execute_request(request: Any) -> SolveReport:
    """The shared dispatch seam: event requests vs. engine solve requests."""
    if isinstance(request, EventRequest):
        return execute_event(request)
    return _solve_worker(request)
