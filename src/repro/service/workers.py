"""Engine worker subprocesses and content-fingerprint shard routing.

The supervised serving tier (``docs/SERVICE.md``) runs N long-lived engine
workers, each a :class:`repro.parallel.PipeWorker` subprocess executing
:func:`worker_main`.  Two design points live here:

**Shard affinity.**  Each worker owns a shard of instance space under
consistent hashing (:class:`ShardRing`): the routing key is the instance's
content fingerprint (:func:`repro.engine.cache.fingerprint`), so repeat
solves of the same instance land on the same worker and its per-process
``COMPILE_CACHE`` / result LRU stay hot.  Virtual nodes smooth the load
split; when a worker is down (crashed, breaker open) its keys spill to the
next live owner clockwise on the ring and *return* to it on recovery — no
global reshuffle either way.

**Deterministic misbehavior.**  When the service runs with a
:class:`~repro.resilience.chaos.ChaosPolicy`, the worker consults
:meth:`~repro.resilience.chaos.ChaosPolicy.decide_reply` before every
solve reply and acts the verdict out at the wire level: ``kill`` SIGKILLs
its own pid mid-request, ``blackhole`` skips the send (the parent times
out), ``corrupt`` flips bytes in the pickled reply frame, ``delay`` sleeps
before sending.  The fault site string embeds the worker's *generation*
(restart count), so a restarted worker rolls a fresh decision stream
instead of deterministically replaying the kill that ended its
predecessor.

Workers are spawned through a **forkserver** multiprocessing context
(:func:`service_mp_context`): unlike plain ``fork`` the children never
inherit the asyncio front end's threads, locks, or listening sockets, and
unlike ``spawn`` the heavy imports are paid once in the fork server
(preloaded) rather than per worker restart — which matters when the chaos
harness is deliberately killing workers in a loop.
"""

from __future__ import annotations

import bisect
import hashlib
import multiprocessing
import os
import pickle
import signal
import time
from typing import Dict, List, Optional, Sequence

from repro.resilience.chaos import ChaosPolicy

__all__ = [
    "ShardRing",
    "describe_ring",
    "service_mp_context",
    "shard_key",
    "worker_main",
]

_mp_context = None


def service_mp_context():
    """The multiprocessing context service workers are spawned through.

    Prefers *forkserver* (clean children without the parent's threads or
    sockets, cheap restarts once the server has preloaded the engine),
    falling back to *spawn* where forkserver is unavailable.  The context
    is created once and cached — ``set_forkserver_preload`` only takes
    effect before the fork server starts.
    """
    global _mp_context
    if _mp_context is not None:
        return _mp_context
    try:
        ctx = multiprocessing.get_context("forkserver")
        ctx.set_forkserver_preload(["repro.service.workers", "repro.engine"])
    except ValueError:  # pragma: no cover - non-Linux fallback
        ctx = multiprocessing.get_context("spawn")
    _mp_context = ctx
    return ctx


def _hash_point(token: str) -> int:
    """Stable 64-bit ring position for a token (SHA-256 prefix)."""
    return int.from_bytes(
        hashlib.sha256(token.encode("utf-8")).digest()[:8], "big"
    )


def shard_key(instance) -> str:
    """The routing key for an instance: content fingerprint when possible.

    Falls back to hashing ``repr(instance)`` for payloads the fingerprint
    helper cannot canonicalize (e.g. knapsack triples) — still
    deterministic across processes, just not normalization-invariant.
    """
    from repro.engine.cache import fingerprint

    try:
        return fingerprint(instance)
    except Exception:  # noqa: BLE001 - any unfingerprintable payload
        digest = hashlib.sha256(
            repr(instance).encode("utf-8", "replace")
        ).hexdigest()
        return f"repr:{digest}"


class ShardRing:
    """Consistent-hash ring mapping shard keys to worker ids.

    Each worker id is placed at ``replicas`` pseudo-random points (virtual
    nodes) on a 64-bit ring; a key is owned by the first worker point at
    or clockwise after the key's own point.  :meth:`owners` returns the
    full preference order (distinct workers walking clockwise), which is
    exactly the redispatch order the supervisor uses when the primary
    owner is down: the sibling that inherits a dead worker's keys is the
    same one that would inherit them under a permanent removal, so spilled
    keys warm a cache that stays useful.
    """

    def __init__(self, worker_ids: Sequence[int], replicas: int = 64):
        if not worker_ids:
            raise ValueError("ShardRing needs at least one worker id")
        self._ids = sorted(set(int(w) for w in worker_ids))
        self._points: List[int] = []
        self._owners: List[int] = []
        placed = sorted(
            (_hash_point(f"worker-{wid}:vnode-{r}"), wid)
            for wid in self._ids
            for r in range(replicas)
        )
        for point, wid in placed:
            self._points.append(point)
            self._owners.append(wid)

    @property
    def worker_ids(self) -> List[int]:
        """All worker ids on the ring, ascending."""
        return list(self._ids)

    def owners(self, key: str,
               available: Optional[Sequence[int]] = None) -> List[int]:
        """Preference-ordered distinct owners for ``key``.

        With ``available`` given, workers outside it are skipped — the
        first element is then the live shard owner and the rest are the
        redispatch siblings in spill order.  Returns ``[]`` when nothing
        is available.
        """
        allowed = set(self._ids if available is None else available)
        if not allowed:
            return []
        start = bisect.bisect_left(self._points, _hash_point(key))
        ordered: List[int] = []
        seen: set = set()
        n = len(self._points)
        for step in range(n):
            wid = self._owners[(start + step) % n]
            if wid in seen or wid not in allowed:
                continue
            seen.add(wid)
            ordered.append(wid)
            if len(seen) == len(allowed):
                break
        return ordered

    def owner(self, key: str,
              available: Optional[Sequence[int]] = None) -> Optional[int]:
        """The single live owner for ``key`` (``None`` if nothing is up)."""
        ordered = self.owners(key, available)
        return ordered[0] if ordered else None


def _corrupt_frame(frame: bytes) -> bytes:
    """Flip bytes mid-frame so the parent's unpickle deterministically fails."""
    mid = len(frame) // 2
    return frame[:mid] + bytes(b ^ 0xFF for b in frame[mid:mid + 8]) + frame[mid + 8:]


def worker_main(conn, worker_id: int, generation: int,
                chaos: Optional[ChaosPolicy] = None) -> None:
    """The engine worker protocol loop (runs in the child process).

    Speaks the :class:`repro.parallel.PipeWorker` frame protocol over
    ``conn``: ``(seq, op, payload)`` in, ``(seq, status, result)`` out.

    Ops:

    * ``solve`` — payload is a list of :class:`~repro.engine.SolveRequest`;
      replies with the matching :class:`~repro.engine.SolveReport` list.
      Requests solve serially in-process (per-request failures become
      error reports, mirroring ``solve_many``), keeping this worker's
      compile/result caches hot for its shard.  Chaos, when configured,
      strikes *after* solving, at the reply — the interesting failures for
      a supervisor are the ones that lose completed work.
    * ``ping`` — health probe; replies with pid, generation and cache
      occupancy (the supervisor's heartbeat and breaker half-open probe).
    * ``stop`` — acknowledge and exit 0 (clean drain).

    Unparseable request frames are ignored rather than fatal: the parent
    side already maps a missing reply to :class:`~repro.parallel.WorkerCrashed`
    via its timeout, and a worker that survives garbage stays useful.
    """
    from repro.engine.cache import COMPILE_CACHE, RESULT_CACHE
    from repro.service.events import execute_request

    site = f"service.worker.{worker_id}.gen{generation}"
    ordinal = 0
    while True:
        try:
            raw = conn.recv_bytes()
        except (EOFError, OSError):
            return
        try:
            seq, op, payload = pickle.loads(raw)
        except Exception:  # noqa: BLE001 - garbage in, no reply out
            continue
        if op == "stop":
            try:
                conn.send_bytes(pickle.dumps((seq, "ok", "stopping")))
            except (OSError, ValueError):
                pass
            return
        if op == "ping":
            result = {
                "pong": True,
                "pid": os.getpid(),
                "generation": generation,
                "result_cache": len(RESULT_CACHE),
                "compile_cache": len(COMPILE_CACHE),
            }
            try:
                conn.send_bytes(pickle.dumps((seq, "ok", result)))
            except (OSError, ValueError):
                return
            continue
        if op != "solve":
            try:
                conn.send_bytes(pickle.dumps((seq, "error", f"unknown op {op!r}")))
            except (OSError, ValueError):
                return
            continue
        # Dispatch seam: EventRequests hit this worker's session table
        # (shard-sticky by session name), everything else solves.
        reports = [execute_request(request) for request in payload]
        action = None
        if chaos is not None:
            action = chaos.decide_reply(site, ordinal)
            ordinal += 1
        if action == "kill":
            # The SIGKILL fault site: in-flight work is lost exactly as a
            # segfault/OOM-kill would lose it; the supervisor must recover.
            os.kill(os.getpid(), signal.SIGKILL)
        if action == "blackhole":
            continue  # never reply; the parent's poll() deadline fires
        if action == "delay":
            time.sleep(chaos.delay_s)
        frame = pickle.dumps((seq, "ok", reports))
        if action == "corrupt":
            frame = _corrupt_frame(frame)
        try:
            conn.send_bytes(frame)
        except (OSError, ValueError):
            return


def describe_ring(ring: ShardRing, keys: Sequence[str]) -> Dict[int, int]:
    """Count how many of ``keys`` each worker owns (load-split debugging)."""
    counts: Dict[int, int] = {wid: 0 for wid in ring.worker_ids}
    for key in keys:
        owner = ring.owner(key)
        if owner is not None:
            counts[owner] += 1
    return counts
