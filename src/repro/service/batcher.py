"""The micro-batcher: coalesce queued solve requests into engine batches.

The serving hot path (``docs/SERVICE.md``): connections enqueue
:class:`~repro.engine.SolveRequest`s onto one bounded :class:`asyncio.Queue`
(admission control — a full queue sheds with status ``5``), and a single
dispatcher task drains it into batches of up to ``max_batch`` requests,
waiting at most ``flush_interval_s`` for stragglers after the first
arrival.  Each batch runs off the event loop on a dedicated worker thread:

1. **deadline shedding** — a request whose end-to-end deadline already
   passed while queued is answered with status ``4`` without solving;
   live requests get their ``timeout_s`` rewritten to the *remaining*
   allowance, which the engine turns into a cooperative resilience
   ``Budget``;
2. **warm-cache serving** — :func:`repro.engine.cache_probe` answers
   repeat requests from the parent-process result cache (worker processes
   have their own cold caches, so probing before the fan-out is what makes
   a long-lived service amortize anything);
3. **in-batch dedup** — identical cacheable requests in one batch solve
   once and share the report;
4. **compile prewarm** — each distinct instance among the surviving
   misses is compiled once into the parent's fingerprint-keyed compile
   cache (:func:`repro.engine.cache.shared_compiled`), so serial batch
   solves share one :class:`~repro.core.compiled.CompiledInstance` per
   distinct instance instead of compiling per request;
5. **batched fan-out** — the remaining misses go through
   :func:`repro.engine.solve_many` over the hardened process pool, and the
   returned reports are stored back into the parent cache
   (:func:`repro.engine.cache_store`).

Queue depth, batch occupancy, shed/expired counts and end-to-end latency
quantiles are reported through the standard metrics registry under the
``service.*`` names frozen in ``docs/SERVICE.md``.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from typing import List, Optional, Tuple

from repro.engine import SolveReport, SolveRequest, cache_probe, cache_store
from repro.engine.core import _resolve  # shared resolution, see engine docs
from repro.obs.metrics import get_registry

__all__ = ["Overloaded", "MicroBatcher", "run_batch"]

_REG = get_registry()
_REQUESTS = _REG.counter("service.requests")
_RESPONSES = _REG.counter("service.responses")
_SHED = _REG.counter("service.shed")
_EXPIRED = _REG.counter("service.expired")
_BATCHES = _REG.counter("service.batches")
_CACHE_SERVED = _REG.counter("service.cache_served")
_OCCUPANCY = _REG.gauge("service.batch_occupancy")
_QUEUE_DEPTH = _REG.gauge("service.queue_depth")
_LATENCY = _REG.histogram("service.latency")


class Overloaded(RuntimeError):
    """The admission queue is full (or draining): shed with status 5."""


@dataclasses.dataclass
class _Pending:
    """One admitted request waiting for its batch.

    ``deadline`` is absolute (``time.monotonic()``) — the envelope's
    ``timeout_s`` is end-to-end from admission, so time spent queued
    counts against it.
    """

    request: SolveRequest
    future: "asyncio.Future[SolveReport]"
    enqueued_at: float
    deadline: Optional[float]


def _probe(request: SolveRequest) -> Optional[SolveReport]:
    """Parent-cache probe that never raises (a bad request is a miss —
    ``solve_many`` will produce the proper error report)."""
    try:
        return cache_probe(request)
    except Exception:  # noqa: BLE001 - probe must not sink the batch
        return None


def _dedup_key(request: SolveRequest) -> Optional[Tuple]:
    """In-batch dedup key: the resolved result-cache key, or ``None``.

    Only cacheable requests dedup (a budgeted or ``use_cache=False``
    request must run on its own); resolution failures fall through to
    ``solve_many`` for a proper error report.
    """
    from repro.engine.cache import result_key
    from repro.engine.core import _cacheable

    try:
        family, algorithm, _ = _resolve(request)
        if not _cacheable(request, family):
            return None
        return result_key(request.instance, family, algorithm,
                          request.eps, request.seed)
    except Exception:  # noqa: BLE001
        return None


def _plan_batch(
    requests: List[SolveRequest],
) -> Tuple[List[Optional[SolveReport]], List[int], List[Tuple[int, int]]]:
    """Shared batch front half: parent-cache probe + in-batch dedup.

    Returns ``(reports, unique, alias)``: ``reports`` with cache hits
    already filled (``None`` elsewhere), ``unique`` the indices that must
    actually solve, and ``alias`` the ``(duplicate, source)`` index pairs
    that will copy their source's report.  Both the in-process
    :func:`run_batch` path and the supervised shard dispatcher
    (:mod:`repro.service.supervisor`) start from this plan, so dedup
    semantics cannot drift between the two.
    """
    reports: List[Optional[SolveReport]] = [None] * len(requests)
    miss_keys: dict = {}
    unique: List[int] = []
    alias: List[Tuple[int, int]] = []
    for i, request in enumerate(requests):
        hit = _probe(request)
        if hit is not None:
            _CACHE_SERVED.inc()
            reports[i] = hit
            continue
        key = _dedup_key(request)
        if key is not None and key in miss_keys:
            alias.append((i, miss_keys[key]))
            continue
        if key is not None:
            miss_keys[key] = i
        unique.append(i)
    return reports, unique, alias


def _fill_aliases(
    reports: List[Optional[SolveReport]],
    requests: List[SolveRequest],
    alias: List[Tuple[int, int]],
) -> List[SolveReport]:
    """Shared batch back half: copy dedup sources into their duplicates.

    Completes the plan from :func:`_plan_batch` and compacts the report
    list (every request is expected to have a report by now).
    """
    for i, j in alias:
        source = reports[j]
        assert source is not None
        reports[i] = dataclasses.replace(
            source, label=requests[i].label, cached=True
        )
    return [r for r in reports if r is not None]


def run_batch(
    requests: List[SolveRequest], workers: Optional[int] = None
) -> List[SolveReport]:
    """Solve one coalesced batch (synchronous; runs on the batch thread).

    Probe the warm parent cache first, dedup identical cacheable misses,
    fan the unique misses through :func:`repro.engine.solve_many`, then
    store the fresh results back into the parent cache.  Order-preserving;
    every request gets a report (failures as ``error`` reports).

    Event requests (:class:`~repro.service.events.EventRequest`) ride the
    same queue but are never probed, deduped or fanned out — they mutate
    session state, so they execute in admission order on the batch thread
    against this process's session table.
    """
    reports, unique, alias = _plan_batch(requests)
    if unique:
        from repro.service.events import EventRequest, execute_event

        event_idx = [i for i in unique if isinstance(requests[i], EventRequest)]
        solve_idx = [i for i in unique if not isinstance(requests[i], EventRequest)]
        for i in event_idx:
            reports[i] = execute_event(requests[i])
        if solve_idx:
            from repro.engine import solve_many
            from repro.engine.cache import shared_compiled

            # Prewarm the parent compile cache: one CompiledInstance per
            # distinct instance in the batch.  Serial solves (the
            # < 4-request fallback and workers=1) then hit it instead of
            # recompiling per request; knapsack triples and other
            # unfingerprintable payloads are skipped.
            for i in solve_idx:
                try:
                    shared_compiled(requests[i].instance)
                except TypeError:
                    continue
            solved = solve_many([requests[i] for i in solve_idx], workers=workers)
            for i, report in zip(solve_idx, solved):
                reports[i] = report
                cache_store(requests[i], report)
    return _fill_aliases(reports, requests, alias)


class MicroBatcher:
    """Bounded admission queue + one dispatcher coalescing into batches.

    Parameters
    ----------
    max_batch:
        Most requests one ``solve_many`` dispatch carries.
    flush_interval_s:
        How long the dispatcher waits for more requests after the first
        one arrives before flushing a partial batch.
    queue_bound:
        Admission limit; :meth:`submit` raises :class:`Overloaded` when
        the queue is full.
    workers:
        Worker-process count forwarded to ``solve_many`` (``None`` =
        resolve from ``REPRO_WORKERS`` / CPU count).  Ignored when a
        custom dispatcher is installed via :meth:`set_dispatcher`.

    By default each batch runs through :func:`run_batch` on an executor
    thread; :meth:`set_dispatcher` swaps in an *async* dispatcher instead
    (the supervised worker pool installs its shard router here), keeping
    admission control, deadline shedding, and coalescing identical across
    serving modes.
    """

    def __init__(
        self,
        max_batch: int = 16,
        flush_interval_s: float = 0.005,
        queue_bound: int = 256,
        workers: Optional[int] = None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if queue_bound < 1:
            raise ValueError(f"queue_bound must be >= 1, got {queue_bound}")
        self.max_batch = int(max_batch)
        self.flush_interval_s = float(flush_interval_s)
        self.queue_bound = int(queue_bound)
        self.workers = workers
        self._queue: "asyncio.Queue[Optional[_Pending]]" = asyncio.Queue(
            maxsize=queue_bound + 1  # +1 keeps room for the close sentinel
        )
        self._depth = 0
        self._closed = False
        self._dispatcher = None

    def set_dispatcher(self, dispatcher) -> None:
        """Install an async batch dispatcher replacing :func:`run_batch`.

        ``dispatcher`` is an ``async`` callable taking the list of live
        :class:`~repro.engine.SolveRequest`s (deadlines already rewritten
        to remaining time) and returning the order-matched
        :class:`~repro.engine.SolveReport` list.  It must not raise for
        per-request failures (return error reports instead); a raise is
        treated as a whole-batch internal error.  Pass ``None`` to restore
        the default in-process path.
        """
        self._dispatcher = dispatcher

    # ------------------------------------------------------------------
    # Admission (event-loop side)
    # ------------------------------------------------------------------
    def submit(self, request: SolveRequest) -> "asyncio.Future[SolveReport]":
        """Admit one request; returns the future its report resolves.

        Raises :class:`Overloaded` when the queue is at ``queue_bound`` or
        the batcher is draining — the server turns that into a status-5
        shed response (backpressure is explicit, never an unbounded queue).
        """
        if self._closed or self._depth >= self.queue_bound:
            _SHED.inc()
            raise Overloaded(
                "draining" if self._closed else
                f"queue full ({self.queue_bound} pending)"
            )
        now = time.monotonic()
        pending = _Pending(
            request=request,
            future=asyncio.get_running_loop().create_future(),
            enqueued_at=now,
            deadline=(
                None if request.timeout_s is None else now + request.timeout_s
            ),
        )
        self._queue.put_nowait(pending)
        self._depth += 1
        _REQUESTS.inc()
        _QUEUE_DEPTH.set(self._depth)
        return pending.future

    def close(self) -> None:
        """Stop admitting; the dispatcher drains what is queued, then exits."""
        if not self._closed:
            self._closed = True
            self._queue.put_nowait(None)  # wake the dispatcher

    @property
    def depth(self) -> int:
        """Requests currently queued (admission-control observable)."""
        return self._depth

    # ------------------------------------------------------------------
    # Dispatch (the batcher task)
    # ------------------------------------------------------------------
    async def run(self) -> None:
        """The dispatcher loop: collect → dispatch until closed and empty."""
        while True:
            batch = await self._collect()
            if batch is None:
                return
            await self._dispatch(batch)

    async def _collect(self) -> Optional[List[_Pending]]:
        """Gather up to ``max_batch`` requests, flushing after the interval.

        Returns ``None`` when the batcher is closed and the queue is dry.
        The close sentinel is re-queued whenever it is consumed with work
        still pending, so the dispatcher always terminates exactly once —
        after the last admitted request has been dispatched.
        """
        batch: List[_Pending] = []
        first = await self._queue.get()
        if first is None:
            if self._queue.empty():
                return None
            # Drain requested but work remains: re-arm the sentinel (FIFO
            # puts it behind the remaining items) and flush what's queued.
            self._queue.put_nowait(None)
        else:
            batch.append(first)
        flush_at = asyncio.get_running_loop().time() + self.flush_interval_s
        while len(batch) < self.max_batch:
            if self._closed:
                # Draining: no stragglers are coming, flush immediately.
                try:
                    item = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
            else:
                remaining = flush_at - asyncio.get_running_loop().time()
                if remaining <= 0:
                    break
                try:
                    item = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
            if item is None:
                self._queue.put_nowait(None)  # re-arm for the next collect
                break
            batch.append(item)
        return batch

    async def _dispatch(self, batch: List[_Pending]) -> None:
        """Shed expired requests, solve the rest on the batch thread."""
        if not batch:
            return
        self._depth -= len(batch)
        _QUEUE_DEPTH.set(self._depth)
        now = time.monotonic()
        live: List[_Pending] = []
        solves: List[SolveRequest] = []
        for pending in batch:
            if pending.deadline is not None:
                remaining = pending.deadline - now
                if remaining <= 0:
                    _EXPIRED.inc()
                    self._finish(
                        pending,
                        _expired_report(pending.request, now - pending.enqueued_at),
                    )
                    continue
                # The engine rebuilds a Budget(wall_s=remaining) around the
                # solver, so queue time counts against the caller's deadline.
                solves.append(
                    dataclasses.replace(pending.request, timeout_s=remaining)
                )
            else:
                solves.append(pending.request)
            live.append(pending)
        if not live:
            return
        _BATCHES.inc()
        _OCCUPANCY.set(len(live))
        loop = asyncio.get_running_loop()
        try:
            if self._dispatcher is not None:
                reports = await self._dispatcher(solves)
            else:
                reports = await loop.run_in_executor(
                    None, run_batch, solves, self.workers
                )
        except Exception as exc:  # noqa: BLE001 - keep the service alive
            for pending in live:
                self._finish(
                    pending,
                    SolveReport(
                        family=pending.request.family,
                        algorithm=pending.request.algorithm,
                        label=pending.request.label,
                        error=f"{type(exc).__name__}: {exc}",
                    ),
                )
            return
        for pending, report in zip(live, reports):
            report.extra.setdefault("batch_size", len(live))
            self._finish(pending, report)

    def _finish(self, pending: _Pending, report: SolveReport) -> None:
        _RESPONSES.inc()
        _LATENCY.observe(time.monotonic() - pending.enqueued_at)
        if not pending.future.done():
            pending.future.set_result(report)


def _expired_report(request: SolveRequest, waited_s: float) -> SolveReport:
    """The status-4 report for a request whose deadline passed in queue."""
    return SolveReport(
        family=request.family,
        algorithm=request.algorithm,
        label=request.label,
        error=(
            f"BudgetExpired: deadline expired after {waited_s:.3f}s in queue "
            f"(timeout_s={request.timeout_s:g})"
        ),
    )
