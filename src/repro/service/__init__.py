"""repro.service — the batched async solver service front end.

The first *serving* layer over the one-shot library: a stdlib-only
asyncio JSON-lines server that accepts :class:`~repro.engine.SolveRequest`
-shaped envelopes over TCP or a Unix socket and routes them through
:mod:`repro.engine` — micro-batched onto ``solve_many`` over the hardened
process pool, with admission control, per-request deadlines mapped onto
resilience budgets, warm parent-process caches, and a graceful
SIGTERM drain.  The wire protocol, status codes (the CLI exit-code
contract plus ``5`` = shed), batching semantics and ``service.*`` metric
names are frozen in ``docs/SERVICE.md``.

Five pieces:

* :mod:`repro.service.protocol` — envelopes, status codes, encode/decode;
* :mod:`repro.service.batcher` — the bounded queue + coalescing dispatcher;
* :mod:`repro.service.workers` / :mod:`repro.service.supervisor` — the
  supervised engine-worker pool (``serve --workers N``): shard routing by
  content fingerprint, heartbeat probes, backoff restarts, per-worker
  circuit breakers, redispatch and in-process degraded fallback;
* :mod:`repro.service.server` / :mod:`repro.service.client` — the asyncio
  server (``repro-sectors serve``) and the blocking pipelined client
  (``repro-sectors client``, reconnect-with-backoff built in).

>>> from repro.service import start_in_thread, ServiceClient
>>> from repro.model import generators
>>> handle = start_in_thread(port=0)
>>> with ServiceClient(port=handle.port) as client:
...     ok = client.ping()["status"] == 0
>>> handle.stop()
>>> ok
True
"""

from repro.service.batcher import MicroBatcher, Overloaded
from repro.service.client import ServiceClient, ServiceError
from repro.service.protocol import (
    STATUS_INTERNAL,
    STATUS_INVALID_INPUT,
    STATUS_OK,
    STATUS_OVERLOADED,
    STATUS_TIMEOUT,
    STATUS_USAGE,
    ProtocolError,
)
from repro.service.server import (
    ServiceHandle,
    SolverService,
    run_service,
    start_in_thread,
)
from repro.service.supervisor import CircuitBreaker, WorkerSupervisor
from repro.service.workers import ShardRing

__all__ = [
    "CircuitBreaker",
    "MicroBatcher",
    "Overloaded",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "ServiceHandle",
    "ShardRing",
    "SolverService",
    "WorkerSupervisor",
    "STATUS_INTERNAL",
    "STATUS_INVALID_INPUT",
    "STATUS_OK",
    "STATUS_OVERLOADED",
    "STATUS_TIMEOUT",
    "STATUS_USAGE",
    "run_service",
    "start_in_thread",
]
