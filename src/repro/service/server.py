"""The asyncio solver service: JSON-lines over TCP and/or a Unix socket.

``repro-sectors serve`` runs :class:`SolverService`: a stdlib-only
long-lived front end that turns the one-shot engine
(:mod:`repro.engine`) into a request-driven server — connections speak
the :mod:`repro.service.protocol` envelopes, solves funnel through the
:class:`~repro.service.batcher.MicroBatcher` (admission control,
deadline shedding, warm parent caches, ``solve_many`` fan-out), and
SIGTERM/SIGINT trigger a graceful drain: stop accepting, answer
everything admitted, then exit 0.

Connections may **pipeline**: each ``solve`` line spawns its own response
task, so one connection's queued requests coalesce into batches; matching
responses carry the request ``id`` and may arrive out of order.  ``stats``
and ``ping`` are answered inline (they must work even when the solve
queue is saturated — that is the point of having them).

Use :func:`start_in_thread` to embed a service in a test, a notebook or
the bench harness without touching signals or subprocesses.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import threading
import time
from typing import Any, Dict, Optional, Set

from repro.obs.metrics import get_registry
from repro.resilience.chaos import ChaosPolicy
from repro.service import protocol
from repro.service.batcher import MicroBatcher, Overloaded
from repro.service.supervisor import WorkerSupervisor

__all__ = ["SolverService", "ServiceHandle", "start_in_thread", "run_service"]

#: Wire lines above this many bytes are rejected (guards the reader
#: buffer against unbounded instances; ~4 MiB fits n ~ 10^5 customers).
MAX_LINE_BYTES = 4 * 1024 * 1024

_REG = get_registry()
_CONNECTIONS = _REG.counter("service.connections")


class SolverService:
    """One serving endpoint: listeners + micro-batcher + drain logic.

    Parameters mirror the ``repro-sectors serve`` flags: ``host``/``port``
    for TCP (``port=0`` binds an ephemeral port, re-read from
    :attr:`port` after :meth:`start`), ``unix_path`` for an optional
    ``AF_UNIX`` listener, and the batching/backpressure knobs forwarded
    to :class:`~repro.service.batcher.MicroBatcher`.

    ``workers=N`` engages the **supervised worker pool**: N engine
    subprocesses behind a :class:`~repro.service.supervisor.WorkerSupervisor`
    (shard routing, crash recovery, circuit breakers — ``docs/SERVICE.md``),
    installed as the batcher's dispatcher.  ``workers=None`` keeps the
    classic in-process path (batches run through ``solve_many`` on the
    batch thread).  ``chaos`` ships a deterministic
    :class:`~repro.resilience.chaos.ChaosPolicy` to the workers (fault
    drills; requires ``workers``), and ``supervisor_options`` forwards
    extra keyword tuning to the supervisor (timeouts, backoff, breaker).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
        max_batch: int = 16,
        flush_interval_s: float = 0.005,
        queue_bound: int = 256,
        workers: Optional[int] = None,
        chaos: Optional[ChaosPolicy] = None,
        max_line_bytes: int = MAX_LINE_BYTES,
        supervisor_options: Optional[Dict[str, Any]] = None,
    ):
        if chaos is not None and workers is None:
            raise ValueError("chaos injection requires a supervised worker "
                             "pool (pass workers=N)")
        self.host = host
        self.port = int(port)
        self.unix_path = unix_path
        self.workers = None if workers is None else int(workers)
        self.max_line_bytes = int(max_line_bytes)
        self._batcher = MicroBatcher(
            max_batch=max_batch,
            flush_interval_s=flush_interval_s,
            queue_bound=queue_bound,
            workers=None if workers is not None else workers,
        )
        self._supervisor: Optional[WorkerSupervisor] = None
        if workers is not None:
            self._supervisor = WorkerSupervisor(
                workers=int(workers), chaos=chaos,
                **(supervisor_options or {}),
            )
        self._batcher_task: Optional[asyncio.Task] = None
        self._servers: list = []
        self._conn_tasks: Set[asyncio.Task] = set()
        self._connection_tasks: Set[asyncio.Task] = set()
        self._conn_writers: Set[asyncio.StreamWriter] = set()
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listeners and start the dispatcher (and worker pool)."""
        self._stopped = asyncio.Event()
        self._started_at = time.monotonic()
        if self._supervisor is not None:
            # Workers come up before the listeners so the first admitted
            # request already has a routable shard owner.
            await self._supervisor.start()
            self._batcher.set_dispatcher(self._supervisor.solve_batch)
        self._batcher_task = asyncio.create_task(self._batcher.run())
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=self.max_line_bytes,
        )
        self._servers.append(server)
        self.port = server.sockets[0].getsockname()[1]
        if self.unix_path is not None:
            self._servers.append(
                await asyncio.start_unix_server(
                    self._handle_connection, path=self.unix_path,
                    limit=self.max_line_bytes,
                )
            )

    def install_signal_handlers(self) -> None:
        """Map SIGTERM/SIGINT to a graceful drain (serve-forever mode)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig, lambda: asyncio.ensure_future(self.drain())
            )

    async def serve_forever(self) -> None:
        """Block until :meth:`drain` completes (via signal or request)."""
        assert self._stopped is not None, "call start() first"
        await self._stopped.wait()

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, answer admitted work, stop.

        Idempotent.  Order matters: close the listeners first (no new
        connections), flag draining (in-flight connections shed new solve
        envelopes with status 5), let the batcher finish everything it
        admitted, stop the supervised workers (they are only needed while
        batches flow), wait for the response writers, then release
        :meth:`serve_forever`.
        """
        if self._draining:
            return
        self._draining = True
        for server in self._servers:
            server.close()
        self._batcher.close()
        if self._batcher_task is not None:
            await self._batcher_task
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
        if self._supervisor is not None:
            await self._supervisor.stop()
        # Wake connections blocked in readline() with EOF so their handler
        # tasks exit before loop teardown (a cancelled reader would log a
        # traceback, and the error-hygiene contract forbids those).
        for writer in list(self._conn_writers):
            with contextlib.suppress(Exception):
                writer.close()
        if self._connection_tasks:
            await asyncio.gather(
                *list(self._connection_tasks), return_exceptions=True
            )
        for server in self._servers:
            with contextlib.suppress(Exception):
                await server.wait_closed()
        if self._stopped is not None:
            self._stopped.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        _CONNECTIONS.inc()
        conn_task = asyncio.current_task()
        if conn_task is not None:
            self._connection_tasks.add(conn_task)
        self._conn_writers.add(writer)
        write_lock = asyncio.Lock()
        inflight: Set[asyncio.Task] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Structured rejection, never a silent drop: the stream
                    # is desynchronized past an oversized line, so answer
                    # with the limit spelled out and close the connection.
                    await self._send(
                        writer, write_lock,
                        protocol.error_response(
                            None, protocol.STATUS_INVALID_INPUT,
                            f"line exceeds {self.max_line_bytes} bytes",
                            limit=self.max_line_bytes,
                        ),
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.create_task(
                    self._handle_line(line, writer, write_lock)
                )
                inflight.add(task)
                self._conn_tasks.add(task)
                task.add_done_callback(inflight.discard)
                task.add_done_callback(self._conn_tasks.discard)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._conn_writers.discard(writer)
            if conn_task is not None:
                self._connection_tasks.discard(conn_task)
            if inflight:
                await asyncio.gather(*list(inflight), return_exceptions=True)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _handle_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        """Decode, dispatch and answer one request envelope."""
        request_id: Any = None
        try:
            envelope = protocol.decode_line(line)
            request_id = envelope.get("id")
            op = envelope.get("op", "solve")
            if op == "ping":
                response: Dict[str, Any] = {
                    "id": request_id, "status": protocol.STATUS_OK, "op": "ping",
                }
            elif op == "stats":
                response = self._stats_response(request_id)
            elif op == "shutdown":
                response = {
                    "id": request_id, "status": protocol.STATUS_OK,
                    "op": "shutdown", "draining": True,
                }
                asyncio.ensure_future(self.drain())
            elif op == "solve":
                response = await self._handle_solve(envelope, request_id)
            elif op == "event":
                response = await self._handle_event(envelope, request_id)
            else:
                response = protocol.error_response(
                    request_id, protocol.STATUS_USAGE, f"unknown op {op!r}"
                )
        except protocol.ProtocolError as exc:
            response = protocol.error_response(request_id, exc.status, str(exc))
        except Exception as exc:  # noqa: BLE001 - a connection never kills us
            response = protocol.error_response(
                request_id, protocol.STATUS_INTERNAL,
                f"unexpected {type(exc).__name__}: {exc}",
            )
        with contextlib.suppress(ConnectionResetError, BrokenPipeError):
            await self._send(writer, write_lock, response)

    async def _handle_solve(
        self, envelope: Dict[str, Any], request_id: Any
    ) -> Dict[str, Any]:
        from repro.model.instance import InvalidInstanceError

        try:
            request = protocol.envelope_to_request(envelope)
        except InvalidInstanceError as exc:
            return protocol.error_response(
                request_id, protocol.STATUS_INVALID_INPUT, str(exc)
            )
        if self._draining:
            return protocol.error_response(
                request_id, protocol.STATUS_OVERLOADED, "shed: draining"
            )
        try:
            future = self._batcher.submit(request)
        except Overloaded as exc:
            return protocol.error_response(
                request_id, protocol.STATUS_OVERLOADED, f"shed: {exc}"
            )
        report = await future
        return protocol.report_to_response(
            request_id,
            report,
            batch_size=int(report.extra.get("batch_size", 1)),
            include_solution=bool(envelope.get("solution", False)),
        )

    async def _handle_event(
        self, envelope: Dict[str, Any], request_id: Any
    ) -> Dict[str, Any]:
        """The ``event`` op: delta sessions on the same batched hot path.

        Event requests share the solve queue — admission control, deadline
        rewriting and shedding behave identically — but execute against the
        session table instead of the engine (``docs/ONLINE.md``); in the
        supervised tier they shard by session name, so one worker owns each
        session's delta view.
        """
        from repro.model.instance import InvalidInstanceError

        try:
            request = protocol.envelope_to_event(envelope)
        except InvalidInstanceError as exc:
            return protocol.error_response(
                request_id, protocol.STATUS_INVALID_INPUT, str(exc)
            )
        if self._draining:
            return protocol.error_response(
                request_id, protocol.STATUS_OVERLOADED, "shed: draining"
            )
        try:
            future = self._batcher.submit(request)
        except Overloaded as exc:
            return protocol.error_response(
                request_id, protocol.STATUS_OVERLOADED, f"shed: {exc}"
            )
        report = await future
        return protocol.report_to_response(
            request_id,
            report,
            batch_size=int(report.extra.get("batch_size", 1)),
        )

    def _stats_response(self, request_id: Any) -> Dict[str, Any]:
        """The ``stats`` envelope: service state + a full metric snapshot.

        Answered inline off the event loop — deliberately independent of
        the worker pool, so operators can still see supervisor state (and
        the clients can still ``ping``) while every worker is down.
        """
        response = {
            "id": request_id,
            "status": protocol.STATUS_OK,
            "op": "stats",
            "uptime_s": time.monotonic() - self._started_at,
            "queue_depth": self._batcher.depth,
            "queue_bound": self._batcher.queue_bound,
            "max_batch": self._batcher.max_batch,
            "draining": self._draining,
            "metrics": get_registry().snapshot(),
        }
        if self._supervisor is not None:
            response["workers"] = self._supervisor.describe()
        return response

    @staticmethod
    async def _send(
        writer: asyncio.StreamWriter, lock: asyncio.Lock, obj: Dict[str, Any]
    ) -> None:
        async with lock:
            writer.write(protocol.encode_line(obj))
            await writer.drain()


# ----------------------------------------------------------------------
# Embedding and CLI entry points
# ----------------------------------------------------------------------
class ServiceHandle:
    """A service running on a background thread (tests, bench, notebooks).

    Attributes: ``port`` (the bound TCP port) and ``unix_path``.  Call
    :meth:`stop` to drain gracefully and join the thread.
    """

    def __init__(self, service: SolverService, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread):
        self._service = service
        self._loop = loop
        self._thread = thread
        self.port = service.port
        self.unix_path = service.unix_path

    def stop(self, timeout_s: float = 30.0) -> None:
        """Drain the service and join its thread (idempotent)."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(
                lambda: asyncio.ensure_future(self._service.drain())
            )
        self._thread.join(timeout=timeout_s)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False


def start_in_thread(**kwargs) -> ServiceHandle:
    """Start a :class:`SolverService` on a daemon thread; wait until bound.

    Keyword arguments are forwarded to :class:`SolverService` (``port=0``
    picks an ephemeral port — read it from the returned handle).  No
    signal handlers are installed; stop via :meth:`ServiceHandle.stop`.
    """
    service = SolverService(**kwargs)
    ready = threading.Event()
    box: Dict[str, Any] = {}

    def _run() -> None:
        async def _main() -> None:
            await service.start()
            box["loop"] = asyncio.get_running_loop()
            ready.set()
            await service.serve_forever()

        try:
            asyncio.run(_main())
        except BaseException as exc:  # noqa: BLE001 - surface startup failures
            box.setdefault("error", exc)
            ready.set()

    thread = threading.Thread(target=_run, name="repro-service", daemon=True)
    thread.start()
    if not ready.wait(timeout=30.0):
        raise RuntimeError("service failed to start within 30s")
    if "error" in box:
        raise RuntimeError(f"service failed to start: {box['error']}")
    return ServiceHandle(service, box["loop"], thread)


def run_service(
    host: str = "127.0.0.1",
    port: int = 7077,
    unix_path: Optional[str] = None,
    max_batch: int = 16,
    flush_interval_s: float = 0.005,
    queue_bound: int = 256,
    workers: Optional[int] = None,
    chaos: Optional[ChaosPolicy] = None,
) -> int:
    """Run a service in the foreground until SIGTERM/SIGINT drains it.

    The ``repro-sectors serve`` entry point: prints one readiness line
    (``serving on <host>:<port> ...``) once bound, then blocks.  Returns
    0 after a clean drain (including the supervised workers, when
    ``workers``/``chaos`` are given).
    """
    service = SolverService(
        host=host, port=port, unix_path=unix_path, max_batch=max_batch,
        flush_interval_s=flush_interval_s, queue_bound=queue_bound,
        workers=workers, chaos=chaos,
    )

    async def _main() -> None:
        await service.start()
        service.install_signal_handlers()
        endpoints = f"{service.host}:{service.port}"
        if service.unix_path:
            endpoints += f" and unix:{service.unix_path}"
        extra = ""
        if service.workers is not None:
            extra = f", workers={service.workers} supervised"
            if chaos is not None:
                extra += ", chaos on"
        print(
            f"serving on {endpoints} "
            f"(max_batch={service._batcher.max_batch}, "
            f"queue_bound={service._batcher.queue_bound}{extra})",
            flush=True,
        )
        await service.serve_forever()

    asyncio.run(_main())
    print("drained cleanly", flush=True)
    return 0
