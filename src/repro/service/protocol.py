"""The solver service wire protocol: JSON-lines envelopes + status codes.

One request per line, one response per line, UTF-8 JSON (the full
field-by-field contract is ``docs/SERVICE.md``; the ``event`` op's
grammar is ``docs/ONLINE.md``).  Requests carry an ``op`` (``solve`` /
``event`` / ``stats`` / ``ping`` / ``shutdown``) and a caller-chosen
``id`` echoed back on the response; responses to a pipelined connection
may arrive **out of order**, so the ``id`` is the correlation key.

Status codes reuse the CLI exit-code contract (``docs/RESILIENCE.md``)
so a failure means the same thing on the wire as it does in a shell:

* ``0`` — success;
* ``1`` — internal error (solver bug, infeasible solution);
* ``2`` — usage error (unknown op/algorithm/family, malformed envelope);
* ``3`` — invalid input (bad instance payload, malformed JSON line);
* ``4`` — deadline expired (before dispatch or inside the solver);
* ``5`` — overloaded: the request was shed (queue full or draining).

``5`` is the only wire-born code: the CLI never exits with it except when
``repro-sectors client`` relays a shed response.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.engine import SolveReport, SolveRequest

__all__ = [
    "STATUS_OK",
    "STATUS_INTERNAL",
    "STATUS_USAGE",
    "STATUS_INVALID_INPUT",
    "STATUS_TIMEOUT",
    "STATUS_OVERLOADED",
    "ProtocolError",
    "encode_line",
    "decode_line",
    "envelope_to_request",
    "envelope_to_event",
    "report_to_response",
    "error_response",
    "status_from_error",
]

#: Wire status codes — the CLI exit-code contract plus ``5`` (shed).
STATUS_OK = 0
STATUS_INTERNAL = 1
STATUS_USAGE = 2
STATUS_INVALID_INPUT = 3
STATUS_TIMEOUT = 4
STATUS_OVERLOADED = 5

#: Exception-type name (the prefix of ``SolveReport.error``) -> status.
#: Mirrors the CLI's exception-to-exit-code mapping in ``repro.cli.main``.
_ERROR_STATUS = {
    "BudgetExpired": STATUS_TIMEOUT,
    "InvalidInstanceError": STATUS_INVALID_INPUT,
    "JSONDecodeError": STATUS_INVALID_INPUT,
    "OSError": STATUS_INVALID_INPUT,
    "FeasibilityError": STATUS_INTERNAL,
    "ValueError": STATUS_USAGE,
    "KeyError": STATUS_USAGE,
    "TypeError": STATUS_USAGE,
}

#: Envelope fields a ``solve`` request may carry besides ``op``/``id``.
_SOLVE_FIELDS = frozenset(
    {"instance", "family", "algorithm", "eps", "seed", "timeout_s",
     "guarantee", "variant", "backend", "partition", "use_cache", "label",
     "solution"}
)

#: Envelope fields an ``event`` request may carry besides ``op``/``id``.
_EVENT_FIELDS = frozenset(
    {"session", "instance", "events", "resolve", "timeout_s", "label"}
)

#: ``resolve`` sub-spec fields (solve options minus instance/timeout).
_RESOLVE_FIELDS = frozenset(
    {"family", "algorithm", "eps", "seed", "guarantee", "variant",
     "backend", "partition", "use_cache", "label"}
)


class ProtocolError(ValueError):
    """A malformed envelope; carries the wire status to answer with."""

    def __init__(self, status: int, message: str):
        self.status = status
        super().__init__(message)


def encode_line(obj: Dict[str, Any]) -> bytes:
    """One JSON object, compact separators, newline-terminated, UTF-8."""
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one wire line into an envelope dict.

    Raises :class:`ProtocolError` (status ``3``) on non-JSON input and
    (status ``2``) when the payload is not a JSON object.
    """
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(STATUS_INVALID_INPUT, f"malformed JSON line: {exc}")
    if not isinstance(obj, dict):
        raise ProtocolError(
            STATUS_USAGE, f"envelope must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def _parse_instance(payload: Any, family: str) -> Any:
    """Turn the envelope's ``instance`` field into an engine instance."""
    from repro.model.serialization import instance_from_dict

    if isinstance(payload, dict):
        return instance_from_dict(payload)
    if family == "knapsack":
        # Knapsack instances are ``(weights, profits, capacity)`` triples.
        if isinstance(payload, (list, tuple)) and len(payload) == 3:
            weights, profits, capacity = payload
            return (list(weights), list(profits), float(capacity))
        raise ProtocolError(
            STATUS_INVALID_INPUT,
            "knapsack instance must be a [weights, profits, capacity] triple",
        )
    raise ProtocolError(
        STATUS_INVALID_INPUT,
        f"instance must be a serialized instance object, got "
        f"{type(payload).__name__}",
    )


def envelope_to_request(envelope: Dict[str, Any]) -> SolveRequest:
    """Validate a ``solve`` envelope and build the engine request.

    Raises :class:`ProtocolError` with the right wire status on any
    malformed field; instance deserialization errors surface as the typed
    ``InvalidInstanceError`` the server maps to status ``3``.
    """
    unknown = set(envelope) - _SOLVE_FIELDS - {"op", "id"}
    if unknown:
        raise ProtocolError(
            STATUS_USAGE, f"unknown envelope field(s): {sorted(unknown)}"
        )
    if "instance" not in envelope:
        raise ProtocolError(STATUS_USAGE, "solve envelope missing 'instance'")
    family = envelope.get("family", "auto")
    try:
        timeout_s = envelope.get("timeout_s")
        request = SolveRequest(
            instance=_parse_instance(envelope["instance"], family),
            family=str(family),
            algorithm=str(envelope.get("algorithm", "auto")),
            eps=float(envelope.get("eps", 1.0)),
            seed=int(envelope.get("seed", 0)),
            timeout_s=None if timeout_s is None else float(timeout_s),
            guarantee=(
                None if envelope.get("guarantee") is None
                else float(envelope["guarantee"])
            ),
            variant=str(envelope.get("variant", "overlap")),
            backend=str(envelope.get("backend", "auto")),
            partition=str(envelope.get("partition", "auto")),
            use_cache=bool(envelope.get("use_cache", True)),
            label=str(envelope.get("label", "")),
        )
    except (ValueError, TypeError) as exc:
        if isinstance(exc, ProtocolError):
            raise
        raise ProtocolError(STATUS_USAGE, f"bad envelope field: {exc}")
    if request.timeout_s is not None and request.timeout_s < 0:
        raise ProtocolError(STATUS_USAGE, "timeout_s must be non-negative")
    return request


def envelope_to_event(envelope: Dict[str, Any]):
    """Validate an ``event`` envelope and build the service request.

    Grammar (``docs/ONLINE.md``): ``session`` (required string) names the
    delta session; ``instance`` (optional serialized instance) opens or
    rebinds it; ``events`` (optional list) carries add/remove/update event
    objects; ``resolve`` (optional object of solve options) requests a
    solve of the post-event instance in the same round trip.  Malformed
    structure raises :class:`ProtocolError` (status ``2``); instance
    payload errors surface as ``InvalidInstanceError`` (status ``3``).
    """
    from repro.online.delta import event_from_dict
    from repro.service.events import EventRequest

    unknown = set(envelope) - _EVENT_FIELDS - {"op", "id"}
    if unknown:
        raise ProtocolError(
            STATUS_USAGE, f"unknown envelope field(s): {sorted(unknown)}"
        )
    session = envelope.get("session")
    if not isinstance(session, str) or not session:
        raise ProtocolError(
            STATUS_USAGE, "event envelope requires a non-empty string 'session'"
        )
    open_instance = None
    if envelope.get("instance") is not None:
        open_instance = _parse_instance(envelope["instance"], "auto")
    raw_events = envelope.get("events", [])
    if not isinstance(raw_events, list):
        raise ProtocolError(STATUS_USAGE, "'events' must be a list of objects")
    try:
        events = tuple(event_from_dict(e) for e in raw_events)
    except ValueError as exc:
        raise ProtocolError(STATUS_USAGE, str(exc))
    resolve = envelope.get("resolve")
    if resolve is not None:
        if not isinstance(resolve, dict):
            raise ProtocolError(STATUS_USAGE, "'resolve' must be an object")
        bad = set(resolve) - _RESOLVE_FIELDS
        if bad:
            raise ProtocolError(
                STATUS_USAGE, f"unknown resolve field(s): {sorted(bad)}"
            )
    timeout_s = envelope.get("timeout_s")
    if timeout_s is not None:
        timeout_s = float(timeout_s)
        if timeout_s < 0:
            raise ProtocolError(STATUS_USAGE, "timeout_s must be non-negative")
    return EventRequest(
        session=session,
        events=events,
        open_instance=open_instance,
        resolve=resolve,
        timeout_s=timeout_s,
        label=str(envelope.get("label", "")),
    )


def status_from_error(error: Optional[str]) -> int:
    """Map a ``SolveReport.error`` string (``"ExcType: msg"``) to a status."""
    if not error:
        return STATUS_OK
    exc_type = error.split(":", 1)[0].strip()
    return _ERROR_STATUS.get(exc_type, STATUS_INTERNAL)


def _serialize_solution(solution: Any) -> Optional[Dict[str, Any]]:
    """Best-effort solution payload (angle/sector solutions only)."""
    from repro.model.serialization import solution_to_dict
    from repro.model.solution import AngleSolution, SectorSolution

    if isinstance(solution, (AngleSolution, SectorSolution)):
        return solution_to_dict(solution)
    return None


def report_to_response(
    request_id: Any,
    report: SolveReport,
    batch_size: int = 1,
    include_solution: bool = False,
) -> Dict[str, Any]:
    """Render a :class:`SolveReport` as a wire response envelope.

    ``batch_size`` is how many requests rode the same ``solve_many``
    dispatch (1 for a cache hit) — the observable the coalescing tests
    and the bench read.  ``include_solution`` attaches the serialized
    solution for angle/sector families (other families' native results
    are summarized by ``value``/``extra`` only).
    """
    status = status_from_error(report.error)
    response: Dict[str, Any] = {
        "id": request_id,
        "status": status,
        "family": report.family,
        "algorithm": report.algorithm,
        "value": float(report.value),
        "seconds": float(report.seconds),
        "cached": bool(report.cached),
        "planned": bool(report.planned),
        "batch_size": int(batch_size),
        "extra": report.extra,
        "error": report.error,
    }
    if report.label:
        response["label"] = report.label
    if include_solution and report.error is None:
        response["solution"] = _serialize_solution(report.solution)
    return response


def error_response(request_id: Any, status: int, message: str,
                   **fields: Any) -> Dict[str, Any]:
    """A failure envelope with no report behind it (shed, malformed...).

    Extra keyword ``fields`` are merged into the envelope so structured
    context (e.g. the byte ``limit`` on an oversized-line rejection) rides
    along machine-readably instead of being baked into the message text;
    the reserved ``id``/``status``/``error`` keys cannot be overridden.
    """
    response = dict(fields)
    response.update({"id": request_id, "status": int(status), "error": message})
    return response
