"""Exponential exact solvers: the ground truth for ratio certification.

Two layers:

* :func:`solve_exact_fixed_orientations` -- optimal *assignment* for frozen
  orientations (a coverage-restricted multiple knapsack), by depth-first
  branch & bound over customers with a fractional relaxation bound.
* :func:`solve_exact_angle` -- optimal solution overall, by enumerating
  canonical orientation tuples (deduplicated by coverage, symmetric tuples
  collapsed for identical antennas) and running the assignment B&B on each
  surviving tuple after cheap-bound pruning.

Intended for small instances (roughly ``n <= 20``, ``k <= 3``); both
functions guard their search budget and raise ``RuntimeError`` rather than
run away.  Every experiment that reports an approximation *ratio* against
OPT uses these solvers as the denominator.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.arcs import Arc, arcs_pairwise_disjoint
from repro.geometry.sweep import CircularSweep
from repro.model.instance import AngleInstance
from repro.model.solution import AngleSolution
from repro.packing.canonical import rotation_candidates
from repro.packing.flow import covered_matrix


def exact_assignment(
    cover: np.ndarray,
    demands: np.ndarray,
    profits: np.ndarray,
    capacities: np.ndarray,
    max_nodes: int = 2_000_000,
) -> np.ndarray:
    """Optimal coverage-restricted multiple-knapsack assignment by B&B.

    The geometry-agnostic core shared by the 1-D and 2-D exact solvers:
    ``cover`` is the boolean eligibility matrix (customer x bin), and the
    return is an ``(n,)`` bin index array (``-1`` = rejected).  Customers
    are branched in decreasing demand order; the pruning bound is the
    fractional optimum of the remaining customers into the pooled
    remaining capacity.  Raises ``RuntimeError`` past ``max_nodes``.
    """
    n = cover.shape[0]
    assignment = np.full(n, -1, dtype=np.int64)
    coverable = np.flatnonzero(cover.any(axis=1))
    if coverable.size == 0:
        return assignment

    # Branch order: decreasing demand (big rocks first).
    order = coverable[np.argsort(-demands[coverable], kind="stable")]
    d = demands[order]
    p = profits[order]
    cov = cover[order]
    m = order.size

    # For the fractional suffix bound: items sorted by density once.
    dens_order_global = np.argsort(-(p / d), kind="stable")

    def suffix_fractional(t: int, cap_total: float) -> float:
        """Fractional optimum of items t.. into pooled capacity."""
        bound = 0.0
        rem = cap_total
        for idx in dens_order_global:
            if idx < t:
                continue
            if rem <= 1e-15:
                break
            if d[idx] <= rem:
                bound += p[idx]
                rem -= d[idx]
            else:
                bound += p[idx] * (rem / d[idx])
                rem = 0.0
        return bound

    caps0 = np.asarray(capacities, dtype=np.float64)
    best_value = -1.0
    best_assign = np.full(m, -1, dtype=np.int64)
    nodes = 0
    cur = np.full(m, -1, dtype=np.int64)

    def dfs(t: int, caps: np.ndarray, value: float) -> None:
        nonlocal best_value, best_assign, nodes
        nodes += 1
        if nodes > max_nodes:
            raise RuntimeError(
                f"exact assignment exceeded {max_nodes} nodes; instance too large"
            )
        if value > best_value:
            best_value = value
            best_assign = cur.copy()
        if t >= m:
            return
        if value + suffix_fractional(t, float(caps.sum())) <= best_value + 1e-12:
            return
        # assign branches (most room first), then reject
        for j in np.argsort(-caps, kind="stable"):
            if cov[t, j] and d[t] <= caps[j] * (1.0 + 1e-12):
                caps[j] -= d[t]
                cur[t] = j
                dfs(t + 1, caps, value + p[t])
                cur[t] = -1
                caps[j] += d[t]
        dfs(t + 1, caps, value)

    dfs(0, caps0.copy(), 0.0)
    assignment[order] = best_assign
    return assignment


def solve_exact_fixed_orientations(
    instance: AngleInstance,
    orientations: Sequence[float] | np.ndarray,
    max_nodes: int = 2_000_000,
    disabled: Optional[Sequence[int]] = None,
) -> AngleSolution:
    """Optimal assignment for frozen orientations by branch & bound.

    The 1-D front end of :func:`exact_assignment`: builds the arc coverage
    matrix, masks ``disabled`` antennas (used by the non-overlapping
    enumeration to model switched-off beams), and runs the shared B&B.
    """
    ori = np.asarray(orientations, dtype=np.float64).reshape(-1)
    cover = covered_matrix(instance, ori)
    if disabled is not None:
        for j in disabled:
            cover[:, int(j)] = False
    assignment = exact_assignment(
        cover, instance.demands, instance.profits, instance.capacities, max_nodes
    )
    return AngleSolution(orientations=ori, assignment=assignment)


def _orientation_candidates(
    instance: AngleInstance, require_disjoint: bool
) -> List[List[float]]:
    """Candidate orientations per antenna, deduplicated by coverage."""
    if require_disjoint:
        grid = rotation_candidates(
            instance.thetas, [a.rho for a in instance.antennas]
        )
    else:
        grid = None
    out: List[List[float]] = []
    sweeps: dict = {}
    for spec in instance.antennas:
        if spec.rho not in sweeps:
            sweeps[spec.rho] = CircularSweep(instance.thetas, spec.rho)
        sweep = sweeps[spec.rho]
        starts: List[float] = []
        seen: set = set()
        if grid is None:
            ids = sweep.unique_window_ids()
            windows = [sweep.window(int(i)) for i in ids]
        else:
            windows = [sweep.window_at(float(s)) for s in grid]
        for w in windows:
            key = (w.lo % max(sweep.n, 1), w.hi - w.lo) if grid is None else (
                round(w.start, 12),
            )
            if key in seen:
                continue
            seen.add(key)
            starts.append(w.start)
        if not starts:
            starts.append(0.0)
        out.append(starts)
    return out


def solve_exact_angle(
    instance: AngleInstance,
    require_disjoint: bool = False,
    max_tuples: int = 500_000,
    max_nodes_per_tuple: int = 500_000,
) -> AngleSolution:
    """Globally optimal solution by orientation enumeration + exact assignment.

    ``require_disjoint=True`` solves the non-overlapping variant exactly
    (enumerating over the enriched candidate grid and discarding
    overlapping tuples).  Raises ``RuntimeError`` when the enumeration
    exceeds ``max_tuples``.
    """
    n, k = instance.n, instance.k
    if n == 0:
        return AngleSolution.empty(instance)
    cand = _orientation_candidates(instance, require_disjoint)
    # In the disjoint variant an antenna may be switched OFF (idle beams do
    # not radiate), represented by candidate ``None``.
    if require_disjoint:
        cand = [c + [None] for c in cand]

    identical = instance.has_uniform_antennas
    sizes = [len(c) for c in cand]
    if identical:
        total = 1
        for t in range(k):
            total = total * (sizes[0] + t) // (t + 1)  # C(s + k - 1, k)
    else:
        total = int(np.prod([float(s) for s in sizes]))
    if total > max_tuples:
        raise RuntimeError(
            f"orientation enumeration needs {total} tuples > cap {max_tuples}"
        )

    if identical:
        tuples = itertools.combinations_with_replacement(cand[0], k)
    else:
        tuples = itertools.product(*cand)

    best: Optional[AngleSolution] = None
    best_value = -1.0
    # Cheap per-tuple bound pieces.
    sweeps: dict = {}
    for spec in instance.antennas:
        if spec.rho not in sweeps:
            sweeps[spec.rho] = CircularSweep(instance.thetas, spec.rho)

    for tup in tuples:
        off = [j for j, t in enumerate(tup) if t is None]
        ori = np.asarray(
            [0.0 if t is None else float(t) for t in tup], dtype=np.float64
        )
        active = [j for j in range(k) if j not in off]
        arcs = [Arc(float(ori[j]), instance.antennas[j].rho) for j in active]
        if require_disjoint and not arcs_pairwise_disjoint(arcs):
            continue
        # Cheap upper bound: per-antenna min(capacity * best density,
        # covered profit), and globally the profit of the covered union.
        union_mask = np.zeros(n, dtype=bool)
        per_antenna = 0.0
        for j in active:
            w = sweeps[instance.antennas[j].rho].window_at(float(ori[j]))
            covered = w.indices
            union_mask[covered] = True
            if covered.size:
                dens = float(
                    (instance.profits[covered] / instance.demands[covered]).max()
                )
                per_antenna += min(
                    float(instance.profits[covered].sum()),
                    dens * instance.antennas[j].capacity,
                )
        bound = min(per_antenna, float(instance.profits[union_mask].sum()))
        if bound <= best_value + 1e-12:
            continue
        sol = solve_exact_fixed_orientations(
            instance, ori, max_nodes=max_nodes_per_tuple, disabled=off or None
        )
        v = sol.value(instance)
        if v > best_value:
            best, best_value = sol, v
    assert best is not None
    return best
