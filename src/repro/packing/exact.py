"""Exponential exact solvers: the ground truth for ratio certification.

Two layers:

* :func:`solve_exact_fixed_orientations` -- optimal *assignment* for frozen
  orientations (a coverage-restricted multiple knapsack), by depth-first
  branch & bound over customers with a fractional relaxation bound.
* :func:`solve_exact_angle` -- optimal solution overall, by enumerating
  canonical orientation tuples (deduplicated by coverage, symmetric tuples
  collapsed for identical antennas) and running the assignment B&B on each
  surviving tuple after cheap-bound pruning.

Intended for small instances (roughly ``n <= 20``, ``k <= 3``); both
functions guard their search budget and raise ``RuntimeError`` rather than
run away.  Every experiment that reports an approximation *ratio* against
OPT uses these solvers as the denominator.

For larger instances, :func:`solve_exact_anytime` runs the same search
under a cooperative :class:`~repro.resilience.budget.Budget` and returns
an :class:`~repro.resilience.anytime.AnytimeOutcome` — the best incumbent
found plus a *certified* lower/upper bound — instead of hanging or dying
(the resilience contract, ``docs/RESILIENCE.md``).
"""

from __future__ import annotations

import itertools
import time
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.arcs import Arc, arcs_pairwise_disjoint
from repro.model.instance import AngleInstance
from repro.model.solution import AngleSolution
from repro.numerics import fits
from repro.obs.metrics import get_registry
from repro.packing.flow import covered_matrix
from repro.resilience.anytime import AnytimeOutcome
from repro.resilience.budget import Budget, BudgetExpired, current_budget

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.compiled import CompiledAngleInstance

# Anytime-solve telemetry (contract: docs/RESILIENCE.md).
_REG = get_registry()
_ANYTIME_SOLVES = _REG.counter("resilience.anytime_solves")
_ANYTIME_GAP = _REG.gauge("resilience.anytime_gap")

#: Check the budget only every this many B&B nodes (amortization).
_BUDGET_STRIDE = 256


def exact_assignment(
    cover: np.ndarray,
    demands: np.ndarray,
    profits: np.ndarray,
    capacities: np.ndarray,
    max_nodes: int = 2_000_000,
    budget: Optional[Budget] = None,
) -> np.ndarray:
    """Optimal coverage-restricted multiple-knapsack assignment by B&B.

    The geometry-agnostic core shared by the 1-D and 2-D exact solvers:
    ``cover`` is the boolean eligibility matrix (customer x bin), and the
    return is an ``(n,)`` bin index array (``-1`` = rejected).  Customers
    are branched in decreasing demand order; the pruning bound is the
    fractional optimum of the remaining customers into the pooled
    remaining capacity.  Raises ``RuntimeError`` past ``max_nodes``.

    Under a ``budget`` (explicit, falling back to the thread's ambient
    one) the search checkpoints every ``_BUDGET_STRIDE`` nodes; on expiry
    it raises :class:`BudgetExpired` with the best incumbent so far and
    the root fractional bound attached (``exc.incumbent`` /
    ``exc.incumbent_value`` / ``exc.upper_bound``).
    """
    if budget is None:
        budget = current_budget()
    n = cover.shape[0]
    assignment = np.full(n, -1, dtype=np.int64)
    coverable = np.flatnonzero(cover.any(axis=1))
    if coverable.size == 0:
        return assignment

    # Branch order: decreasing demand (big rocks first).
    order = coverable[np.argsort(-demands[coverable], kind="stable")]
    d = demands[order]
    p = profits[order]
    cov = cover[order]
    m = order.size

    # For the fractional suffix bound: items sorted by density once.
    dens_order_global = np.argsort(-(p / d), kind="stable")

    def suffix_fractional(t: int, cap_total: float) -> float:
        """Fractional optimum of items t.. into pooled capacity."""
        bound = 0.0
        rem = cap_total
        for idx in dens_order_global:
            if idx < t:
                continue
            if rem <= 1e-15:
                break
            if d[idx] <= rem:
                bound += p[idx]
                rem -= d[idx]
            else:
                bound += p[idx] * (rem / d[idx])
                rem = 0.0
        return bound

    caps0 = np.asarray(capacities, dtype=np.float64)
    best_value = -1.0
    best_assign = np.full(m, -1, dtype=np.int64)
    nodes = 0
    cur = np.full(m, -1, dtype=np.int64)

    def dfs(t: int, caps: np.ndarray, value: float) -> None:
        nonlocal best_value, best_assign, nodes
        nodes += 1
        if nodes > max_nodes:
            raise RuntimeError(
                f"exact assignment exceeded {max_nodes} nodes; instance too large"
            )
        if budget is not None and nodes % _BUDGET_STRIDE == 0:
            budget.tick(_BUDGET_STRIDE)
        if value > best_value:
            best_value = value
            best_assign = cur.copy()
        if t >= m:
            return
        if value + suffix_fractional(t, float(caps.sum())) <= best_value + 1e-12:
            return
        # assign branches (most room first), then reject
        for j in np.argsort(-caps, kind="stable"):
            if cov[t, j] and fits(d[t], caps[j]):
                caps[j] -= d[t]
                cur[t] = j
                dfs(t + 1, caps, value + p[t])
                cur[t] = -1
                caps[j] += d[t]
        dfs(t + 1, caps, value)

    try:
        dfs(0, caps0.copy(), 0.0)
    except BudgetExpired as exc:
        # Anytime semantics: hand the caller the incumbent + a certified
        # upper bound (the root fractional relaxation) along with the
        # expiry, so partial work is never thrown away.
        partial = assignment.copy()
        partial[order] = best_assign
        exc.incumbent = partial
        exc.incumbent_value = max(best_value, 0.0)
        exc.upper_bound = suffix_fractional(0, float(caps0.sum()))
        raise
    assignment[order] = best_assign
    return assignment


def solve_exact_fixed_orientations(
    instance: AngleInstance,
    orientations: Sequence[float] | np.ndarray,
    max_nodes: int = 2_000_000,
    disabled: Optional[Sequence[int]] = None,
    budget: Optional[Budget] = None,
) -> AngleSolution:
    """Optimal assignment for frozen orientations by branch & bound.

    The 1-D front end of :func:`exact_assignment`: builds the arc coverage
    matrix, masks ``disabled`` antennas (used by the non-overlapping
    enumeration to model switched-off beams), and runs the shared B&B.
    """
    ori = np.asarray(orientations, dtype=np.float64).reshape(-1)
    cover = covered_matrix(instance, ori)
    if disabled is not None:
        for j in disabled:
            cover[:, int(j)] = False
    assignment = exact_assignment(
        cover,
        instance.demands,
        instance.profits,
        instance.capacities,
        max_nodes,
        budget=budget,
    )
    return AngleSolution(orientations=ori, assignment=assignment)


def _orientation_candidates(
    instance: AngleInstance,
    require_disjoint: bool,
    compiled: "CompiledAngleInstance",
) -> List[List[float]]:
    """Candidate orientations per antenna, deduplicated by coverage."""
    grid = compiled.candidates() if require_disjoint else None
    out: List[List[float]] = []
    for spec in instance.antennas:
        sweep = compiled.sweep(spec.rho)
        starts: List[float] = []
        seen: set = set()
        if grid is None:
            ids = sweep.unique_window_ids()
            windows = [sweep.window(int(i)) for i in ids]
        else:
            windows = [sweep.window_at(float(s)) for s in grid]
        for w in windows:
            key = (w.lo % max(sweep.n, 1), w.hi - w.lo) if grid is None else (
                round(w.start, 12),
            )
            if key in seen:
                continue
            seen.add(key)
            starts.append(w.start)
        if not starts:
            starts.append(0.0)
        out.append(starts)
    return out


def _enumerate_exact(
    instance: AngleInstance,
    require_disjoint: bool,
    max_tuples: Optional[int],
    max_nodes_per_tuple: int,
    budget: Optional[Budget],
    seed: Optional[AngleSolution],
    seed_value: float,
    compiled: Optional["CompiledAngleInstance"] = None,
) -> Tuple[Optional[AngleSolution], float, int]:
    """Shared enumeration core of the exact and anytime front ends.

    Walks the (lazy) tuple enumeration, keeping the best solution seen,
    starting from an optional incumbent ``seed``.  Returns ``(best,
    best_value, tuples_solved)`` on completion.  On budget expiry it
    raises :class:`BudgetExpired` with the overall incumbent attached
    (``exc.incumbent`` is an :class:`AngleSolution` or ``None``), after
    folding in any partial assignment the interrupted inner B&B produced.
    ``max_tuples=None`` disables the enumeration-size guard (only valid
    together with a budget).
    """
    n, k = instance.n, instance.k
    compiled = instance.compile() if compiled is None else compiled
    cand = _orientation_candidates(instance, require_disjoint, compiled)
    # In the disjoint variant an antenna may be switched OFF (idle beams do
    # not radiate), represented by candidate ``None``.
    if require_disjoint:
        cand = [c + [None] for c in cand]

    identical = instance.has_uniform_antennas
    sizes = [len(c) for c in cand]
    if identical:
        total = 1
        for t in range(k):
            total = total * (sizes[0] + t) // (t + 1)  # C(s + k - 1, k)
    else:
        total = int(np.prod([float(s) for s in sizes]))
    if max_tuples is not None and total > max_tuples:
        raise RuntimeError(
            f"orientation enumeration needs {total} tuples > cap {max_tuples}"
        )

    if identical:
        tuples = itertools.combinations_with_replacement(cand[0], k)
    else:
        tuples = itertools.product(*cand)

    best: Optional[AngleSolution] = seed
    best_value = seed_value
    solved = 0
    # Cheap per-tuple bound pieces (memoized per width on the compiled view).
    sweeps = {spec.rho: compiled.sweep(spec.rho) for spec in instance.antennas}

    for tup in tuples:
        off = [j for j, t in enumerate(tup) if t is None]
        ori = np.asarray(
            [0.0 if t is None else float(t) for t in tup], dtype=np.float64
        )
        active = [j for j in range(k) if j not in off]
        arcs = [Arc(float(ori[j]), instance.antennas[j].rho) for j in active]
        if require_disjoint and not arcs_pairwise_disjoint(arcs):
            continue
        # Cheap upper bound: per-antenna min(capacity * best density,
        # covered profit), and globally the profit of the covered union.
        union_mask = np.zeros(n, dtype=bool)
        per_antenna = 0.0
        for j in active:
            w = sweeps[instance.antennas[j].rho].window_at(float(ori[j]))
            covered = w.indices
            union_mask[covered] = True
            if covered.size:
                dens = float(
                    (instance.profits[covered] / instance.demands[covered]).max()
                )
                per_antenna += min(
                    float(instance.profits[covered].sum()),
                    dens * instance.antennas[j].capacity,
                )
        bound = min(per_antenna, float(instance.profits[union_mask].sum()))
        if bound <= best_value + 1e-12:
            continue
        try:
            if budget is not None:
                budget.checkpoint()
            sol = solve_exact_fixed_orientations(
                instance,
                ori,
                max_nodes=max_nodes_per_tuple,
                disabled=off or None,
                budget=budget,
            )
        except BudgetExpired as exc:
            # The interrupted inner B&B respects the coverage mask, so its
            # partial assignment is feasible for this tuple — fold it in.
            if exc.incumbent is not None:
                partial = AngleSolution(orientations=ori, assignment=exc.incumbent)
                v = partial.value(instance)
                if v > best_value:
                    best, best_value = partial, v
            exc.incumbent = best
            exc.incumbent_value = max(best_value, 0.0)
            exc.upper_bound = None
            raise
        solved += 1
        v = sol.value(instance)
        if v > best_value:
            best, best_value = sol, v
    return best, best_value, solved


def solve_exact_angle(
    instance: AngleInstance,
    require_disjoint: bool = False,
    max_tuples: int = 500_000,
    max_nodes_per_tuple: int = 500_000,
    budget: Optional[Budget] = None,
    compiled: Optional["CompiledAngleInstance"] = None,
) -> AngleSolution:
    """Globally optimal solution by orientation enumeration + exact assignment.

    ``require_disjoint=True`` solves the non-overlapping variant exactly
    (enumerating over the enriched candidate grid and discarding
    overlapping tuples).  Raises ``RuntimeError`` when the enumeration
    exceeds ``max_tuples``, and :class:`BudgetExpired` (with the incumbent
    attached) when the explicit or ambient budget runs out — callers that
    want a *result* under a budget use :func:`solve_exact_anytime`.
    """
    if instance.n == 0:
        return AngleSolution.empty(instance)
    if budget is None:
        budget = current_budget()
    best, _, _ = _enumerate_exact(
        instance,
        require_disjoint,
        max_tuples,
        max_nodes_per_tuple,
        budget,
        seed=None,
        seed_value=-1.0,
        compiled=compiled,
    )
    assert best is not None
    return best


def solve_exact_anytime(
    instance: AngleInstance,
    budget: Optional[Budget] = None,
    require_disjoint: bool = False,
    max_nodes_per_tuple: int = 500_000,
    max_tuples: Optional[int] = 500_000,
    compiled: Optional["CompiledAngleInstance"] = None,
) -> AnytimeOutcome:
    """Budget-bounded exact solve with certified bounds (never hangs).

    Runs the same enumeration as :func:`solve_exact_angle` under
    ``budget`` (explicit, else the thread's ambient one) and *always*
    returns an :class:`AnytimeOutcome`:

    * the incumbent is seeded with the greedy multi-knapsack solution, so
      the returned value is never below the greedy lower bound;
    * ``upper_bound`` is the certified cheap bound
      (:func:`~repro.packing.bounds.combined_upper_bound`), tightened to
      the exact value when the search completes;
    * on expiry the best incumbent found so far is returned with
      ``optimal=False`` and the expiry reason.

    With a budget the ``max_tuples`` guard is lifted (pass a budget on
    anything beyond toy sizes; the deadline bounds the work instead).
    """
    from repro.knapsack import get_solver
    from repro.packing.bounds import combined_upper_bound
    from repro.packing.multi import solve_greedy_multi

    t0 = time.perf_counter()
    _ANYTIME_SOLVES.inc()
    if budget is None:
        budget = current_budget()
    if instance.n == 0:
        empty = AngleSolution.empty(instance)
        return AnytimeOutcome(empty, 0.0, 0.0, True, "complete", {"tuples": 0})

    ub = float(combined_upper_bound(instance))
    # Greedy seed: a feasible incumbent before any exact work happens (for
    # the disjoint variant greedy arcs may overlap, so start empty there).
    if require_disjoint:
        seed: AngleSolution = AngleSolution.empty(instance)
    else:
        seed = solve_greedy_multi(instance, get_solver("greedy"), compiled=compiled)
    seed_value = seed.value(instance)

    reason, optimal = "complete", True
    solved = 0
    try:
        best, value, solved = _enumerate_exact(
            instance,
            require_disjoint,
            None if budget is not None else max_tuples,
            max_nodes_per_tuple,
            budget,
            seed=seed,
            seed_value=seed_value,
            compiled=compiled,
        )
    except BudgetExpired as exc:
        best = exc.incumbent if exc.incumbent is not None else seed
        value = float(exc.incumbent_value or seed_value)
        reason, optimal = exc.reason, False
    assert best is not None
    if optimal:
        # The search certified OPT: collapse the bracket onto the value.
        ub = value
    lower = min(float(value), ub)
    _ANYTIME_GAP.set((ub - lower) / ub if ub > 0 else 0.0)
    return AnytimeOutcome(
        solution=best,
        lower_bound=lower,
        upper_bound=ub,
        optimal=optimal,
        reason=reason,
        stats={"tuples": int(solved), "seconds": time.perf_counter() - t0},
    )
