"""Canonical orientations: the rotation lemma.

**Lemma (single arc).**  For any arc ``A = [alpha, alpha + rho]`` and any
set ``S`` of customers covered by ``A``, there is a customer angle
``theta_i`` such that the arc ``A' = [theta_i, theta_i + rho]`` covers all
of ``S``.

*Proof.*  If ``S`` is empty any customer angle works (or the arc is
irrelevant).  Otherwise let ``theta_i`` be the angle of the customer of
``S`` closest to ``alpha`` in counter-clockwise direction, i.e. minimizing
``ccw_delta(alpha, theta_i)``.  Every customer of ``S`` lies in
``[alpha, alpha + rho]`` at ccw-offset at least ``ccw_delta(alpha,
theta_i)`` from ``alpha``; shifting the window start forward to
``theta_i`` therefore keeps each of them inside: their offset from the new
start is the old offset minus ``ccw_delta(alpha, theta_i) >= 0`` and still
``<= rho``.  ∎

Consequently a single antenna only ever needs the ``n`` *canonical*
orientations ``{theta_1, ..., theta_n}``; this is what makes the sweep
solvers polynomial.

**Non-overlapping variant.**  When several arcs must be pairwise disjoint
the lemma does not apply arc-by-arc (rotating one arc can collide with the
next).  The correct canonical grid is larger: rotate all arcs counter-
clockwise simultaneously; an arc stops when its start reaches a covered
customer, and arcs behind/ahead of it stack end-to-start against it.  With
identical widths ``rho`` a stacked arc's start is a customer angle plus an
integer multiple ``j`` of ``rho`` with ``|j| <= k - 1``, giving the grid
``{theta_i + j * rho}`` of size ``n * (2k - 1)`` used by
:func:`rotation_candidates`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.geometry.angles import TWO_PI, normalize_angles


def canonical_starts(thetas: Sequence[float] | np.ndarray) -> np.ndarray:
    """Distinct customer angles, sorted ascending.

    These are the canonical window starts for a *single* arc (or any number
    of arcs that may overlap freely).  Returns ``[0.0]`` for an empty
    instance so callers always have at least one orientation to use.
    """
    arr = normalize_angles(np.asarray(thetas, dtype=np.float64))
    if arr.size == 0:
        return np.array([0.0])
    return np.unique(arr)


def rotation_candidates(
    thetas: Sequence[float] | np.ndarray,
    widths: Sequence[float] | float,
    stacking: Optional[int] = None,
) -> np.ndarray:
    """Candidate starts for the *non-overlapping* multi-arc variant.

    Parameters
    ----------
    thetas:
        Customer angles.
    widths:
        Either a single width (identical antennas) or the per-antenna
        widths.  Identical widths produce the grid
        ``{theta_i + j * rho : |j| <= stacking}``; heterogeneous widths
        use all signed subset-sums of the widths as offsets (feasible for
        small antenna counts only).
    stacking:
        Maximum number of arcs that can stack against an aligned arc;
        defaults to ``k - 1`` where ``k`` is the number of widths given
        (or 1 when a scalar width is passed).

    Returns the sorted unique candidate start angles.
    """
    base = canonical_starts(thetas)
    if np.isscalar(widths):
        width_list = [float(widths)]
        k = 1 if stacking is None else stacking + 1
    else:
        width_list = [float(w) for w in widths]  # type: ignore[union-attr]
        k = len(width_list)
    if k <= 1 and stacking in (None, 0):
        return base
    uniform = len(set(width_list)) == 1
    if uniform:
        rho = width_list[0]
        s = (k - 1) if stacking is None else stacking
        js = np.arange(-s, s + 1)
        grid = (base[:, None] + js[None, :] * rho).ravel()
    else:
        if len(width_list) > 10:
            raise ValueError(
                "heterogeneous rotation candidates are exponential in k; "
                f"got k={len(width_list)} > 10"
            )
        offsets = {0.0}
        for w in width_list:
            offsets |= {o + w for o in offsets} | {o - w for o in offsets}
        off = np.array(sorted(offsets))
        grid = (base[:, None] + off[None, :]).ravel()
    return np.unique(normalize_angles(grid))
