"""Multi-antenna solvers for packing to angles.

Two complementary algorithms:

**Greedy multi-knapsack** (:func:`solve_greedy_multi`).  Antennas are
processed one at a time; each solves a single-antenna rotation search
(:func:`~repro.packing.single.best_rotation`) over the *remaining*
customers and keeps what it packs.  This is the greedy algorithm for
separable assignment problems (Fleischer–Goemans–Mirrokni–Sviridenko):
with a ``beta``-approximate single-antenna oracle the result is a
``beta / (1 + beta)``-approximation of the overall optimum — ``1/2`` with
an exact oracle, ``(1-eps)/(2-eps)`` with the FPTAS.  The *adaptive*
variant re-evaluates every unused antenna each round and commits the best
(never worse in practice, same guarantee).

**Non-overlapping circular DP** (:func:`solve_non_overlapping_dp`).  For
the variant where active arcs must be pairwise interior-disjoint.  Window
profits over the enriched candidate grid
(:func:`~repro.packing.canonical.rotation_candidates`) are precomputed
with the knapsack oracle over *half-open* windows ``[s, s + rho)`` — so
stacked windows sharing a boundary never both claim a boundary customer —
and a cyclic DP then selects the best feasible set of (window, antenna)
placements.  Because chosen arcs are disjoint and coverages half-open,
the per-window packings compose exactly, so the DP is optimal *for this
variant* up to the oracle's factor (the only loss is the measure-zero
case of a customer exactly ``rho`` past a window start that no other
window can serve).  For identical antennas the DP runs in ``O(|S|^2 k)``; for
heterogeneous antennas it tracks a bitmask of used antennas
(``O(|S|^2 2^k k)``, small ``k`` only).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.angles import TWO_PI, ccw_delta
from repro.knapsack.api import KnapsackSolver
from repro.model.instance import AngleInstance
from repro.model.solution import AngleSolution
from repro.numerics import fits
from repro.obs import span
from repro.obs.metrics import get_registry
from repro.packing.single import best_rotation
from repro.resilience.budget import checkpoint as _budget_checkpoint
from repro.resilience.budget import tick_nodes as _budget_tick

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.compiled import CompiledAngleInstance

# Solver-level telemetry (contract: docs/OBSERVABILITY.md).
_REG = get_registry()
_GM_TIMER = _REG.timer("solver.greedy_multi")
_GM_ROUNDS = _REG.counter("solver.greedy_multi.rounds")
_DP_TIMER = _REG.timer("solver.non_overlapping_dp")
_DP_TABLES = _REG.timer("phase.dp.profit_tables")
_DP_SEARCH = _REG.timer("phase.dp.search")
_DP_ASSEMBLE = _REG.timer("phase.dp.assemble")


def solve_greedy_multi(
    instance: AngleInstance,
    oracle: KnapsackSolver,
    adaptive: bool = False,
    antenna_order: Optional[Sequence[int]] = None,
    compiled: Optional["CompiledAngleInstance"] = None,
    backend: str = "python",
) -> AngleSolution:
    """Greedy multi-antenna packing; ``beta/(1+beta)``-approximation.

    Parameters
    ----------
    instance:
        The 1-D instance.
    oracle:
        Inner knapsack solver (its ``guarantee`` is ``beta``).
    adaptive:
        When true, every round evaluates *all* unused antennas and commits
        the best (k x more oracle work).  When false, antennas are
        processed in ``antenna_order`` (default: decreasing capacity).
    antenna_order:
        Explicit processing order for the non-adaptive mode.
    compiled:
        Shared precomputation view (defaults to ``instance.compile()``):
        the first round reuses its memoized full-instance sweeps and prefix
        sums, later rounds derive subset sweeps without re-sorting.
    backend:
        Rotation-scan implementation for every inner
        :func:`~repro.packing.single.best_rotation` call (``"python"`` or
        ``"numpy"``; value-identical — see ``docs/BACKENDS.md``).
    """
    n, k = instance.n, instance.k
    t0 = time.perf_counter()
    compiled = instance.compile() if compiled is None else compiled
    assignment = np.full(n, -1, dtype=np.int64)
    orientations = np.zeros(k, dtype=np.float64)
    remaining = np.ones(n, dtype=bool)

    if antenna_order is None:
        antenna_order = list(np.argsort([-a.capacity for a in instance.antennas]))
    else:
        antenna_order = list(antenna_order)
        if sorted(antenna_order) != list(range(k)):
            raise ValueError("antenna_order must be a permutation of range(k)")

    def run_rotation(j: int):
        spec = instance.antennas[j]
        idx = np.flatnonzero(remaining)
        if idx.size == n:
            out = best_rotation(
                instance.thetas,
                instance.demands,
                instance.profits,
                spec,
                oracle,
                sweep=compiled.sweep(spec.rho),
                demand_prefix=compiled.demand_prefix,
                profit_prefix=compiled.profit_prefix,
                backend=backend,
            )
        else:
            out = best_rotation(
                instance.thetas[idx],
                instance.demands[idx],
                instance.profits[idx],
                spec,
                oracle,
                sweep=compiled.subset_sweep(idx, spec.rho),
                backend=backend,
            )
        return out, idx

    rounds = 0
    with span("solver.greedy_multi", n=int(n), k=int(k),
              adaptive=bool(adaptive)) as sp:
        if not adaptive:
            for j in antenna_order:
                _budget_checkpoint()  # cooperative deadline (ambient budget)
                out, idx = run_rotation(j)
                rounds += 1
                chosen = idx[out.selected]
                assignment[chosen] = j
                orientations[j] = out.alpha
                remaining[chosen] = False
        else:
            unused = set(range(k))
            while unused:
                best_j, best_out, best_idx = -1, None, None
                for j in sorted(unused):
                    _budget_checkpoint()  # cooperative deadline (ambient budget)
                    out, idx = run_rotation(j)
                    if best_out is None or out.value > best_out.value:
                        best_j, best_out, best_idx = j, out, idx
                assert best_out is not None and best_idx is not None
                rounds += 1
                if best_out.value <= 0.0:
                    break  # nothing left worth serving
                chosen = best_idx[best_out.selected]
                assignment[chosen] = best_j
                orientations[best_j] = best_out.alpha
                remaining[chosen] = False
                unused.discard(best_j)
        sp.set(rounds=rounds)
    _GM_ROUNDS.inc(rounds)
    _GM_TIMER.observe(time.perf_counter() - t0)
    return AngleSolution(orientations=orientations, assignment=assignment)


# ----------------------------------------------------------------------
# Non-overlapping circular DP
# ----------------------------------------------------------------------
def _window_profit_tables(
    instance: AngleInstance,
    candidates: np.ndarray,
    oracle: KnapsackSolver,
    compiled: "CompiledAngleInstance",
) -> Tuple[dict, dict]:
    """Oracle value for every (distinct antenna spec, candidate start).

    Returns ``(profits, picks)`` keyed by ``(rho, capacity)``: arrays of
    window values and per-window oracle selections (original indices).
    Identical specs share one table; sweeps come from the compiled view.
    """
    profits: dict = {}
    picks: dict = {}
    for spec in instance.antennas:
        key = (spec.rho, spec.capacity)
        if key in profits:
            continue
        sweep = compiled.sweep(spec.rho)
        vals = np.zeros(candidates.size, dtype=np.float64)
        sels: List[np.ndarray] = []
        for c_id, s in enumerate(candidates):
            _budget_tick()  # amortized ambient-budget check
            # Half-open windows: stacked windows sharing a boundary must not
            # both count a customer sitting exactly on it (the DP sums
            # window profits, so closed ends would double-count).
            w = sweep.window_at(float(s), closed_end=False)
            cov = w.indices
            if cov.size == 0:
                sels.append(np.empty(0, dtype=np.intp))
                continue
            total_dem = float(instance.demands[cov].sum())
            if fits(total_dem, spec.capacity):
                vals[c_id] = float(instance.profits[cov].sum())
                sels.append(cov.copy())
            else:
                res = oracle.solve(
                    instance.demands[cov], instance.profits[cov], spec.capacity
                )
                vals[c_id] = res.value
                sels.append(cov[res.selected])
        profits[key] = vals
        picks[key] = sels
    return profits, picks


def solve_non_overlapping_dp(
    instance: AngleInstance,
    oracle: KnapsackSolver,
    candidates: Optional[np.ndarray] = None,
    max_mask_antennas: int = 12,
    boundary_fill: bool = True,
    compiled: Optional["CompiledAngleInstance"] = None,
) -> AngleSolution:
    """Optimal non-overlapping rotation (up to the oracle's factor).

    The returned solution satisfies the disjointness constraint
    (``verify(instance, require_disjoint=True)`` passes) and its value is
    at least ``oracle.guarantee`` times the optimal *non-overlapping*
    value.  Note this variant's optimum can be strictly below the general
    optimum (overlapping arcs help on hotspots); see experiment E5.
    ``compiled`` supplies the memoized candidate grid and per-width sweeps
    (defaults to ``instance.compile()``).
    """
    n, k = instance.n, instance.k
    if n == 0:
        return AngleSolution.empty(instance)
    if k > max_mask_antennas:
        raise ValueError(
            f"non-overlapping DP tracks an antenna bitmask; k={k} too large"
        )
    compiled = instance.compile() if compiled is None else compiled
    if candidates is None:
        candidates = compiled.candidates()
    candidates = np.sort(np.asarray(candidates, dtype=np.float64))
    widths = [a.rho for a in instance.antennas]
    m = candidates.size
    t_solve = time.perf_counter()
    with span("solver.non_overlapping_dp", n=int(n), k=int(k),
              candidates=int(m)) as sp:
        with _DP_TABLES.time():
            prof_tab, pick_tab = _window_profit_tables(
                instance, candidates, oracle, compiled
            )
        keys = [(a.rho, a.capacity) for a in instance.antennas]
        uniform = len(set(keys)) == 1
        t_search = time.perf_counter()

        # Group antennas by spec: the DP only needs *how many* of each spec are
        # still available, but for simplicity (and small k) we use a bitmask in
        # the heterogeneous case and a counter in the uniform case.
        best_total = -1.0
        best_placements: List[Tuple[float, int]] = []  # (start, antenna)

        for f in range(m):
            _budget_checkpoint()  # cooperative deadline (ambient budget)
            s0 = float(candidates[f])
            # Linearize: offsets of every candidate from s0, ascending.
            offs = np.array([ccw_delta(s0, float(c)) for c in candidates])
            order = np.argsort(offs, kind="stable")
            lin_starts = offs[order]  # lin_starts[0] == 0 (candidate f itself)
            lin_ids = order

            if uniform:
                placements, total = _dp_uniform(
                    lin_starts, lin_ids, prof_tab[keys[0]], widths[0], k
                )
                if total > best_total and placements:
                    best_total = total
                    best_placements = [
                        (float(candidates[cid]), j)
                        for j, (pos, cid) in enumerate(placements)
                    ]
            else:
                placements, total = _dp_bitmask(
                    lin_starts, lin_ids, prof_tab, keys, widths
                )
                if total > best_total and placements:
                    best_total = total
                    best_placements = [
                        (float(candidates[cid]), ant) for cid, ant in placements
                    ]

        _DP_SEARCH.observe(time.perf_counter() - t_search)
        t_assemble = time.perf_counter()
        # Assemble the final assignment, deduplicating boundary customers.
        assignment = np.full(n, -1, dtype=np.int64)
        orientations = np.zeros(k, dtype=np.float64)
        used_antennas = set()
        taken = np.zeros(n, dtype=bool)
        for start, j in best_placements:
            spec = instance.antennas[j]
            key = (spec.rho, spec.capacity)
            c_id = int(np.searchsorted(candidates, start))
            # float-safe lookup of the candidate id
            if c_id >= m or not np.isclose(candidates[c_id], start, atol=1e-12):
                c_id = int(np.argmin(np.abs(candidates - start)))
            sel = pick_tab[key][c_id]
            fresh = sel[~taken[sel]]
            assignment[fresh] = j
            taken[fresh] = True
            orientations[j] = start
            used_antennas.add(j)
        if boundary_fill:
            # Recover customers on the closed ends of active arcs that the
            # half-open profit tables deliberately excluded (module docstring).
            from repro.packing.local_search import fill_active_antennas

            fill_active_antennas(instance, orientations, assignment)
        _DP_ASSEMBLE.observe(time.perf_counter() - t_assemble)
        _DP_TIMER.observe(time.perf_counter() - t_solve)
        sp.set(value=float(best_total), placements=len(best_placements))
    return AngleSolution(orientations=orientations, assignment=assignment)


def _dp_uniform(
    lin_starts: np.ndarray,
    lin_ids: np.ndarray,
    profits: np.ndarray,
    rho: float,
    k: int,
) -> Tuple[List[Tuple[int, int]], float]:
    """Linear DP for identical antennas, first window fixed at position 0.

    ``lin_starts`` are candidate offsets from the first window's start
    (ascending, ``lin_starts[0] == 0``); the first window *must* be taken.
    Returns ``(placements, total)`` where placements are
    ``(linear position, candidate id)`` pairs; total is ``-inf``-like
    (negative) when even the first window violates the wrap constraint.
    """
    m = lin_starts.size
    horizon = TWO_PI - rho  # last start must satisfy start + rho <= 2*pi
    if horizon < -1e-12:
        return [], -1.0
    # jump[i] = first position with start >= lin_starts[i] + rho
    jump = np.searchsorted(lin_starts, lin_starts + rho - 1e-12, side="left")
    # valid[i]: window at i fits before wrapping into the first window
    valid = lin_starts <= horizon + 1e-12
    pvals = profits[lin_ids]

    NEG = -np.inf
    # dp[t][i] = best additional profit from positions >= i using <= t windows
    dp = np.zeros((k + 1, m + 1), dtype=np.float64)
    choice = np.zeros((k + 1, m), dtype=bool)
    for t in range(1, k + 1):
        for i in range(m - 1, -1, -1):
            skip = dp[t, i + 1]
            take = NEG
            if valid[i] and pvals[i] > 0:
                nxt = int(jump[i])
                take = pvals[i] + dp[t - 1, nxt]
            if take > skip:
                dp[t, i] = take
                choice[t, i] = True
            else:
                dp[t, i] = skip
    # First window is forced at position 0.
    if not valid[0]:
        return [], -1.0
    total = pvals[0] + dp[k - 1, int(jump[0])]
    placements = [(0, int(lin_ids[0]))]
    t, i = k - 1, int(jump[0])
    while t > 0 and i < m:
        if choice[t, i]:
            placements.append((i, int(lin_ids[i])))
            i = int(jump[i])
            t -= 1
        else:
            i += 1
    return placements, float(total)


def _dp_bitmask(
    lin_starts: np.ndarray,
    lin_ids: np.ndarray,
    prof_tab: dict,
    keys: List[Tuple[float, float]],
    widths: List[float],
) -> Tuple[List[Tuple[int, int]], float]:
    """Bitmask DP for heterogeneous antennas; first placement at position 0.

    Tries every antenna as the first (position-0) placement.  Returns
    placements as ``(candidate id, antenna)`` pairs.
    """
    k = len(keys)
    m = lin_starts.size
    from functools import lru_cache

    jumps = {
        j: np.searchsorted(lin_starts, lin_starts + widths[j] - 1e-12, side="left")
        for j in range(k)
    }
    horizons = {j: TWO_PI - widths[j] for j in range(k)}
    pvals = {j: prof_tab[keys[j]][lin_ids] for j in range(k)}

    @lru_cache(maxsize=None)
    def rec(i: int, mask: int) -> float:
        if i >= m or mask == (1 << k) - 1:
            return 0.0
        best = rec(i + 1, mask)
        for j in range(k):
            if mask & (1 << j):
                continue
            if lin_starts[i] > horizons[j] + 1e-12:
                continue
            v = pvals[j][i]
            if v <= 0:
                continue
            cand = v + rec(int(jumps[j][i]), mask | (1 << j))
            if cand > best:
                best = cand
        return best

    best_total = -1.0
    best_placements: List[Tuple[int, int]] = []
    for first in range(k):
        if lin_starts[0] > horizons[first] + 1e-12:
            continue
        v0 = float(pvals[first][0])
        total = v0 + rec(int(jumps[first][0]), 1 << first)
        if total > best_total:
            best_total = total
            # Reconstruct greedily by replaying decisions.
            placements = [(int(lin_ids[0]), first)]
            i, mask = int(jumps[first][0]), 1 << first
            while i < m and mask != (1 << k) - 1:
                target = rec(i, mask)
                if np.isclose(rec(i + 1, mask), target):
                    i += 1
                    continue
                placed = False
                for j in range(k):
                    if mask & (1 << j):
                        continue
                    if lin_starts[i] > horizons[j] + 1e-12:
                        continue
                    v = pvals[j][i]
                    if v <= 0:
                        continue
                    if np.isclose(v + rec(int(jumps[j][i]), mask | (1 << j)), target):
                        placements.append((int(lin_ids[i]), j))
                        i, mask = int(jumps[j][i]), mask | (1 << j)
                        placed = True
                        break
                if not placed:  # numerical tie fallback
                    i += 1
            best_placements = placements
    rec.cache_clear()
    return best_placements, best_total
