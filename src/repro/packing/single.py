"""Single-antenna solvers: the canonical sweep times a knapsack oracle.

The engine is :func:`best_rotation`: enumerate the canonical windows of a
:class:`~repro.geometry.sweep.CircularSweep`, solve the capacity-constrained
packing inside each window with a pluggable knapsack solver, and keep the
best.  By the rotation lemma (:mod:`repro.packing.canonical`) this is
exhaustive over orientations, so the approximation factor of the whole
solver equals that of the inner knapsack oracle:

* exact oracle        → optimal single-antenna solution,
* FPTAS oracle        → ``(1 - eps)``-approximation,
* greedy oracle       → ``1/2``-approximation,
* fractional oracle   → *exact* for the splittable variant.

Two performance devices (both are pure pruning — they never change the
result):

1. windows are visited in decreasing order of total covered profit, and the
   scan stops as soon as that total is no better than the incumbent (a
   knapsack value never exceeds its window's profit sum);
2. a window whose total covered *demand* already fits the capacity is
   solved in O(1) by taking everything.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.backend import rotation_scan
from repro.geometry.sweep import CircularSweep
from repro.knapsack.api import KnapsackSolver
from repro.knapsack.fractional import solve_fractional
from repro.model.antenna import AntennaSpec
from repro.model.instance import AngleInstance
from repro.model.solution import AngleSolution, FractionalSolution
from repro.numerics import fits
from repro.obs import span
from repro.obs.metrics import get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.compiled import CompiledAngleInstance

# Rotation-search telemetry (contract: docs/OBSERVABILITY.md).  Per-window
# work is aggregated locally and flushed once per search, so the inner
# loop carries no metric traffic.
_REG = get_registry()
_ROT_SEARCHES = _REG.counter("rotation.searches")
_ROT_CANDIDATES = _REG.counter("rotation.candidate_windows")
_ROT_VISITED = _REG.counter("rotation.windows_visited")
_ROT_PRUNED = _REG.counter("rotation.windows_pruned")
_ROT_FASTPATH = _REG.counter("rotation.windows_fastpath")
_ROT_TIMER = _REG.timer("phase.rotation")


@dataclass(frozen=True)
class RotationOutcome:
    """Result of a single-antenna rotation search.

    Attributes
    ----------
    alpha:
        Chosen window start angle.
    selected:
        Original customer indices served.
    value:
        Total profit served.
    demand:
        Total demand served (equals ``value`` for the paper's objective).
    """

    alpha: float
    selected: np.ndarray
    value: float
    demand: float

    @classmethod
    def empty(cls) -> "RotationOutcome":
        return cls(alpha=0.0, selected=np.empty(0, dtype=np.intp), value=0.0, demand=0.0)


def best_rotation(
    thetas: np.ndarray,
    demands: np.ndarray,
    profits: np.ndarray,
    spec: AntennaSpec,
    oracle: KnapsackSolver,
    sweep: Optional[CircularSweep] = None,
    demand_prefix: Optional[np.ndarray] = None,
    profit_prefix: Optional[np.ndarray] = None,
    backend: str = "python",
) -> RotationOutcome:
    """Best orientation + packing of one antenna over the given customers.

    Guarantee: ``value >= oracle.guarantee * OPT_single`` where
    ``OPT_single`` is the optimal single-antenna value on these customers.

    Complexity: ``O(n log n)`` for the sweep plus one oracle call per
    unique window that survives the profit-sum pruning.

    The compiled-instance fast path: callers holding a
    :class:`~repro.core.compiled.CompiledAngleInstance` pass the memoized
    ``sweep`` (which must be over exactly these ``thetas`` at width
    ``spec.rho``) and optionally the matching doubled prefix sums, skipping
    the per-call sort and cumulative sums.  Both paths produce bit-identical
    results.

    ``backend="numpy"`` replaces the per-window python scan with one
    vectorized :func:`repro.core.backend.rotation_scan` pass that seeds
    the incumbent from the best everything-fits window and leaves only
    the windows needing an oracle call.  Value-identical to the python
    path (the oracle, pruning threshold, and fast path are shared); tie
    selection and the visited/pruned work metrics may differ — see
    ``docs/BACKENDS.md``.
    """
    thetas = np.asarray(thetas, dtype=np.float64)
    n = thetas.size
    if n == 0:
        return RotationOutcome.empty()
    t0 = time.perf_counter()
    with span("rotation.search", n=int(n)) as sp:
        if sweep is None:
            sweep = CircularSweep(thetas, spec.rho)
        profit_sums = (
            sweep.window_sums(profits)
            if profit_prefix is None
            else sweep.window_sums_from_prefix(profit_prefix)
        )
        demand_sums = (
            sweep.window_sums(demands)
            if demand_prefix is None
            else sweep.window_sums_from_prefix(demand_prefix)
        )
        ids = sweep.unique_window_ids()
        candidates = int(ids.size)

        best = RotationOutcome.empty()
        visited = 0
        fastpath = 0
        if backend == "numpy":
            # Vectorized seed-and-prune: one pass over all windows finds
            # the best fully-fitting one and the shortlist of windows that
            # could still beat it; only the shortlist reaches the oracle.
            best_k, best_value, best_demand, hard_ids = rotation_scan(
                ids, profit_sums, demand_sums, spec.capacity
            )
            if best_k >= 0:
                w = sweep.window(best_k)
                visited += 1
                fastpath += 1
                best = RotationOutcome(
                    alpha=w.start,
                    selected=w.indices.copy(),
                    value=best_value,
                    demand=best_demand,
                )
            for k in hard_ids:
                if float(profit_sums[k]) <= best.value + 1e-15:
                    break  # no later window can beat the incumbent
                visited += 1
                w = sweep.window(int(k))
                cov = w.indices
                res = oracle.solve(demands[cov], profits[cov], spec.capacity)
                if res.value > best.value:
                    best = RotationOutcome(
                        alpha=w.start,
                        selected=cov[res.selected],
                        value=res.value,
                        demand=res.weight,
                    )
        else:
            # Visit windows by decreasing profit potential.
            ids = ids[np.argsort(-profit_sums[ids], kind="stable")]
            for k in ids:
                potential = float(profit_sums[k])
                if potential <= best.value + 1e-15:
                    break  # no later window can beat the incumbent
                visited += 1
                w = sweep.window(int(k))
                cov = w.indices
                if fits(float(demand_sums[k]), spec.capacity):
                    # Everything fits: the window's full profit is achievable.
                    fastpath += 1
                    best = RotationOutcome(
                        alpha=w.start,
                        selected=cov.copy(),
                        value=potential,
                        demand=float(demand_sums[k]),
                    )
                    continue
                res = oracle.solve(demands[cov], profits[cov], spec.capacity)
                if res.value > best.value:
                    best = RotationOutcome(
                        alpha=w.start,
                        selected=cov[res.selected],
                        value=res.value,
                        demand=res.weight,
                    )
        _ROT_SEARCHES.inc()
        _ROT_CANDIDATES.inc(candidates)
        _ROT_VISITED.inc(visited)
        _ROT_PRUNED.inc(candidates - visited)
        _ROT_FASTPATH.inc(fastpath)
        _ROT_TIMER.observe(time.perf_counter() - t0)
        sp.set(windows=candidates, visited=visited, value=float(best.value))
    return best


def best_rotation_fractional(
    thetas: np.ndarray,
    demands: np.ndarray,
    profits: np.ndarray,
    spec: AntennaSpec,
) -> tuple[float, np.ndarray, float]:
    """Optimal *splittable* single-antenna rotation.

    Returns ``(alpha, fractions, value)`` where ``fractions`` is per-customer
    in ``[0, 1]``.  Exact: the rotation lemma still applies (a fractional
    solution's support is covered by a canonical window), and the in-window
    subproblem is fractional knapsack, solved optimally.

    Fast path: when profit equals demand the fractional optimum of a window
    is simply ``min(capacity, covered demand)``, so the best window is found
    with one vectorized pass and only one fractional solve is needed.
    """
    thetas = np.asarray(thetas, dtype=np.float64)
    n = thetas.size
    fractions = np.zeros(n, dtype=np.float64)
    if n == 0:
        return 0.0, fractions, 0.0
    _REG.counter("rotation.fractional_searches").inc()
    sweep = CircularSweep(thetas, spec.rho)
    demand_sums = sweep.window_sums(demands)
    if np.array_equal(demands, profits):
        values = np.minimum(demand_sums, spec.capacity)
        k = int(np.argmax(values))
        w = sweep.window(k)
        cov = w.indices
        res = solve_fractional(demands[cov], profits[cov], spec.capacity)
        fractions[cov] = res.fractions
        return w.start, fractions, float(res.value)
    # General profits: per-window fractional solves with profit-sum pruning.
    profit_sums = sweep.window_sums(profits)
    ids = sweep.unique_window_ids()
    ids = ids[np.argsort(-profit_sums[ids], kind="stable")]
    best_value = -1.0
    best_alpha = 0.0
    best_cov: Optional[np.ndarray] = None
    best_frac: Optional[np.ndarray] = None
    for k in ids:
        if profit_sums[k] <= best_value + 1e-15:
            break
        w = sweep.window(int(k))
        cov = w.indices
        res = solve_fractional(demands[cov], profits[cov], spec.capacity)
        if res.value > best_value:
            best_value = float(res.value)
            best_alpha = w.start
            best_cov = cov.copy()
            best_frac = res.fractions.copy()
    if best_cov is not None and best_frac is not None:
        fractions[best_cov] = best_frac
    return best_alpha, fractions, max(best_value, 0.0)


def solve_single_antenna(
    instance: AngleInstance,
    oracle: KnapsackSolver,
    compiled: Optional["CompiledAngleInstance"] = None,
    backend: str = "python",
) -> AngleSolution:
    """Solve a ``k == 1`` instance with the given knapsack oracle.

    Raises ``ValueError`` when the instance has more than one antenna (use
    the multi-antenna solvers instead).  ``compiled`` is the optional
    shared precomputation view (defaults to ``instance.compile()``);
    ``backend`` selects the rotation-scan implementation (see
    :func:`best_rotation`).
    """
    if instance.k != 1:
        raise ValueError(f"solve_single_antenna needs k == 1, got k={instance.k}")
    compiled = instance.compile() if compiled is None else compiled
    spec = instance.antennas[0]
    out = best_rotation(
        instance.thetas,
        instance.demands,
        instance.profits,
        spec,
        oracle,
        sweep=compiled.sweep(spec.rho),
        demand_prefix=compiled.demand_prefix,
        profit_prefix=compiled.profit_prefix,
        backend=backend,
    )
    assignment = np.full(instance.n, -1, dtype=np.int64)
    assignment[out.selected] = 0
    return AngleSolution(orientations=np.array([out.alpha]), assignment=assignment)


def solve_single_antenna_fractional(instance: AngleInstance) -> FractionalSolution:
    """Exact splittable solution of a ``k == 1`` instance."""
    if instance.k != 1:
        raise ValueError(
            f"solve_single_antenna_fractional needs k == 1, got k={instance.k}"
        )
    alpha, fractions, _ = best_rotation_fractional(
        instance.thetas, instance.demands, instance.profits, instance.antennas[0]
    )
    return FractionalSolution(
        orientations=np.array([alpha]), fractions=fractions.reshape(-1, 1)
    )
