"""Shifted-cut scheme for the non-overlapping variant (identical antennas).

:func:`~repro.packing.multi.solve_non_overlapping_dp` is exact for the
variant but enumerates every candidate as the cyclic "first" window —
``O(|S|^2 k)``.  The shifting scheme (Hochbaum–Maass style) trades a small,
*quantified* loss for one linear DP per cut:

1. pick ``t`` evenly spaced cut positions on the circle;
2. for each cut, discard the canonical windows whose interior contains the
   cut, and solve the remaining *linear* weighted-window scheduling by DP
   (select up to ``k`` disjoint windows maximizing oracle profit);
3. return the best cut's solution.

**Loss bound.**  Fix the optimal disjoint solution ``W*``.  A cut position
``c`` destroys at most the one window of ``W*`` containing it (disjoint
windows!), so ``loss(c) <= v(w_c)``.  Each window of width ``rho`` contains
at most ``floor(rho * t / 2*pi) + 1`` of the ``t`` positions, hence::

    sum_c loss(c) <= OPT * (rho * t / (2*pi) + 1)
    min_c loss(c) <= OPT * (rho / (2*pi) + 1 / t)

so the best cut retains at least ``(1 - rho/(2*pi) - 1/t) * OPT`` — and the
oracle contributes its own factor multiplicatively.  Experiment E10
measures this loss against the exact DP as ``t`` grows.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.geometry.angles import TWO_PI, ccw_delta
from repro.knapsack.api import KnapsackSolver
from repro.model.instance import AngleInstance
from repro.model.solution import AngleSolution
from repro.numerics import fits
from repro.obs import span
from repro.obs.metrics import get_registry
from repro.resilience.budget import checkpoint as _budget_checkpoint
from repro.resilience.budget import tick_nodes as _budget_tick

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.compiled import CompiledAngleInstance

# Solver-level telemetry (contract: docs/OBSERVABILITY.md).
_REG = get_registry()
_SH_TIMER = _REG.timer("solver.shifting")
_SH_PRECOMPUTE = _REG.timer("phase.shifting.window_precompute")
_SH_CUTS = _REG.timer("phase.shifting.cuts")
_SH_CUTS_TRIED = _REG.counter("solver.shifting.cuts_tried")


def solve_shifting(
    instance: AngleInstance,
    oracle: KnapsackSolver,
    t: int = 8,
    boundary_fill: bool = True,
    compiled: Optional["CompiledAngleInstance"] = None,
) -> AngleSolution:
    """Best-of-``t``-cuts disjoint packing; requires identical antennas.

    Guarantee (vs. the non-overlapping optimum ``OPT_no``)::

        value >= oracle.guarantee * (1 - rho/(2*pi) - 1/t) * OPT_no

    Complexity: ``O(n)`` oracle calls once, plus ``t`` linear DPs of size
    ``O(n k)``.  ``compiled`` is the shared precomputation view (defaults
    to ``instance.compile()``), supplying the sweep and demand prefix.
    """
    if t < 1:
        raise ValueError(f"need at least one cut, got t={t}")
    if not instance.has_uniform_antennas:
        raise ValueError("shifting scheme requires identical antennas")
    n, k = instance.n, instance.k
    if n == 0:
        return AngleSolution.empty(instance)
    compiled = instance.compile() if compiled is None else compiled
    spec = instance.antennas[0]
    rho = spec.rho

    t_solve = time.perf_counter()
    with span("solver.shifting", n=int(n), k=int(k), t=int(t)) as sp:
        t_pre = time.perf_counter()
        sweep = compiled.sweep(rho)
        demand_sums = sweep.window_sums_from_prefix(compiled.demand_prefix)
        ids = sweep.unique_window_ids()
        # Precompute oracle profit + selection per unique canonical window.
        starts = np.empty(ids.size, dtype=np.float64)
        values = np.empty(ids.size, dtype=np.float64)
        picks: List[np.ndarray] = []
        for a, wid in enumerate(ids):
            _budget_tick()  # amortized ambient-budget check
            w = sweep.window(int(wid))
            cov = w.indices
            starts[a] = w.start
            if fits(float(demand_sums[wid]), spec.capacity):
                values[a] = float(instance.profits[cov].sum())
                picks.append(cov.copy())
            else:
                res = oracle.solve(
                    instance.demands[cov], instance.profits[cov], spec.capacity
                )
                values[a] = res.value
                picks.append(cov[res.selected])
        _SH_PRECOMPUTE.observe(time.perf_counter() - t_pre)

        t_cuts = time.perf_counter()
        best_value = -1.0
        best_windows: List[int] = []
        for s in range(t):
            _budget_checkpoint()  # cooperative deadline (ambient budget)
            cut = s * TWO_PI / t
            # Linearize window starts after the cut; keep windows that end
            # before wrapping back past the cut.
            offs = np.array([ccw_delta(cut, float(a)) for a in starts])
            keep = offs + rho <= TWO_PI + 1e-12
            if not keep.any():
                continue
            kept = np.flatnonzero(keep)
            order = kept[np.argsort(offs[kept], kind="stable")]
            lin = offs[order]
            vals = values[order]
            m = order.size
            jump = np.searchsorted(lin, lin + rho - 1e-12, side="left")
            # dp[c][i]: best profit from windows >= i using <= c windows.
            dp = np.zeros((k + 1, m + 1), dtype=np.float64)
            for c in range(1, k + 1):
                for i in range(m - 1, -1, -1):
                    take = vals[i] + dp[c - 1, int(jump[i])] if vals[i] > 0 else -1.0
                    dp[c, i] = max(dp[c, i + 1], take)
            total = float(dp[k, 0])
            if total > best_value:
                best_value = total
                # Reconstruct.
                chosen: List[int] = []
                c, i = k, 0
                while c > 0 and i < m:
                    take = vals[i] + dp[c - 1, int(jump[i])] if vals[i] > 0 else -1.0
                    if take >= dp[c, i + 1] and take == dp[c, i]:
                        chosen.append(int(order[i]))
                        i = int(jump[i])
                        c -= 1
                    else:
                        i += 1
                best_windows = chosen

        _SH_CUTS.observe(time.perf_counter() - t_cuts)
        _SH_CUTS_TRIED.inc(t)

        assignment = np.full(n, -1, dtype=np.int64)
        orientations = np.zeros(k, dtype=np.float64)
        taken = np.zeros(n, dtype=bool)
        for j, a in enumerate(best_windows):
            sel = picks[a]
            fresh = sel[~taken[sel]]
            assignment[fresh] = j
            taken[fresh] = True
            orientations[j] = starts[a]
        if boundary_fill:
            from repro.packing.local_search import fill_active_antennas

            fill_active_antennas(instance, orientations, assignment)
        _SH_TIMER.observe(time.perf_counter() - t_solve)
        sp.set(windows=int(ids.size), value=float(best_value))
    return AngleSolution(orientations=orientations, assignment=assignment)
