"""LP relaxation of orientation + assignment, and randomized rounding.

The relaxation.  For antenna ``j`` let ``A_j`` be its canonical
orientations (unique windows).  Variables::

    y[j, a] in [0, 1]   -- antenna j uses orientation a
    x[i, j, a] in [0, 1] -- fraction of customer i served by (j, a)
                            (only created when the window covers i)

    max   sum profits_i * x[i, j, a]
    s.t.  sum_a y[j, a] <= 1                      for every antenna j
          sum_{j,a} x[i, j, a] <= 1               for every customer i
          sum_i demands_i x[i, j, a] <= c_j y[j, a]  for every (j, a)
          (optional tightening)  x[i, j, a] <= y[j, a]

Every integral solution maps to a feasible LP point (set the chosen
orientation's ``y`` to 1 — by the rotation lemma a canonical orientation
serving a superset exists), so the LP optimum is an **upper bound on
OPT**.  :func:`lp_upper_bound` must therefore use the *full* canonical
candidate set; :func:`solve_lp_rounding` may subsample candidates (the
rounded solution stays feasible, only the bound property is lost).

Rounding: independently per antenna, pick orientation ``a`` with
probability ``y[j, a]`` (off otherwise), then run the greedy fixed-
orientation assignment.  The best of ``rounds`` samples (plus the
deterministic argmax-``y`` profile) is returned.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

from repro.knapsack.api import KnapsackSolver
from repro.model.instance import AngleInstance
from repro.model.solution import AngleSolution
from repro.obs import span
from repro.obs.metrics import get_registry
from repro.packing.assignment import greedy_assignment_fixed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.compiled import CompiledAngleInstance

# Solver-level telemetry (contract: docs/OBSERVABILITY.md).
_REG = get_registry()
_LP_TIMER = _REG.timer("solver.lp_rounding")
_LP_CANDS = _REG.timer("phase.lp.candidates")
_LP_BUILD = _REG.timer("phase.lp.build")
_LP_SOLVE = _REG.timer("phase.lp.solve")
_LP_ROUND = _REG.timer("phase.lp.rounding")
_LP_VARS = _REG.gauge("lp.variables")
_LP_ROWS = _REG.gauge("lp.rows")
_LP_SAMPLES = _REG.counter("lp.rounding_samples")


def _candidates(
    instance: AngleInstance,
    max_candidates: Optional[int] = None,
    compiled: Optional["CompiledAngleInstance"] = None,
) -> List[List[Tuple[float, np.ndarray]]]:
    """Per-antenna list of ``(alpha, covered original indices)``.

    Sweeps come from the compiled view (shared between antennas of equal
    width and with every other solver).  ``max_candidates`` keeps only the
    windows with the largest covered profit (for rounding use only — see
    module docstring).
    """
    compiled = instance.compile() if compiled is None else compiled
    out: List[List[Tuple[float, np.ndarray]]] = []
    for spec in instance.antennas:
        sweep = compiled.sweep(spec.rho)
        ids = sweep.unique_window_ids()
        if max_candidates is not None and ids.size > max_candidates:
            sums = sweep.window_sums_from_prefix(compiled.profit_prefix)
            ids = ids[np.argsort(-sums[ids], kind="stable")[:max_candidates]]
        cands = []
        for k in ids:
            w = sweep.window(int(k))
            cands.append((w.start, w.indices.copy()))
        if not cands:
            cands.append((0.0, np.empty(0, dtype=np.intp)))
        out.append(cands)
    return out


def solve_lp_relaxation(
    instance: AngleInstance,
    max_candidates: Optional[int] = None,
    tighten: bool = False,
    compiled: Optional["CompiledAngleInstance"] = None,
) -> Tuple[float, List[np.ndarray], List[List[Tuple[float, np.ndarray]]]]:
    """Solve the relaxation; returns ``(value, y_per_antenna, candidates)``.

    ``y_per_antenna[j][a]`` is the LP weight of candidate ``a`` of antenna
    ``j``.  ``tighten=True`` adds the ``x <= y`` rows (smaller LP value,
    slower); the untightened LP is already a valid upper bound.
    """
    n, k = instance.n, instance.k
    with _LP_CANDS.time():
        cands = _candidates(instance, max_candidates, compiled)
    if n == 0:
        return 0.0, [np.zeros(len(c)) for c in cands], cands

    t_build = time.perf_counter()
    # Variable layout: all y first, then all x.
    y_offset: List[int] = []
    nv_y = 0
    for j in range(k):
        y_offset.append(nv_y)
        nv_y += len(cands[j])
    x_index: List[Tuple[int, int, int]] = []  # (i, j, a)
    for j in range(k):
        for a, (_, cov) in enumerate(cands[j]):
            for i in cov:
                x_index.append((int(i), j, a))
    nv = nv_y + len(x_index)

    c_obj = np.zeros(nv)
    for v, (i, _, _) in enumerate(x_index):
        c_obj[nv_y + v] = -instance.profits[i]

    rows, cols, vals = [], [], []
    b: List[float] = []
    row_id = 0
    # sum_a y[j,a] <= 1
    for j in range(k):
        for a in range(len(cands[j])):
            rows.append(row_id)
            cols.append(y_offset[j] + a)
            vals.append(1.0)
        b.append(1.0)
        row_id += 1
    # sum_{j,a} x[i,j,a] <= 1
    cust_row = {i: row_id + i for i in range(n)}
    b.extend([1.0] * n)
    row_id += n
    for v, (i, _, _) in enumerate(x_index):
        rows.append(cust_row[i])
        cols.append(nv_y + v)
        vals.append(1.0)
    # capacity: sum_i d_i x[i,j,a] - c_j y[j,a] <= 0
    cap_row = {}
    for j in range(k):
        for a in range(len(cands[j])):
            cap_row[(j, a)] = row_id
            rows.append(row_id)
            cols.append(y_offset[j] + a)
            vals.append(-float(instance.antennas[j].capacity))
            b.append(0.0)
            row_id += 1
    for v, (i, j, a) in enumerate(x_index):
        rows.append(cap_row[(j, a)])
        cols.append(nv_y + v)
        vals.append(float(instance.demands[i]))
    # optional x <= y rows
    if tighten:
        for v, (i, j, a) in enumerate(x_index):
            rows.append(row_id)
            cols.append(nv_y + v)
            vals.append(1.0)
            rows.append(row_id)
            cols.append(y_offset[j] + a)
            vals.append(-1.0)
            b.append(0.0)
            row_id += 1

    A = sp.csr_matrix((vals, (rows, cols)), shape=(row_id, nv))
    _LP_BUILD.observe(time.perf_counter() - t_build)
    _LP_VARS.set(nv)
    _LP_ROWS.set(row_id)
    with _LP_SOLVE.time():
        res = linprog(
            c_obj, A_ub=A, b_ub=np.asarray(b), bounds=(0.0, 1.0), method="highs"
        )
    if not res.success:  # pragma: no cover - HiGHS is robust on these LPs
        raise RuntimeError(f"orientation LP failed: {res.message}")
    y = [
        np.clip(res.x[y_offset[j] : y_offset[j] + len(cands[j])], 0.0, 1.0)
        for j in range(k)
    ]
    return float(-res.fun), y, cands


def lp_upper_bound(instance: AngleInstance, tighten: bool = False) -> float:
    """The LP optimum over the full canonical candidate set (>= OPT)."""
    value, _, _ = solve_lp_relaxation(instance, max_candidates=None, tighten=tighten)
    return value


def solve_lp_rounding(
    instance: AngleInstance,
    oracle: KnapsackSolver,
    rounds: int = 20,
    seed: int = 0,
    max_candidates: Optional[int] = None,
    tighten: bool = False,
    compiled: Optional["CompiledAngleInstance"] = None,
) -> AngleSolution:
    """Randomized rounding of the LP: best of ``rounds`` sampled profiles.

    Each sample draws an orientation per antenna from its ``y``
    distribution and assigns customers with the greedy fixed-orientation
    packer.  The deterministic argmax-``y`` profile is always evaluated
    too, so the result never depends solely on luck.
    """
    t0 = time.perf_counter()
    with span("solver.lp_rounding", n=int(instance.n), k=int(instance.k),
              rounds=int(rounds)) as spn:
        _, y, cands = solve_lp_relaxation(instance, max_candidates, tighten, compiled)
        rng = np.random.default_rng(seed)
        k = instance.k

        def profile_to_solution(choice: List[int]) -> AngleSolution:
            orientations = np.array(
                [cands[j][choice[j]][0] for j in range(k)], dtype=np.float64
            )
            return greedy_assignment_fixed(instance, orientations, oracle)

        t_round = time.perf_counter()
        best = profile_to_solution(
            [int(np.argmax(yj)) if yj.size else 0 for yj in y]
        )
        best_value = best.value(instance)
        for _ in range(rounds):
            choice = []
            for j in range(k):
                yj = y[j]
                if yj.size == 0:
                    choice.append(0)
                    continue
                total = float(yj.sum())
                if total <= 1e-12:
                    choice.append(int(rng.integers(len(yj))))
                    continue
                probs = yj / total
                choice.append(int(rng.choice(len(yj), p=probs)))
            sol = profile_to_solution(choice)
            v = sol.value(instance)
            if v > best_value:
                best, best_value = sol, v
        _LP_ROUND.observe(time.perf_counter() - t_round)
        _LP_SAMPLES.inc(rounds)
        spn.set(value=float(best_value))
    _LP_TIMER.observe(time.perf_counter() - t0)
    return best
