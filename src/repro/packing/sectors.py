"""The 2-D pipeline: packing to sectors.

The sector problem reduces per antenna to an angle problem: customer ``i``
is *eligible* for antenna ``(station s, spec a)`` iff ``dist(p_i, b_s) <=
R_a``, and within the eligible set only the relative angle matters.  The
solvers here lift the 1-D machinery through that reduction:

* :func:`solve_sector_greedy` -- the main solver: global greedy over all
  antennas of all stations; each round runs a single-antenna rotation
  search on the remaining eligible customers and commits the best antenna.
  Same separable-assignment analysis as the 1-D greedy: with a
  ``beta``-approximate knapsack oracle the result is ``beta/(1+beta)``
  of the 2-D optimum.
* :func:`solve_sector_independent` -- baseline: each customer is tied to
  its nearest reachable station, stations then solve independent 1-D
  instances (no cross-station arbitration; measurably worse when coverage
  regions overlap — experiment E9).
* :func:`solve_sector_splittable` -- exact splittable optimum for fixed
  orientations via max-flow / LP over the global eligibility graph; the
  upper bound used to certify the greedy.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

from repro.geometry.angles import angles_in_window
from repro.knapsack.api import KnapsackSolver
from repro.model.instance import AngleInstance, SectorInstance
from repro.model.solution import SectorSolution
from repro.obs import span as obs_span
from repro.obs.metrics import get_registry
from repro.core.backend import nearest_reaching_station
from repro.packing.multi import solve_greedy_multi
from repro.packing.single import best_rotation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.compiled import CompiledSectorInstance

# Solver-level telemetry (contract: docs/OBSERVABILITY.md).
_REG = get_registry()
_SG_TIMER = _REG.timer("solver.sector_greedy")
_SG_ROUNDS = _REG.counter("solver.sector_greedy.rounds")
_SI_TIMER = _REG.timer("solver.sector_independent")


def sector_covered_matrix(
    instance: SectorInstance,
    orientations: Sequence[float] | np.ndarray,
    compiled: Optional["CompiledSectorInstance"] = None,
) -> np.ndarray:
    """Boolean ``(n, K)``: customer inside antenna ``g``'s oriented sector."""
    ori = np.asarray(orientations, dtype=np.float64).reshape(-1)
    K = instance.total_antennas
    if ori.shape != (K,):
        raise ValueError(f"orientations must have shape ({K},), got {ori.shape}")
    compiled = instance.compile() if compiled is None else compiled
    masks, thetas_per, _ = compiled.eligibility()
    out = np.zeros((instance.n, K), dtype=bool)
    for g, s_id, spec in instance.antenna_table():
        ang = angles_in_window(thetas_per[g], float(ori[g]), spec.rho)
        out[:, g] = masks[g] & ang
    return out


def solve_exact_sector_single(
    instance: SectorInstance,
    station_id: int = 0,
    require_disjoint: bool = False,
    **exact_kwargs,
) -> "SectorSolution":
    """Exact solution for a *single-station* instance with equal radii.

    Reduces to the 1-D problem (filter by the compiled eligibility mask,
    use relative angles) and runs
    :func:`~repro.packing.exact.solve_exact_angle`.  The reduction is
    lossless when the instance has one station whose antennas share a
    radius — the canonical ground-truth path for certifying the 2-D
    heuristics against true optima (not just the splittable bound).

    The eligible set comes from
    :meth:`~repro.core.compiled.CompiledSectorInstance.eligibility` — the
    same triple every other sector solver consumes (this used to be the
    last private reach recomputation, via ``station_angle_instance``) —
    so constraint masks (``docs/SCENARIOS.md``) restrict the exact solve
    exactly as they restrict the heuristics, and the equal-radius mask is
    bit-identical to the old minimum-radius filter.

    Raises ``ValueError`` for multi-station instances or mixed radii.
    """
    from repro.packing.exact import solve_exact_angle

    if instance.m != 1:
        raise ValueError("exact sector solver supports a single station only")
    st = instance.stations[station_id]
    radii = {a.radius for a in st.antennas}
    if len(radii) != 1:
        raise ValueError("exact sector solver requires equal antenna radii")
    masks, thetas_per, _ = instance.compile().eligibility()
    g0 = next(g for g, s_id, _ in instance.antenna_table() if s_id == station_id)
    idx = np.flatnonzero(masks[g0])
    sub = AngleInstance(
        thetas=thetas_per[g0][idx],
        demands=instance.demands[idx],
        profits=instance.profits[idx],
        antennas=st.antennas,
    )
    sol = solve_exact_angle(sub, require_disjoint=require_disjoint, **exact_kwargs)
    assignment = np.full(instance.n, -1, dtype=np.int64)
    served = sol.assignment >= 0
    assignment[idx[served]] = sol.assignment[served]
    return SectorSolution(
        orientations=sol.orientations.copy(), assignment=assignment
    )


def solve_exact_sector(
    instance: SectorInstance,
    max_tuples: int = 200_000,
    max_nodes_per_tuple: int = 500_000,
    compiled: Optional["CompiledSectorInstance"] = None,
) -> "SectorSolution":
    """Globally optimal 2-D solution for *small* instances (any stations).

    Enumerates, per global antenna, the canonical orientations over its
    eligible customers' relative angles (deduplicated by coverage), and
    runs the shared exact assignment branch & bound
    (:func:`repro.packing.exact.exact_assignment`) on every orientation
    tuple, with a cheap union-coverage bound pruning dominated tuples.
    Exponential — intended for certifying the 2-D heuristics at
    ``n <= ~12`` with a handful of antennas; raises ``RuntimeError`` when
    the enumeration exceeds ``max_tuples``.
    """
    import itertools

    from repro.packing.exact import exact_assignment

    n = instance.n
    K = instance.total_antennas
    if n == 0:
        return SectorSolution.empty(instance)
    compiled = instance.compile() if compiled is None else compiled
    masks, thetas_per, _ = compiled.eligibility()
    table = instance.antenna_table()

    # Candidate orientations + their coverage columns, per antenna.
    cand_starts: List[List[float]] = []
    cand_cols: List[List[np.ndarray]] = []
    total = 1
    for g, s_id, spec in table:
        idx = np.flatnonzero(masks[g])
        starts: List[float] = []
        cols: List[np.ndarray] = []
        if idx.size:
            sweep = compiled.station(s_id).subset_sweep(idx, spec.rho)
            seen: set = set()
            for wid in sweep.unique_window_ids():
                w = sweep.window(int(wid))
                covered = idx[w.indices]
                key = frozenset(covered.tolist())
                if key in seen:
                    continue
                seen.add(key)
                col = np.zeros(n, dtype=bool)
                col[covered] = True
                starts.append(w.start)
                cols.append(col)
        if not starts:
            starts.append(0.0)
            cols.append(np.zeros(n, dtype=bool))
        cand_starts.append(starts)
        cand_cols.append(cols)
        total *= len(starts)
        if total > max_tuples:
            raise RuntimeError(
                f"sector orientation enumeration exceeds {max_tuples} tuples"
            )

    caps = np.array([spec.capacity for _, _, spec in table])
    best_value = -1.0
    best: Optional[SectorSolution] = None
    for choice in itertools.product(*(range(len(c)) for c in cand_starts)):
        cover = np.stack(
            [cand_cols[g][choice[g]] for g in range(K)], axis=1
        )
        union = cover.any(axis=1)
        if float(instance.profits[union].sum()) <= best_value + 1e-12:
            continue
        assignment = exact_assignment(
            cover,
            instance.demands,
            instance.profits,
            caps,
            max_nodes=max_nodes_per_tuple,
        )
        value = float(instance.profits[assignment >= 0].sum())
        if value > best_value:
            best_value = value
            best = SectorSolution(
                orientations=np.array(
                    [cand_starts[g][choice[g]] for g in range(K)]
                ),
                assignment=assignment,
            )
    assert best is not None
    return best


def solve_sector_greedy(
    instance: SectorInstance,
    oracle: KnapsackSolver,
    adaptive: bool = True,
    compiled: Optional["CompiledSectorInstance"] = None,
    backend: str = "python",
) -> SectorSolution:
    """Global greedy over every antenna of every station.

    ``adaptive=True`` re-evaluates all unused antennas each round and
    commits the single best (the separable-assignment greedy);
    ``adaptive=False`` processes antennas once in decreasing capacity
    order (k× fewer oracle calls, same guarantee).  ``compiled`` is the
    shared precomputation view (defaults to ``instance.compile()``); the
    per-round rotation searches derive their subset sweeps from its
    per-station sorted angles instead of re-sorting.  ``backend="numpy"``
    prewarms the station views with one batched polar pass and runs the
    vectorized rotation scan (value-identical; see ``docs/BACKENDS.md``).
    """
    n = instance.n
    K = instance.total_antennas
    t0 = time.perf_counter()
    compiled = instance.compile() if compiled is None else compiled
    assignment = np.full(n, -1, dtype=np.int64)
    orientations = np.zeros(K, dtype=np.float64)
    remaining = np.ones(n, dtype=bool)
    masks, thetas_per, _ = compiled.eligibility(backend=backend)
    table = instance.antenna_table()

    def run_rotation(g: int):
        s_id, spec = table[g][1], table[g][2]
        avail = remaining & masks[g]
        idx = np.flatnonzero(avail)
        out = best_rotation(
            thetas_per[g][idx],
            instance.demands[idx],
            instance.profits[idx],
            spec,
            oracle,
            sweep=compiled.station(s_id).subset_sweep(idx, spec.rho),
            backend=backend,
        )
        return out, idx

    rounds = 0
    with obs_span("solver.sector_greedy", n=int(n), antennas=int(K),
                  adaptive=bool(adaptive)) as sp:
        if adaptive:
            unused = set(range(K))
            while unused:
                best_g, best_out, best_idx = -1, None, None
                for g in sorted(unused):
                    out, idx = run_rotation(g)
                    if best_out is None or out.value > best_out.value:
                        best_g, best_out, best_idx = g, out, idx
                assert best_out is not None and best_idx is not None
                rounds += 1
                if best_out.value <= 0.0:
                    break
                chosen = best_idx[best_out.selected]
                assignment[chosen] = best_g
                orientations[best_g] = best_out.alpha
                remaining[chosen] = False
                unused.discard(best_g)
        else:
            order = sorted(range(K), key=lambda g: -table[g][2].capacity)
            for g in order:
                out, idx = run_rotation(g)
                rounds += 1
                chosen = idx[out.selected]
                assignment[chosen] = g
                orientations[g] = out.alpha
                remaining[chosen] = False
        sp.set(rounds=rounds)
    _SG_ROUNDS.inc(rounds)
    _SG_TIMER.observe(time.perf_counter() - t0)
    return SectorSolution(orientations=orientations, assignment=assignment)


def solve_sector_independent(
    instance: SectorInstance,
    oracle: KnapsackSolver,
    compiled: Optional["CompiledSectorInstance"] = None,
    backend: str = "python",
) -> SectorSolution:
    """Baseline: nearest-station partition, then independent 1-D solves.

    Each customer is tied to the nearest station whose maximum antenna
    radius reaches it (unreachable customers are dropped).  Stations then
    run the 1-D greedy multi solver on their private customers.  No
    cross-station arbitration — the measured gap to
    :func:`solve_sector_greedy` is experiment E9's headline.
    ``backend="numpy"`` builds the nearest-station partition with one
    batched distance matrix (identical tie-breaking) and threads the
    vectorized rotation scan into the per-station solves.  Constraint
    masks (``docs/SCENARIOS.md``) restrict the homing step: a customer is
    tied to its nearest *effective* station, never to one a constraint
    masks out.
    """
    n = instance.n
    K = instance.total_antennas
    t0 = time.perf_counter()
    compiled = instance.compile() if compiled is None else compiled
    assignment = np.full(n, -1, dtype=np.int64)
    orientations = np.zeros(K, dtype=np.float64)
    # Station of each customer: nearest effective reaching station or -1.
    max_radii = np.array(
        [st.max_radius for st in instance.stations], dtype=np.float64
    )
    cmasks = compiled.constraint_masks(backend)
    if backend == "numpy":
        compiled.ensure_stations()
        rs_all = np.stack(
            [compiled.station(s).rs for s in range(instance.m)], axis=0
        )
        eligible = None if cmasks is None else np.stack(cmasks, axis=0)
        home = nearest_reaching_station(rs_all, max_radii, eligible=eligible)
    else:
        dist = np.full((n, instance.m), np.inf)
        for s_id in range(instance.m):
            rs = compiled.station(s_id).rs
            reach = rs <= max_radii[s_id] * (1.0 + 1e-12)
            if cmasks is not None:
                reach = reach & cmasks[s_id]
            dist[reach, s_id] = rs[reach]
        home = np.where(np.isfinite(dist.min(axis=1)), dist.argmin(axis=1), -1)

    # Global antenna id of each station's local antennas.
    g_of: dict = {}
    for g, s_id, _ in instance.antenna_table():
        g_of.setdefault(s_id, []).append(g)

    for s_id in range(instance.m):
        mine = np.flatnonzero(home == s_id)
        if mine.size == 0:
            continue
        st = instance.stations[s_id]
        station = compiled.station(s_id)
        thetas, rs = station.thetas, station.rs
        # Per-station 1-D instance over the customers within the *minimum*
        # antenna radius (conservative for mixed radii, exact when equal).
        r_min = min(a.radius for a in st.antennas)
        ok = mine[rs[mine] <= r_min * (1.0 + 1e-12)]
        if ok.size == 0:
            continue
        sub = AngleInstance(
            thetas=thetas[ok],
            demands=instance.demands[ok],
            profits=instance.profits[ok],
            antennas=st.antennas,
        )
        sol = solve_greedy_multi(sub, oracle, backend=backend)
        for local_j, g in enumerate(g_of[s_id]):
            orientations[g] = sol.orientations[local_j]
        served = sol.assignment >= 0
        assignment[ok[served]] = np.array(
            [g_of[s_id][int(j)] for j in sol.assignment[served]], dtype=np.int64
        )
    _SI_TIMER.observe(time.perf_counter() - t0)
    return SectorSolution(orientations=orientations, assignment=assignment)


def improve_sector_solution(
    instance: SectorInstance,
    solution: "SectorSolution",
    oracle: KnapsackSolver,
    max_rounds: int = 5,
    compiled: Optional["CompiledSectorInstance"] = None,
    backend: str = "python",
) -> "SectorSolution":
    """Monotone local search on a 2-D solution (the sector analogue of
    :func:`repro.packing.local_search.improve_solution`).

    One move: free a single antenna, re-run its rotation search over every
    customer not served by the *other* antennas (restricted to its own
    eligibility disk), and keep the better of old/new.  Value never
    decreases; terminates at a fixed point or after ``max_rounds`` passes.
    ``backend`` selects the rotation-scan implementation of the re-rotation
    move (see :func:`~repro.packing.single.best_rotation`).
    """
    assignment = solution.assignment.copy()
    orientations = solution.orientations.copy()
    compiled = instance.compile() if compiled is None else compiled
    masks, thetas_per, _ = compiled.eligibility(backend=backend)
    table = instance.antenna_table()
    K = instance.total_antennas

    for _ in range(max_rounds):
        improved = False
        for g in range(K):
            s_id, spec = table[g][1], table[g][2]
            available = ((assignment == -1) | (assignment == g)) & masks[g]
            idx = np.flatnonzero(available)
            if idx.size == 0:
                continue
            out = best_rotation(
                thetas_per[g][idx],
                instance.demands[idx],
                instance.profits[idx],
                spec,
                oracle,
                sweep=compiled.station(s_id).subset_sweep(idx, spec.rho),
                backend=backend,
            )
            current = float(instance.profits[assignment == g].sum())
            if out.value > current + 1e-12:
                assignment[assignment == g] = -1
                chosen = idx[out.selected]
                assignment[chosen] = g
                orientations[g] = out.alpha
                improved = True
        if not improved:
            break
    return SectorSolution(orientations=orientations, assignment=assignment)


def solve_sector_splittable(
    instance: SectorInstance,
    orientations: Sequence[float] | np.ndarray,
    compiled: Optional["CompiledSectorInstance"] = None,
) -> Tuple[np.ndarray, float]:
    """Exact splittable optimum for fixed orientations.

    Returns ``(fractions, value)`` with ``fractions`` of shape ``(n, K)``.
    Max-flow fast path when profit equals demand, LP otherwise.  The value
    upper-bounds every unsplittable solution at these orientations.
    """
    ori = np.asarray(orientations, dtype=np.float64).reshape(-1)
    cover = sector_covered_matrix(instance, ori, compiled=compiled)
    n, K = instance.n, instance.total_antennas
    caps = np.array([spec.capacity for _, _, spec in instance.antenna_table()])
    fractions = np.zeros((n, K), dtype=np.float64)
    if n == 0:
        return fractions, 0.0
    if bool(np.array_equal(instance.profits, instance.demands)):
        g = nx.DiGraph()
        for i in range(n):
            d = float(instance.demands[i])
            covering = np.flatnonzero(cover[i])
            if covering.size == 0:
                continue
            g.add_edge("s", ("c", i), capacity=d)
            for j in covering:
                g.add_edge(("c", i), ("a", int(j)), capacity=d)
        for j in range(K):
            g.add_edge(("a", j), "t", capacity=float(caps[j]))
        if "s" in g and "t" in g:
            _, flow = nx.maximum_flow(g, "s", "t")
            for i in range(n):
                node = ("c", i)
                if node in flow:
                    for tgt, f in flow[node].items():
                        if f > 0:
                            fractions[i, tgt[1]] = f / float(instance.demands[i])
    else:
        pairs = np.argwhere(cover)
        nv = pairs.shape[0]
        if nv:
            c = -instance.profits[pairs[:, 0]]
            rows, cols, vals = [], [], []
            for v, (i, j) in enumerate(pairs):
                rows.append(int(i)); cols.append(v); vals.append(1.0)
                rows.append(n + int(j)); cols.append(v)
                vals.append(float(instance.demands[i]))
            A = sp.csr_matrix((vals, (rows, cols)), shape=(n + K, nv))
            b = np.concatenate([np.ones(n), caps])
            res = linprog(c, A_ub=A, b_ub=b, bounds=(0.0, 1.0), method="highs")
            if not res.success:  # pragma: no cover
                raise RuntimeError(f"sector splittable LP failed: {res.message}")
            fractions[pairs[:, 0], pairs[:, 1]] = np.clip(res.x, 0.0, 1.0)
    np.clip(fractions, 0.0, 1.0, out=fractions)
    value = float((instance.profits * fractions.sum(axis=1)).sum())
    return fractions, value
