"""The dual covering problem: serve *everyone* with few antennas.

The paper maximizes served demand with a fixed antenna budget.  The
natural dual (its "future work" direction, and the planning question an
operator asks first) is: **how many antennas of a given spec are needed to
serve all customers?**

:func:`greedy_cover` answers with the classic greedy-set-cover strategy,
where the "sets" are single-antenna packings produced by the rotation
search: repeatedly place one more antenna serving the maximum remaining
demand until nothing is left.

**Guarantee.**  Let ``OPT`` be the minimum number of antennas that can
serve all demand ``D``.  Each greedy round, with a ``beta``-approximate
rotation oracle, serves at least ``beta / OPT`` of the remaining demand
(the best remaining single-antenna haul is at least ``remaining / OPT``,
because OPT antennas cover the remainder).  After
``t = ceil(OPT/beta * ln(D/d_min))`` rounds the remaining demand is below
the smallest single demand ``d_min``, i.e. zero — the familiar
``O(OPT * log(D/d_min))`` bound (``ln n + 1``-style for unit demands).
A customer whose demand exceeds the antenna capacity makes the cover
infeasible; this is detected up front.

:func:`cover_lower_bound` provides the certificate
``ceil(total demand / capacity)`` (and a geometric refinement), so every
result is reported together with an instance-specific optimality gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.geometry.angles import TWO_PI
from repro.knapsack.api import KnapsackSolver
from repro.model.antenna import AntennaSpec
from repro.model.instance import AngleInstance
from repro.model.solution import AngleSolution
from repro.numerics import ceil_units, fits, overloads
from repro.packing.single import best_rotation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.compiled import CompiledAngleInstance


class InfeasibleCoverError(ValueError):
    """Raised when no antenna count can serve every customer."""


@dataclass(frozen=True)
class CoverResult:
    """Outcome of a covering run.

    Attributes
    ----------
    orientations:
        One start angle per placed antenna (length = antennas used).
    assignment:
        ``(n,)`` antenna index per customer (no ``-1``: the cover is full).
    antennas_used:
        ``len(orientations)``.
    lower_bound:
        Instance-specific lower bound on the optimal count.
    """

    orientations: np.ndarray
    assignment: np.ndarray
    antennas_used: int
    lower_bound: int

    def as_solution(self, spec: AntennaSpec, n: int) -> AngleSolution:
        """View as an :class:`AngleSolution` of an instance with
        ``antennas_used`` copies of ``spec`` (for verification)."""
        return AngleSolution(
            orientations=self.orientations.copy(),
            assignment=self.assignment.copy(),
        )

    def gap(self) -> float:
        """``antennas_used / lower_bound`` (1.0 = certified optimal)."""
        return self.antennas_used / max(self.lower_bound, 1)


def cover_lower_bound(
    thetas: np.ndarray, demands: np.ndarray, spec: AntennaSpec
) -> int:
    """Certified lower bound on the number of antennas needed.

    Two arguments, take the max:

    * **capacity**: ``ceil(total demand / capacity)``;
    * **geometry**: any single antenna covers an arc of width ``rho``, so
      at least ``ceil(D_w / capacity)`` antennas *intersect* any window
      ``w``... simplified to the strongest single-window form: for the
      window of maximum demand ``D_w`` reachable by one orientation, all
      of it must still be served, but customers *outside* every rotation
      of one antenna need their own.  We use the robust pair:
      ``ceil(total/capacity)`` and ``ceil(2*pi / rho)`` when every
      customer angle class is occupied (full-circle spread needs at least
      that many arcs to merely touch everyone).
    """
    demands = np.asarray(demands, dtype=np.float64)
    if demands.size == 0:
        return 0
    cap_bound = ceil_units(float(demands.sum()), spec.capacity)
    geo_bound = 0
    if spec.rho < TWO_PI:
        # count how many arcs of width rho are needed just to touch all
        # angles: greedy interval covering on the circle is optimal; we
        # compute it exactly (it is cheap) as a valid lower bound.
        geo_bound = _min_arcs_to_touch(np.asarray(thetas, dtype=np.float64), spec.rho)
    return max(1, cap_bound, geo_bound)


def _min_arcs_to_touch(thetas: np.ndarray, rho: float) -> int:
    """Minimum number of width-``rho`` arcs covering all angles (no
    capacities).  Exact: fix a canonical first arc at each distinct angle,
    then greedy-stab the rest; take the best.  ``O(u^2)`` for ``u``
    distinct angles — fine for instance sizes here."""
    uniq = np.unique(np.mod(thetas, TWO_PI))
    u = uniq.size
    if u == 0:
        return 0
    best = u  # one arc per angle always works
    for f in range(u):
        start = uniq[f]
        # offsets of all angles from this arc's start, ascending
        offs = np.sort(np.mod(uniq - start, TWO_PI))
        count = 1
        reach = rho
        i = 0
        while i < u and offs[i] <= reach + 1e-12:
            i += 1
        while i < u:
            count += 1
            reach = offs[i] + rho
            while i < u and offs[i] <= reach + 1e-12:
                i += 1
        best = min(best, count)
    return best


def greedy_cover(
    thetas: np.ndarray,
    demands: np.ndarray,
    spec: AntennaSpec,
    oracle: KnapsackSolver,
    max_antennas: Optional[int] = None,
    compiled: Optional["CompiledAngleInstance"] = None,
) -> CoverResult:
    """Serve every customer using greedy max-remaining-demand placements.

    Raises :class:`InfeasibleCoverError` when some demand exceeds the
    capacity, and ``RuntimeError`` if ``max_antennas`` (default
    ``4 * n``) placements do not finish — which cannot happen for a
    feasible instance, since every round serves at least one customer.

    ``compiled`` (optional) must be the compiled view of an instance whose
    (normalized) angles equal ``thetas``; each round then derives its
    subset sweep from the shared sort instead of re-sorting.
    """
    thetas = np.asarray(thetas, dtype=np.float64)
    demands = np.asarray(demands, dtype=np.float64)
    n = thetas.size
    if n == 0:
        return CoverResult(
            orientations=np.empty(0),
            assignment=np.empty(0, dtype=np.int64),
            antennas_used=0,
            lower_bound=0,
        )
    if (~fits(demands, spec.capacity)).any():
        bad = int(np.argmax(demands))
        raise InfeasibleCoverError(
            f"customer {bad} demands {demands[bad]} > capacity {spec.capacity}"
        )
    if max_antennas is None:
        max_antennas = 4 * n

    assignment = np.full(n, -1, dtype=np.int64)
    orientations: List[float] = []
    remaining = np.ones(n, dtype=bool)
    while remaining.any():
        if len(orientations) >= max_antennas:
            raise RuntimeError(
                f"cover did not finish within {max_antennas} antennas"
            )
        idx = np.flatnonzero(remaining)
        out = best_rotation(
            thetas[idx],
            demands[idx],
            demands[idx],
            spec,
            oracle,
            sweep=(
                None if compiled is None else compiled.subset_sweep(idx, spec.rho)
            ),
        )
        if out.selected.size == 0:
            # Cannot happen when every demand fits capacity: the window at
            # any remaining customer packs at least that customer.
            raise RuntimeError("rotation search returned empty packing")
        chosen = idx[out.selected]
        assignment[chosen] = len(orientations)
        orientations.append(out.alpha)
        remaining[chosen] = False

    return CoverResult(
        orientations=np.asarray(orientations, dtype=np.float64),
        assignment=assignment,
        antennas_used=len(orientations),
        lower_bound=cover_lower_bound(thetas, demands, spec),
    )


def cover_instance(
    instance: AngleInstance,
    oracle: KnapsackSolver,
    compiled: Optional["CompiledAngleInstance"] = None,
    **kwargs,
) -> CoverResult:
    """Cover all customers of an instance with copies of its first antenna.

    Convenience wrapper: uses ``instance.antennas[0]`` as the repeatable
    spec (the covering question is posed for one antenna type) and the
    instance's compiled view for the per-round subset sweeps.
    """
    compiled = instance.compile() if compiled is None else compiled
    return greedy_cover(
        instance.thetas,
        instance.demands,
        instance.antennas[0],
        oracle,
        compiled=compiled,
        **kwargs,
    )


def verify_cover(
    thetas: np.ndarray,
    demands: np.ndarray,
    spec: AntennaSpec,
    result: CoverResult,
) -> None:
    """Independent check: everyone served, capacities and coverage hold."""
    thetas = np.asarray(thetas, dtype=np.float64)
    demands = np.asarray(demands, dtype=np.float64)
    n = thetas.size
    if result.assignment.shape != (n,):
        raise ValueError("assignment shape mismatch")
    if n and (result.assignment < 0).any():
        raise ValueError("cover leaves customers unserved")
    if result.antennas_used != result.orientations.shape[0]:
        raise ValueError("antennas_used inconsistent with orientations")
    from repro.geometry.arcs import Arc

    for j in range(result.antennas_used):
        members = np.flatnonzero(result.assignment == j)
        arc = Arc(float(result.orientations[j]), spec.rho)
        if members.size:
            if not arc.contains_angles(thetas[members]).all():
                raise ValueError(f"antenna {j} assigned customers outside its arc")
            load = float(demands[members].sum())
            if overloads(load, spec.capacity):
                raise ValueError(f"antenna {j} overloaded: {load} > {spec.capacity}")
