"""Local search improvement for multi-antenna solutions.

Moves (all value-monotone; the result never gets worse):

* **fill** -- scan unserved customers and pack any that fit an antenna's
  remaining slack and arc (cheap, always run).
* **re-rotate** -- free one antenna entirely, re-run the single-antenna
  rotation search over every customer not served by the *other* antennas,
  and keep the better of old/new.

Rounds alternate the moves until a fixed point or ``max_rounds``.  Used
both as a standalone heuristic and as the polish pass after greedy / LP
rounding (experiment E5 measures its contribution).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.geometry.arcs import Arc
from repro.knapsack.api import KnapsackSolver
from repro.model.instance import AngleInstance
from repro.model.solution import AngleSolution
from repro.numerics import fits
from repro.packing.single import best_rotation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.compiled import CompiledAngleInstance


def _fill_pass(
    instance: AngleInstance,
    orientations: np.ndarray,
    assignment: np.ndarray,
) -> bool:
    """Insert unserved customers into any covering antenna with slack.

    Customers are tried in decreasing profit density (profit per unit
    demand) so the slack is spent where it pays most.  Returns True if
    anything changed.
    """
    changed = False
    loads = np.zeros(instance.k)
    served = assignment >= 0
    np.add.at(loads, assignment[served], instance.demands[served])
    arcs = [
        Arc(float(orientations[j]), instance.antennas[j].rho)
        for j in range(instance.k)
    ]
    unserved = np.flatnonzero(~served)
    density = instance.profits[unserved] / instance.demands[unserved]
    for i in unserved[np.argsort(-density, kind="stable")]:
        for j in range(instance.k):
            cap = instance.antennas[j].capacity
            if (
                fits(loads[j] + instance.demands[i], cap)
                and arcs[j].contains(float(instance.thetas[i]))
            ):
                assignment[i] = j
                loads[j] += instance.demands[i]
                changed = True
                break
    return changed


def fill_active_antennas(
    instance: AngleInstance,
    orientations: np.ndarray,
    assignment: np.ndarray,
) -> None:
    """Fill pass restricted to antennas already serving somebody.

    Used by the disjoint-variant solvers after assembly: their profit
    tables use half-open windows (to avoid double counting across abutting
    windows), so a customer sitting exactly at an active arc's closed end
    may be left unserved even though serving it is feasible.  Filling only
    *active* antennas keeps the disjointness invariant intact (idle parked
    arcs never start radiating).  In-place, value-monotone.
    """
    active = np.zeros(instance.k, dtype=bool)
    served = assignment >= 0
    active[np.unique(assignment[served])] = True
    if not active.any():
        return
    loads = np.zeros(instance.k)
    np.add.at(loads, assignment[served], instance.demands[served])
    arcs = {
        j: Arc(float(orientations[j]), instance.antennas[j].rho)
        for j in np.flatnonzero(active)
    }
    unserved = np.flatnonzero(~served)
    density = instance.profits[unserved] / instance.demands[unserved]
    for i in unserved[np.argsort(-density, kind="stable")]:
        for j, arc in arcs.items():
            cap = instance.antennas[j].capacity
            if (
                fits(loads[j] + instance.demands[i], cap)
                and arc.contains(float(instance.thetas[i]))
            ):
                assignment[i] = j
                loads[j] += instance.demands[i]
                break


def improve_solution(
    instance: AngleInstance,
    solution: AngleSolution,
    oracle: KnapsackSolver,
    max_rounds: int = 10,
    compiled: Optional["CompiledAngleInstance"] = None,
    backend: str = "python",
) -> AngleSolution:
    """Monotone local search: returns a solution with value >= the input's.

    ``oracle`` drives the re-rotation move's inner knapsack.  Terminates
    after ``max_rounds`` full passes or at the first pass with no
    improvement.  ``compiled`` is the shared precomputation view (defaults
    to ``instance.compile()``); the re-rotation move derives its subset
    sweeps from it instead of re-sorting per candidate antenna.
    ``backend`` selects the rotation-scan implementation of the
    re-rotation move (see :func:`~repro.packing.single.best_rotation`).
    """
    compiled = instance.compile() if compiled is None else compiled
    orientations = solution.orientations.copy()
    assignment = solution.assignment.copy()
    best_value = float(instance.profits[assignment >= 0].sum())

    for _ in range(max_rounds):
        improved = False
        if _fill_pass(instance, orientations, assignment):
            new_value = float(instance.profits[assignment >= 0].sum())
            improved = new_value > best_value + 1e-12
            best_value = max(best_value, new_value)
        for j in range(instance.k):
            # Customers available to antenna j: unserved ones + its own.
            available = (assignment == -1) | (assignment == j)
            idx = np.flatnonzero(available)
            if idx.size == 0:
                continue
            spec = instance.antennas[j]
            out = best_rotation(
                instance.thetas[idx],
                instance.demands[idx],
                instance.profits[idx],
                spec,
                oracle,
                sweep=compiled.subset_sweep(idx, spec.rho),
                backend=backend,
            )
            current_j_value = float(instance.profits[assignment == j].sum())
            if out.value > current_j_value + 1e-12:
                assignment[assignment == j] = -1
                chosen = idx[out.selected]
                assignment[chosen] = j
                orientations[j] = out.alpha
                best_value += out.value - current_j_value
                improved = True
        if not improved:
            break
    return AngleSolution(orientations=orientations, assignment=assignment)
