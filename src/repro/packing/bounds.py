"""Cheap upper bounds on the packing optimum.

Used to certify approximation ratios on instances too large for the exact
solvers: ``measured / upper_bound`` is a *lower* bound on the true ratio,
so a solver that clears its guarantee against these bounds clears it
against OPT a fortiori.

Bounds (each is proved in its docstring):

* ``total_profit``: serve everyone.
* :func:`capacity_upper_bound`: no antenna can carry more than its
  capacity's worth of the best profit density.
* :func:`fractional_rotation_upper_bound`: per antenna, the best
  *fractional* single-antenna value over all orientations; summing over
  antennas over-counts shared customers and is therefore valid.
* :func:`combined_upper_bound`: the minimum of all of the above (and the
  LP bound when requested).
"""

from __future__ import annotations

import numpy as np

from repro.model.instance import AngleInstance
from repro.packing.single import best_rotation_fractional


def capacity_upper_bound(instance: AngleInstance) -> float:
    """``sum_j c_j * max_i (profit_i / demand_i)``, capped by total profit.

    Any feasible solution serves, per antenna ``j``, customers of total
    demand at most ``c_j``; converting demand to profit at the best
    density overestimates every antenna's haul.  For the paper's
    profit-equals-demand objective the density is 1 and the bound is
    simply ``min(total_demand, sum of capacities)``.
    """
    if instance.n == 0:
        return 0.0
    density = float((instance.profits / instance.demands).max())
    cap_total = float(sum(a.capacity for a in instance.antennas))
    return min(instance.total_profit, density * cap_total)


def fractional_rotation_upper_bound(instance: AngleInstance) -> float:
    """Sum over antennas of their best fractional single-antenna value.

    Valid because OPT decomposes as ``sum_j (profit served by antenna j)``
    and each term is at most antenna ``j``'s best possible haul when given
    *all* customers to itself fractionally.  Tighter than
    :func:`capacity_upper_bound` whenever geometry (a narrow ``rho``)
    prevents an antenna from reaching enough demand to fill its capacity.
    """
    total = 0.0
    for spec in instance.antennas:
        _, _, value = best_rotation_fractional(
            instance.thetas, instance.demands, instance.profits, spec
        )
        total += value
    return min(total, instance.total_profit)


def combined_upper_bound(instance: AngleInstance, use_lp: bool = False) -> float:
    """Minimum of all available bounds (optionally including the LP).

    The LP bound (:func:`repro.packing.lp.lp_upper_bound`) is the tightest
    but costs a linear program; enable it with ``use_lp=True`` on small and
    medium instances.
    """
    bound = min(
        instance.total_profit,
        capacity_upper_bound(instance),
        fractional_rotation_upper_bound(instance),
    )
    if use_lp:
        from repro.packing.lp import lp_upper_bound

        bound = min(bound, lp_upper_bound(instance))
    return bound
