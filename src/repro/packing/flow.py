"""Splittable assignment for *fixed* orientations: exact in polynomial time.

With orientations frozen, the splittable variant is a transportation
problem.  For the paper's profit-equals-demand objective it is exactly a
maximum flow::

    source --d_i--> customer i --d_i--> antenna j (if covered) --c_j--> sink

whose value equals the maximum splittable served demand.  For general
profits it is a small LP (variables ``x[i, j]`` over covered pairs),
solved with ``scipy.optimize.linprog`` (HiGHS).

Either way the result upper-bounds the *unsplittable* optimum for the same
orientations — the bound used by the exact branch & bound and by
experiment E6 (splittable-vs-unsplittable gap).
"""

from __future__ import annotations

from typing import Optional, Sequence

import networkx as nx
import numpy as np
import scipy.sparse as sp
from scipy.optimize import linprog

from repro.model.instance import AngleInstance
from repro.model.solution import FractionalSolution


def covered_matrix(
    instance: AngleInstance, orientations: Sequence[float] | np.ndarray
) -> np.ndarray:
    """Boolean ``(n, k)`` matrix: customer ``i`` inside antenna ``j``'s arc.

    One vectorized ``(n, k)`` broadcast (no Python loop over antennas).
    """
    from repro.geometry.angles import angles_in_windows

    ori = np.asarray(orientations, dtype=np.float64).reshape(-1)
    if ori.shape != (instance.k,):
        raise ValueError(
            f"orientations must have shape ({instance.k},), got {ori.shape}"
        )
    return angles_in_windows(instance.thetas, ori, instance.widths)


def _solve_maxflow(
    instance: AngleInstance, cover: np.ndarray
) -> np.ndarray:
    """Fractions via max-flow (profit == demand fast path)."""
    n, k = instance.n, instance.k
    g = nx.DiGraph()
    src, snk = "s", "t"
    for i in range(n):
        d = float(instance.demands[i])
        g.add_edge(src, ("c", i), capacity=d)
        for j in np.flatnonzero(cover[i]):
            g.add_edge(("c", i), ("a", int(j)), capacity=d)
    for j in range(k):
        g.add_edge(("a", j), snk, capacity=float(instance.antennas[j].capacity))
    if src not in g or snk not in g:
        return np.zeros((n, k), dtype=np.float64)
    _, flow = nx.maximum_flow(g, src, snk)
    fractions = np.zeros((n, k), dtype=np.float64)
    for i in range(n):
        node = ("c", i)
        if node not in flow:
            continue
        for tgt, f in flow[node].items():
            if f > 0:
                fractions[i, tgt[1]] = f / float(instance.demands[i])
    return np.clip(fractions, 0.0, 1.0)


def _solve_lp(
    instance: AngleInstance, cover: np.ndarray
) -> np.ndarray:
    """Fractions via LP (general profits)."""
    n, k = instance.n, instance.k
    pairs = np.argwhere(cover)
    nv = pairs.shape[0]
    fractions = np.zeros((n, k), dtype=np.float64)
    if nv == 0:
        return fractions
    c = -instance.profits[pairs[:, 0]]
    rows, cols, vals = [], [], []
    # per-customer rows: sum_j x_ij <= 1
    for v, (i, j) in enumerate(pairs):
        rows.append(int(i))
        cols.append(v)
        vals.append(1.0)
    # per-antenna rows: sum_i d_i x_ij <= c_j
    for v, (i, j) in enumerate(pairs):
        rows.append(n + int(j))
        cols.append(v)
        vals.append(float(instance.demands[i]))
    A = sp.csr_matrix((vals, (rows, cols)), shape=(n + k, nv))
    b = np.concatenate([np.ones(n), instance.capacities])
    res = linprog(c, A_ub=A, b_ub=b, bounds=(0.0, 1.0), method="highs")
    if not res.success:  # pragma: no cover - HiGHS is robust on these LPs
        raise RuntimeError(f"splittable LP failed: {res.message}")
    fractions[pairs[:, 0], pairs[:, 1]] = np.clip(res.x, 0.0, 1.0)
    return fractions


def solve_splittable(
    instance: AngleInstance,
    orientations: Sequence[float] | np.ndarray,
    force_lp: bool = False,
) -> FractionalSolution:
    """Exact splittable optimum for the given orientations.

    Dispatches to max-flow when profit equals demand (``force_lp=False``),
    else to the LP.  The returned solution verifies against the instance.
    """
    ori = np.asarray(orientations, dtype=np.float64).reshape(-1)
    cover = covered_matrix(instance, ori)
    if instance.n == 0:
        return FractionalSolution(
            orientations=ori, fractions=np.zeros((0, instance.k))
        )
    if instance.profit_equals_demand and not force_lp:
        fractions = _solve_maxflow(instance, cover)
    else:
        fractions = _solve_lp(instance, cover)
    # Numerical safety: renormalize rows that exceed 1 by float noise.
    row = fractions.sum(axis=1)
    over = row > 1.0
    if over.any():
        fractions[over] /= row[over, None]
    return FractionalSolution(orientations=ori, fractions=fractions)


def splittable_value(
    instance: AngleInstance, orientations: Sequence[float] | np.ndarray
) -> float:
    """Value of the splittable optimum (upper bound for unsplittable)."""
    return solve_splittable(instance, orientations).value(instance)


def solve_unit_demand_fixed(
    instance: AngleInstance, orientations: Sequence[float] | np.ndarray
):
    """Exact *unsplittable* assignment for unit demands, in polynomial time.

    With every demand equal to 1 (and profit == demand) the fixed-
    orientation assignment is a bipartite b-matching: max-flow with the
    integer capacities ``floor(c_j)`` is integral (flow integrality on
    integer networks), so rounding the splittable flow *is* the optimal
    integral assignment — the integrality gap of E6 vanishes entirely.

    Requires ``demands == 1`` and ``profit == demand``; raises
    ``ValueError`` otherwise.  Returns an :class:`AngleSolution`.
    """
    from repro.model.solution import AngleSolution

    ori = np.asarray(orientations, dtype=np.float64).reshape(-1)
    if instance.n and not np.allclose(instance.demands, 1.0):
        raise ValueError("solve_unit_demand_fixed requires unit demands")
    if not instance.profit_equals_demand:
        raise ValueError("solve_unit_demand_fixed requires profit == demand")
    cover = covered_matrix(instance, ori)
    n, k = instance.n, instance.k
    assignment = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return AngleSolution(orientations=ori, assignment=assignment)
    g = nx.DiGraph()
    for i in range(n):
        covering = np.flatnonzero(cover[i])
        if covering.size == 0:
            continue
        g.add_edge("s", ("c", i), capacity=1)
        for j in covering:
            g.add_edge(("c", i), ("a", int(j)), capacity=1)
    for j in range(k):
        g.add_edge(("a", j), "t", capacity=int(np.floor(instance.antennas[j].capacity + 1e-9)))
    if "s" in g and "t" in g:
        _, flow = nx.maximum_flow(g, "s", "t")
        for i in range(n):
            node = ("c", i)
            if node in flow:
                for tgt, f in flow[node].items():
                    if f >= 1:  # integral flow on integer network
                        assignment[i] = tgt[1]
                        break
    return AngleSolution(orientations=ori, assignment=assignment)
