"""Assignment heuristics for *fixed* orientations.

Once orientations are frozen the problem is a multiple-knapsack with
coverage restrictions.  :func:`greedy_assignment_fixed` packs antennas one
at a time with the knapsack oracle (the fixed-orientation analogue of
:func:`~repro.packing.multi.solve_greedy_multi`, same
``beta/(1+beta)`` guarantee relative to the best assignment *for these
orientations*); it is the rounding back end of the LP solver and the
evaluation step of local-search restarts.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.geometry.arcs import Arc
from repro.knapsack.api import KnapsackSolver
from repro.model.instance import AngleInstance
from repro.model.solution import AngleSolution


def greedy_assignment_fixed(
    instance: AngleInstance,
    orientations: Sequence[float] | np.ndarray,
    oracle: KnapsackSolver,
    antenna_order: Optional[Sequence[int]] = None,
) -> AngleSolution:
    """Greedy multiple-knapsack assignment for frozen orientations.

    Antennas (default order: decreasing capacity) each pack the remaining
    customers inside their arc with the oracle.  With a ``beta``-oracle
    this is ``beta/(1+beta)``-approximate w.r.t. the optimal assignment at
    these orientations.
    """
    ori = np.asarray(orientations, dtype=np.float64).reshape(-1)
    if ori.shape != (instance.k,):
        raise ValueError(
            f"orientations must have shape ({instance.k},), got {ori.shape}"
        )
    if antenna_order is None:
        antenna_order = list(np.argsort([-a.capacity for a in instance.antennas]))
    assignment = np.full(instance.n, -1, dtype=np.int64)
    remaining = np.ones(instance.n, dtype=bool)
    for j in antenna_order:
        arc = Arc(float(ori[j]), instance.antennas[j].rho)
        avail = remaining & arc.contains_angles(instance.thetas)
        idx = np.flatnonzero(avail)
        if idx.size == 0:
            continue
        res = oracle.solve(
            instance.demands[idx],
            instance.profits[idx],
            instance.antennas[j].capacity,
        )
        chosen = idx[res.selected]
        assignment[chosen] = j
        remaining[chosen] = False
    return AngleSolution(orientations=ori, assignment=assignment)
