"""Core packing algorithms: the paper's contribution.

Solvers for the packing-to-angles (1-D) and packing-to-sectors (2-D)
problems, organised by variant:

* :mod:`repro.packing.canonical` -- the rotation lemma and candidate
  orientation enumeration every other solver builds on.
* :mod:`repro.packing.single` -- single-antenna solvers (exact, FPTAS
  sweep, greedy sweep, exact fractional).
* :mod:`repro.packing.multi` -- multi-antenna solvers: greedy
  multi-knapsack, the non-overlapping circular DP.
* :mod:`repro.packing.local_search` -- rotate/reassign improvement.
* :mod:`repro.packing.lp` -- LP relaxation upper bound + randomized
  rounding.
* :mod:`repro.packing.flow` -- splittable (fractional) optimum for fixed
  orientations via max-flow / LP.
* :mod:`repro.packing.exact` -- exponential exact solvers (ground truth).
* :mod:`repro.packing.shifting` -- shifted-cut scheme for the
  non-overlapping variant.
* :mod:`repro.packing.bounds` -- cheap upper bounds for certification.
* :mod:`repro.packing.sectors` -- the 2-D pipeline.
"""

from repro.packing.canonical import canonical_starts, rotation_candidates
from repro.packing.single import (
    RotationOutcome,
    best_rotation,
    best_rotation_fractional,
    solve_single_antenna,
    solve_single_antenna_fractional,
)
from repro.packing.multi import (
    solve_greedy_multi,
    solve_non_overlapping_dp,
)
from repro.packing.local_search import improve_solution
from repro.packing.lp import lp_upper_bound, solve_lp_rounding
from repro.packing.flow import splittable_value, solve_splittable
from repro.packing.exact import (
    solve_exact_angle,
    solve_exact_anytime,
    solve_exact_fixed_orientations,
)
from repro.packing.shifting import solve_shifting
from repro.packing.insertion import solve_insertion
from repro.packing.bounds import (
    capacity_upper_bound,
    combined_upper_bound,
    fractional_rotation_upper_bound,
)
from repro.packing.sectors import (
    improve_sector_solution,
    solve_exact_sector,
    solve_exact_sector_single,
    solve_sector_greedy,
    solve_sector_independent,
    solve_sector_splittable,
)
from repro.packing.covering import (
    CoverResult,
    InfeasibleCoverError,
    cover_instance,
    cover_lower_bound,
    greedy_cover,
    verify_cover,
)

__all__ = [
    "canonical_starts",
    "rotation_candidates",
    "RotationOutcome",
    "best_rotation",
    "best_rotation_fractional",
    "solve_single_antenna",
    "solve_single_antenna_fractional",
    "solve_greedy_multi",
    "solve_non_overlapping_dp",
    "improve_solution",
    "lp_upper_bound",
    "solve_lp_rounding",
    "splittable_value",
    "solve_splittable",
    "solve_exact_angle",
    "solve_exact_anytime",
    "solve_exact_fixed_orientations",
    "solve_shifting",
    "solve_insertion",
    "capacity_upper_bound",
    "combined_upper_bound",
    "fractional_rotation_upper_bound",
    "solve_sector_greedy",
    "solve_sector_independent",
    "solve_sector_splittable",
    "improve_sector_solution",
    "solve_exact_sector",
    "solve_exact_sector_single",
    "greedy_cover",
    "cover_instance",
    "cover_lower_bound",
    "verify_cover",
    "CoverResult",
    "InfeasibleCoverError",
]
