"""Greedy insertion heuristic for the non-overlapping variant.

The third point in the speed/quality space alongside the exact circular
DP (:func:`~repro.packing.multi.solve_non_overlapping_dp`) and the
shifting scheme (:func:`~repro.packing.shifting.solve_shifting`):

1. score every canonical window once with the knapsack oracle;
2. walk windows in decreasing score, placing each whose arc is
   interior-disjoint from everything placed so far
   (:class:`~repro.geometry.interval_set.CircularIntervalSet` answers the
   freeness query), until ``k`` antennas are placed;
3. deduplicate boundary customers during assembly.

**Quality.**  A charging argument sketches a constant factor: map every
window of the disjoint optimum to a canonical window covering its served
set (rotation lemma; score >= oracle factor times its value).  Each such
canonical window is either chosen, or out-scored by all k chosen windows,
or conflicts with an earlier-chosen window of no smaller score — and one
chosen arc of width ``rho`` can conflict with canonical images of at most
3 disjoint optimal arcs (their starts are customers inside disjoint
``rho``-arcs meeting a ``2*rho`` window).  This bounds the loss by a
small constant, up to boundary-customer deduplication; we do not assert a
tight constant as a theorem, and instead measure the heuristic against
the exact DP (ablation A4), where it tracks closely at a fraction of the
cost.

Complexity: ``O(n)`` oracle calls + ``O(n log n + n k)`` bookkeeping —
the same order as shifting, without choosing ``t``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.geometry.arcs import Arc
from repro.geometry.interval_set import CircularIntervalSet
from repro.knapsack.api import KnapsackSolver
from repro.model.instance import AngleInstance
from repro.model.solution import AngleSolution
from repro.numerics import fits

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.compiled import CompiledAngleInstance


def solve_insertion(
    instance: AngleInstance,
    oracle: KnapsackSolver,
    boundary_fill: bool = True,
    compiled: Optional["CompiledAngleInstance"] = None,
) -> AngleSolution:
    """Non-overlapping packing by conflict-greedy window insertion.

    Identical antennas only (the score table is shared); the returned
    solution satisfies ``verify(instance, require_disjoint=True)``.
    ``compiled`` is the shared precomputation view (defaults to
    ``instance.compile()``).
    """
    if not instance.has_uniform_antennas:
        raise ValueError("insertion heuristic requires identical antennas")
    n, k = instance.n, instance.k
    if n == 0:
        return AngleSolution.empty(instance)
    compiled = instance.compile() if compiled is None else compiled
    spec = instance.antennas[0]

    sweep = compiled.sweep(spec.rho)
    demand_sums = sweep.window_sums_from_prefix(compiled.demand_prefix)
    ids = sweep.unique_window_ids()
    starts = np.empty(ids.size)
    values = np.empty(ids.size)
    picks: List[np.ndarray] = []
    for a, wid in enumerate(ids):
        w = sweep.window(int(wid))
        cov = w.indices
        starts[a] = w.start
        if fits(float(demand_sums[wid]), spec.capacity):
            values[a] = float(instance.profits[cov].sum())
            picks.append(cov.copy())
        else:
            res = oracle.solve(
                instance.demands[cov], instance.profits[cov], spec.capacity
            )
            values[a] = res.value
            picks.append(cov[res.selected])

    occupied = CircularIntervalSet()
    chosen: List[int] = []
    for a in np.argsort(-values, kind="stable"):
        if len(chosen) >= k:
            break
        if values[a] <= 0:
            break
        arc = Arc(float(starts[a]), spec.rho)
        if occupied.is_free(arc):
            occupied.add(arc)
            chosen.append(int(a))

    assignment = np.full(n, -1, dtype=np.int64)
    orientations = np.zeros(k, dtype=np.float64)
    taken = np.zeros(n, dtype=bool)
    for j, a in enumerate(chosen):
        sel = picks[a]
        fresh = sel[~taken[sel]]
        assignment[fresh] = j
        taken[fresh] = True
        orientations[j] = float(starts[a])
    if boundary_fill:
        from repro.packing.local_search import fill_active_antennas

        fill_active_antennas(instance, orientations, assignment)
    return AngleSolution(orientations=orientations, assignment=assignment)
