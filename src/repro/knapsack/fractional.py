"""Fractional (splittable) knapsack: exact in ``O(n log n)``.

Items may be taken fractionally; the optimum is the classic density greedy
(take items by decreasing profit/weight until the capacity is exactly
exhausted, splitting the last item).  Two uses in this library:

* the exact solver for the *splittable* packing variant, and
* the upper bound inside branch & bound (the LP relaxation of 0/1
  knapsack is exactly the fractional optimum).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.knapsack.api import _as_arrays


@dataclass(frozen=True)
class FractionalResult:
    """Outcome of a fractional knapsack solve.

    ``fractions[i]`` in ``[0, 1]`` is the fraction of item ``i`` taken;
    ``value = sum profits * fractions``; ``weight = sum weights * fractions``.
    """

    fractions: np.ndarray
    value: float
    weight: float

    @property
    def integral_support(self) -> np.ndarray:
        """Indices taken entirely (fraction == 1)."""
        return np.flatnonzero(self.fractions >= 1.0 - 1e-12)

    @property
    def split_item(self) -> int | None:
        """The (at most one) fractionally taken item's index, or ``None``."""
        partial = np.flatnonzero(
            (self.fractions > 1e-12) & (self.fractions < 1.0 - 1e-12)
        )
        if partial.size == 0:
            return None
        return int(partial[0])


def solve_fractional(weights, profits, capacity: float) -> FractionalResult:
    """Optimal fractional knapsack by density greedy.

    Zero-weight items with positive profit are always taken whole.  The
    result has at most one fractional item — the structural fact the
    branch-and-bound pruning rule and the rounding analyses rely on.
    """
    w, p = _as_arrays(weights, profits)
    n = w.size
    fractions = np.zeros(n, dtype=np.float64)
    if n == 0:
        return FractionalResult(fractions=fractions, value=0.0, weight=0.0)
    free = (w <= 1e-12) & (p > 0)
    fractions[free] = 1.0
    cap = max(0.0, float(capacity))
    # Density order over weighted items (zero-profit items never help).
    heavy = np.flatnonzero((w > 1e-12) & (p > 0))
    if heavy.size:
        density = p[heavy] / w[heavy]
        order = heavy[np.argsort(-density, kind="stable")]
        remaining = cap
        for i in order:
            if remaining <= 1e-15:
                break
            if w[i] <= remaining:
                fractions[i] = 1.0
                remaining -= w[i]
            else:
                fractions[i] = remaining / w[i]
                remaining = 0.0
    value = float((p * fractions).sum())
    weight = float((w * fractions).sum())
    return FractionalResult(fractions=fractions, value=value, weight=weight)


def fractional_upper_bound(weights, profits, capacity: float) -> float:
    """The fractional optimum as a scalar (an upper bound on 0/1 OPT)."""
    return solve_fractional(weights, profits, capacity).value
