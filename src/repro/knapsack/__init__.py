"""0/1 knapsack engine: the inner oracle of every packing algorithm.

The packing problem's per-antenna subproblem is: given the customers covered
by an oriented arc, choose a maximum-profit subset whose total demand fits
the antenna capacity.  That is 0/1 knapsack (with the paper's
profit-equals-demand objective it specializes to maximum subset-sum, still
NP-hard).  This package supplies interchangeable solvers:

============  =========================  ==========================
solver        guarantee                  complexity
============  =========================  ==========================
exact DP      optimal (integer weights)  O(n * C)
branch&bound  optimal (any weights)      exponential worst case
FPTAS         >= (1 - eps) * OPT         O(n^2 / eps) (profit scaling)
greedy        >= OPT / 2                 O(n log n)
fractional    optimal *fractional*       O(n log n)  (upper bound)
============  =========================  ==========================

All solvers share the signature ``solve(weights, profits, capacity)`` and
return a :class:`~repro.knapsack.api.KnapsackResult`; ``get_solver(name)``
resolves a registry entry.
"""

from repro.knapsack.api import (
    KNAPSACK_SOLVERS,
    KnapsackResult,
    KnapsackSolver,
    get_solver,
)
from repro.knapsack.branch_bound import solve_branch_and_bound
from repro.knapsack.exact import solve_exact_auto, solve_exact_integer
from repro.knapsack.fptas import solve_fptas
from repro.knapsack.fractional import FractionalResult, solve_fractional
from repro.knapsack.profit_dp import solve_exact_by_profit
from repro.knapsack.greedy import solve_greedy

__all__ = [
    "KnapsackResult",
    "KnapsackSolver",
    "KNAPSACK_SOLVERS",
    "get_solver",
    "solve_exact_integer",
    "solve_exact_auto",
    "solve_branch_and_bound",
    "solve_fptas",
    "solve_greedy",
    "solve_fractional",
    "FractionalResult",
]
