"""Exact 0/1 knapsack: integer-weight DP and an auto-dispatching front end.

``solve_exact_integer`` is the textbook ``O(n * C)`` dynamic program over
capacities, vectorized so the inner relaxation is a single NumPy ``maximum``
over a shifted view of the DP row (no Python loop over capacities — the
HPC-guide idiom).  Reconstruction uses one bit per (item, capacity) cell.

``solve_exact_auto`` dispatches: integral weights and a small enough DP
table go to the DP; everything else goes to branch & bound, which is exact
for arbitrary float weights.
"""

from __future__ import annotations

import numpy as np

from repro.knapsack.api import KnapsackResult, _as_arrays
from repro.obs.metrics import get_registry
from repro.resilience.budget import tick_nodes as _budget_tick

#: Refuse DP tables bigger than this many cells; fall back to B&B instead.
_MAX_DP_CELLS = 50_000_000

# Dispatch telemetry: which backend actually solved each exact call
# (contract: docs/OBSERVABILITY.md).
_REG = get_registry()
_DISPATCH_INT_DP = _REG.counter("oracle.dispatch.integer_dp")
_DISPATCH_PROFIT_DP = _REG.counter("oracle.dispatch.profit_dp")
_DISPATCH_BB = _REG.counter("oracle.dispatch.branch_bound")


def _is_integral(arr: np.ndarray) -> bool:
    return bool(np.allclose(arr, np.round(arr), atol=1e-9))


def solve_exact_integer(weights, profits, capacity: float) -> KnapsackResult:
    """Optimal solution for integral weights via capacity DP.

    ``weights`` must be (numerically) integral and ``capacity`` is floored
    to an integer — for integral weights the usable capacity is ``floor(C)``.

    Complexity ``O(n * C)`` time, ``O(n * C / 8)`` bytes for the choice
    bitmap.  Raises ``ValueError`` on non-integral weights or a table above
    the safety cap.
    """
    w, p = _as_arrays(weights, profits)
    if not _is_integral(w):
        raise ValueError("solve_exact_integer requires integral weights")
    cap = int(np.floor(capacity + 1e-9))
    n = w.size
    if n == 0 or cap <= 0:
        # items of weight 0 still fit when cap == 0
        free = np.flatnonzero((w <= 1e-9) & (p > 0))
        return KnapsackResult.of(free, w, p)
    wi = np.round(w).astype(np.int64)
    if (n + 1) * (cap + 1) > _MAX_DP_CELLS:
        raise ValueError(
            f"DP table {n} x {cap} exceeds cap; use branch & bound instead"
        )
    # dp[c] = best profit using a prefix of items within capacity c.
    dp = np.zeros(cap + 1, dtype=np.float64)
    take = np.zeros((n, cap + 1), dtype=bool)
    for i in range(n):
        _budget_tick()  # amortized ambient-budget check per DP row
        wt = int(wi[i])
        if wt > cap:
            continue
        if wt == 0:
            if p[i] > 0:
                dp += p[i]
                take[i, :] = True
            continue
        cand = dp[: cap + 1 - wt] + p[i]
        improved = cand > dp[wt:]
        take[i, wt:] = improved
        np.maximum(dp[wt:], cand, out=dp[wt:])
    # Reconstruct.
    c = cap
    chosen = []
    for i in range(n - 1, -1, -1):
        if take[i, c]:
            chosen.append(i)
            c -= int(wi[i])
    return KnapsackResult.of(np.array(chosen[::-1], dtype=np.intp), w, p)


def solve_exact_auto(weights, profits, capacity: float) -> KnapsackResult:
    """Optimal solution for arbitrary inputs.

    Dispatch chain: integral weights with an affordable DP table use
    :func:`solve_exact_integer`; else integral profits use the profit DP
    (:func:`repro.knapsack.profit_dp.solve_exact_by_profit`); else the
    float branch & bound (exact, but exponential in the worst case —
    intended for the instance sizes the ground-truth experiments use).
    """
    w, p = _as_arrays(weights, profits)
    cap_int = int(np.floor(capacity + 1e-9))
    if (
        w.size
        and _is_integral(w)
        and (w.size + 1) * (cap_int + 1) <= _MAX_DP_CELLS
    ):
        _DISPATCH_INT_DP.inc()
        return solve_exact_integer(w, p, capacity)
    if w.size and _is_integral(p):
        from repro.knapsack.profit_dp import _MAX_DP_CELLS as _P_CELLS
        from repro.knapsack.profit_dp import solve_exact_by_profit

        P = int(np.round(p).sum())
        if (P + 1) * (w.size + 1) <= _P_CELLS:
            _DISPATCH_PROFIT_DP.inc()
            return solve_exact_by_profit(w, p, capacity)
    from repro.knapsack.branch_bound import solve_branch_and_bound

    _DISPATCH_BB.inc()
    return solve_branch_and_bound(w, p, capacity)
