"""Exact 0/1 knapsack by min-weight-per-profit DP (integral profits).

The complement of :func:`repro.knapsack.exact.solve_exact_integer`: that DP
is ``O(n * C)`` over integral *weights*; this one is ``O(n * P)`` over
integral *profits* (``P`` = total profit) and handles arbitrary float
weights.  It is the exact backbone the FPTAS scales its profits into, so
sharing the implementation keeps the two consistent; with the paper's
profit-equals-demand objective on integer demands either DP applies.
"""

from __future__ import annotations

import numpy as np

from repro.knapsack.api import KnapsackResult, _as_arrays

#: Safety cap on DP cells (items x profit columns).
_MAX_DP_CELLS = 50_000_000


def _is_integral(arr: np.ndarray) -> bool:
    return bool(np.allclose(arr, np.round(arr), atol=1e-9))


def solve_exact_by_profit(weights, profits, capacity: float) -> KnapsackResult:
    """Optimal solution for integral profits via min-weight DP.

    ``dp[q]`` is the minimum weight achieving profit exactly ``q``; the
    answer is the largest ``q`` with ``dp[q] <= capacity``.  Vectorized
    over the profit axis (one shifted ``minimum`` per item).  Raises
    ``ValueError`` on non-integral profits or an oversized table.
    """
    w, p = _as_arrays(weights, profits)
    if not _is_integral(p):
        raise ValueError("solve_exact_by_profit requires integral profits")
    cap = max(0.0, float(capacity))
    n = w.size
    if n == 0:
        return KnapsackResult.empty()
    fits = (w <= cap * (1.0 + 1e-12)) & (p > 0)
    idx = np.flatnonzero(fits)
    # zero-profit items never help; unfitting items never legal
    if idx.size == 0:
        return KnapsackResult.empty()
    wf = w[idx]
    pf = np.round(p[idx]).astype(np.int64)
    m = idx.size
    P = int(pf.sum())
    if (P + 1) * (m + 1) > _MAX_DP_CELLS:
        raise ValueError(
            f"profit DP table {m} x {P} exceeds cap; use branch & bound"
        )
    dp = np.full(P + 1, np.inf)
    dp[0] = 0.0
    take = np.zeros((m, P + 1), dtype=bool)
    for j in range(m):
        q = int(pf[j])
        cand = dp[: P + 1 - q] + wf[j]
        improved = cand < dp[q:]
        take[j, q:] = improved
        np.minimum(dp[q:], cand, out=dp[q:])
    feasible = np.flatnonzero(dp <= cap * (1.0 + 1e-12))
    qstar = int(feasible.max())
    chosen = []
    q = qstar
    for j in range(m - 1, -1, -1):
        if q >= 0 and take[j, q]:
            chosen.append(int(idx[j]))
            q -= int(pf[j])
    return KnapsackResult.of(np.array(chosen[::-1], dtype=np.intp), w, p)
