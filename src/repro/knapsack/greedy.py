"""Greedy 1/2-approximation for 0/1 knapsack.

Algorithm: take items in decreasing profit-density order while they fit
(the "extended greedy" that keeps scanning past the first misfit), then
return the better of that packing and the single most profitable fitting
item.

Guarantee (classical): let item ``b`` be the first density-order item that
does not fit when reached by the *plain* prefix greedy.  The prefix value
``G`` plus ``p_b`` is at least the fractional optimum, which is at least
OPT.  Since the best single item is at least ``p_b``,
``max(G, best_single) >= (G + p_b) / 2 >= OPT / 2``.  The extended scan and
the full-prefix case only improve on ``G``.
"""

from __future__ import annotations

import numpy as np

from repro.knapsack.api import KnapsackResult, _as_arrays, _fits


def solve_greedy(
    weights, profits, capacity: float, *, compiled=None, backend: str = "python"
) -> KnapsackResult:
    """Density greedy + best single item; ``value >= OPT / 2``; ``O(n log n)``.

    ``compiled`` (optional) is a :class:`repro.core.compiled.CompiledItems`
    view of these exact arrays; its precomputed stable density order is
    then restricted to the fitting items instead of re-sorted.  The
    restriction of a stable global sort to a subset equals the stable sort
    of that subset, so the result is identical.

    ``backend="numpy"`` replays the sequential acceptance scan with the
    vectorized :func:`repro.core.backend.greedy_prefix_mask` (cumulative
    sums in a few rounds).  Same visit order and admission rule; summation
    order differs by at most the one-ulp slack that
    :func:`repro.numerics.fits` is documented to absorb.
    """
    w, p = _as_arrays(weights, profits)
    n = w.size
    cap = max(0.0, float(capacity))
    if n == 0:
        return KnapsackResult.empty()

    fits = w <= cap * (1.0 + 1e-12)
    useful = fits & (p > 0)
    if not useful.any():
        return KnapsackResult.empty()
    idx = np.flatnonzero(useful)

    if compiled is not None and compiled.n == n:
        dord = compiled.density_order
        order = dord[useful[dord]]
    else:
        dens = np.where(
            w[idx] > 1e-12, p[idx] / np.maximum(w[idx], 1e-300), np.inf
        )
        order = idx[np.argsort(-dens, kind="stable")]

    if backend == "numpy":
        from repro.core.backend import greedy_prefix_mask

        greedy_sel = np.asarray(order[greedy_prefix_mask(w[order], cap)],
                                dtype=np.intp)
    else:
        chosen = []
        remaining = cap
        for i in order:
            if _fits(w[i], remaining):
                chosen.append(i)
                remaining -= w[i]
        greedy_sel = np.array(chosen, dtype=np.intp)
    greedy_value = float(p[greedy_sel].sum())

    best_single = idx[int(np.argmax(p[idx]))]
    if p[best_single] > greedy_value:
        return KnapsackResult.of(np.array([best_single], dtype=np.intp), w, p)
    return KnapsackResult.of(greedy_sel, w, p)


def solve_greedy_by_weight(weights, profits, capacity: float) -> KnapsackResult:
    """Baseline variant: smallest-weight-first greedy (no guarantee for
    general profits; for profit == weight it is the worst-case-1/2 packing
    that maximizes the number of served customers).  Used by the baseline
    comparisons in the benchmarks.
    """
    w, p = _as_arrays(weights, profits)
    cap = max(0.0, float(capacity))
    if w.size == 0:
        return KnapsackResult.empty()
    idx = np.flatnonzero((w <= cap * (1.0 + 1e-12)) & (p > 0))
    order = idx[np.argsort(w[idx], kind="stable")]
    chosen = []
    remaining = cap
    for i in order:
        if _fits(w[i], remaining):
            chosen.append(i)
            remaining -= w[i]
    return KnapsackResult.of(np.array(chosen, dtype=np.intp), w, p)
