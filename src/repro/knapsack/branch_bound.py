"""Exact 0/1 knapsack by depth-first branch & bound.

Items are explored in decreasing profit-density order; each node is pruned
against the fractional (LP) upper bound of its remaining suffix, which is
tight enough that the take-first DFS reaches the optimum quickly on the
instance sizes the ground-truth experiments use (n up to ~40).  Weights and
profits may be arbitrary non-negative floats — this is the exact fallback
when the integer DP does not apply.

A ``max_nodes`` safety valve raises ``RuntimeError`` instead of silently
burning CPU forever on adversarial inputs.
"""

from __future__ import annotations

import numpy as np

from repro.knapsack.api import KnapsackResult, _as_arrays, _fits
from repro.knapsack.greedy import solve_greedy
from repro.resilience.budget import tick_nodes as _budget_tick

#: Check the ambient budget only every this many search nodes.
_BUDGET_STRIDE = 256


def _suffix_fractional_bound(
    wf: np.ndarray, pf: np.ndarray, start: int, remaining: float
) -> float:
    """Fractional optimum of items ``start..end`` (density-sorted) within
    ``remaining`` capacity.  ``O(suffix length)``."""
    bound = 0.0
    rem = remaining
    for j in range(start, wf.size):
        if rem <= 1e-15:
            break
        if wf[j] <= rem:
            bound += pf[j]
            rem -= wf[j]
        else:
            bound += pf[j] * (rem / wf[j])
            break
    return bound


def solve_branch_and_bound(
    weights, profits, capacity: float, max_nodes: int = 5_000_000
) -> KnapsackResult:
    """Optimal 0/1 knapsack for arbitrary non-negative float inputs.

    "Optimal" up to a 1e-9 *relative* pruning tolerance (see the inline
    comment) — exact in the integer/rational sense, and far inside float
    noise otherwise.  Raises ``RuntimeError`` if more than ``max_nodes``
    search nodes are expanded (the optimum was not certified within the
    budget).
    """
    w, p = _as_arrays(weights, profits)
    cap = max(0.0, float(capacity))
    n = w.size
    if n == 0:
        return KnapsackResult.empty()

    fits = (w <= cap * (1.0 + 1e-12)) & (p > 0)
    idx = np.flatnonzero(fits)
    if idx.size == 0:
        return KnapsackResult.empty()
    wf_all, pf_all = w[idx], p[idx]

    dens = pf_all / np.maximum(wf_all, 1e-300)
    order = np.argsort(-dens, kind="stable")
    wf, pf = wf_all[order], pf_all[order]
    m = wf.size

    # Warm start with the greedy solution as the incumbent lower bound.
    warm = solve_greedy(wf, pf, cap)
    best_value = warm.value
    best_mask = np.zeros(m, dtype=bool)
    best_mask[warm.selected] = True

    nodes = 0

    def bound(pos: int, remaining: float, value: float) -> float:
        return value + _suffix_fractional_bound(wf, pf, pos, remaining)

    # Iterative DFS; the take-branch is pushed last so it is explored first.
    frames: list[tuple[int, float, float, list[int]]] = [(0, cap, 0.0, [])]
    while frames:
        nodes += 1
        if nodes > max_nodes:
            raise RuntimeError(
                f"branch & bound exceeded {max_nodes} nodes without certifying"
            )
        if nodes % _BUDGET_STRIDE == 0:
            _budget_tick(_BUDGET_STRIDE)  # amortized ambient-budget check
        pos, remaining, value, taken = frames.pop()
        if value > best_value + 1e-12:
            best_value = value
            best_mask[:] = False
            best_mask[taken] = True
        if pos >= m:
            continue
        # Relative-epsilon pruning: abandon subtrees that cannot beat the
        # incumbent by more than 1e-9 relative.  Near-tied float subset
        # sums otherwise force an exhaustive walk of an exponential
        # plateau; the result is optimal up to that (documented) tolerance.
        if bound(pos, remaining, value) <= best_value * (1 + 1e-9) + 1e-12:
            continue
        # skip branch (explored second)
        frames.append((pos + 1, remaining, value, taken))
        # take branch (explored first)
        if _fits(wf[pos], remaining):
            frames.append(
                (pos + 1, remaining - wf[pos], value + pf[pos], taken + [pos])
            )
    chosen_sorted_positions = np.flatnonzero(best_mask)
    original = idx[order[chosen_sorted_positions]]
    return KnapsackResult.of(np.asarray(original, dtype=np.intp), w, p)
