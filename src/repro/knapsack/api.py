"""Shared result type, solver protocol, and registry for knapsack solvers."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.numerics import fits as _numerics_fits
from repro.obs.metrics import get_registry
from repro.resilience.budget import tick_oracle as _budget_tick_oracle

#: Relative tolerance accepted when verifying a result against capacity.
_TOL = 1e-9

# Always-on oracle telemetry (contract: docs/OBSERVABILITY.md).  Handles
# are cached at import time; Registry.reset() zeroes them in place, so the
# cache stays valid across reset/snapshot cycles.
_REG = get_registry()
_ORACLE_CALLS = _REG.counter("oracle.calls")
_ORACLE_ITEMS = _REG.counter("oracle.items")
_KIND_METRICS: Dict[str, tuple] = {}


def _record_oracle(kind: str, n_items: int, seconds: float) -> None:
    """Count one oracle call: total + per-kind counters and a timer.

    Also ticks the thread's ambient resilience budget (if any): oracle
    calls are the budget's ``max_oracle_calls`` unit and every call is a
    deadline checkpoint.
    """
    _budget_tick_oracle()
    per = _KIND_METRICS.get(kind)
    if per is None:
        per = _KIND_METRICS[kind] = (
            _REG.counter(f"oracle.calls.{kind}"),
            _REG.timer(f"oracle.time.{kind}"),
        )
    _ORACLE_CALLS.inc()
    _ORACLE_ITEMS.inc(n_items)
    per[0].inc()
    per[1].observe(seconds)


def _fits(weight: float, remaining: float) -> bool:
    """Shared capacity-fit predicate; delegates to :func:`repro.numerics.fits`.

    A pure ``weight <= remaining`` comparison breaks at exact-capacity
    boundaries (an item equal to the remaining capacity can differ by one
    ulp depending on summation order); every solver uses this predicate so
    they agree with each other and with the verifier's looser 1e-9 band.
    The slack policy itself lives in :mod:`repro.numerics`.
    """
    return _numerics_fits(weight, remaining)


def _as_arrays(weights, profits) -> tuple[np.ndarray, np.ndarray]:
    w = np.asarray(weights, dtype=np.float64).reshape(-1)
    p = np.asarray(profits, dtype=np.float64).reshape(-1)
    if w.shape != p.shape:
        raise ValueError(f"weights {w.shape} and profits {p.shape} must align")
    if w.size and (w < 0).any():
        raise ValueError("weights must be non-negative")
    if p.size and (p < 0).any():
        raise ValueError("profits must be non-negative")
    return w, p


@dataclass(frozen=True)
class KnapsackResult:
    """Outcome of a 0/1 knapsack solve.

    Attributes
    ----------
    selected:
        Indices (into the input arrays) of the chosen items, ascending.
    value:
        Total profit of the chosen items.
    weight:
        Total weight of the chosen items.
    """

    selected: np.ndarray
    value: float
    weight: float

    def __post_init__(self) -> None:
        sel = np.asarray(self.selected, dtype=np.intp).reshape(-1)
        object.__setattr__(self, "selected", np.sort(sel))

    @classmethod
    def empty(cls) -> "KnapsackResult":
        return cls(selected=np.empty(0, dtype=np.intp), value=0.0, weight=0.0)

    @classmethod
    def of(cls, selected, weights, profits) -> "KnapsackResult":
        """Build a result from chosen indices, recomputing value/weight."""
        w, p = _as_arrays(weights, profits)
        sel = np.asarray(selected, dtype=np.intp).reshape(-1)
        return cls(
            selected=sel, value=float(p[sel].sum()), weight=float(w[sel].sum())
        )

    def verify(self, weights, profits, capacity: float) -> "KnapsackResult":
        """Independently re-check the result; raises ``ValueError`` if bad."""
        w, p = _as_arrays(weights, profits)
        sel = self.selected
        if sel.size:
            if sel.min() < 0 or sel.max() >= w.size:
                raise ValueError("selected index out of range")
            if np.unique(sel).size != sel.size:
                raise ValueError("selected contains duplicates")
        weight = float(w[sel].sum())
        value = float(p[sel].sum())
        if weight > capacity * (1.0 + _TOL) + 1e-12:
            raise ValueError(f"selection weight {weight} exceeds capacity {capacity}")
        if abs(weight - self.weight) > 1e-6 * max(1.0, abs(weight)):
            raise ValueError(f"stored weight {self.weight} != recomputed {weight}")
        if abs(value - self.value) > 1e-6 * max(1.0, abs(value)):
            raise ValueError(f"stored value {self.value} != recomputed {value}")
        return self


class KnapsackSolver:
    """Base class: a named knapsack algorithm with an approximation factor.

    ``guarantee`` is the proven worst-case ratio ``value >= guarantee * OPT``
    (1.0 for exact solvers).  Subclasses implement :meth:`solve`.
    """

    name: str = "abstract"

    @property
    def guarantee(self) -> float:
        raise NotImplementedError

    def solve(
        self, weights, profits, capacity: float, *, compiled=None
    ) -> KnapsackResult:
        """Solve one 0/1 knapsack.

        ``compiled`` (optional) is a :class:`repro.core.compiled.
        CompiledItems` view of exactly these ``weights``/``profits``;
        solvers that can reuse its precomputed orderings do so, the rest
        ignore it.  Passing a view of *different* arrays is undefined.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class ExactKnapsack(KnapsackSolver):
    """Optimal solver: integer DP when weights are integral, else B&B."""

    name = "exact"

    @property
    def guarantee(self) -> float:
        return 1.0

    def solve(
        self, weights, profits, capacity: float, *, compiled=None
    ) -> KnapsackResult:
        from repro.knapsack.exact import solve_exact_auto

        t0 = time.perf_counter()
        res = solve_exact_auto(weights, profits, capacity)
        _record_oracle("exact", int(np.size(weights)), time.perf_counter() - t0)
        return res


class FptasKnapsack(KnapsackSolver):
    """Profit-scaling FPTAS: ``value >= (1 - eps) * OPT``."""

    def __init__(self, eps: float = 0.1):
        if not (0.0 < eps < 1.0):
            raise ValueError(f"eps must be in (0, 1), got {eps}")
        self.eps = eps
        self.name = f"fptas(eps={eps})"

    @property
    def guarantee(self) -> float:
        return 1.0 - self.eps

    def solve(
        self, weights, profits, capacity: float, *, compiled=None
    ) -> KnapsackResult:
        from repro.knapsack.fptas import solve_fptas

        t0 = time.perf_counter()
        res = solve_fptas(weights, profits, capacity, eps=self.eps)
        _record_oracle("fptas", int(np.size(weights)), time.perf_counter() - t0)
        return res


class GreedyKnapsack(KnapsackSolver):
    """Density greedy + best-single-item: ``value >= OPT / 2``.

    ``backend`` selects the acceptance-scan implementation of
    :func:`repro.knapsack.greedy.solve_greedy` (``"python"`` or
    ``"numpy"``; see ``docs/BACKENDS.md``).
    """

    name = "greedy"

    def __init__(self, backend: str = "python"):
        self.backend = backend

    @property
    def guarantee(self) -> float:
        return 0.5

    def solve(
        self, weights, profits, capacity: float, *, compiled=None
    ) -> KnapsackResult:
        from repro.knapsack.greedy import solve_greedy

        t0 = time.perf_counter()
        res = solve_greedy(
            weights, profits, capacity, compiled=compiled, backend=self.backend
        )
        _record_oracle("greedy", int(np.size(weights)), time.perf_counter() - t0)
        return res


#: Registered solver factories.  ``fptas`` accepts an ``eps`` keyword.
KNAPSACK_SOLVERS: Dict[str, Callable[..., KnapsackSolver]] = {
    "exact": ExactKnapsack,
    "fptas": FptasKnapsack,
    "greedy": GreedyKnapsack,
}


def get_solver(name: str, **kwargs) -> KnapsackSolver:
    """Resolve a solver by registry name (``exact``, ``fptas``, ``greedy``).

    >>> get_solver("fptas", eps=0.25).guarantee
    0.75
    """
    try:
        factory = KNAPSACK_SOLVERS[name]
    except KeyError:
        raise ValueError(
            f"unknown knapsack solver {name!r}; "
            f"available: {sorted(KNAPSACK_SOLVERS)}"
        ) from None
    return factory(**kwargs)
