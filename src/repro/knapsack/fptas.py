"""Profit-scaling FPTAS for 0/1 knapsack: ``value >= (1 - eps) * OPT``.

Standard construction (Ibarra–Kim style).  Let ``P`` be the largest profit
of any item that fits alone and ``mu = eps * P / n``.  Scale every profit to
``floor(p_i / mu)`` and run the exact min-weight-per-scaled-profit dynamic
program, whose table has at most ``n^2 / eps + n`` columns.  For the optimal
set ``S*``::

    q(S*) >= sum_i (p_i/mu - 1) >= OPT/mu - n

The DP returns a feasible set ``S`` with ``q(S) >= q(S*)``, hence::

    value(S) >= mu * q(S) >= OPT - n*mu = OPT - eps*P >= (1 - eps) * OPT

using ``P <= OPT`` (the best single fitting item is itself feasible).

The DP relaxation over items is vectorized: each item updates the whole
row with one shifted ``minimum`` (HPC-guide idiom), so the Python-level
loop is only over the ``n`` items.
"""

from __future__ import annotations

import numpy as np

from repro.knapsack.api import KnapsackResult, _as_arrays
from repro.obs.metrics import get_registry
from repro.resilience.budget import tick_nodes as _budget_tick

#: Safety cap on DP cells (columns x items for the choice bitmap).
_MAX_DP_CELLS = 80_000_000

# FPTAS telemetry: scaled-table pressure and the best-single-item rescue
# (contract: docs/OBSERVABILITY.md).
_REG = get_registry()
_DP_CELLS = _REG.counter("fptas.dp_cells")
_SINGLE_FALLBACK = _REG.counter("fptas.single_item_fallback")


def solve_fptas(weights, profits, capacity: float, eps: float = 0.1) -> KnapsackResult:
    """(1 - eps)-approximate 0/1 knapsack in ``O(n^3 / eps)`` worst case.

    Raises ``ValueError`` for ``eps`` outside ``(0, 1)`` or when the scaled
    DP table would exceed the safety cap (pick a larger ``eps``).
    """
    if not (0.0 < eps < 1.0):
        raise ValueError(f"eps must be in (0, 1), got {eps}")
    w, p = _as_arrays(weights, profits)
    cap = max(0.0, float(capacity))
    n = w.size
    if n == 0:
        return KnapsackResult.empty()

    fits = (w <= cap * (1.0 + 1e-12)) & (p > 0)
    idx = np.flatnonzero(fits)
    if idx.size == 0:
        return KnapsackResult.empty()
    wf, pf = w[idx], p[idx]
    m = idx.size

    P = float(pf.max())
    mu = eps * P / m
    scaled = np.floor(pf / mu + 1e-12).astype(np.int64)
    Q = int(scaled.sum())
    if (Q + 1) * (m + 1) > _MAX_DP_CELLS:
        raise ValueError(
            f"FPTAS table {m} x {Q} exceeds cap; increase eps (got {eps})"
        )
    _DP_CELLS.inc((Q + 1) * (m + 1))

    INF = np.inf
    # dp[q] = minimum weight achieving scaled profit exactly q.
    dp = np.full(Q + 1, INF, dtype=np.float64)
    dp[0] = 0.0
    take = np.zeros((m, Q + 1), dtype=bool)
    for j in range(m):
        _budget_tick()  # amortized ambient-budget check per DP row
        q = int(scaled[j])
        if q == 0:
            # Contributes < mu profit; ignoring it costs at most eps*P total
            # (accounted for in the guarantee above).
            continue
        cand = dp[: Q + 1 - q] + wf[j]
        improved = cand < dp[q:]
        take[j, q:] = improved
        np.minimum(dp[q:], cand, out=dp[q:])

    feasible = np.flatnonzero(dp <= cap * (1.0 + 1e-12))
    qstar = int(feasible.max())
    # Reconstruct the chosen subset.
    chosen = []
    q = qstar
    for j in range(m - 1, -1, -1):
        if q >= 0 and take[j, q]:
            chosen.append(int(idx[j]))
            q -= int(scaled[j])
    result = KnapsackResult.of(np.array(chosen[::-1], dtype=np.intp), w, p)
    # The scaled optimum can be beaten by the best single item when
    # everything scales to zero; never return worse than that.
    best_single = idx[int(np.argmax(pf))]
    if p[best_single] > result.value:
        _SINGLE_FALLBACK.inc()
        return KnapsackResult.of(np.array([best_single], dtype=np.intp), w, p)
    return result
