"""Deterministic fault injection: delays, exceptions, and worker kills.

Degradation paths are only trustworthy if they are *exercised*; this
module makes every failure mode reproducible from a seed so tier-1 tests
can prove each one (``tests/test_resilience.py``).

Two injection surfaces:

* **in-process sites** — ``with chaos_active(policy): ...`` installs a
  thread-local :class:`ChaosMonkey`; instrumented call sites (the fallback
  chain's stage entry, or any code calling :func:`chaos_point`) then
  deterministically sleep or raise :class:`ChaosError` according to the
  policy.  Decisions depend only on ``(seed, site, call ordinal)`` — the
  RNG is re-derived per decision from a string seed (SHA-512 underneath),
  so they are stable across processes and interpreter restarts.
* **worker processes** — :meth:`ChaosPolicy.wrap` wraps a picklable
  callable so that *in a worker process* (pid differs from the wrapping
  pid) it deterministically raises or hard-kills the worker
  (``os._exit``) per item.  The parent process runs the same wrapper
  clean, which is exactly what the pool's serial-retry path needs.
* **service reply sites** — :meth:`ChaosPolicy.decide_reply` picks one
  fault (or none) for a service worker about to send a reply frame:
  ``kill`` (SIGKILL mid-request), ``blackhole`` (never reply, forcing the
  supervisor's timeout path), ``corrupt`` (flip bytes in the pickled
  reply frame), or ``delay``.  The decision is again a pure function of
  ``(seed, site, ordinal)``; supervised workers put their generation
  number in the site string so a restarted worker rolls a *fresh* stream
  instead of replaying the kill that just ended its predecessor
  (:mod:`repro.service.workers`).

Injected events are counted in the ``chaos.injected.*`` metrics
(delays/errors counted in-process; kills die with their worker and are
observed parent-side as ``parallel.worker_failures`` or
``service.supervisor.restarts``).
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.metrics import get_registry

__all__ = [
    "ChaosError",
    "ChaosPolicy",
    "ChaosMonkey",
    "chaos_active",
    "current_chaos",
    "chaos_point",
]

_REG = get_registry()
_INJ_ERRORS = _REG.counter("chaos.injected.errors")
_INJ_DELAYS = _REG.counter("chaos.injected.delays")


class ChaosError(RuntimeError):
    """A deterministically injected (transient) failure."""


@dataclass(frozen=True)
class ChaosPolicy:
    """Declarative fault rates, all driven by one seed.

    Rates are probabilities in ``[0, 1]`` evaluated independently per
    decision; ``1.0`` means "always".  The service-level rates
    (``kill_rate``, ``blackhole_rate``, ``corrupt_rate``, ``delay_rate``)
    apply to worker reply sites via :meth:`decide_reply`; the in-process
    sites use ``error_rate``/``delay_rate`` via :class:`ChaosMonkey`.
    """

    seed: int = 0
    error_rate: float = 0.0
    delay_rate: float = 0.0
    delay_s: float = 0.0
    kill_rate: float = 0.0
    blackhole_rate: float = 0.0
    corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("error_rate", "delay_rate", "kill_rate",
                     "blackhole_rate", "corrupt_rate"):
            v = getattr(self, name)
            if not (0.0 <= v <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be non-negative, got {self.delay_s}")

    def _roll(self, site: str, ordinal: int) -> random.Random:
        # str seeds hash through SHA-512 — stable across processes, unlike
        # builtin hash() which is salted per interpreter.
        return random.Random(f"{self.seed}:{site}:{ordinal}")

    def wrap(self, fn) -> "_ChaosWrapped":
        """Picklable wrapper injecting worker-side faults around ``fn``."""
        return _ChaosWrapped(fn, self, os.getpid())

    def decide_reply(self, site: str, ordinal: int) -> Optional[str]:
        """Pick at most one fault for a service worker reply, or ``None``.

        Rolls ``kill``, ``blackhole``, ``corrupt``, ``delay`` in that
        fixed order from one ``(seed, site, ordinal)``-derived RNG, so the
        whole reply schedule is reproducible.  The caller is responsible
        for acting on the verdict (``repro.service.workers`` SIGKILLs
        itself on ``kill``, skips the send on ``blackhole``, flips frame
        bytes on ``corrupt``, sleeps ``delay_s`` on ``delay``).
        """
        rng = self._roll(site, ordinal)
        if self.kill_rate and rng.random() < self.kill_rate:
            return "kill"
        if self.blackhole_rate and rng.random() < self.blackhole_rate:
            return "blackhole"
        if self.corrupt_rate and rng.random() < self.corrupt_rate:
            return "corrupt"
        if self.delay_rate and rng.random() < self.delay_rate:
            return "delay"
        return None

    @classmethod
    def from_spec(cls, spec: str) -> "ChaosPolicy":
        """Parse a ``key=value,...`` string (the CLI ``--chaos`` flag).

        Keys are the dataclass fields (``seed`` parses as int, everything
        else as float); unknown keys or malformed pairs raise
        ``ValueError``.  Example: ``"seed=7,kill_rate=0.2,delay_s=0.01"``.
        """
        import dataclasses

        valid = {f.name for f in dataclasses.fields(cls)}
        kwargs: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep or not value.strip():
                raise ValueError(f"chaos spec entry {part!r} is not key=value")
            if key not in valid:
                raise ValueError(
                    f"unknown chaos field {key!r} (valid: {sorted(valid)})"
                )
            try:
                kwargs[key] = (int(value) if key == "seed" else float(value))
            except ValueError:
                raise ValueError(f"chaos field {key!r} has non-numeric "
                                 f"value {value.strip()!r}")
        return cls(**kwargs)


class ChaosMonkey:
    """Per-thread injector executing a :class:`ChaosPolicy` at named sites."""

    def __init__(self, policy: ChaosPolicy):
        self.policy = policy
        self._lock = threading.Lock()
        self._ordinals: dict = {}

    def at(self, site: str) -> None:
        """Maybe inject a delay and/or an error at this site."""
        with self._lock:
            ordinal = self._ordinals.get(site, 0)
            self._ordinals[site] = ordinal + 1
        rng = self.policy._roll(site, ordinal)
        if self.policy.delay_rate and rng.random() < self.policy.delay_rate:
            _INJ_DELAYS.inc()
            time.sleep(self.policy.delay_s)
        if self.policy.error_rate and rng.random() < self.policy.error_rate:
            _INJ_ERRORS.inc()
            raise ChaosError(f"injected failure at {site!r} (call {ordinal})")


class _ChaosWrapped:
    """Picklable callable that misbehaves only inside worker processes."""

    def __init__(self, fn, policy: ChaosPolicy, parent_pid: int):
        self.fn = fn
        self.policy = policy
        self.parent_pid = parent_pid

    def __call__(self, item):
        if os.getpid() != self.parent_pid:
            rng = self.policy._roll("worker", _stable_ordinal(item))
            if self.policy.kill_rate and rng.random() < self.policy.kill_rate:
                os._exit(17)  # hard kill: the pool sees BrokenProcessPool
            if self.policy.error_rate and rng.random() < self.policy.error_rate:
                raise ChaosError(f"injected worker failure on {item!r}")
            if self.policy.delay_rate and rng.random() < self.policy.delay_rate:
                time.sleep(self.policy.delay_s)
        return self.fn(item)


def _stable_ordinal(item) -> int:
    """A process-stable int identity for a work item (repr-based)."""
    import zlib

    return zlib.crc32(repr(item).encode("utf-8", "replace"))


_TLS = threading.local()


def current_chaos() -> Optional[ChaosMonkey]:
    """The thread's active :class:`ChaosMonkey`, or ``None``."""
    return getattr(_TLS, "monkey", None)


@contextmanager
def chaos_active(policy: ChaosPolicy) -> Iterator[ChaosMonkey]:
    """Install ``policy`` as the thread's fault injector."""
    prev = getattr(_TLS, "monkey", None)
    monkey = ChaosMonkey(policy)
    _TLS.monkey = monkey
    try:
        yield monkey
    finally:
        _TLS.monkey = prev


def chaos_point(site: str) -> None:
    """Instrumented call site: no-op unless a chaos policy is active."""
    monkey = getattr(_TLS, "monkey", None)
    if monkey is not None:
        monkey.at(site)
