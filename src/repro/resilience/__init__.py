"""repro.resilience — deadlines, cancellation, fallbacks, fault injection.

The resilience layer (contract: ``docs/RESILIENCE.md``) makes every solve
in the suite bounded and gracefully degradable:

* :mod:`repro.resilience.budget` — cooperative :class:`Budget`
  (wall-clock deadline + node/oracle-call limits + cancellation) enforced
  at cheap checkpoints inside every instrumented hot loop;
* :mod:`repro.resilience.anytime` — :class:`AnytimeOutcome`, the
  incumbent-plus-certified-bounds result a budget-bounded exact solve
  returns instead of hanging or dying;
* :mod:`repro.resilience.fallbacks` — declarative degradation ladders
  (``exact -> fptas(eps) -> greedy``) with per-stage budgets and
  retry-with-backoff;
* :mod:`repro.resilience.chaos` — seed-deterministic injection of delays,
  exceptions, and worker kills, used by tier-1 tests to prove every
  degradation path.

>>> from repro.resilience import Budget, BudgetExpired
>>> b = Budget(max_nodes=2)
>>> b.tick(); b.tick()
>>> try:
...     b.tick()
... except BudgetExpired as e:
...     e.reason
'node_limit'
"""

from repro.resilience.anytime import AnytimeOutcome
from repro.resilience.budget import (
    Budget,
    BudgetExpired,
    checkpoint,
    current_budget,
    tick_nodes,
    tick_oracle,
)
from repro.resilience.chaos import (
    ChaosError,
    ChaosMonkey,
    ChaosPolicy,
    chaos_active,
    chaos_point,
    current_chaos,
)
from repro.resilience.fallbacks import (
    ChainResult,
    FallbackChain,
    FallbackExhausted,
    Stage,
    default_angle_chain,
    default_chain_for,
    default_sector_chain,
    stage_from_spec,
)

__all__ = [
    # budget
    "Budget",
    "BudgetExpired",
    "current_budget",
    "checkpoint",
    "tick_nodes",
    "tick_oracle",
    # anytime
    "AnytimeOutcome",
    # fallbacks
    "Stage",
    "ChainResult",
    "FallbackChain",
    "FallbackExhausted",
    "stage_from_spec",
    "default_angle_chain",
    "default_sector_chain",
    "default_chain_for",
    # chaos
    "ChaosError",
    "ChaosPolicy",
    "ChaosMonkey",
    "chaos_active",
    "chaos_point",
    "current_chaos",
]
