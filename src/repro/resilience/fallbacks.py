"""Declarative fallback chains: ``exact -> fptas(eps) -> greedy``.

A :class:`FallbackChain` runs a sequence of :class:`Stage` definitions
until one produces a solution.  Each stage gets a **fresh**
:class:`~repro.resilience.budget.Budget` (its own deadline / node /
oracle limits — a late stage is never starved by an early one), transient
failures are retried with exponential backoff, and every attempt is
recorded both in the returned :class:`ChainResult` and in the solution's
own metadata (``solution.meta["resilience"]``), so a bench row can always
answer *which stage produced this number, and why*.

Failure routing per attempt:

* ``BudgetExpired``  -> stage timed out; **no retry** (a deadline will not
  un-expire), fall through to the next stage
  (+1 ``resilience.timeouts``);
* a ``retry_on`` type -> transient; sleep ``backoff_s * 2**attempt`` and
  retry up to ``retries`` times (+1 ``resilience.retries`` each);
* any other exception -> stage is broken; fall through immediately.

Every abandoned stage counts one ``resilience.fallbacks``.  A chain whose
last stage also fails raises :class:`FallbackExhausted` carrying the full
attempt history.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.obs.metrics import get_registry
from repro.resilience.anytime import AnytimeOutcome
from repro.resilience.budget import Budget, BudgetExpired
from repro.resilience.chaos import ChaosError, chaos_point

__all__ = [
    "Stage",
    "ChainResult",
    "FallbackChain",
    "FallbackExhausted",
    "stage_from_spec",
    "default_angle_chain",
    "default_sector_chain",
    "default_chain_for",
]

# Fallback telemetry (contract: docs/RESILIENCE.md).
_REG = get_registry()
_FALLBACKS = _REG.counter("resilience.fallbacks")
_TIMEOUTS = _REG.counter("resilience.timeouts")
_RETRIES = _REG.counter("resilience.retries")


class FallbackExhausted(RuntimeError):
    """Every stage of a fallback chain failed.

    ``attempts`` holds the per-attempt records (stage, outcome, error).
    """

    def __init__(self, attempts: List[dict]):
        self.attempts = attempts
        tried = " -> ".join(
            f"{a['stage']}:{a['outcome']}" for a in attempts
        )
        super().__init__(f"all fallback stages failed ({tried})")


@dataclass(frozen=True)
class Stage:
    """One rung of a fallback chain.

    ``solve(instance, budget)`` returns a solution object or an
    :class:`~repro.resilience.anytime.AnytimeOutcome`; ``budget`` is the
    stage's fresh budget (``None`` when the stage is unlimited) and is
    also installed ambiently around the call, so budget-oblivious solvers
    are still interrupted at their instrumented checkpoints.
    """

    name: str
    solve: Callable[[Any, Optional[Budget]], Any]
    timeout_s: Optional[float] = None
    max_nodes: Optional[int] = None
    max_oracle_calls: Optional[int] = None
    retries: int = 0
    backoff_s: float = 0.05
    retry_on: Tuple[type, ...] = (ChaosError, ConnectionError, OSError)

    def make_budget(self) -> Optional[Budget]:
        if (
            self.timeout_s is None
            and self.max_nodes is None
            and self.max_oracle_calls is None
        ):
            return None
        return Budget(
            wall_s=self.timeout_s,
            max_nodes=self.max_nodes,
            max_oracle_calls=self.max_oracle_calls,
        )


@dataclass(frozen=True)
class ChainResult:
    """What a chain produced and the path it took to get there.

    ``degraded`` is true when any stage before the answering one was
    abandoned, or when the answering stage returned a non-optimal anytime
    incumbent.
    """

    solution: Any
    stage: str
    reason: str
    degraded: bool
    lower_bound: Optional[float] = None
    upper_bound: Optional[float] = None
    attempts: List[dict] = field(default_factory=list)


class FallbackChain:
    """Run stages in order until one answers; see the module docstring."""

    def __init__(self, stages: List[Stage], sleep: Callable[[float], None] = time.sleep):
        if not stages:
            raise ValueError("a fallback chain needs at least one stage")
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names: {names}")
        self.stages = list(stages)
        self._sleep = sleep

    def run(self, instance) -> ChainResult:
        attempts: List[dict] = []
        for stage_index, stage in enumerate(self.stages):
            attempt = 0
            while True:
                budget = stage.make_budget()
                record = {"stage": stage.name, "attempt": attempt}
                t0 = time.perf_counter()
                try:
                    ctx = budget.activate() if budget is not None else nullcontext()
                    with ctx:
                        chaos_point(f"fallback.{stage.name}")
                        out = stage.solve(instance, budget)
                except BudgetExpired as exc:
                    record.update(outcome="timeout", error=str(exc),
                                  seconds=time.perf_counter() - t0)
                    attempts.append(record)
                    _TIMEOUTS.inc()
                    break  # deadlines don't retry; next stage
                except stage.retry_on as exc:
                    record.update(outcome="transient", error=str(exc),
                                  seconds=time.perf_counter() - t0)
                    attempts.append(record)
                    if attempt < stage.retries:
                        _RETRIES.inc()
                        self._sleep(stage.backoff_s * (2.0 ** attempt))
                        attempt += 1
                        continue
                    break
                except Exception as exc:  # noqa: BLE001 - routed, not hidden
                    record.update(outcome="error", error=str(exc),
                                  seconds=time.perf_counter() - t0)
                    attempts.append(record)
                    break
                else:
                    seconds = time.perf_counter() - t0
                    solution, reason, lb, ub = _unwrap(out)
                    record.update(outcome="ok", reason=reason, seconds=seconds)
                    attempts.append(record)
                    degraded = stage_index > 0 or reason != "complete"
                    meta = {
                        "stage": stage.name,
                        "reason": reason,
                        "degraded": degraded,
                        "attempts": attempts,
                    }
                    if ub is not None:
                        meta["lower_bound"] = lb
                        meta["upper_bound"] = ub
                    if hasattr(solution, "with_meta"):
                        solution = solution.with_meta(resilience=meta)
                    return ChainResult(
                        solution=solution,
                        stage=stage.name,
                        reason=reason,
                        degraded=degraded,
                        lower_bound=lb,
                        upper_bound=ub,
                        attempts=attempts,
                    )
            _FALLBACKS.inc()
        raise FallbackExhausted(attempts)


def _unwrap(out) -> Tuple[Any, str, Optional[float], Optional[float]]:
    """Normalize a stage's return into (solution, reason, lb, ub)."""
    if isinstance(out, AnytimeOutcome):
        reason = "complete" if out.optimal else f"anytime:{out.reason}"
        return out.solution, reason, out.lower_bound, out.upper_bound
    return out, "complete", None, None


def stage_from_spec(
    family: str,
    algorithm: str,
    *,
    stage_name: Optional[str] = None,
    eps: float = 1.0,
    seed: int = 0,
    oracle: str = "auto",
    timeout_s: Optional[float] = None,
    retries: int = 0,
    **stage_kwargs,
) -> Stage:
    """Build a :class:`Stage` from a registered engine solver.

    The stage runs ``repro.engine`` spec ``(family, algorithm)`` under the
    chain's per-stage budget.  ``oracle`` selects the inner knapsack
    oracle: ``"auto"`` follows the engine policy (fptas when the spec
    supports eps and ``eps < 1.0``, exact otherwise), or name one of
    :data:`repro.knapsack.api.KNAPSACK_SOLVERS` explicitly (the floor of a
    ladder typically wants ``"greedy"`` — near-linear, deadline-free).
    """
    # Imported lazily: repro.packing imports this package for budget
    # checkpoints, so a module-level engine import here would be circular.
    from repro.engine.registry import SolveContext, get_spec

    spec = get_spec(family, algorithm)

    def run(instance, budget):
        from repro.knapsack import get_solver

        if oracle == "auto":
            if spec.supports_eps and eps < 1.0:
                orc = get_solver("fptas", eps=eps)
            else:
                orc = get_solver("exact")
        elif oracle == "fptas":
            orc = get_solver("fptas", eps=eps if eps < 1.0 else 0.5)
        else:
            orc = get_solver(oracle)
        # budget is already installed ambiently by the chain; specs that
        # support budgets pick it up at their instrumented checkpoints.
        return spec.run(instance, SolveContext(eps=eps, seed=seed, oracle=orc))

    return Stage(
        stage_name or algorithm,
        run,
        timeout_s=timeout_s,
        retries=retries,
        **stage_kwargs,
    )


def default_angle_chain(
    eps: float = 0.25,
    exact_timeout_s: float = 1.0,
    stage_timeout_s: Optional[float] = 5.0,
    retries: int = 1,
    anytime_exact: bool = True,
) -> FallbackChain:
    """The standard degradation ladder for angle instances.

    ``exact`` (budget-bounded, anytime unless ``anytime_exact=False``)
    -> ``fptas(eps)`` greedy multi-knapsack -> ``greedy``.  Every rung is
    a registry lookup (:func:`stage_from_spec`); the last stage runs
    without a deadline: it is the floor of the ladder and its cost is
    near-linear.
    """
    return FallbackChain(
        [
            stage_from_spec(
                "angle", "exact-anytime" if anytime_exact else "exact",
                stage_name="exact", timeout_s=exact_timeout_s, retries=retries,
            ),
            stage_from_spec(
                "angle", "greedy", stage_name=f"fptas(eps={eps})", eps=eps,
                timeout_s=stage_timeout_s, retries=retries,
            ),
            stage_from_spec(
                "angle", "greedy", oracle="greedy", timeout_s=None,
                retries=retries,
            ),
        ]
    )


def default_sector_chain(
    eps: float = 0.25,
    exact_timeout_s: float = 1.0,
    stage_timeout_s: Optional[float] = 5.0,
    retries: int = 1,
) -> FallbackChain:
    """The standard degradation ladder for sector (2-D city) instances.

    ``exact`` (budget-bounded orientation enumeration) -> ``fptas(eps)``
    sector greedy -> ``greedy`` with the linear-time oracle, mirroring
    :func:`default_angle_chain`.  Sector exactness has no anytime variant
    yet, so an expiring exact stage falls through instead of returning an
    incumbent.
    """
    return FallbackChain(
        [
            stage_from_spec(
                "sector", "exact", timeout_s=exact_timeout_s, retries=retries,
            ),
            stage_from_spec(
                "sector", "greedy", stage_name=f"fptas(eps={eps})", eps=eps,
                timeout_s=stage_timeout_s, retries=retries,
            ),
            stage_from_spec(
                "sector", "greedy", oracle="greedy", timeout_s=None,
                retries=retries,
            ),
        ]
    )


def default_chain_for(
    instance,
    eps: float = 0.25,
    exact_timeout_s: float = 1.0,
    **kwargs,
) -> FallbackChain:
    """Pick the default degradation ladder for ``instance``'s geometry.

    Dispatches on the instance type (angle vs sector); extra keyword
    arguments are forwarded to the family's chain builder.
    """
    from repro.model.instance import AngleInstance, SectorInstance

    if isinstance(instance, AngleInstance):
        return default_angle_chain(
            eps=eps, exact_timeout_s=exact_timeout_s, **kwargs
        )
    if isinstance(instance, SectorInstance):
        return default_sector_chain(
            eps=eps, exact_timeout_s=exact_timeout_s, **kwargs
        )
    raise TypeError(
        f"no default fallback chain for {type(instance).__name__}"
    )
