"""Cooperative execution budgets: deadlines, node/oracle limits, cancellation.

The resilience contract (``docs/RESILIENCE.md``) makes every solve
*deadline-bounded* without threads, signals, or process kills: solvers
volunteer control at cheap **checkpoints** placed in their hot loops, and a
:class:`Budget` decides at each checkpoint whether to keep going or raise
:class:`BudgetExpired`.

Two ways to thread a budget through a solve:

* **explicitly** — budget-aware solvers (the exact branch & bound) accept a
  ``budget=`` argument and call :meth:`Budget.tick` themselves;
* **ambiently** — ``with budget.activate(): solve(...)`` installs the
  budget in a thread-local slot, and every instrumented hot loop
  (knapsack oracles, the circular sweep, the greedy/DP/shifting solvers)
  consults it through :func:`checkpoint` / :func:`tick_nodes`.

Checkpoints are amortized: node and oracle-call limits are plain integer
compares on every tick, but the wall clock is only read every
``check_stride`` ticks (default 64), so the overhead on instrumented loops
stays under 1% (measured by ``benchmarks/bench_resilience_overhead.py``).
When no budget is active the ambient helpers are a single thread-local
read — effectively free.

Cancellation is cooperative too: :meth:`Budget.cancel` (safe to call from
another thread) flips a flag that the next checkpoint turns into a
:class:`BudgetExpired` with reason ``"cancelled"``.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.metrics import get_registry

__all__ = [
    "Budget",
    "BudgetExpired",
    "current_budget",
    "checkpoint",
    "tick_nodes",
    "tick_oracle",
]

# Resilience telemetry (contract: docs/RESILIENCE.md).
_REG = get_registry()
_EXPIRED = _REG.counter("resilience.budget_expired")


class BudgetExpired(RuntimeError):
    """A cooperative checkpoint found its :class:`Budget` exhausted.

    Attributes
    ----------
    reason:
        ``"deadline"``, ``"node_limit"``, ``"oracle_limit"`` or
        ``"cancelled"``.
    budget:
        The exhausted budget (its counters are frozen at expiry).
    incumbent / incumbent_value / upper_bound:
        Optionally attached by anytime solvers: the best solution found
        before expiry and a certified bound (see
        :mod:`repro.resilience.anytime`).
    """

    def __init__(self, reason: str, budget: "Budget"):
        self.reason = reason
        self.budget = budget
        self.incumbent = None
        self.incumbent_value: Optional[float] = None
        self.upper_bound: Optional[float] = None
        super().__init__(f"budget expired ({reason}): {budget.describe()}")


class Budget:
    """A wall-clock deadline plus optional node / oracle-call limits.

    Parameters
    ----------
    wall_s:
        Wall-clock allowance in seconds (``None`` = unlimited).  The clock
        starts when the budget is constructed.
    max_nodes:
        Limit on :meth:`tick`-counted search nodes (``None`` = unlimited).
    max_oracle_calls:
        Limit on knapsack-oracle calls counted through
        :meth:`tick_oracle` (``None`` = unlimited).
    check_stride:
        Read the wall clock only every this many ticks (amortization).

    A budget is single-use: once expired, every further tick raises again.
    """

    __slots__ = (
        "wall_s",
        "max_nodes",
        "max_oracle_calls",
        "check_stride",
        "start_time",
        "deadline",
        "nodes",
        "oracle_calls",
        "_countdown",
        "_cancelled",
        "_expired_reason",
    )

    def __init__(
        self,
        wall_s: Optional[float] = None,
        max_nodes: Optional[int] = None,
        max_oracle_calls: Optional[int] = None,
        check_stride: int = 64,
    ):
        if wall_s is not None and wall_s < 0:
            raise ValueError(f"wall_s must be non-negative, got {wall_s}")
        if check_stride < 1:
            raise ValueError(f"check_stride must be >= 1, got {check_stride}")
        self.wall_s = wall_s
        self.max_nodes = max_nodes
        self.max_oracle_calls = max_oracle_calls
        self.check_stride = int(check_stride)
        self.start_time = time.perf_counter()
        self.deadline = None if wall_s is None else self.start_time + wall_s
        self.nodes = 0
        self.oracle_calls = 0
        self._countdown = self.check_stride
        self._cancelled = False
        self._expired_reason: Optional[str] = None

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    def elapsed_s(self) -> float:
        return time.perf_counter() - self.start_time

    def remaining_s(self) -> Optional[float]:
        """Seconds until the deadline (``None`` when unlimited)."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.perf_counter())

    def expired_reason(self) -> Optional[str]:
        """The reason the budget expired, or ``None`` while alive.

        Performs a *full* check (clock included), unlike the amortized
        :meth:`tick`.
        """
        if self._expired_reason is None:
            self._check(force_clock=True)
        return self._expired_reason

    def describe(self) -> str:
        parts = []
        if self.wall_s is not None:
            parts.append(f"wall={self.wall_s:g}s elapsed={self.elapsed_s():.3f}s")
        if self.max_nodes is not None:
            parts.append(f"nodes={self.nodes}/{self.max_nodes}")
        if self.max_oracle_calls is not None:
            parts.append(f"oracle_calls={self.oracle_calls}/{self.max_oracle_calls}")
        return ", ".join(parts) or "unlimited"

    # ------------------------------------------------------------------
    # Cooperative control
    # ------------------------------------------------------------------
    def cancel(self) -> None:
        """Request cooperative cancellation (thread-safe flag flip)."""
        self._cancelled = True

    def _expire(self, reason: str) -> None:
        if self._expired_reason is None:
            self._expired_reason = reason
            _EXPIRED.inc()
        raise BudgetExpired(self._expired_reason, self)

    def _check(self, force_clock: bool) -> None:
        if self._expired_reason is not None:
            self._expire(self._expired_reason)
        if self._cancelled:
            self._expire("cancelled")
        if self.max_nodes is not None and self.nodes > self.max_nodes:
            self._expire("node_limit")
        if self.max_oracle_calls is not None and (
            self.oracle_calls > self.max_oracle_calls
        ):
            self._expire("oracle_limit")
        if self.deadline is not None:
            self._countdown -= 1
            if force_clock or self._countdown <= 0:
                self._countdown = self.check_stride
                if time.perf_counter() > self.deadline:
                    self._expire("deadline")

    def tick(self, nodes: int = 1) -> None:
        """Count ``nodes`` search nodes; raise :class:`BudgetExpired` if over.

        The clock is only consulted every ``check_stride`` calls; limits and
        the cancellation flag are checked on every call.
        """
        self.nodes += nodes
        self._check(force_clock=False)

    def tick_oracle(self, calls: int = 1) -> None:
        """Count ``calls`` oracle invocations (clock checked every call —
        an oracle call is orders of magnitude dearer than a clock read)."""
        self.oracle_calls += calls
        self._check(force_clock=True)

    def checkpoint(self) -> None:
        """Full check (clock included) without counting a node.

        Place at phase boundaries (per sweep build, per DP cut, per greedy
        round) where a stale amortized clock would delay expiry.
        """
        self._check(force_clock=True)

    # ------------------------------------------------------------------
    # Ambient activation
    # ------------------------------------------------------------------
    @contextmanager
    def activate(self) -> Iterator["Budget"]:
        """Install this budget as the thread's ambient budget.

        Nested activations stack; the innermost budget wins.  Every
        instrumented hot loop then enforces it via the module-level
        :func:`checkpoint` / :func:`tick_nodes` / :func:`tick_oracle`.
        """
        prev = getattr(_TLS, "budget", None)
        _TLS.budget = self
        try:
            yield self
        finally:
            _TLS.budget = prev


_TLS = threading.local()


def current_budget() -> Optional[Budget]:
    """The thread's ambient budget, or ``None``."""
    return getattr(_TLS, "budget", None)


def checkpoint() -> None:
    """Full check of the ambient budget; near-free no-op when none active."""
    b = getattr(_TLS, "budget", None)
    if b is not None:
        b._check(force_clock=True)


def tick_nodes(nodes: int = 1) -> None:
    """Amortized node tick against the ambient budget (no-op when none)."""
    b = getattr(_TLS, "budget", None)
    if b is not None:
        b.tick(nodes)


def tick_oracle(calls: int = 1) -> None:
    """Oracle-call tick against the ambient budget (no-op when none)."""
    b = getattr(_TLS, "budget", None)
    if b is not None:
        b.tick_oracle(calls)
