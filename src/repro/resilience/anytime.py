"""Anytime solve outcomes: an incumbent plus a certified optimality bracket.

A budget-bounded exact solve cannot promise the optimum, but it *can*
promise a bracket: the incumbent's value is a certified **lower bound** on
OPT (the solution is feasible — verified, never self-certified) and the
``upper_bound`` field is a certified **upper bound** (the cheap proven
bound of :mod:`repro.packing.bounds`, tightened to the exact value when
the search completes).  ``gap()`` is then a proof-carrying statement of
how far from optimal the answer can possibly be.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass(frozen=True)
class AnytimeOutcome:
    """Result of a budget-bounded solve with certified bounds.

    Attributes
    ----------
    solution:
        The best feasible solution found (never ``None``; anytime solvers
        seed the incumbent with a cheap greedy solution before searching).
    lower_bound:
        Certified lower bound on OPT — the incumbent's own value.
    upper_bound:
        Certified upper bound on OPT.  Equals ``lower_bound`` when
        ``optimal``.
    optimal:
        True when the search completed and the incumbent is provably OPT.
    reason:
        ``"complete"`` or the :class:`~repro.resilience.budget.BudgetExpired`
        reason that stopped the search (``"deadline"``, ``"node_limit"``,
        ``"oracle_limit"``, ``"cancelled"``).
    stats:
        Free-form solver statistics (tuples explored, nodes, seconds).
    """

    solution: Any
    lower_bound: float
    upper_bound: float
    optimal: bool
    reason: str
    stats: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.lower_bound > self.upper_bound * (1.0 + 1e-9) + 1e-9:
            raise ValueError(
                f"anytime bracket inverted: lower {self.lower_bound} > "
                f"upper {self.upper_bound}"
            )

    def gap(self) -> float:
        """Relative optimality gap ``(ub - lb) / ub`` (0 when optimal)."""
        if self.upper_bound <= 0:
            return 0.0
        return max(0.0, (self.upper_bound - self.lower_bound) / self.upper_bound)
