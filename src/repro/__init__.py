"""repro: packing to angles and sectors.

A from-scratch reproduction of *"Packing to angles and sectors"*
(Berman, Jeong, Kasiviswanathan, Urgaonkar — SPAA 2007 / ECCC TR06-030):
orienting capacity-constrained directional antennas and packing customer
demands into them, on the circle (angles) and in the plane (sectors).

Quickstart
----------
>>> from repro import generators, get_solver, solve_greedy_multi
>>> inst = generators.clustered_angles(n=40, k=3, seed=0)
>>> sol = solve_greedy_multi(inst, get_solver("exact"))
>>> sol.verify(inst).value(inst) > 0
True

See ``examples/`` for runnable scenarios, ``DESIGN.md`` for the system
inventory, and ``EXPERIMENTS.md`` for the evaluation.
"""

__version__ = "1.0.0"

from repro.geometry import Arc, CircularSweep, Sector
from repro.knapsack import get_solver
from repro.model import (
    AngleInstance,
    AngleSolution,
    AntennaSpec,
    Customer,
    FeasibilityError,
    FractionalSolution,
    SectorInstance,
    SectorSolution,
    Station,
    generators,
    load_instance,
    save_instance,
)
from repro.packing import (
    best_rotation,
    canonical_starts,
    combined_upper_bound,
    improve_solution,
    lp_upper_bound,
    solve_exact_angle,
    solve_exact_fixed_orientations,
    solve_greedy_multi,
    solve_lp_rounding,
    solve_non_overlapping_dp,
    solve_sector_greedy,
    solve_sector_independent,
    solve_sector_splittable,
    solve_shifting,
    solve_single_antenna,
    solve_single_antenna_fractional,
    solve_splittable,
)

__all__ = [
    "__version__",
    # geometry
    "Arc",
    "Sector",
    "CircularSweep",
    # model
    "Customer",
    "AntennaSpec",
    "Station",
    "AngleInstance",
    "SectorInstance",
    "AngleSolution",
    "SectorSolution",
    "FractionalSolution",
    "FeasibilityError",
    "generators",
    "save_instance",
    "load_instance",
    # knapsack
    "get_solver",
    # packing
    "canonical_starts",
    "best_rotation",
    "solve_single_antenna",
    "solve_single_antenna_fractional",
    "solve_greedy_multi",
    "solve_non_overlapping_dp",
    "solve_shifting",
    "improve_solution",
    "solve_lp_rounding",
    "lp_upper_bound",
    "combined_upper_bound",
    "solve_splittable",
    "solve_exact_angle",
    "solve_exact_fixed_orientations",
    "solve_sector_greedy",
    "solve_sector_independent",
    "solve_sector_splittable",
]
