#!/usr/bin/env python
"""Compare two bench payloads and flag throughput regressions.

Usage::

    python scripts/bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.2]

Diffs every *shared* throughput metric — sections or fields present in
only one payload are reported as informational and never fail the
comparison, so a newer payload may add sections (e.g. ``compile_bench``)
without breaking comparisons against older baselines:

* ``summary``     — per-solver solve throughput (``runs / total_wall_time_s``);
* ``cache_bench`` — cold and warm solve rates plus the warm speedup;
* ``service_bench`` — ``single_rps`` / ``batched_rps`` / ``warm_rps``,
  plus the nested ``supervised`` rates (``supervised_rps`` / ``kill_rps``)
  when the payload carries the supervised worker-pool phases;
* ``compile_bench`` — cold/shared compile-amortized solve rates and speedup;
* ``backend_bench`` — python-vs-numpy backend speedups and per-backend
  solve rates (``docs/BACKENDS.md``);
* ``scale_bench`` — per-size monolithic and partitioned solve rates plus
  the partition speedup at each ``n`` (``docs/SCALE.md``);
* ``online_bench`` — delta-apply and from-scratch-recompile event rates
  plus the delta speedup (``docs/ONLINE.md``);
* ``scenario_bench`` — constrained solve rates per backend and the
  inverse mask-compose overhead ratio, so a compose slowdown reads as a
  throughput regression (``docs/SCENARIOS.md``).

Exit status: ``0`` when no shared metric regressed by more than
``--threshold`` (default 20%), ``1`` when at least one did, ``2`` on
bad inputs.  All metrics are oriented so that **higher is better**;
micro-benchmark wall times are noisy, so the intended wiring is an
*advisory* invocation (see ``scripts/smoke.sh``) — except for sections
named with ``--enforce``.

``--enforce SECTION`` (repeatable, e.g. ``--enforce backend_bench``)
narrows the *failing* set: only regressions in metrics of the named
sections set the exit code, everything else stays advisory (still
printed).  An enforced section missing from the candidate payload is
itself a failure — the gate cannot silently pass by dropping the
section it guards.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, Iterator, Tuple


def _summary_throughputs(payload: dict) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for solver, stats in payload.get("summary", {}).items():
        runs = stats.get("runs", 0)
        secs = stats.get("total_wall_time_s", 0.0)
        if runs and secs > 0:
            out[f"summary.{solver}.solves_per_s"] = runs / secs
    return out


def _section_throughputs(payload: dict) -> Dict[str, float]:
    """Flatten every higher-is-better rate the optional sections carry."""
    out: Dict[str, float] = {}
    cb = payload.get("cache_bench")
    if cb:
        for field in ("cold_wall_time_s", "warm_wall_time_s"):
            if cb.get(field, 0.0) > 0:
                name = field.replace("_wall_time_s", "_solves_per_s")
                out[f"cache_bench.{name}"] = 1.0 / cb[field]
        if "speedup" in cb:
            out["cache_bench.speedup"] = cb["speedup"]
    sb = payload.get("service_bench")
    if sb:
        for field in ("single_rps", "batched_rps", "warm_rps"):
            if field in sb:
                out[f"service_bench.{field}"] = sb[field]
        sup = sb.get("supervised")
        if sup:
            for field in ("supervised_rps", "kill_rps"):
                if field in sup:
                    out[f"service_bench.supervised.{field}"] = sup[field]
    pb = payload.get("compile_bench")
    if pb:
        for field in ("cold_solves_per_s", "shared_solves_per_s", "speedup"):
            if field in pb:
                out[f"compile_bench.{field}"] = pb[field]
    bb = payload.get("backend_bench")
    if bb:
        for field in (
            "knapsack_speedup", "kernel_speedup", "angle_speedup",
            "sector_speedup",
        ):
            if field in bb:
                out[f"backend_bench.{field}"] = bb[field]
        for field in (
            "knapsack_numpy_s", "kernel_numpy_s", "angle_numpy_s",
            "sector_numpy_s",
        ):
            if bb.get(field, 0.0) > 0:
                name = field.replace("_s", "_solves_per_s")
                out[f"backend_bench.{name}"] = 1.0 / bb[field]
    sc = payload.get("scale_bench")
    if sc:
        for row in sc.get("rows", ()):
            n = row.get("n")
            if not n:
                continue
            for field in ("mono_s", "part_s"):
                if row.get(field, 0.0) > 0:
                    name = field.replace("_s", "_solves_per_s")
                    out[f"scale_bench.n{n}.{name}"] = 1.0 / row[field]
            if "speedup" in row:
                out[f"scale_bench.n{n}.speedup"] = row["speedup"]
    ob = payload.get("online_bench")
    if ob:
        for field in (
            "delta_events_per_s", "recompile_events_per_s", "speedup",
        ):
            if field in ob:
                out[f"online_bench.{field}"] = ob[field]
    sn = payload.get("scenario_bench")
    if sn:
        # Higher-is-better orientation: invert the overhead ratio so a
        # slower mask composition shows up as a metric drop.
        if sn.get("overhead_ratio", 0.0) > 0:
            out["scenario_bench.compose_headroom"] = 1.0 / sn["overhead_ratio"]
        for row in sn.get("rows", ()):
            solver = row.get("solver")
            for field in ("python_s", "numpy_s"):
                if solver and row.get(field, 0.0) > 0:
                    name = field.replace("_s", "_solves_per_s")
                    out[f"scenario_bench.{solver}.{name}"] = 1.0 / row[field]
    return out


def _throughputs(payload: dict) -> Dict[str, float]:
    out = _summary_throughputs(payload)
    out.update(_section_throughputs(payload))
    return out


def _load(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("schema") != "repro.bench":
        raise ValueError(f"{path}: not a repro.bench payload")
    return payload


def _compare(
    base: Dict[str, float], cand: Dict[str, float], threshold: float
) -> Iterator[Tuple[str, str, float, float, float]]:
    """Yield ``(status, metric, baseline, candidate, ratio)`` rows."""
    for name in sorted(set(base) | set(cand)):
        if name not in base:
            yield ("new", name, float("nan"), cand[name], float("nan"))
            continue
        if name not in cand:
            yield ("gone", name, base[name], float("nan"), float("nan"))
            continue
        ratio = cand[name] / base[name] if base[name] > 0 else float("inf")
        status = "REGRESSED" if ratio < 1.0 - threshold else "ok"
        yield (status, name, base[name], cand[name], ratio)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("candidate", help="candidate BENCH_*.json")
    parser.add_argument(
        "--threshold", type=float, default=0.2,
        help="max tolerated fractional throughput drop (default 0.2 = 20%%)",
    )
    parser.add_argument(
        "--enforce", action="append", metavar="SECTION", default=None,
        help="only regressions in this section's metrics set the exit code "
             "(repeatable); the section must be present in the candidate",
    )
    args = parser.parse_args(argv)
    try:
        base_payload = _load(args.baseline)
        cand_payload = _load(args.candidate)
        base = _throughputs(base_payload)
        cand = _throughputs(cand_payload)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"bench_compare: {exc}", file=sys.stderr)
        return 2
    for section in args.enforce or ():
        if section != "summary" and section not in cand_payload:
            print(
                f"bench_compare: enforced section {section!r} missing from "
                f"{args.candidate}",
                file=sys.stderr,
            )
            return 1
    if not base or not cand:
        print("bench_compare: no throughput metrics found", file=sys.stderr)
        return 2

    enforced_prefixes = tuple(f"{s}." for s in args.enforce or ())

    def _enforced(name: str) -> bool:
        return not enforced_prefixes or name.startswith(enforced_prefixes)

    regressions = 0
    failing = 0
    shared = 0
    width = max(len(name) for name in set(base) | set(cand))
    print(f"{'metric':<{width}}  {'baseline':>12}  {'candidate':>12}  ratio")
    for status, name, b, c, ratio in _compare(base, cand, args.threshold):
        if status == "new":
            print(f"{name:<{width}}  {'-':>12}  {c:>12.3f}  (new section)")
            continue
        if status == "gone":
            print(f"{name:<{width}}  {b:>12.3f}  {'-':>12}  (not in candidate)")
            continue
        shared += 1
        if status == "REGRESSED":
            regressions += 1
            marker = "  <-- REGRESSED"
            if _enforced(name):
                failing += 1
            else:
                marker += " (advisory)"
        else:
            marker = ""
        print(f"{name:<{width}}  {b:>12.3f}  {c:>12.3f}  {ratio:5.2f}x{marker}")
    scope = (
        f" ({len(enforced_prefixes)} enforced section(s): "
        f"{', '.join(args.enforce)}; {failing} failing)"
        if enforced_prefixes
        else ""
    )
    print(
        f"\n{shared} shared metrics, {regressions} regressed more than "
        f"{args.threshold:.0%}{scope} ({args.baseline} -> {args.candidate})"
    )
    return 1 if failing else 0


if __name__ == "__main__":
    sys.exit(main())
