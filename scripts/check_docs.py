#!/usr/bin/env python
"""Documentation lint: the docs may only promise what the code delivers.

Run from the repo root (``scripts/smoke.sh`` does)::

    PYTHONPATH=src python scripts/check_docs.py

Seven checks, all hard failures:

1. **Docstring coverage** — every public module under ``repro`` and every
   public top-level class/function in it carries a docstring (100%, no
   budget).
2. **Metric names** — every ``family.name`` metric token mentioned in
   ``docs/`` and ``README.md`` exists in code: either registered in the
   live metrics registry after importing every module, or present as a
   string literal in ``src/`` (covers metrics minted at runtime, e.g.
   per-oracle-kind breakdowns).
3. **CLI flags** — every ``--flag`` mentioned in the docs is accepted by
   the ``repro-sectors`` parser tree (any subcommand) or the bench
   harness parser.
4. **Relative links** — every relative markdown link target exists on
   disk.
5. **Registry coverage** — every solver registered in the engine
   (:func:`repro.engine.specs`) is mentioned by name (as a ``code
   span``) in ``docs/ENGINE.md``, so the solver table there can never
   silently fall behind the registry.
6. **Wire ops** — every service wire op named in ``docs/SERVICE.md`` or
   ``docs/ONLINE.md`` is dispatched by the protocol handler in
   ``src/repro/service/server.py``, so the documented wire surface can
   never promise an op the server would answer with "unknown op".
7. **Constraint kinds** — every constraint kind registered in
   ``repro.model.constraints.CONSTRAINT_KINDS`` is documented (as a
   ``code span``) in ``docs/SCENARIOS.md``, so the constraint grammar
   there can never silently fall behind the wire registry.

Exit code 0 when clean; 1 with one line per violation otherwise.
"""

from __future__ import annotations

import argparse
import ast
import importlib
import pkgutil
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"
DOC_FILES = sorted((ROOT / "docs").glob("*.md")) + [ROOT / "README.md"]

#: Metric families whose dotted names the docs must only mention if real.
METRIC_PREFIXES = {
    "oracle", "fptas", "sweep", "rotation", "solver", "phase", "lp",
    "engine", "resilience", "chaos", "parallel", "service",
}

#: Doc flags with no argparse home (pytest plugins, external tools).
FLAG_ALLOWLIST = {"--benchmark-only"}


def iter_public_modules():
    """Yield (name, module) for repro and every public submodule."""
    import repro

    yield "repro", repro
    prefix = "repro."
    for info in pkgutil.walk_packages(repro.__path__, prefix):
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        yield info.name, importlib.import_module(info.name)


def check_docstrings(problems: list) -> int:
    """Enforce 100% docstring coverage on the public surface; returns it."""
    total = 0
    for name, module in iter_public_modules():
        total += 1
        if not (module.__doc__ or "").strip():
            problems.append(f"docstring: module {name} has no docstring")
        public = getattr(module, "__all__", None)
        for attr in dir(module):
            if attr.startswith("_"):
                continue
            obj = getattr(module, attr)
            if getattr(obj, "__module__", None) != name:
                continue  # re-export; charged to its home module
            if not (isinstance(obj, type) or callable(obj)):
                continue
            if public is not None and attr not in public:
                continue
            total += 1
            if not (getattr(obj, "__doc__", None) or "").strip():
                problems.append(f"docstring: {name}.{attr} has no docstring")
    return total


_METRIC_TOKEN = re.compile(r"`([a-z_]+(?:\.[a-z0-9_]+)+)`")


def known_metric_names() -> set:
    """Ground truth: live registry names + every string literal in src."""
    from repro.obs import get_registry

    names = set(get_registry().snapshot())
    for path in SRC.rglob("*.py"):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                names.add(node.value)
    return names


def check_metric_names(problems: list) -> int:
    """Every doc token that looks like a metric must exist in code."""
    known = known_metric_names()
    checked = 0
    for doc in DOC_FILES:
        for token in _METRIC_TOKEN.findall(doc.read_text(encoding="utf-8")):
            family = token.split(".", 1)[0]
            if family not in METRIC_PREFIXES:
                continue  # dotted code reference (repro.engine etc.), not a metric
            if "<" in token or "*" in token:
                continue  # pattern rows like oracle.calls.<kind>
            checked += 1
            if token not in known:
                problems.append(
                    f"metric: {doc.name} mentions `{token}` "
                    f"but no such metric exists in src/"
                )
    return checked


def known_cli_flags() -> set:
    """Every option string across the repro CLI tree + the bench harness."""
    from repro.cli import build_parser

    flags = set(FLAG_ALLOWLIST)

    def walk(parser: argparse.ArgumentParser) -> None:
        for action in parser._actions:  # noqa: SLF001 - argparse has no public walk
            flags.update(o for o in action.option_strings if o.startswith("--"))
            if isinstance(action, argparse._SubParsersAction):
                for sub in action.choices.values():
                    walk(sub)

    walk(build_parser())
    for script in (ROOT / "benchmarks" / "harness.py",
                   ROOT / "scripts" / "bench_compare.py"):
        if script.exists():
            for match in re.findall(r"add_argument\(\s*[\"'](--[\w-]+)",
                                    script.read_text(encoding="utf-8")):
                flags.add(match)
    return flags


_FLAG_TOKEN = re.compile(r"(--[a-z][\w-]+)")


def check_cli_flags(problems: list) -> int:
    """Every --flag mentioned in the docs must be a real option."""
    known = known_cli_flags()
    checked = 0
    for doc in DOC_FILES:
        for flag in set(_FLAG_TOKEN.findall(doc.read_text(encoding="utf-8"))):
            checked += 1
            if flag not in known:
                problems.append(
                    f"cli-flag: {doc.name} mentions {flag} "
                    f"but no parser accepts it"
                )
    return checked


_LINK = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)]*)?\)")


def check_links(problems: list) -> int:
    """Every relative markdown link target must exist on disk."""
    checked = 0
    for doc in DOC_FILES:
        for target in _LINK.findall(doc.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            checked += 1
            if not (doc.parent / target).exists():
                problems.append(f"link: {doc.name} -> {target} does not exist")
    return checked


def check_registry_docs(problems: list) -> int:
    """Every registered solver must appear as a code span in ENGINE.md."""
    from repro.engine import FAMILIES, specs

    engine_md = ROOT / "docs" / "ENGINE.md"
    text = engine_md.read_text(encoding="utf-8")
    checked = 0
    for family in FAMILIES:
        for spec in specs(family):
            checked += 1
            # Substring test rather than backtick-pair parsing: the code
            # fences in ENGINE.md would desync a pairing regex.
            if f"`{spec.name}`" not in text:
                problems.append(
                    f"registry: {family}/{spec.name} is registered but "
                    f"`{spec.name}` never appears in docs/ENGINE.md"
                )
    return checked


_OP_CELL = re.compile(r"^\|\s*`([a-z_]+)`")


def known_wire_ops() -> set:
    """Ground truth: op names the server's dispatch chain actually handles."""
    server = (SRC / "repro" / "service" / "server.py").read_text(
        encoding="utf-8"
    )
    ops = set(re.findall(r'op == "([a-z_]+)"', server))
    default = re.search(r'\.get\("op",\s*"([a-z_]+)"\)', server)
    if default:
        ops.add(default.group(1))
    return ops


def check_wire_ops(problems: list) -> int:
    """Every op named in the wire-op tables must be dispatched by the server.

    An "op table" is any markdown table in docs/SERVICE.md or
    docs/ONLINE.md whose first header cell is ``op``; the first-column
    code spans of its rows are the documented op names.
    """
    known = known_wire_ops()
    checked = 0
    for name in ("SERVICE.md", "ONLINE.md"):
        doc = ROOT / "docs" / name
        if not doc.exists():
            continue
        in_op_table = False
        for line in doc.read_text(encoding="utf-8").splitlines():
            if not line.startswith("|"):
                in_op_table = False
                continue
            first_cell = line.split("|")[1].strip() if "|" in line[1:] else ""
            if first_cell == "op":
                in_op_table = True
                continue
            if not in_op_table:
                continue
            match = _OP_CELL.match(line)
            if not match:
                continue
            checked += 1
            if match.group(1) not in known:
                problems.append(
                    f"wire-op: docs/{name} documents op `{match.group(1)}` "
                    f"but the server never dispatches it"
                )
    return checked


def check_constraint_docs(problems: list) -> int:
    """Every registered constraint kind must appear in SCENARIOS.md."""
    from repro.model.constraints import CONSTRAINT_KINDS

    scenarios_md = ROOT / "docs" / "SCENARIOS.md"
    if not scenarios_md.exists():
        problems.append("constraint: docs/SCENARIOS.md does not exist")
        return 0
    text = scenarios_md.read_text(encoding="utf-8")
    checked = 0
    for kind in CONSTRAINT_KINDS:
        checked += 1
        if f"`{kind}`" not in text:
            problems.append(
                f"constraint: kind {kind!r} is registered but `{kind}` "
                f"never appears in docs/SCENARIOS.md"
            )
    return checked


def main() -> int:
    problems: list = []
    symbols = check_docstrings(problems)
    metrics = check_metric_names(problems)
    flags = check_cli_flags(problems)
    links = check_links(problems)
    solvers = check_registry_docs(problems)
    ops = check_wire_ops(problems)
    kinds = check_constraint_docs(problems)
    for p in problems:
        print(p, file=sys.stderr)
    print(
        f"check_docs: {symbols} public symbols, {metrics} metric mentions, "
        f"{flags} flag mentions, {links} links checked, "
        f"{solvers} registered solvers checked, {ops} wire ops checked, "
        f"{kinds} constraint kinds checked, {len(problems)} problem(s)"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
