#!/usr/bin/env bash
# Smoke check: tier-1 test suite + one tiny bench round-trip + resilience.
#
# Run from anywhere:  scripts/smoke.sh
# The bench half exercises the full observability stack (metrics registry,
# solver instrumentation, payload emission) and validates the emitted JSON
# against the frozen repro.bench schema (docs/OBSERVABILITY.md).  The
# resilience half drives the deadline/fallback paths end to end through
# the CLI (docs/RESILIENCE.md).

set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== slow marker (one scale case) =="
# Tier-1 deselects `slow` (pyproject addopts); the smoke runs exactly one
# marked scale case so the n >= 1e5 partition path stays exercised in CI.
python -m pytest -x -q -m slow -o addopts="" \
    tests/test_partition.py::TestScale::test_partitioned_matches_monolithic_at_scale

echo "== docs lint =="
# 100% public docstring coverage; every metric name, CLI flag and relative
# link mentioned in docs/ + README must exist (docs/INDEX.md conventions).
python scripts/check_docs.py

echo "== ruff lint =="
# Advisory-by-availability: ruff is not a dependency of this package, so
# the gate only runs where a binary exists (config: pyproject.toml, rules
# limited to pyflakes + import ordering).
if command -v ruff >/dev/null 2>&1; then
    ruff check src tests scripts
else
    echo "ruff not installed; skipping lint"
fi

echo "== engine registry completeness =="
# Every packing export must be claimed by a registered SolverSpec, every
# knapsack oracle / online policy must be registered, and every spec must
# solve a tiny instance end to end (docs/ENGINE.md).
python - <<'PY'
from repro.engine import check_registry, smoke_check

problems = check_registry() + smoke_check()
for p in problems:
    print(f"registry problem: {p}")
raise SystemExit(1 if problems else 0)
PY

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== bench round-trip =="
out="$tmp/BENCH_smoke.json"
python -m repro bench --families uniform --n 50 --seeds 0 \
    --solvers greedy,shifting --tag smoke --output "$out"
python -m repro bench --check "$out"

echo "== backend bench round-trip =="
# Small-n backend-comparison smoke: exercises the python-vs-numpy section
# (value identity is asserted inside the harness; a mismatch aborts the
# bench) and validates the payload with the section present.
backend_out="$tmp/BENCH_backend_smoke.json"
python -m repro bench --families uniform --n 50 --seeds 0 \
    --solvers greedy --tag backend-smoke --backend-bench \
    --output "$backend_out"
python -m repro bench --check "$backend_out"

echo "== scale bench round-trip =="
# Small-n partition-strategy smoke: exercises the monolithic-vs-partitioned
# section (merge-bound soundness is asserted inside the harness; a
# violation aborts the bench) and validates the payload with the section
# present.  Sizes stay tiny here — the full curves live in BENCH_pr8.json.
scale_out="$tmp/BENCH_scale_smoke.json"
python - "$scale_out" <<'PY'
import sys

from repro.obs.bench import run_bench, write_bench

payload = run_bench(
    families=("uniform",), n=50, seeds=(0,), solvers=("greedy",),
    tag="scale-smoke", scale_bench=True, scale_sizes=(2_000, 5_000),
)
write_bench(payload, sys.argv[1])
PY
python -m repro bench --check "$scale_out"

echo "== online bench round-trip =="
# Small-n delta-apply smoke: exercises the online_bench section (per-event
# value identity and per-sector invalidation are asserted inside the
# harness; the 5x speedup gate only arms at n >= 1e4, so this stays below
# it) and validates the payload with the section present.
online_out="$tmp/BENCH_online_smoke.json"
python - "$online_out" <<'PY'
import sys

from repro.obs.bench import run_bench, write_bench

payload = run_bench(
    families=("uniform",), n=50, seeds=(0,), solvers=("greedy",),
    tag="online-smoke", online_bench=True, online_n=1_500,
    online_events=24,
)
write_bench(payload, sys.argv[1])
PY
python -m repro bench --check "$online_out"

echo "== scenario bench round-trip =="
# Small-n constraint-pipeline smoke: exercises the scenario_bench section
# (scalar-vs-vectorized mask composition identity and constrained solve
# feasibility are asserted inside the harness; the <10% compose-overhead
# gate only arms at n >= 5e4, so this stays below it) and validates the
# payload with the section present.
scenario_out="$tmp/BENCH_scenario_smoke.json"
python - "$scenario_out" <<'PY'
import sys

from repro.obs.bench import run_bench, write_bench

payload = run_bench(
    families=("uniform",), n=50, seeds=(0,), solvers=("greedy",),
    tag="scenario-smoke", scenario_bench=True, scenario_n=2_000,
)
write_bench(payload, sys.argv[1])
PY
python -m repro bench --check "$scenario_out"

echo "== bench comparison (advisory) =="
# Throughput diff between the two most recent committed payloads.  Wall
# times from different machines/sessions are noisy, so a regression here
# warns without failing the smoke (see scripts/bench_compare.py).
if [ -f BENCH_pr9.json ] && [ -f BENCH_pr10.json ]; then
    python scripts/bench_compare.py BENCH_pr9.json BENCH_pr10.json ||
        echo "bench_compare: advisory throughput regression (not fatal)"
fi

echo "== bench comparison (enforced: backend_bench, service_bench, scale_bench, online_bench, scenario_bench) =="
# Sections the smoke *enforces*: the committed payload must carry them,
# and once a baseline payload has them too, >20% regressions in their
# metrics fail the smoke (no advisory fallback here — see
# scripts/bench_compare.py --enforce).  backend_bench stays pinned to
# the pr5->pr6 pair that introduced it; service_bench to pr6->pr7;
# scale_bench to pr8->pr9; online_bench to pr9->pr10; scenario_bench is
# enforced from pr10 on (guarded until BENCH_pr11 exists).
if [ -f BENCH_pr6.json ]; then
    python scripts/bench_compare.py BENCH_pr5.json BENCH_pr6.json \
        --enforce backend_bench
fi
if [ -f BENCH_pr7.json ]; then
    python scripts/bench_compare.py BENCH_pr6.json BENCH_pr7.json \
        --enforce service_bench
fi
if [ -f BENCH_pr9.json ]; then
    python scripts/bench_compare.py BENCH_pr8.json BENCH_pr9.json \
        --enforce scale_bench
fi
if [ -f BENCH_pr10.json ]; then
    python scripts/bench_compare.py BENCH_pr9.json BENCH_pr10.json \
        --enforce online_bench
fi
if [ -f BENCH_pr11.json ]; then
    python scripts/bench_compare.py BENCH_pr10.json BENCH_pr11.json \
        --enforce scenario_bench
fi

echo "== resilience smoke =="
inst="$tmp/inst.json"
python -m repro generate clustered "$inst" --seed 3 --params '{"n": 40, "k": 3}'
# Exact solve under a 1-second cooperative deadline, degrading through the
# fallback chain (exact -> fptas -> greedy) instead of failing.
python -m repro solve "$inst" --fallback --timeout 1.0
# A zero deadline without --fallback must exit 4 (deadline expired), not 1.
code=0
python -m repro solve "$inst" --algorithm greedy --timeout 0 2>/dev/null || code=$?
if [ "$code" -ne 4 ]; then
    echo "expected exit 4 from an expired deadline, got $code" >&2; exit 1
fi
# Bench including the exact solver, bounded per-solve by --timeout.
python -m repro bench --families uniform --n 30 --seeds 0 \
    --solvers greedy,exact --timeout 1.0 --tag smoke-resilience \
    --output "$tmp/BENCH_resilience.json"
python -m repro bench --check "$tmp/BENCH_resilience.json"

echo "== service smoke =="
# Serve on a unix socket, solve through the client, drain on SIGTERM
# (docs/SERVICE.md): the server must answer while up and exit 0 on drain.
sock="$tmp/repro.sock"
python -m repro serve --port 0 --unix "$sock" &
serve_pid=$!
for _ in $(seq 1 50); do
    [ -S "$sock" ] && break
    sleep 0.1
done
python -m repro client ping --unix "$sock"
python -m repro client solve "$inst" --unix "$sock" --algorithm greedy --repeat 8
# Dynamic-workload round trip (docs/ONLINE.md): open a delta session by
# attaching the instance, stream events into it, re-solve in-flight.
events="$tmp/events.json"
cat > "$events" <<'JSON'
[{"type": "add_customer", "demand": 1.5, "theta": 0.7},
 {"type": "update_demand", "index": 0, "demand": 2.0, "profit": 2.0},
 {"type": "remove_customer", "index": 3}]
JSON
python -m repro client event "$inst" --unix "$sock" --session smoke-session
python -m repro client event --unix "$sock" --session smoke-session \
    --events "$events" --resolve --algorithm greedy
kill -TERM "$serve_pid"
code=0
wait "$serve_pid" || code=$?
if [ "$code" -ne 0 ]; then
    echo "expected exit 0 from a drained service, got $code" >&2; exit 1
fi

echo "== chaos smoke =="
# Supervised workers with deterministic kill injection (docs/SERVICE.md,
# docs/RESILIENCE.md): every request must still answer (client exits 0 =
# all statuses 0, so zero lost requests) and the drain must exit 0 with
# the worker pool being killed underneath it.
chaos_sock="$tmp/repro-chaos.sock"
python -m repro serve --port 0 --unix "$chaos_sock" \
    --workers 2 --chaos "seed=5,kill_rate=0.2" &
chaos_pid=$!
for _ in $(seq 1 100); do
    [ -S "$chaos_sock" ] && break
    sleep 0.1
done
python -m repro client solve "$inst" --unix "$chaos_sock" \
    --algorithm greedy --repeat 8 --no-cache
kill -TERM "$chaos_pid"
code=0
wait "$chaos_pid" || code=$?
if [ "$code" -ne 0 ]; then
    echo "expected exit 0 from a drained chaos service, got $code" >&2; exit 1
fi

echo "smoke OK"
