#!/usr/bin/env bash
# Smoke check: tier-1 test suite + one tiny bench round-trip.
#
# Run from anywhere:  scripts/smoke.sh
# The bench half exercises the full observability stack (metrics registry,
# solver instrumentation, payload emission) and validates the emitted JSON
# against the frozen repro.bench schema (docs/OBSERVABILITY.md).

set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH=src

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== bench round-trip =="
out="$(mktemp -d)/BENCH_smoke.json"
trap 'rm -rf "$(dirname "$out")"' EXIT
python -m repro bench --families uniform --n 50 --seeds 0 \
    --solvers greedy,shifting --tag smoke --output "$out"
python -m repro bench --check "$out"

echo "smoke OK"
