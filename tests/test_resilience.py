"""Tier-1 tests for the resilience layer (repro.resilience).

Covers the contract of docs/RESILIENCE.md: cooperative budgets expire for
the right reason, anytime exact solves return certified brackets, the
fallback chain degrades stage by stage under injected faults (every path
exercised through the chaos harness), and the chaos harness itself is
deterministic by seed.
"""

import time

import numpy as np
import pytest

from repro.model import generators as gen
from repro.model.solution import AngleSolution
from repro.obs.metrics import get_registry
from repro.packing.bounds import combined_upper_bound
from repro.packing.exact import solve_exact_angle, solve_exact_anytime
from repro.packing.multi import solve_greedy_multi
from repro.knapsack import get_solver
from repro.resilience import (
    AnytimeOutcome,
    Budget,
    BudgetExpired,
    ChainResult,
    ChaosError,
    ChaosMonkey,
    ChaosPolicy,
    FallbackChain,
    FallbackExhausted,
    Stage,
    chaos_active,
    chaos_point,
    checkpoint,
    current_budget,
    default_angle_chain,
    tick_nodes,
)

GREEDY = get_solver("greedy")


# ----------------------------------------------------------------------
# Budget
# ----------------------------------------------------------------------
class TestBudget:
    def test_node_limit(self):
        b = Budget(max_nodes=5)
        for _ in range(5):
            b.tick()
        with pytest.raises(BudgetExpired) as exc:
            b.tick()
        assert exc.value.reason == "node_limit"

    def test_oracle_limit(self):
        b = Budget(max_oracle_calls=2)
        b.tick_oracle()
        b.tick_oracle()
        with pytest.raises(BudgetExpired) as exc:
            b.tick_oracle()
        assert exc.value.reason == "oracle_limit"

    def test_deadline(self):
        b = Budget(wall_s=0.0)
        with pytest.raises(BudgetExpired) as exc:
            b.checkpoint()
        assert exc.value.reason == "deadline"

    def test_deadline_amortized_by_stride(self):
        # With a huge stride the clock is not consulted on plain ticks...
        b = Budget(wall_s=0.0, check_stride=10_000)
        for _ in range(100):
            b.tick()
        # ...but a checkpoint forces the clock and expires.
        with pytest.raises(BudgetExpired):
            b.checkpoint()

    def test_cancel(self):
        b = Budget()
        b.cancel()
        with pytest.raises(BudgetExpired) as exc:
            b.tick()
        assert exc.value.reason == "cancelled"

    def test_expired_budget_stays_expired(self):
        b = Budget(max_nodes=1)
        b.tick()
        with pytest.raises(BudgetExpired):
            b.tick()
        with pytest.raises(BudgetExpired) as exc:
            b.checkpoint()
        assert exc.value.reason == "node_limit"

    def test_remaining_and_describe(self):
        b = Budget(wall_s=100.0, max_nodes=10)
        assert 0 < b.remaining_s() <= 100.0
        assert "nodes=0/10" in b.describe()
        assert Budget().describe() == "unlimited"

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Budget(wall_s=-1.0)
        with pytest.raises(ValueError):
            Budget(check_stride=0)

    def test_metrics_counted_once(self):
        reg = get_registry()
        reg.reset()
        b = Budget(max_nodes=1)
        b.tick()
        for _ in range(3):
            with pytest.raises(BudgetExpired):
                b.tick()
        assert reg.snapshot()["resilience.budget_expired"]["value"] == 1


class TestAmbientBudget:
    def test_activation_stacks_and_restores(self):
        assert current_budget() is None
        outer, inner = Budget(), Budget()
        with outer.activate():
            assert current_budget() is outer
            with inner.activate():
                assert current_budget() is inner
            assert current_budget() is outer
        assert current_budget() is None

    def test_module_helpers_noop_without_budget(self):
        checkpoint()
        tick_nodes(100)

    def test_module_helpers_enforce_active_budget(self):
        with Budget(max_nodes=3).activate():
            with pytest.raises(BudgetExpired):
                tick_nodes(10)

    def test_ambient_deadline_interrupts_greedy(self):
        inst = gen.uniform_angles(n=40, k=3, seed=0)
        with Budget(wall_s=0.0).activate():
            with pytest.raises(BudgetExpired):
                solve_greedy_multi(inst, GREEDY)

    def test_ambient_oracle_limit_interrupts_solvers(self):
        inst = gen.uniform_angles(n=40, k=3, seed=0)
        with Budget(max_oracle_calls=3).activate():
            with pytest.raises(BudgetExpired) as exc:
                solve_greedy_multi(inst, GREEDY)
        assert exc.value.reason == "oracle_limit"


# ----------------------------------------------------------------------
# Anytime exact solve
# ----------------------------------------------------------------------
class TestAnytimeExact:
    def test_complete_collapses_bracket(self):
        inst = gen.uniform_angles(n=10, k=2, seed=1)
        out = solve_exact_anytime(inst)
        assert out.optimal and out.reason == "complete"
        assert out.lower_bound == pytest.approx(out.upper_bound)
        assert out.gap() == pytest.approx(0.0)
        out.solution.verify(inst)

    def test_complete_matches_plain_exact(self):
        inst = gen.clustered_angles(n=9, k=2, seed=3)
        out = solve_exact_anytime(inst)
        exact = solve_exact_angle(inst)
        assert out.solution.value(inst) == pytest.approx(exact.value(inst))

    def test_expired_returns_incumbent_with_bracket(self):
        # A zero deadline expires at the very first checkpoint, so the
        # greedy-seeded incumbent is all the solver ever gets to certify.
        inst = gen.uniform_angles(n=16, k=2, seed=2)
        out = solve_exact_anytime(inst, budget=Budget(wall_s=0.0))
        assert not out.optimal
        assert out.reason == "deadline"
        assert out.lower_bound <= out.upper_bound + 1e-9
        out.solution.verify(inst)

    def test_exact_raises_with_incumbent_attached(self):
        inst = gen.uniform_angles(n=16, k=2, seed=2)
        with pytest.raises(BudgetExpired) as exc:
            solve_exact_angle(inst, budget=Budget(wall_s=0.0))
        # Partial work is never thrown away: the incumbent rides the error.
        assert exc.value.incumbent is None or isinstance(
            exc.value.incumbent, AngleSolution
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_property_bracket_and_greedy_floor(self, seed):
        """Budget-expired exact solves return a *certified* answer.

        For random instances and a tiny node budget: the incumbent is
        feasible, its value is within the [greedy, upper-bound] bracket,
        and the bracket itself is consistent.
        """
        inst = gen.uniform_angles(n=14, k=2, seed=seed)
        greedy_value = solve_greedy_multi(inst, GREEDY).value(inst)
        ub = combined_upper_bound(inst)
        out = solve_exact_anytime(inst, budget=Budget(max_nodes=30))
        out.solution.verify(inst)
        value = out.solution.value(inst)
        assert value == pytest.approx(out.lower_bound)
        assert out.lower_bound <= out.upper_bound + 1e-9
        assert value >= greedy_value - 1e-9  # seeded incumbent: never worse
        assert value <= ub * (1.0 + 1e-9) + 1e-9

    def test_one_second_budget_on_e2_scale_instance(self):
        """Acceptance: exact B&B under a 1 s budget answers on n=40, k=3."""
        inst = gen.uniform_angles(n=40, k=3, seed=0)
        t0 = time.perf_counter()
        out = solve_exact_anytime(inst, budget=Budget(wall_s=1.0))
        elapsed = time.perf_counter() - t0
        assert elapsed < 5.0  # bounded: came back near the deadline
        out.solution.verify(inst)
        assert out.lower_bound <= out.upper_bound + 1e-9
        assert out.solution.value(inst) > 0

    def test_inverted_bracket_rejected(self):
        sol = AngleSolution(orientations=np.zeros(1), assignment=np.full(1, -1))
        with pytest.raises(ValueError):
            AnytimeOutcome(sol, lower_bound=2.0, upper_bound=1.0,
                           optimal=False, reason="deadline")


# ----------------------------------------------------------------------
# Chaos harness
# ----------------------------------------------------------------------
class TestChaos:
    def test_policy_validates_rates(self):
        with pytest.raises(ValueError):
            ChaosPolicy(error_rate=1.5)
        with pytest.raises(ValueError):
            ChaosPolicy(delay_s=-1.0)

    def test_deterministic_by_seed(self):
        def observed(seed):
            monkey = ChaosMonkey(ChaosPolicy(seed=seed, error_rate=0.5))
            hits = []
            for i in range(40):
                try:
                    monkey.at("site")
                    hits.append(False)
                except ChaosError:
                    hits.append(True)
            return hits

        a, b, c = observed(7), observed(7), observed(8)
        assert a == b  # same seed, same faults
        assert a != c  # different seed, different faults
        assert any(a) and not all(a)

    def test_sites_independent(self):
        policy = ChaosPolicy(seed=0, error_rate=0.5)
        monkey = ChaosMonkey(policy)

        def site_pattern(site):
            out = []
            for _ in range(30):
                try:
                    monkey.at(site)
                    out.append(False)
                except ChaosError:
                    out.append(True)
            return out

        assert site_pattern("alpha") != site_pattern("beta")

    def test_chaos_point_noop_when_inactive(self):
        chaos_point("anywhere")  # must not raise

    def test_chaos_active_injects_and_restores(self):
        policy = ChaosPolicy(seed=1, error_rate=1.0)
        with chaos_active(policy):
            with pytest.raises(ChaosError):
                chaos_point("x")
        chaos_point("x")  # inactive again

    def test_injected_metrics(self):
        reg = get_registry()
        reg.reset()
        with chaos_active(ChaosPolicy(seed=1, error_rate=1.0)):
            with pytest.raises(ChaosError):
                chaos_point("m")
        assert reg.snapshot()["chaos.injected.errors"]["value"] == 1

    def test_wrapped_callable_clean_in_parent(self):
        # In the wrapping (parent) process the wrapper must never misbehave
        # — that is what makes the pool's serial retry safe.
        wrapped = ChaosPolicy(seed=0, error_rate=1.0, kill_rate=1.0).wrap(abs)
        assert [wrapped(x) for x in (-1, -2, 3)] == [1, 2, 3]


# ----------------------------------------------------------------------
# Fallback chains
# ----------------------------------------------------------------------
class TestFallbackChain:
    def make_inst(self):
        return gen.uniform_angles(n=12, k=2, seed=4)

    def test_first_stage_answers(self):
        inst = self.make_inst()
        result = default_angle_chain(exact_timeout_s=30.0).run(inst)
        assert isinstance(result, ChainResult)
        assert result.stage == "exact"
        assert result.reason == "complete"
        assert not result.degraded
        result.solution.verify(inst)
        assert result.solution.meta["resilience"]["stage"] == "exact"

    def test_anytime_timeout_still_answers_from_exact(self):
        # An expiring exact stage is not abandoned: anytime semantics turn
        # the timeout into a degraded (incumbent) answer from stage one.
        inst = gen.uniform_angles(n=40, k=3, seed=0)
        result = default_angle_chain(exact_timeout_s=0.05).run(inst)
        assert result.stage == "exact"
        assert result.degraded
        assert result.reason.startswith("anytime:")
        assert result.lower_bound <= result.upper_bound + 1e-9

    def test_degrades_past_broken_stages(self):
        inst = self.make_inst()
        reg = get_registry()
        reg.reset()

        def broken(instance, budget):
            raise RuntimeError("boom")

        chain = FallbackChain(
            [
                Stage("exact", broken),
                Stage("fptas", broken),
                Stage("greedy",
                      lambda instance, budget: solve_greedy_multi(instance, GREEDY)),
            ]
        )
        result = chain.run(inst)
        assert result.stage == "greedy"
        assert result.degraded
        assert [a["stage"] for a in result.attempts] == ["exact", "fptas", "greedy"]
        assert reg.snapshot()["resilience.fallbacks"]["value"] == 2

    def test_timeout_falls_through_without_retry(self):
        inst = self.make_inst()
        reg = get_registry()
        reg.reset()
        calls = {"n": 0}

        def slow(instance, budget):
            calls["n"] += 1
            budget.checkpoint()
            time.sleep(0.05)
            budget.checkpoint()
            raise AssertionError("deadline should have fired")

        chain = FallbackChain(
            [
                Stage("slow", slow, timeout_s=0.01, retries=3),
                Stage("greedy",
                      lambda instance, budget: solve_greedy_multi(instance, GREEDY)),
            ]
        )
        result = chain.run(inst)
        assert result.stage == "greedy"
        assert calls["n"] == 1  # deadlines don't retry
        snap = reg.snapshot()
        assert snap["resilience.timeouts"]["value"] == 1
        assert snap["resilience.retries"]["value"] == 0

    def test_transient_faults_retried_with_backoff(self):
        inst = self.make_inst()
        reg = get_registry()
        reg.reset()
        sleeps = []
        attempts = {"n": 0}

        def flaky(instance, budget):
            attempts["n"] += 1
            if attempts["n"] <= 2:
                raise ChaosError("transient")
            return solve_greedy_multi(instance, GREEDY)

        chain = FallbackChain(
            [Stage("flaky", flaky, retries=3, backoff_s=0.01)],
            sleep=sleeps.append,
        )
        result = chain.run(inst)
        assert result.stage == "flaky"
        assert attempts["n"] == 3
        assert sleeps == [0.01, 0.02]  # exponential backoff
        assert reg.snapshot()["resilience.retries"]["value"] == 2

    def test_chaos_exercises_every_degradation_path(self):
        """Acceptance: chain demonstrably degrades exact -> fptas -> greedy.

        error_rate=1.0 at the stage entry chaos points (with zero
        retries) knocks out every stage in turn; the chain must walk the
        whole ladder and finally exhaust.
        """
        inst = self.make_inst()
        chain = default_angle_chain(retries=0)
        # Seedless full-rate injection kills stage 1 and 2; stage 3 answers
        # only if we stop injecting, so first prove total exhaustion...
        with chaos_active(ChaosPolicy(seed=0, error_rate=1.0)):
            with pytest.raises(FallbackExhausted) as exc:
                chain.run(inst)
        outcomes = [(a["stage"], a["outcome"]) for a in exc.value.attempts]
        assert [s for s, _ in outcomes] == ["exact", "fptas(eps=0.25)", "greedy"]
        assert all(o == "transient" for _, o in outcomes)

    def test_chaos_partial_injection_lands_on_greedy(self):
        inst = self.make_inst()
        chain = default_angle_chain(retries=0)

        class FirstTwo(ChaosPolicy):
            pass

        # Inject errors only at the exact and fptas sites; greedy runs clean.
        monkey_policy = ChaosPolicy(seed=0, error_rate=1.0)
        with chaos_active(monkey_policy) as monkey:
            original = monkey.at

            def selective(site):
                if site != "fallback.greedy":
                    original(site)

            monkey.at = selective
            result = chain.run(inst)
        assert result.stage == "greedy"
        assert result.degraded
        meta = result.solution.meta["resilience"]
        assert meta["stage"] == "greedy"
        assert [a["stage"] for a in meta["attempts"]][:2] == [
            "exact", "fptas(eps=0.25)",
        ]

    def test_chain_validates_stages(self):
        with pytest.raises(ValueError):
            FallbackChain([])
        stage = Stage("a", lambda i, b: None)
        with pytest.raises(ValueError):
            FallbackChain([stage, Stage("a", lambda i, b: None)])

    def test_delay_injection_trips_stage_deadline(self):
        # A chaos delay longer than the stage timeout turns into a timeout
        # at the stage's own budget checkpoint.
        inst = self.make_inst()

        def checked(instance, budget):
            budget.checkpoint()
            return solve_greedy_multi(instance, GREEDY)

        chain = FallbackChain(
            [
                Stage("slow", checked, timeout_s=0.01),
                Stage("greedy",
                      lambda instance, budget: solve_greedy_multi(instance, GREEDY)),
            ]
        )
        with chaos_active(ChaosPolicy(seed=0, delay_rate=1.0, delay_s=0.05)):
            result = chain.run(inst)
        assert result.stage == "greedy"
        assert result.attempts[0]["outcome"] == "timeout"
